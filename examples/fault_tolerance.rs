//! Fault tolerance (paper §VI-D, §VIII-C): kill a place mid-run and
//! watch the new recovery method rebuild the distributed array over the
//! survivors and finish the computation correctly.
//!
//! ```text
//! cargo run --release -p dpx10 --example fault_tolerance
//! ```

use dpx10::apps::{serial, workload, SwLinearApp};
use dpx10::prelude::*;

fn main() {
    let a = workload::dna(200, 7);
    let b = workload::dna(200, 8);

    // A 4-place run that loses place 3 at 50 % progress — the paper's
    // §VIII-C setup in miniature.
    let app = SwLinearApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let config = EngineConfig::flat(4)
        .with_dist(DistKind::BlockRow)
        .with_fault(FaultPlan::mid_run(PlaceId(3)));
    let result = ThreadedEngine::new(app, pattern, config)
        .run()
        .expect("the run survives the failure");

    let report = result.report();
    println!("epochs: {} (1 fault survived)", report.epochs);
    for (k, rec) in report.recoveries.iter().enumerate() {
        println!(
            "recovery #{k}: kept {} finished vertices, dropped {} for \
             recomputation, lost {} with the dead place; simulated \
             recovery time {:?}",
            rec.kept, rec.dropped, rec.lost, rec.sim_time
        );
    }
    println!(
        "recomputed {} extra vertices after the fault",
        report.recomputed()
    );

    // The result is still exactly right.
    let expect =
        serial::smith_waterman_linear(&a, &b, &SwLinearApp::new(a.clone(), b.clone()).scoring);
    for i in 0..=a.len() as u32 {
        for j in 0..=b.len() as u32 {
            assert_eq!(result.get(i, j), expect[i as usize][j as usize]);
        }
    }
    println!(
        "all {} cells verified against the serial oracle ✔",
        expect.len() * expect[0].len()
    );

    // The same failure on the simulated cluster, with the restore-manner
    // refinement flipped: copy finished remote vertices instead of
    // recomputing them (§VI-E).
    let app = SwLinearApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let sim = SimEngine::new(
        app,
        pattern,
        SimConfig::paper(4)
            .with_dist(DistKind::BlockRow)
            .with_restore(RestoreManner::CopyRemote)
            .with_fault(SimFaultPlan::mid_run(PlaceId(5))),
    )
    .run()
    .expect("simulated run survives");
    let rec = &sim.report().recoveries[0];
    println!(
        "simulated cluster with CopyRemote: migrated {} vertices ({} bytes) \
         instead of dropping them; virtual makespan {:?}",
        rec.migrated,
        rec.bytes_migrated,
        sim.report().sim_time
    );
}

//! Extension demo: tiled (blocked) execution of Smith-Waterman.
//!
//! Groups `t × t` alignment cells into one scheduled macro-vertex,
//! amortising the framework's per-vertex cost and batching boundary
//! messages — the blocked-wavefront optimisation the paper defers to
//! future work. Results are identical to the per-cell run.
//!
//! ```text
//! cargo run --release -p dpx10 --example tiled_alignment [seq_len] [tile]
//! ```

use std::time::Instant;

use dpx10::apps::{workload, SwlagApp};
use dpx10::core::tiled::run_tiled_threaded;
use dpx10::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let len: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let tile: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    let a = workload::dna(len, 5);
    let b = workload::dna(len, 6);

    // Per-cell run.
    let app = SwlagApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let t0 = Instant::now();
    let per_cell = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
        .run()
        .expect("per-cell run completes");
    let per_cell_time = t0.elapsed();

    // Tiled run.
    let app = SwlagApp::new(a.clone(), b.clone());
    let geometry_pattern = app.pattern();
    let t0 = Instant::now();
    let tiled = run_tiled_threaded(app, geometry_pattern, tile, EngineConfig::flat(2))
        .expect("tiled run completes");
    let tiled_time = t0.elapsed();

    // Identical results, cell for cell.
    let mut best = 0;
    for i in 0..=len as u32 {
        for j in 0..=len as u32 {
            let x = per_cell.get(i, j);
            let y = tiled.get(i, j);
            assert_eq!(x, y, "cell ({i},{j}) diverged");
            best = best.max(x.h);
        }
    }

    let cell_report = per_cell.report();
    let tile_report = tiled.tiles().report();
    println!("aligned two {len}-base sequences; best local score {best}");
    println!(
        "per-cell: {:>7} scheduled vertices, {:>6} messages, {:?}",
        cell_report.vertices_total, cell_report.comm.messages_sent, per_cell_time
    );
    println!(
        "tiled {tile}x{tile}: {:>5} scheduled vertices, {:>6} messages, {:?}",
        tile_report.vertices_total, tile_report.comm.messages_sent, tiled_time
    );
    println!(
        "speedup from tiling on this host: {:.1}x",
        per_cell_time.as_secs_f64() / tiled_time.as_secs_f64()
    );
}

//! Extension demo: 2D/1D recurrences (paper §III) on the
//! interval-with-splits pattern — Nussinov RNA folding and matrix-chain
//! multiplication — plus the banded-alignment extension pattern.
//!
//! The paper notes DPX10 "can also express the type of 2D/iD (i >= 1),
//! nonetheless, the performance is less than satisfactory"; this example
//! runs two real 2D/1D applications and prints the per-vertex cost gap
//! against a 2D/0D grid app measured on the simulated cluster.
//!
//! ```text
//! cargo run --release -p dpx10 --example rna_folding
//! ```

use dpx10::apps::{workload, EditDistanceApp, MatrixChainApp, NussinovApp};
use dpx10::prelude::*;

fn main() {
    // Nussinov RNA folding on a random RNA string.
    let rna: Vec<u8> = workload::dna(60, 9)
        .into_iter()
        .map(|c| if c == b'T' { b'U' } else { c })
        .collect();
    let app = NussinovApp::new(rna.clone());
    let pattern = app.pattern();
    let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(3))
        .run()
        .expect("folding completes");
    let helper = NussinovApp::new(rna.clone());
    println!(
        "Nussinov: {} bases fold into {} base pairs (interval-splits pattern, {} vertices)",
        rna.len(),
        helper.answer(&result),
        result.report().vertices_total,
    );

    // Matrix-chain multiplication: the CLRS instance.
    let dims = vec![30u64, 35, 15, 5, 10, 20, 25];
    let app = MatrixChainApp::new(dims.clone());
    let pattern = app.pattern();
    let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
        .run()
        .expect("chain completes");
    let helper = MatrixChainApp::new(dims);
    println!(
        "matrix chain: optimal cost {} scalar multiplications (expected 15125)",
        helper.answer(&result)
    );
    assert_eq!(helper.answer(&result), 15125);

    // The §III caveat, measured: per-vertex makespan of a 2D/1D run vs a
    // 2D/0D run of the same vertex count on the simulated cluster.
    use dpx10::core::{DepView, DpApp};
    #[derive(Clone)]
    struct Sum;
    impl DpApp for Sum {
        type Value = u64;
        fn compute(&self, _id: VertexId, deps: &DepView<'_, u64>) -> u64 {
            deps.values().iter().sum::<u64>() + 1
        }
    }
    let n = 96u32;
    let grid = SimEngine::new(Sum, Grid3::new(n, n), SimConfig::paper(4))
        .run()
        .unwrap();
    let heavy = SimEngine::new(Sum, FullPrevRowCol::new(n, n), SimConfig::paper(4))
        .run()
        .unwrap();
    let per = |r: &dpx10::core::DagResult<u64>| {
        r.report().sim_time.as_nanos() as f64 / r.report().vertices_total as f64
    };
    println!(
        "2D/0D grid3: {:.0} ns/vertex of makespan; 2D/1D full-prev-row-col: {:.0} ns/vertex \
         — the paper's \"less than satisfactory\" caveat, quantified",
        per(&grid),
        per(&heavy)
    );

    // Banded alignment: the banded extension pattern computes the exact
    // edit distance at a fraction of the vertices.
    let a = workload::dna(120, 1);
    let mut b = a.clone();
    b[40] = if b[40] == b'A' { b'C' } else { b'A' }; // distance 1 (or 0 if unlucky — no: forced change)
    let full = dpx10::apps::serial::edit_distance(&a, &b);
    let app = dpx10::apps::BandedEditDistanceApp::new(a.clone(), b.clone(), 4);
    let pattern = app.pattern();
    let banded_vertices = dpx10::dag::DagPattern::vertex_count(&pattern);
    let result = ThreadedEngine::new(
        dpx10::apps::BandedEditDistanceApp::new(a, b, 4),
        pattern,
        EngineConfig::flat(2),
    )
    .run()
    .unwrap();
    println!(
        "banded edit distance: {} (= full DP's {}), using {} of {} cells",
        app.answer(&result),
        full,
        banded_vertices,
        121u64 * 121,
    );
    assert_eq!(app.answer(&result), full);

    // Edit distance itself, for the record.
    let app = EditDistanceApp::new(b"kitten".to_vec(), b"sitting".to_vec());
    let pattern = app.pattern();
    let result = ThreadedEngine::new(
        EditDistanceApp::new(b"kitten".to_vec(), b"sitting".to_vec()),
        pattern,
        EngineConfig::flat(2),
    )
    .run()
    .unwrap();
    println!("edit distance kitten -> sitting: {}", app.answer(&result));
    assert_eq!(app.answer(&result), 3);
}

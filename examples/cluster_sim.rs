//! Cluster-scale scalability on the simulator: a miniature of the
//! paper's Fig. 10, sweeping 2 → 12 nodes for all four evaluation apps.
//!
//! ```text
//! cargo run --release -p dpx10 --example cluster_sim [vertices]
//! ```

use std::time::Duration;

use dpx10::apps::{workload, KnapsackApp, LpsApp, MtpApp, SwlagApp};
use dpx10::prelude::*;

fn main() {
    let vertices: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250_000);
    let nodes = [2u16, 4, 6, 8, 10, 12];

    println!("simulated runtime (virtual seconds) at ~{vertices} vertices:");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10}",
        "nodes", "SWLAG", "MTP", "LPS", "0/1KP"
    );

    let mut first: Option<[Duration; 4]> = None;
    for &n in &nodes {
        let row = [
            swlag_time(vertices, n),
            mtp_time(vertices, n),
            lps_time(vertices, n),
            knapsack_time(vertices, n),
        ];
        first.get_or_insert(row);
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            n,
            row[0].as_secs_f64(),
            row[1].as_secs_f64(),
            row[2].as_secs_f64(),
            row[3].as_secs_f64()
        );
    }
    if let Some(base) = first {
        println!("\nspeedup at 12 nodes over 2 nodes:");
        let last = [
            swlag_time(vertices, 12),
            mtp_time(vertices, 12),
            lps_time(vertices, 12),
            knapsack_time(vertices, 12),
        ];
        for (name, (b, l)) in ["SWLAG", "MTP", "LPS", "0/1KP"]
            .iter()
            .zip(base.iter().zip(last.iter()))
        {
            println!("  {name}: {:.2}x", b.as_secs_f64() / l.as_secs_f64());
        }
    }
}

fn swlag_time(vertices: u64, nodes: u16) -> Duration {
    let n = workload::side_for_vertices(vertices) as usize;
    let app = SwlagApp::new(workload::dna(n, 1), workload::dna(n, 2));
    let pattern = app.pattern();
    let cfg = SimConfig::paper(nodes).with_cost(CostModel::with_compute(90));
    SimEngine::new(app, pattern, cfg)
        .run()
        .unwrap()
        .report()
        .sim_time
}

fn mtp_time(vertices: u64, nodes: u16) -> Duration {
    let n = workload::side_for_vertices(vertices) + 1;
    let app = MtpApp::new(n, n, 42);
    let pattern = app.pattern();
    SimEngine::new(app, pattern, SimConfig::paper(nodes))
        .run()
        .unwrap()
        .report()
        .sim_time
}

fn lps_time(vertices: u64, nodes: u16) -> Duration {
    // Triangular matrix: n(n+1)/2 ≈ vertices.
    let n = ((vertices as f64 * 2.0).sqrt() as usize).max(2);
    let app = LpsApp::new(workload::letters(n, 3));
    let pattern = app.pattern();
    SimEngine::new(app, pattern, SimConfig::paper(nodes))
        .run()
        .unwrap()
        .report()
        .sim_time
}

fn knapsack_time(vertices: u64, nodes: u16) -> Duration {
    let capacity = 999;
    let items = workload::knapsack_items(
        workload::knapsack_shape_for_vertices(vertices, capacity),
        64,
        4,
    );
    let app = KnapsackApp::new(items, capacity);
    let pattern = app.pattern();
    SimEngine::new(
        app,
        pattern,
        SimConfig::paper(nodes).with_dist(DistKind::BlockRow),
    )
    .run()
    .unwrap()
    .report()
    .sim_time
}

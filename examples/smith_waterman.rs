//! Smith-Waterman with linear and affine gap penalty (SWLAG) — the
//! paper's §VII-A demo and headline evaluation app — run both on the
//! real threaded engine and on the simulated cluster.
//!
//! ```text
//! cargo run --release -p dpx10 --example smith_waterman [seq_len]
//! ```

use dpx10::apps::{workload, SwlagApp};
use dpx10::prelude::*;

fn main() {
    let len: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);

    let a = workload::dna(len, 1);
    let b = workload::dna(len, 2);
    println!("aligning two random DNA sequences of length {len}…");

    // Real threaded run on 4 places.
    let app = SwlagApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(4))
        .run()
        .expect("alignment completes");
    let best = {
        let mut best = 0;
        for i in 0..=len as u32 {
            for j in 0..=len as u32 {
                best = best.max(result.get(i, j).h);
            }
        }
        best
    };
    let rep = result.report();
    println!(
        "threaded: best local-alignment score {best}; {} vertices in {:?}, \
         {} messages, cache hit rate {:?}",
        rep.vertices_computed,
        rep.wall_time,
        rep.comm.messages_sent,
        rep.comm
            .cache_hit_rate()
            .map(|r| format!("{:.1}%", r * 100.0)),
    );

    // The same computation on a simulated 4-node paper cluster
    // (8 places × 6 workers, InfiniBand-like network).
    let app = SwlagApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let sim = SimEngine::new(
        app,
        pattern,
        SimConfig::paper(4).with_cost(CostModel::with_compute(90)),
    )
    .run()
    .expect("simulation completes");
    let sim_best = {
        let mut best = 0;
        for i in 0..=len as u32 {
            for j in 0..=len as u32 {
                best = best.max(sim.get(i, j).h);
            }
        }
        best
    };
    assert_eq!(best, sim_best, "both engines agree");
    println!(
        "simulated 4-node cluster: same score {sim_best}; virtual makespan {:?}",
        sim.report().sim_time
    );
}

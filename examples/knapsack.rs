//! 0/1 Knapsack — the paper's §VII-B custom-DAG-pattern tutorial.
//!
//! The point of this example is the *pattern*: knapsack's dependency
//! edges are data-dependent (the "take" parent sits `w_i` columns away),
//! so it cannot be a fixed built-in; `KnapsackDag` implements
//! `DagPattern` by hand exactly like the paper's Fig. 9 subclassing.
//!
//! ```text
//! cargo run --release -p dpx10 --example knapsack
//! ```

use dpx10::apps::knapsack::{Item, KnapsackApp};
use dpx10::prelude::*;

fn main() {
    let items = vec![
        Item {
            weight: 1,
            value: 1,
        },
        Item {
            weight: 3,
            value: 4,
        },
        Item {
            weight: 4,
            value: 5,
        },
        Item {
            weight: 5,
            value: 7,
        },
        Item {
            weight: 2,
            value: 3,
        },
    ];
    let capacity = 9;

    let app = KnapsackApp::new(items.clone(), capacity);
    // Custom pattern (paper Fig. 8/9): validate it before running, as
    // every custom pattern author should.
    let pattern = app.pattern();
    dpx10::dag::validate_pattern(&pattern).expect("custom pattern obeys the contract");

    // Knapsack rows only depend on the previous row, so distribute by
    // row to keep the "skip" edge local (§VI-E, Distribution of DAG).
    let result = ThreadedEngine::new(
        app,
        pattern,
        EngineConfig::flat(3).with_dist(DistKind::BlockRow),
    )
    .run()
    .expect("knapsack completes");

    let n = items.len() as u32;
    let best = result.get(n, capacity);
    println!("capacity {capacity}, best value {best}");

    // Backtrack the chosen items from the finished matrix.
    let mut chosen = Vec::new();
    let (mut i, mut j) = (n, capacity);
    while i > 0 {
        let here = result.get(i, j);
        let skip = result.get(i - 1, j);
        if here != skip {
            let item = items[(i - 1) as usize];
            chosen.push(i);
            j -= item.weight;
        }
        i -= 1;
    }
    chosen.reverse();
    println!("chosen items (1-based): {chosen:?}");

    let total_v: u64 = chosen.iter().map(|&k| items[(k - 1) as usize].value).sum();
    let total_w: u32 = chosen.iter().map(|&k| items[(k - 1) as usize].weight).sum();
    println!("check: total value {total_v}, total weight {total_w} <= {capacity}");
    assert_eq!(total_v, best);
    assert!(total_w <= capacity);
    assert_eq!(best, 12); // e.g. items (w5,v7) + (w3,v4) + (w1,v1) = weight 9, value 12
}

//! Quickstart: the paper's §IV walk-through (Fig. 1).
//!
//! Given `ABC` and `DBC`, build the LCS DAG, run it on the framework and
//! backtrack the answer (`BC`). Run with:
//!
//! ```text
//! cargo run --release -p dpx10 --example quickstart
//! ```

use dpx10::apps::LcsApp;
use dpx10::prelude::*;

fn main() {
    let a = b"ABC".to_vec();
    let b = b"DBC".to_vec();

    // Step 1 (paper §VII): choose a built-in DAG pattern — LCS uses
    // Fig. 5 (b), provided by the app.
    let app = LcsApp::new(a.clone(), b.clone());
    let pattern = app.pattern();

    // Step 2: the app implements compute(); LcsApp ships it.
    // Step 3: launch. Four places, like a 2-node paper deployment.
    let engine = ThreadedEngine::new(
        LcsApp::new(a.clone(), b.clone()),
        pattern,
        EngineConfig::flat(4),
    );
    let result = engine.run().expect("LCS completes");

    println!("LCS matrix for {:?} vs {:?}:", "ABC", "DBC");
    for i in 0..=a.len() as u32 {
        let row: Vec<u32> = (0..=b.len() as u32).map(|j| result.get(i, j)).collect();
        println!("  {row:?}");
    }

    let helper = LcsApp::new(a, b);
    let answer = helper.backtrack(&result);
    println!(
        "LCS = {:?} (length {})",
        String::from_utf8_lossy(&answer),
        helper.length(&result)
    );

    let report = result.report();
    println!(
        "computed {} vertices on {} places in {:?} ({} messages, {} bytes)",
        report.vertices_computed,
        4,
        report.wall_time,
        report.comm.messages_sent,
        report.comm.bytes_sent,
    );

    assert_eq!(answer, b"BC");
}

//! Concurrency stress: repeated threaded runs with multiple worker
//! threads per place, adversarial configurations and live faults, to
//! shake out races in the ready-list / cache / pull / publish paths.

use dpx10::apps::{serial, workload, SwLinearApp};
use dpx10::prelude::*;

#[test]
fn repeated_multithreaded_runs_are_all_correct() {
    let a = workload::dna(64, 71);
    let b = workload::dna(64, 72);
    let scoring = SwLinearApp::new(a.clone(), b.clone()).scoring;
    let expect = serial::smith_waterman_linear(&a, &b, &scoring);
    for round in 0..8 {
        let mut config = EngineConfig::flat(3)
            .with_dist(if round % 2 == 0 {
                DistKind::CyclicCol
            } else {
                DistKind::BlockRow
            })
            .with_cache(if round % 3 == 0 { 0 } else { 64 });
        config.topology.threads_per_place = 3;
        let app = SwLinearApp::new(a.clone(), b.clone());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(app, pattern, config)
            .run()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        for i in (0..=64u32).step_by(9) {
            for j in (0..=64u32).step_by(7) {
                assert_eq!(
                    result.get(i, j),
                    expect[i as usize][j as usize],
                    "round {round} cell ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn repeated_faulted_runs_under_contention() {
    let a = workload::dna(48, 81);
    let b = workload::dna(48, 82);
    let scoring = SwLinearApp::new(a.clone(), b.clone()).scoring;
    let expect = serial::smith_waterman_linear(&a, &b, &scoring);
    for round in 0..6u32 {
        let mut config = EngineConfig::flat(4)
            .with_dist(DistKind::BlockCol)
            .with_fault(FaultPlan {
                place: PlaceId(1 + (round % 3) as u16),
                after_fraction: 0.15 + 0.12 * round as f64,
            });
        config.topology.threads_per_place = 2;
        let app = SwLinearApp::new(a.clone(), b.clone());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(app, pattern, config)
            .run()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(result.report().epochs >= 2, "round {round}");
        assert_eq!(
            result.get(48, 48),
            expect[48][48],
            "round {round} final cell"
        );
    }
}

#[test]
fn mixed_strategies_under_contention() {
    let a = workload::dna(40, 91);
    let b = workload::dna(40, 92);
    let scoring = SwLinearApp::new(a.clone(), b.clone()).scoring;
    let expect = serial::smith_waterman_linear(&a, &b, &scoring);
    for strat in ScheduleStrategy::ALL {
        let mut config = EngineConfig::flat(3).with_schedule(strat).with_cache(4);
        config.topology.threads_per_place = 2;
        let app = SwLinearApp::new(a.clone(), b.clone());
        let pattern = app.pattern();
        let result = ThreadedEngine::new(app, pattern, config)
            .run()
            .unwrap_or_else(|e| panic!("{strat:?}: {e}"));
        assert_eq!(result.get(40, 40), expect[40][40], "{strat:?}");
    }
}

//! Tests of the §VI-E refinements as *behaviours*, not just knobs:
//! distribution changes communication, cache size changes hit rates,
//! min-comm scheduling never moves more bytes than random, the restore
//! manner trades recomputation for migration, and the init override
//! skips work.

use std::sync::Arc;

use dpx10::apps::{workload, MtpApp, SwLinearApp};
use dpx10::prelude::*;

#[test]
fn distribution_controls_communication() {
    // ColWave chains run down columns: a column-block distribution keeps
    // every edge local; a row-block distribution makes every edge cross
    // places (§VI-E "realize a better locality").
    #[derive(Clone)]
    struct Chain;
    impl DpApp for Chain {
        type Value = u64;
        fn compute(&self, id: VertexId, deps: &dpx10::core::DepView<'_, u64>) -> u64 {
            deps.values().first().copied().unwrap_or(id.j as u64) + 1
        }
    }
    let run = |kind: DistKind| {
        SimEngine::new(
            Chain,
            ColWave::new(24, 24),
            SimConfig::flat(4).with_dist(kind),
        )
        .run()
        .unwrap()
        .report()
        .comm
    };
    let col_blocked = run(DistKind::BlockCol);
    let row_blocked = run(DistKind::BlockRow);
    assert_eq!(
        col_blocked.messages_sent, 0,
        "column blocks keep chains local"
    );
    assert!(row_blocked.messages_sent > 0, "row blocks cut every chain");
}

#[test]
fn bigger_cache_means_fewer_pulls() {
    let run = |cache: usize| {
        let app = SwLinearApp::new(workload::dna(64, 1), workload::dna(64, 2));
        let pattern = app.pattern();
        SimEngine::new(
            app,
            pattern,
            SimConfig::flat(4)
                .with_dist(DistKind::CyclicCol)
                .with_cache(cache),
        )
        .run()
        .unwrap()
        .report()
        .comm
    };
    let tiny = run(1);
    let big = run(4096);
    assert!(
        big.cache_misses < tiny.cache_misses,
        "misses: big {} < tiny {}",
        big.cache_misses,
        tiny.cache_misses
    );
    assert!(big.cache_hits > 0);
}

#[test]
fn min_comm_never_moves_more_bytes_than_random() {
    let run = |sched: ScheduleStrategy| {
        let app = MtpApp::new(30, 30, 5);
        let pattern = app.pattern();
        SimEngine::new(app, pattern, SimConfig::flat(4).with_schedule(sched))
            .run()
            .unwrap()
            .report()
            .comm
    };
    let min_comm = run(ScheduleStrategy::MinComm);
    let random = run(ScheduleStrategy::Random);
    assert!(
        min_comm.bytes_sent <= random.bytes_sent,
        "min-comm {} bytes vs random {} bytes",
        min_comm.bytes_sent,
        random.bytes_sent
    );
}

#[test]
fn local_scheduling_is_the_cheapest_in_messages() {
    let run = |sched: ScheduleStrategy| {
        let app = MtpApp::new(24, 24, 5);
        let pattern = app.pattern();
        SimEngine::new(app, pattern, SimConfig::flat(3).with_schedule(sched))
            .run()
            .unwrap()
            .report()
            .comm
            .messages_sent
    };
    let local = run(ScheduleStrategy::Local);
    let random = run(ScheduleStrategy::Random);
    assert!(local <= random, "local {local} vs random {random}");
}

#[test]
fn init_override_skips_prefinished_work() {
    #[derive(Clone)]
    struct Sum;
    impl DpApp for Sum {
        type Value = u64;
        fn compute(&self, _id: VertexId, deps: &dpx10::core::DepView<'_, u64>) -> u64 {
            deps.values().iter().sum::<u64>() + 1
        }
    }
    // Pre-finish the top half of a column-wave: only the bottom half
    // computes.
    let init: dpx10::core::InitOverride<u64> = Arc::new(|i, _j| (i < 8).then_some(100));
    let result = SimEngine::new(Sum, ColWave::new(16, 4), SimConfig::flat(2))
        .with_init(init)
        .run()
        .unwrap();
    assert_eq!(result.report().vertices_computed, 8 * 4);
    assert_eq!(result.get(7, 0), 100);
    assert_eq!(result.get(8, 0), 101);
    assert_eq!(result.get(15, 3), 108);
}

#[test]
fn spill_store_round_trips_engine_results() {
    // Future-work extension (§X): spill finished values to disk and
    // replay them as an init override — a free local snapshot.
    use dpx10::core::spill::SpillStore;

    let app = MtpApp::new(10, 10, 11);
    let pattern = app.pattern();
    let result = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
        .run()
        .unwrap();

    let mut path = std::env::temp_dir();
    path.push(format!("dpx10-refine-spill-{}.bin", std::process::id()));
    let mut store: SpillStore<i64> = SpillStore::create(&path).unwrap();
    for i in 0..10u32 {
        for j in 0..10u32 {
            store.spill(VertexId::new(i, j), &result.get(i, j)).unwrap();
        }
    }
    let replayed = store.replay().unwrap();
    assert_eq!(replayed.len(), 100);

    // Replay as init override: the engine should compute nothing.
    let fills: std::collections::HashMap<u64, i64> =
        replayed.into_iter().map(|(id, v)| (id.pack(), v)).collect();
    let init: dpx10::core::InitOverride<i64> =
        Arc::new(move |i, j| fills.get(&VertexId::new(i, j).pack()).copied());
    let app = MtpApp::new(10, 10, 11);
    let pattern = app.pattern();
    let resumed = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
        .with_init(init)
        .run()
        .unwrap();
    assert_eq!(resumed.report().vertices_computed, 0);
    assert_eq!(resumed.get(9, 9), result.get(9, 9));
    std::fs::remove_file(&path).ok();
}

#[test]
fn work_stealing_rebalances_a_skewed_distribution() {
    // Put almost everything on place 0; stealing lets the other places
    // help. (Threaded engine: stealing is a real code path there.)
    let skewed = DistKind::Custom(Arc::new(|i, _j| usize::from(i == 0)));
    let app = MtpApp::new(24, 24, 13);
    let pattern = app.pattern();
    let expect = dpx10::apps::serial::manhattan_tourist(24, 24, 13);
    let result = ThreadedEngine::new(
        app,
        pattern,
        EngineConfig::flat(2)
            .with_dist(skewed)
            .with_schedule(ScheduleStrategy::WorkStealing),
    )
    .run()
    .unwrap();
    for i in 0..24 {
        for j in 0..24 {
            assert_eq!(result.get(i, j), expect[i as usize][j as usize]);
        }
    }
}

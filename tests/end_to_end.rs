//! Cross-crate end-to-end tests: every evaluation application, run on
//! both engines, checked against its serial oracle, with the two
//! engines' results also checked against each other.

use dpx10::apps::{
    knapsack::Item, serial, workload, KnapsackApp, LcsApp, LpsApp, MtpApp, SwlagApp,
};
use dpx10::prelude::*;

#[test]
fn swlag_threaded_and_sim_match_oracle() {
    let a = workload::dna(60, 21);
    let b = workload::dna(48, 22);
    let scoring = SwlagApp::new(a.clone(), b.clone()).scoring;
    let expect = serial::smith_waterman_affine(&a, &b, &scoring);

    let app = SwlagApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let threaded = ThreadedEngine::new(app, pattern, EngineConfig::flat(3))
        .run()
        .unwrap();

    let app = SwlagApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let simulated = SimEngine::new(app, pattern, SimConfig::paper(2))
        .run()
        .unwrap();

    for i in 0..=a.len() as u32 {
        for j in 0..=b.len() as u32 {
            let e = expect[i as usize][j as usize];
            assert_eq!(threaded.get(i, j).h, e, "threaded H[{i}][{j}]");
            assert_eq!(simulated.get(i, j).h, e, "sim H[{i}][{j}]");
            assert_eq!(threaded.get(i, j), simulated.get(i, j), "engines agree");
        }
    }
}

#[test]
fn mtp_both_engines_match_oracle() {
    let (h, w, seed) = (25u32, 31u32, 99u64);
    let expect = serial::manhattan_tourist(h, w, seed);
    let threaded = ThreadedEngine::new(
        MtpApp::new(h, w, seed),
        MtpApp::new(h, w, seed).pattern(),
        EngineConfig::flat(4).with_dist(DistKind::BlockCol),
    )
    .run()
    .unwrap();
    let simulated = SimEngine::new(
        MtpApp::new(h, w, seed),
        MtpApp::new(h, w, seed).pattern(),
        SimConfig::flat(4).with_dist(DistKind::BlockRow),
    )
    .run()
    .unwrap();
    for i in 0..h {
        for j in 0..w {
            assert_eq!(threaded.get(i, j), expect[i as usize][j as usize]);
            assert_eq!(simulated.get(i, j), expect[i as usize][j as usize]);
        }
    }
}

#[test]
fn lps_both_engines_match_oracle() {
    let text = workload::letters(40, 5);
    let expect = serial::lps(&text);
    let n = text.len() as u32;

    let threaded = ThreadedEngine::new(
        LpsApp::new(text.clone()),
        LpsApp::new(text.clone()).pattern(),
        EngineConfig::flat(3),
    )
    .run()
    .unwrap();
    assert_eq!(threaded.get(0, n - 1), expect);

    let simulated = SimEngine::new(
        LpsApp::new(text.clone()),
        LpsApp::new(text.clone()).pattern(),
        SimConfig::paper(2),
    )
    .run()
    .unwrap();
    assert_eq!(simulated.get(0, n - 1), expect);
}

#[test]
fn knapsack_both_engines_match_oracle() {
    let items = workload::knapsack_items(30, 12, 77);
    let capacity = 60;
    let expect = serial::knapsack(&items, capacity);
    let n = items.len() as u32;

    let threaded = ThreadedEngine::new(
        KnapsackApp::new(items.clone(), capacity),
        KnapsackApp::new(items.clone(), capacity).pattern(),
        EngineConfig::flat(3).with_dist(DistKind::BlockRow),
    )
    .run()
    .unwrap();
    assert_eq!(threaded.get(n, capacity), expect);

    let simulated = SimEngine::new(
        KnapsackApp::new(items.clone(), capacity),
        KnapsackApp::new(items.clone(), capacity).pattern(),
        SimConfig::paper(2).with_dist(DistKind::BlockRow),
    )
    .run()
    .unwrap();
    assert_eq!(simulated.get(n, capacity), expect);
}

#[test]
fn lcs_paper_walkthrough_end_to_end() {
    let app = LcsApp::new(b"ABC".to_vec(), b"DBC".to_vec());
    let pattern = app.pattern();
    let result = ThreadedEngine::new(
        LcsApp::new(b"ABC".to_vec(), b"DBC".to_vec()),
        pattern,
        EngineConfig::flat(2),
    )
    .run()
    .unwrap();
    assert_eq!(app.length(&result), 2);
    assert_eq!(app.backtrack(&result), b"BC");
}

#[test]
fn native_baseline_agrees_with_framework() {
    let a = workload::dna(80, 31);
    let b = workload::dna(70, 32);
    let native = dpx10::baseline::NativeSwlag::new(a.clone(), b.clone(), 4).run();
    let app = SwlagApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let fw = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
        .run()
        .unwrap();
    for i in 0..=a.len() as u32 {
        for j in 0..=b.len() as u32 {
            assert_eq!(fw.get(i, j).h, native[i as usize][j as usize]);
        }
    }
}

#[test]
fn knapsack_small_codebase_claim() {
    // Paper §I claims some DP algorithms need fewer lines than their
    // serial version; at minimum, the framework answer equals the serial
    // one on a batch of random instances.
    for seed in 0..5u64 {
        let items = workload::knapsack_items(12, 8, seed);
        let capacity = 25;
        let expect = serial::knapsack(&items, capacity);
        let app = KnapsackApp::new(items.clone(), capacity);
        let pattern = app.pattern();
        let got = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
            .run()
            .unwrap()
            .get(items.len() as u32, capacity);
        assert_eq!(got, expect, "seed {seed}");
    }
}

#[test]
fn item_type_is_plain_data() {
    let it = Item {
        weight: 3,
        value: 9,
    };
    assert_eq!(it, it);
}

#[test]
fn extension_apps_run_on_the_simulator_too() {
    use dpx10::apps::{serial, MatrixChainApp, NeedlemanWunschApp, NussinovApp};

    // Nussinov on the simulated cluster (2D/1D pattern).
    let seq = b"GGGAAAUCCACUCGAUU".to_vec();
    let app = NussinovApp::new(seq.clone());
    let pattern = app.pattern();
    let result = SimEngine::new(app, pattern, SimConfig::paper(2))
        .run()
        .unwrap();
    let helper = NussinovApp::new(seq.clone());
    assert_eq!(helper.answer(&result), serial::nussinov(&seq));

    // Matrix chain on the simulated cluster.
    let dims = vec![30u64, 35, 15, 5, 10, 20, 25];
    let app = MatrixChainApp::new(dims.clone());
    let pattern = app.pattern();
    let result = SimEngine::new(app, pattern, SimConfig::flat(3))
        .run()
        .unwrap();
    assert_eq!(MatrixChainApp::new(dims).answer(&result), 15125);

    // Needleman-Wunsch on the simulated cluster.
    let (a, b) = (b"GATTACA".to_vec(), b"GCATGCU".to_vec());
    let app = NeedlemanWunschApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let result = SimEngine::new(app, pattern, SimConfig::flat(2))
        .run()
        .unwrap();
    assert_eq!(
        NeedlemanWunschApp::new(a.clone(), b.clone()).answer(&result),
        serial::needleman_wunsch(&a, &b, 1, -1, -1)
    );
}

#[test]
fn tiled_swlag_equals_per_cell_swlag_end_to_end() {
    use dpx10::apps::{workload, SwlagApp};
    use dpx10::core::tiled::run_tiled_threaded;

    let a = workload::dna(50, 61);
    let b = workload::dna(50, 62);
    let app = SwlagApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let per_cell = ThreadedEngine::new(app, pattern, EngineConfig::flat(2))
        .run()
        .unwrap();
    let app = SwlagApp::new(a.clone(), b.clone());
    let geometry = app.pattern();
    let tiled = run_tiled_threaded(app, geometry, 8, EngineConfig::flat(2)).unwrap();
    for i in 0..=50u32 {
        for j in 0..=50u32 {
            assert_eq!(per_cell.get(i, j), tiled.get(i, j));
        }
    }
}

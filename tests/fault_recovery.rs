//! Fault-tolerance integration tests across crates: failures injected
//! into real applications on both engines, under both restore manners,
//! at several fault points — results must always equal the fault-free
//! oracle, and the recovery accounting must be coherent.

use dpx10::apps::{serial, workload, MtpApp, SwLinearApp};
use dpx10::prelude::*;

#[test]
fn threaded_swlag_survives_fault_at_various_points() {
    let a = workload::dna(80, 41);
    let b = workload::dna(80, 42);
    let scoring = SwLinearApp::new(a.clone(), b.clone()).scoring;
    let expect = serial::smith_waterman_linear(&a, &b, &scoring);

    for fraction in [0.2, 0.5, 0.8] {
        let app = SwLinearApp::new(a.clone(), b.clone());
        let pattern = app.pattern();
        let config = EngineConfig::flat(4)
            .with_dist(DistKind::BlockRow)
            .with_fault(FaultPlan {
                place: PlaceId(2),
                after_fraction: fraction,
            });
        let result = ThreadedEngine::new(app, pattern, config)
            .run()
            .unwrap_or_else(|e| panic!("fault at {fraction}: {e}"));
        assert!(result.report().epochs >= 2, "fault at {fraction}");
        for i in (0..=a.len() as u32).step_by(7) {
            for j in (0..=b.len() as u32).step_by(5) {
                assert_eq!(result.get(i, j), expect[i as usize][j as usize]);
            }
        }
    }
}

#[test]
fn sim_mtp_survives_fault_under_both_restore_manners() {
    let (h, w, seed) = (60u32, 60u32, 7u64);
    let expect = serial::manhattan_tourist(h, w, seed);
    for manner in [RestoreManner::RecomputeRemote, RestoreManner::CopyRemote] {
        let result = SimEngine::new(
            MtpApp::new(h, w, seed),
            MtpApp::new(h, w, seed).pattern(),
            SimConfig::paper(2)
                .with_restore(manner)
                .with_fault(SimFaultPlan::mid_run(PlaceId(3))),
        )
        .run()
        .unwrap();
        assert_eq!(
            result.get(h - 1, w - 1),
            expect[(h - 1) as usize][(w - 1) as usize]
        );
        let rec = &result.report().recoveries[0];
        match manner {
            RestoreManner::RecomputeRemote => assert_eq!(rec.migrated, 0),
            RestoreManner::CopyRemote => assert_eq!(rec.dropped, 0),
        }
    }
}

#[test]
fn recovery_accounting_is_coherent() {
    let result = SimEngine::new(
        MtpApp::new(50, 50, 9),
        MtpApp::new(50, 50, 9).pattern(),
        SimConfig::flat(5).with_fault(SimFaultPlan::mid_run(PlaceId(4))),
    )
    .run()
    .unwrap();
    let report = result.report();
    assert_eq!(report.epochs, 2);
    let rec = &report.recoveries[0];
    // Everything finished at fault time is kept, dropped or lost.
    let at_fault = rec.kept + rec.dropped + rec.lost + rec.migrated;
    assert!(at_fault > 0, "fault fired mid-run");
    assert!(at_fault <= report.vertices_total);
    // The dropped and lost vertices are computed twice; additionally,
    // any vertex in flight on a worker when the fault fired was computed
    // without being published, so the overshoot is bounded by the
    // cluster's worker-slot count (5 places × 1 thread here).
    let floor = report.vertices_total + rec.dropped + rec.lost;
    let slots = 5;
    assert!(
        (floor..=floor + slots).contains(&report.vertices_computed),
        "computed {} outside [{floor}, {}]",
        report.vertices_computed,
        floor + slots
    );
    assert!(report.recovery_time > std::time::Duration::ZERO);
}

#[test]
fn copy_remote_recomputes_less_than_recompute_remote() {
    let run = |manner| {
        SimEngine::new(
            MtpApp::new(64, 64, 3),
            MtpApp::new(64, 64, 3).pattern(),
            SimConfig::flat(4)
                .with_dist(DistKind::BlockRow)
                .with_restore(manner)
                .with_fault(SimFaultPlan::mid_run(PlaceId(2))),
        )
        .run()
        .unwrap()
        .report()
        .clone()
    };
    let recompute = run(RestoreManner::RecomputeRemote);
    let copy = run(RestoreManner::CopyRemote);
    assert!(
        copy.vertices_computed <= recompute.vertices_computed,
        "copying finished work can only reduce recomputation: {} vs {}",
        copy.vertices_computed,
        recompute.vertices_computed
    );
    assert!(copy.recoveries[0].bytes_migrated > 0);
}

#[test]
fn snapshot_baseline_loses_more_work_than_new_recovery() {
    // The paper's §VI-D argument, quantified: with X10's periodic
    // snapshots, everything since the last snapshot is lost; with the
    // paper's method, only the dead place's (and moved) vertices are.
    use dpx10::distarray::{Dist, DistKind as DK, Region2D, ResilientDistArray};
    use std::sync::Arc;

    let places: Vec<PlaceId> = (0..4).map(PlaceId).collect();
    let dist = Arc::new(Dist::new(Region2D::new(16, 16), DK::BlockRow, places));
    let topo = Topology::flat(4);
    let net = NetworkModel::tianhe_like();

    let mut snap_array: ResilientDistArray<i64> = ResilientDistArray::new(dist.clone());
    // Snapshot at 25 % progress...
    for i in 0..4u32 {
        for j in 0..16u32 {
            snap_array.array_mut().set(i, j, 1);
        }
    }
    snap_array.snapshot(&topo, &net);
    // ...then run to 75 % before the failure.
    for i in 4..12u32 {
        for j in 0..16u32 {
            snap_array.array_mut().set(i, j, 1);
        }
    }
    let survivors_after_snapshot = snap_array.restore(&[PlaceId(3)], &topo, &net).values;

    // The paper's method at the same 75 % point.
    let mut live: dpx10::distarray::DistArray<i64> = dpx10::distarray::DistArray::new(dist.clone());
    for i in 0..12u32 {
        for j in 0..16u32 {
            live.set(i, j, 1);
        }
    }
    let (_, rec) = dpx10::distarray::recover(
        &live,
        &[PlaceId(3)],
        RestoreManner::RecomputeRemote,
        &topo,
        &net,
        &dpx10::distarray::RecoveryCostModel::default(),
    );

    assert!(
        rec.kept > survivors_after_snapshot,
        "new recovery keeps {} vs snapshot's {}",
        rec.kept,
        survivors_after_snapshot
    );
}

//! Property-based differential testing: for random patterns, sizes,
//! distributions, schedulers, cache sizes and fault points, the threaded
//! engine, the simulator and a serial oracle must all agree on every
//! vertex value.

use dpx10::prelude::*;
use dpx10_dag::topological_order;
use proptest::prelude::*;

/// A mixing app whose output is sensitive to any mis-delivered value.
#[derive(Clone)]
struct MixApp;

impl DpApp for MixApp {
    type Value = u64;
    fn compute(&self, id: VertexId, deps: &dpx10::core::DepView<'_, u64>) -> u64 {
        let mut acc = 0x9E37_79B9_u64.wrapping_mul(id.pack() | 1).rotate_left(9);
        for (did, v) in deps.iter() {
            acc = acc
                .wrapping_add(v.rotate_left((did.j % 29) + 1))
                .wrapping_mul(0x100_0000_01B3);
        }
        acc
    }
}

fn oracle(pattern: &dyn DagPattern) -> std::collections::HashMap<VertexId, u64> {
    let order = topological_order(pattern).expect("acyclic");
    let mut out = std::collections::HashMap::new();
    let mut deps = Vec::new();
    for id in order {
        deps.clear();
        pattern.dependencies(id.i, id.j, &mut deps);
        let vals: Vec<u64> = deps.iter().map(|d| out[d]).collect();
        out.insert(
            id,
            MixApp.compute(id, &dpx10::core::DepView::new(&deps, &vals)),
        );
    }
    out
}

fn dist_kind(idx: usize) -> DistKind {
    match idx {
        0 => DistKind::BlockRow,
        1 => DistKind::BlockCol,
        2 => DistKind::CyclicRow,
        3 => DistKind::CyclicCol,
        4 => DistKind::BlockCyclicRow { block: 2 },
        _ => DistKind::BlockCyclicCol { block: 3 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Threaded engine == oracle for random configurations.
    #[test]
    fn threaded_matches_oracle(
        h in 2u32..14,
        w in 2u32..14,
        kind_idx in 0usize..8,
        dist_idx in 0usize..6,
        places in 1u16..5,
        cache in 0usize..32,
        sched_idx in 0usize..4,
    ) {
        let kind = BuiltinKind::ALL[kind_idx];
        let expect = oracle(kind.instantiate(h, w).as_ref());
        let config = EngineConfig::flat(places)
            .with_dist(dist_kind(dist_idx))
            .with_cache(cache)
            .with_schedule(ScheduleStrategy::ALL[sched_idx]);
        let result = ThreadedEngine::new(MixApp, kind.instantiate(h, w), config)
            .run()
            .expect("completes");
        for (id, v) in &expect {
            prop_assert_eq!(result.try_get(id.i, id.j), Some(*v), "{:?} at {}", kind, id);
        }
    }

    /// Simulator == oracle for random configurations.
    #[test]
    fn sim_matches_oracle(
        h in 2u32..14,
        w in 2u32..14,
        kind_idx in 0usize..8,
        dist_idx in 0usize..6,
        places in 1u16..6,
        cache in 0usize..32,
        sched_idx in 0usize..4,
    ) {
        let kind = BuiltinKind::ALL[kind_idx];
        let expect = oracle(kind.instantiate(h, w).as_ref());
        let config = SimConfig::flat(places)
            .with_dist(dist_kind(dist_idx))
            .with_cache(cache)
            .with_schedule(ScheduleStrategy::ALL[sched_idx]);
        let result = SimEngine::new(MixApp, kind.instantiate(h, w), config)
            .run()
            .expect("completes");
        for (id, v) in &expect {
            prop_assert_eq!(result.try_get(id.i, id.j), Some(*v), "{:?} at {}", kind, id);
        }
    }

    /// A mid-run fault never changes any result, under either restore
    /// manner, on either engine.
    #[test]
    fn fault_never_changes_results(
        h in 4u32..12,
        w in 4u32..12,
        kind_idx in 0usize..8,
        places in 3u16..6,
        victim in 1u16..3,
        fraction in 0.1f64..0.9,
        copy_remote in proptest::bool::ANY,
    ) {
        let kind = BuiltinKind::ALL[kind_idx];
        let expect = oracle(kind.instantiate(h, w).as_ref());
        let manner = if copy_remote { RestoreManner::CopyRemote } else { RestoreManner::RecomputeRemote };

        let sim = SimEngine::new(
            MixApp,
            kind.instantiate(h, w),
            SimConfig::flat(places)
                .with_restore(manner)
                .with_fault(SimFaultPlan { place: PlaceId(victim), after_fraction: fraction }),
        )
        .run()
        .expect("sim survives");
        for (id, v) in &expect {
            prop_assert_eq!(sim.try_get(id.i, id.j), Some(*v));
        }

        let threaded = ThreadedEngine::new(
            MixApp,
            kind.instantiate(h, w),
            EngineConfig::flat(places)
                .with_restore(manner)
                .with_fault(FaultPlan { place: PlaceId(victim), after_fraction: fraction }),
        )
        .run()
        .expect("threaded survives");
        for (id, v) in &expect {
            prop_assert_eq!(threaded.try_get(id.i, id.j), Some(*v));
        }
    }

    /// Knapsack (data-dependent pattern): engines == textbook DP.
    #[test]
    fn knapsack_differential(
        weights in proptest::collection::vec(1u32..9, 1..10),
        values in proptest::collection::vec(1u64..50, 10),
        capacity in 0u32..24,
        places in 1u16..4,
    ) {
        let items: Vec<dpx10::apps::knapsack::Item> = weights
            .iter()
            .zip(values.iter())
            .map(|(&w, &v)| dpx10::apps::knapsack::Item { weight: w, value: v })
            .collect();
        let expect = dpx10::apps::serial::knapsack(&items, capacity);
        let n = items.len() as u32;

        let app = dpx10::apps::KnapsackApp::new(items.clone(), capacity);
        let pattern = app.pattern();
        let got = ThreadedEngine::new(app, pattern, EngineConfig::flat(places).with_dist(DistKind::BlockRow))
            .run()
            .expect("completes")
            .get(n, capacity);
        prop_assert_eq!(got, expect);
    }
}

//! Differential determinism test: one pinned registry cell, run twice
//! in-process, must yield identical fingerprints and zero-tolerance-
//! identical deterministic KPIs (cells computed, recovery count — and
//! on the simulator also frames, bytes, and simulated makespan).

use std::path::Path;

use dpx10_bench::plan::{AblationPlan, Backend};
use dpx10_bench::runner;

fn pinned_plan() -> AblationPlan {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../plans/pinned-small.toml");
    let text = std::fs::read_to_string(&path).expect("pinned plan is committed");
    let plan = AblationPlan::parse(&text).expect("pinned plan parses");
    plan.validate().expect("pinned plan validates");
    plan
}

#[test]
fn pinned_sim_cell_is_bit_identical_twice() {
    let cells = pinned_plan().expand();
    let cell = cells
        .iter()
        .find(|c| c.backend == Backend::Sim)
        .expect("pinned plan has a sim cell");
    let (fp1, rep1) = runner::run_cell(cell).unwrap();
    let (fp2, rep2) = runner::run_cell(cell).unwrap();
    assert_eq!(fp1, fp2, "sim fingerprint must be deterministic");
    // On the simulator every KPI is deterministic, including traffic
    // and the virtual-clock makespan.
    assert_eq!(rep1.vertices_computed, rep2.vertices_computed);
    assert_eq!(rep1.recoveries.len(), rep2.recoveries.len());
    assert_eq!(rep1.comm.messages_sent, rep2.comm.messages_sent);
    assert_eq!(rep1.comm.bytes_sent, rep2.comm.bytes_sent);
    assert_eq!(rep1.sim_time, rep2.sim_time);
    assert_eq!(rep1.vertices_computed, cell.vertices);
}

#[test]
fn pinned_socket_cell_det_kpis_are_identical_twice() {
    let cells = pinned_plan().expand();
    let cell = cells
        .iter()
        .find(|c| c.backend == Backend::Sockets && c.coalesce.is_some())
        .expect("pinned plan has a coalesced sockets cell");
    let (fp1, rep1) = runner::run_cell(cell).unwrap();
    let (fp2, rep2) = runner::run_cell(cell).unwrap();
    assert_eq!(fp1, fp2, "socket-mesh fingerprint must be deterministic");
    let r1 = runner::record(cell, fp1, &rep1, "g", "h");
    let r2 = runner::record(cell, fp2, &rep2, "g", "h");
    // The registry's deterministic KPI floor: identical with zero
    // tolerance on every backend, real TCP mesh included.
    assert_eq!(r1.det_kpis(), r2.det_kpis());
    assert_eq!(r1.fingerprint, r2.fingerprint);
    assert_eq!(
        r1.prov, r2.prov,
        "provenance is a pure function of plan+cell+env"
    );
}

#[test]
fn backends_agree_on_the_pinned_workload() {
    // The same workload seed across sim and threads computes the same
    // DAG: fingerprints match across backends, not just across reruns.
    let cells = pinned_plan().expand();
    let sim = cells
        .iter()
        .find(|c| c.backend == Backend::Sim)
        .unwrap()
        .clone();
    let mut threads = cells
        .iter()
        .find(|c| c.backend == Backend::Threads && c.app == sim.app)
        .unwrap()
        .clone();
    threads.seed = sim.seed;
    let (fp_sim, _) = runner::run_cell(&sim).unwrap();
    let (fp_threads, _) = runner::run_cell(&threads).unwrap();
    assert_eq!(fp_sim, fp_threads);
}

//! Property tests for ablation-plan expansion: expansion is total and
//! ordered (the same plan always yields the byte-identical experiment
//! list), the provenance-bearing digest is invariant under TOML field
//! reordering, and shrunk plans stay valid strict sub-plans.

use dpx10_bench::plan::{AblationPlan, Backend, BenchApp};
use proptest::prelude::*;

/// Builds a random-but-valid plan from drawn axis parameters. Axes are
/// deduplicated subranges so `validate()` always holds.
fn plan_from(
    seed: u64,
    backends: usize,
    patterns: usize,
    vertices: Vec<u64>,
    places: Vec<u16>,
    coalesce_budgets: Vec<u64>,
    caches: Vec<u64>,
) -> AblationPlan {
    let mut plan = AblationPlan::parse(
        "name = \"prop\"\n[grid]\nbackend = [\"sim\"]\npattern = [\"lcs\"]\nvertices = [100]\n\
         places = [2]\ncoalesce = [\"off\"]\ntile = [1]\ncache = [0]\n",
    )
    .unwrap();
    plan.seed = seed;
    plan.backend = Backend::ALL[..backends.clamp(1, 3)]
        .iter()
        .map(|&(_, b)| b)
        .collect();
    plan.pattern = BenchApp::ALL[..patterns.clamp(1, BenchApp::ALL.len())]
        .iter()
        .map(|&(_, a)| a)
        .collect();
    let dedup_sorted = |mut v: Vec<u64>, floor: u64| -> Vec<u64> {
        v.iter_mut().for_each(|x| *x = (*x).max(floor));
        v.sort_unstable();
        v.dedup();
        v
    };
    plan.vertices = dedup_sorted(vertices, 4);
    plan.places = {
        let mut v: Vec<u16> = places.into_iter().map(|p| p.clamp(2, 8)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    plan.coalesce = {
        let mut v: Vec<Option<usize>> = coalesce_budgets
            .into_iter()
            .map(|b| if b == 0 { None } else { Some(b as usize) })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    plan.cache = dedup_sorted(caches, 0)
        .into_iter()
        .map(|c| c as usize)
        .collect();
    plan.validate().unwrap();
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Expansion is total (the cartesian product of the axis lengths)
    /// and ordered: expanding the same plan twice gives the identical
    /// experiment list, cell ids are unique, indices are positional,
    /// and every cell's seed is a pure function of plan seed + cell id.
    #[test]
    fn expansion_total_and_ordered(
        seed in 0u64..u64::MAX,
        backends in 1usize..4,
        patterns in 1usize..8,
        vertices in proptest::collection::vec(4u64..100_000, 1..3),
        places in proptest::collection::vec(2u16..8, 1..3),
        coalesce in proptest::collection::vec(0u64..10_000, 1..3),
        caches in proptest::collection::vec(0u64..10_000, 1..3),
    ) {
        let plan = plan_from(seed, backends, patterns, vertices, places, coalesce, caches);
        let cells = plan.expand();
        let expected = plan.backend.len()
            * plan.pattern.len()
            * plan.vertices.len()
            * plan.places.len()
            * plan.coalesce.len()
            * plan.tile.len()
            * plan.cache.len();
        prop_assert_eq!(cells.len(), expected);
        let again = plan.expand();
        prop_assert_eq!(&cells, &again);
        for (i, c) in cells.iter().enumerate() {
            prop_assert_eq!(c.index, i);
            prop_assert_eq!(c.plan_digest, plan.digest());
            for other in &cells[..i] {
                prop_assert_ne!(&c.cell, &other.cell);
            }
        }
        // Per-cell seeds derive from the cell id, not the position: a
        // plan with a different name digests differently but cells with
        // the same id under the same plan seed keep their seed.
        let mut renamed = plan.clone();
        renamed.name = "prop2".into();
        let renamed_cells = renamed.expand();
        for (a, b) in cells.iter().zip(&renamed_cells) {
            prop_assert_eq!(a.seed, b.seed);
            prop_assert_ne!(a.plan_digest, b.plan_digest);
        }
    }

    /// The plan digest is computed over the canonical serialization, so
    /// writing the same plan with its sections and keys in any order
    /// parses and hashes identically — while changing any actual value
    /// changes the digest.
    #[test]
    fn digest_invariant_under_field_reordering(
        seed in 0u64..1_000_000,
        vertices in 4u64..100_000,
        cache_a in 0u64..10_000,
        cache_b in 0u64..10_000,
    ) {
        let cache_b = if cache_b == cache_a { cache_b + 1 } else { cache_b };
        let forward = format!(
            "name = \"reorder\"\nseed = {seed}\n\n[grid]\nbackend = [\"sim\", \"threads\"]\n\
             pattern = [\"swlag\"]\nvertices = [{vertices}]\nplaces = [2]\n\
             coalesce = [\"off\"]\ntile = [1]\ncache = [{cache_a}, {cache_b}]\n\n\
             [fixed]\ndist = \"cyclic-row\"\nschedule = \"min-comm\"\n"
        );
        let reordered = format!(
            "seed = {seed}\nname = \"reorder\"\n\n[fixed]\nschedule = \"min-comm\"\n\
             dist = \"cyclic-row\"\n\n[grid]\ncache = [{cache_a}, {cache_b}]\ntile = [1]\n\
             coalesce = [\"off\"]\nplaces = [2]\nvertices = [{vertices}]\n\
             pattern = [\"swlag\"]\nbackend = [\"sim\", \"threads\"]\n"
        );
        let a = AblationPlan::parse(&forward).unwrap();
        let b = AblationPlan::parse(&reordered).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(a.canonical(), b.canonical());
        // Value changes are never invisible to the digest.
        let mut c = a.clone();
        c.vertices[0] += 1;
        prop_assert_ne!(a.digest(), c.digest());
        let mut d = a.clone();
        d.cache.swap(0, 1);
        prop_assert_ne!(a.digest(), d.digest());
    }

    /// Every shrink of a valid plan is itself valid, expands to
    /// strictly fewer cells, and introduces no cell the original plan
    /// did not contain.
    #[test]
    fn shrunk_plans_stay_valid(
        seed in 0u64..u64::MAX,
        backends in 1usize..4,
        patterns in 1usize..8,
        vertices in proptest::collection::vec(4u64..100_000, 1..3),
        coalesce in proptest::collection::vec(0u64..10_000, 1..3),
    ) {
        let plan = plan_from(seed, backends, patterns, vertices, vec![2, 3], coalesce, vec![64]);
        let full: Vec<String> = plan.expand().into_iter().map(|c| c.cell).collect();
        for small in plan.shrink() {
            prop_assert!(small.validate().is_ok());
            let cells = small.expand();
            prop_assert!(cells.len() < full.len());
            for c in &cells {
                prop_assert!(full.contains(&c.cell), "shrink invented {}", c.cell);
            }
            // Shrinking is monotone: a shrink of a shrink stays valid too.
            for smaller in small.shrink() {
                prop_assert!(smaller.validate().is_ok());
            }
        }
    }
}

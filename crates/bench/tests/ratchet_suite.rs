//! The ratchet unit suite over real baseline files: regression beyond
//! tolerance fails, improvement tightens only through the explicit
//! update path, missing/renamed KPIs are hard errors rather than silent
//! passes, and malformed baseline files diagnose with line numbers.

use std::fs;
use std::path::PathBuf;

use dpx10_bench::registry::RunRecord;
use dpx10_bench::{RatchetSpec, Tolerance};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpx10-ratchet-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn record(cell: &str, frames: u64, wall: u64) -> RunRecord {
    RunRecord {
        plan: "suite".into(),
        cell: cell.into(),
        prov: 1,
        seed: 1,
        git: "g".into(),
        host: "h".into(),
        source: "run".into(),
        backend: "threads".into(),
        pattern: "swlag".into(),
        vertices: 10_000,
        places: 2,
        coalesce: "off".into(),
        tile: 1,
        cache: 4096,
        fingerprint: "0x0000000000000bad".into(),
        computed: 10_000,
        recoveries: 0,
        frames,
        bytes: 100,
        sim_us: 0,
        wall_us: wall,
        pull_roundtrips: 12,
    }
}

/// Round-trips a spec through an actual baseline file, the way the CLI
/// stores and reloads it.
fn through_file(spec: &RatchetSpec, name: &str) -> RatchetSpec {
    let path = tmp(name);
    fs::write(&path, spec.render()).unwrap();
    let loaded = RatchetSpec::parse(&fs::read_to_string(&path).unwrap()).unwrap();
    fs::remove_file(&path).unwrap();
    loaded
}

#[test]
fn regression_beyond_tolerance_fails() {
    let baseline = RatchetSpec::from_run("suite", 9, &[record("a", 100, 1000)]);
    let spec = through_file(&baseline, "regress.toml");
    // frames default tolerance is rel 0.25 + abs 64 → limit 189.
    let ok = spec.compare(9, &[record("a", 189, 1000)]).unwrap();
    assert!(ok.passed());
    let bad = spec.compare(9, &[record("a", 190, 1000)]).unwrap();
    assert!(!bad.passed());
    assert!(
        bad.regressions[0].contains("frames"),
        "{:?}",
        bad.regressions
    );
    assert!(
        bad.regressions[0].contains("190") && bad.regressions[0].contains("100"),
        "regression line names measured and baseline: {:?}",
        bad.regressions
    );
}

#[test]
fn improvement_tightens_only_through_update() {
    let baseline = RatchetSpec::from_run("suite", 9, &[record("a", 100, 1000)]);
    let spec = through_file(&baseline, "tighten.toml");
    let faster = record("a", 40, 1000);
    // A plain ratchet pass records the improvement but the file the CLI
    // would keep (the spec itself) is unchanged.
    let rep = spec.compare(9, std::slice::from_ref(&faster)).unwrap();
    assert!(rep.passed());
    assert!(rep
        .improvements
        .iter()
        .any(|(_, k, b, m)| k == "frames" && *b == 100 && *m == 40));
    assert_eq!(spec, through_file(&spec, "unchanged.toml"));
    // --update-baseline path: tightened() writes the min, and a later
    // slower-but-tolerated run cannot loosen it back.
    let tightened = through_file(&spec.tightened(&[faster]), "tightened.toml");
    let frames_of = |s: &RatchetSpec| {
        s.cells[0]
            .kpis
            .iter()
            .find(|(k, _)| k == "frames")
            .unwrap()
            .1
    };
    assert_eq!(frames_of(&tightened), 40);
    let after_slower = tightened.tightened(&[record("a", 49, 1000)]);
    assert_eq!(frames_of(&after_slower), 40);
}

#[test]
fn update_does_not_mask_regressions() {
    // The CLI compares before tightening; a regression must fail even
    // when the caller asked to update: tightening takes the min, so the
    // regressed value never enters the file either.
    let spec = RatchetSpec::from_run("suite", 9, &[record("a", 100, 1000)]);
    let regressed = record("a", 500, 1000);
    assert!(!spec
        .compare(9, std::slice::from_ref(&regressed))
        .unwrap()
        .passed());
    let tightened = spec.tightened(&[regressed]);
    assert_eq!(tightened, spec);
}

#[test]
fn missing_and_renamed_kpis_are_hard_errors() {
    let mut spec = RatchetSpec::from_run("suite", 9, &[record("a", 100, 1000)]);
    // Renamed in the runner (simulated by renaming in the baseline):
    // parse rejects it outright…
    let mut renamed = spec.render().replace("frames =", "frame_count =");
    let err = RatchetSpec::parse(&renamed).unwrap_err();
    assert!(err.contains("unknown KPI `frame_count`"), "{err}");
    assert!(
        err.contains("line"),
        "diagnostic carries a line number: {err}"
    );
    // …and a spec that ratchets a KPI the runner stopped reporting is a
    // comparison-time hard error, not a silent pass.
    spec.cells[0].kpis = vec![("frames".into(), 100)];
    renamed = spec.render();
    let mut hacked = RatchetSpec::parse(&renamed).unwrap();
    hacked.cells[0].kpis[0].0 = "framez".into();
    let err = hacked.compare(9, &[record("a", 100, 1000)]).unwrap_err();
    assert!(err.contains("no longer reports"), "{err}");
}

#[test]
fn malformed_baselines_produce_actionable_diagnostics() {
    // Broken TOML: the error names the line.
    let err = RatchetSpec::parse("plan = \"p\"\nplan_digest = \"9\"\n[cells.\"a\"\n").unwrap_err();
    assert!(err.contains("line 3"), "{err}");
    // A non-integer KPI names the cell, the KPI, and the line.
    let err = RatchetSpec::parse(
        "plan = \"p\"\nplan_digest = \"9\"\n[cells.\"a\"]\nfingerprint = \"0x1\"\nframes = \"lots\"\n",
    )
    .unwrap_err();
    assert!(
        err.contains("`a`") && err.contains("frames") && err.contains("line 5"),
        "{err}"
    );
    // A bad digest is caught before any comparison.
    let err = RatchetSpec::parse(
        "plan = \"p\"\nplan_digest = \"zz\"\n[cells.\"a\"]\nfingerprint = \"0x1\"\nframes = 1\n",
    )
    .unwrap_err();
    assert!(err.contains("hex"), "{err}");
}

#[test]
fn tolerance_overrides_round_trip_and_apply() {
    let mut spec = RatchetSpec::from_run("suite", 9, &[record("a", 100, 1000)]);
    spec.tolerances
        .push(("wall_us".into(), Tolerance { rel: 0.5, abs: 10 }));
    let spec = through_file(&spec, "tol.toml");
    assert_eq!(spec.tolerance("wall_us"), Tolerance { rel: 0.5, abs: 10 });
    // 1000 * 1.5 + 10 = 1510 is the last passing value.
    assert!(spec.compare(9, &[record("a", 100, 1510)]).unwrap().passed());
    assert!(!spec.compare(9, &[record("a", 100, 1511)]).unwrap().passed());
    // Unlisted KPIs keep their defaults (computed is exact).
    let mut r = record("a", 100, 1000);
    r.computed += 1;
    assert!(!spec.compare(9, &[r]).unwrap().passed());
}

//! Criterion bench behind Fig. 10: simulated-cluster runs of all four
//! applications at 2 and 12 nodes. The measured quantity is harness
//! wall time; the figure itself (virtual makespans) is produced by
//! `cargo run -p dpx10-bench --bin figures -- fig10`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpx10_bench::{run_sim, AppKind};

const VERTICES: u64 = 100_000;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for app in AppKind::ALL {
        for nodes in [2u16, 12] {
            group.bench_with_input(
                BenchmarkId::new(app.name(), format!("{nodes}nodes")),
                &(app, nodes),
                |b, &(app, nodes)| {
                    b.iter(|| {
                        let report = run_sim(app, VERTICES, nodes);
                        assert_eq!(report.vertices_computed, report.vertices_total);
                        report.sim_time
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);

//! Criterion bench behind Fig. 11: graph-size scaling on a fixed
//! 10-node simulated cluster. Near-linear growth of harness time with
//! vertex count mirrors the figure's linear virtual-time growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpx10_bench::{run_sim, AppKind};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    for vertices in [50_000u64, 100_000, 200_000] {
        group.throughput(Throughput::Elements(vertices));
        group.bench_with_input(
            BenchmarkId::new("swlag-10nodes", vertices),
            &vertices,
            |b, &v| b.iter(|| run_sim(AppKind::Swlag, v, 10).sim_time),
        );
        group.bench_with_input(
            BenchmarkId::new("knapsack-10nodes", vertices),
            &vertices,
            |b, &v| b.iter(|| run_sim(AppKind::Knapsack, v, 10).sim_time),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);

//! Ablation benches over the §VI-E refinements: cache capacity,
//! scheduling strategy, and distribution choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpx10_bench::{run_sim_with, AppKind};
use dpx10_core::{DistKind, ScheduleStrategy};

const VERTICES: u64 = 50_000;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-cache");
    group.sample_size(10);
    for cap in [0usize, 16, 4096] {
        group.bench_with_input(BenchmarkId::new("swlag-cycliccol", cap), &cap, |b, &cap| {
            b.iter(|| {
                run_sim_with(AppKind::Swlag, VERTICES, 4, |c| {
                    c.with_dist(DistKind::CyclicCol).with_cache(cap)
                })
                .sim_time
            })
        });
    }
    group.finish();
}

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-schedule");
    group.sample_size(10);
    for strat in ScheduleStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("mtp", strat.name()),
            &strat,
            |b, &strat| {
                b.iter(|| {
                    run_sim_with(AppKind::Mtp, VERTICES, 4, |c| c.with_schedule(strat)).sim_time
                })
            },
        );
    }
    group.finish();
}

fn bench_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-distribution");
    group.sample_size(10);
    for (name, kind) in [
        ("block-row", DistKind::BlockRow),
        ("block-col", DistKind::BlockCol),
        ("cyclic-col", DistKind::CyclicCol),
    ] {
        group.bench_with_input(BenchmarkId::new("knapsack", name), &kind, |b, kind| {
            b.iter(|| {
                run_sim_with(AppKind::Knapsack, VERTICES, 4, |c| {
                    c.with_dist(kind.clone())
                })
                .sim_time
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_schedule,
    bench_distribution,
    extension_benches::bench_ready_policy
);
criterion_main!(benches);

mod extension_benches {
    use super::*;
    use dpx10_sim::ReadyPolicy;

    pub fn bench_ready_policy(c: &mut Criterion) {
        let mut group = c.benchmark_group("ablation-ready-policy");
        group.sample_size(10);
        for policy in ReadyPolicy::ALL {
            group.bench_with_input(
                BenchmarkId::new("swlag", policy.name()),
                &policy,
                |b, &policy| {
                    b.iter(|| {
                        run_sim_with(AppKind::Swlag, VERTICES, 4, |c| c.with_ready_policy(policy))
                            .sim_time
                    })
                },
            );
        }
        group.finish();
    }
}

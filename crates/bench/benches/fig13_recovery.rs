//! Criterion bench behind Fig. 13: the cost of surviving one mid-run
//! failure — the full faulted run on the simulator, the recovery pass
//! itself on both engines, and the snapshot baseline for contrast.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpx10_apgas::{NetworkModel, PlaceId, Topology};
use dpx10_bench::{run_recovery, threaded_recovery};
use dpx10_core::RestoreManner;
use dpx10_distarray::{
    recover, Dist, DistArray, DistKind, RecoveryCostModel, Region2D, ResilientDistArray,
};

fn bench_faulted_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13-faulted-run");
    group.sample_size(10);
    for nodes in [4u16, 8] {
        group.bench_with_input(
            BenchmarkId::new("sim-swlag-fault", format!("{nodes}nodes")),
            &nodes,
            |b, &n| b.iter(|| run_recovery(100_000, n, RestoreManner::RecomputeRemote)),
        );
    }
    group.bench_function("threaded-mtp-fault-3places", |b| {
        b.iter(|| {
            let report = threaded_recovery(40, 3);
            assert_eq!(report.recoveries.len(), 1);
            report.epochs
        })
    });
    group.finish();
}

/// The bare recovery pass over a half-finished 256×256 array: the paper's
/// method vs X10's snapshot restore.
fn bench_recovery_pass(c: &mut Criterion) {
    let places: Vec<PlaceId> = (0..8).map(PlaceId).collect();
    let dist = Arc::new(Dist::new(
        Region2D::new(256, 256),
        DistKind::BlockRow,
        places,
    ));
    let topo = Topology::flat(8);
    let net = NetworkModel::tianhe_like();

    let mut half_done: DistArray<i64> = DistArray::new(dist.clone());
    for i in 0..128u32 {
        for j in 0..256u32 {
            half_done.set(i, j, (i * j) as i64);
        }
    }

    let mut group = c.benchmark_group("fig13-recovery-pass");
    group.sample_size(20);
    for manner in [RestoreManner::RecomputeRemote, RestoreManner::CopyRemote] {
        group.bench_with_input(
            BenchmarkId::new("paper-method", format!("{manner:?}")),
            &manner,
            |b, &m| {
                b.iter(|| {
                    let (fresh, report) = recover(
                        &half_done,
                        &[PlaceId(7)],
                        m,
                        &topo,
                        &net,
                        &RecoveryCostModel::default(),
                    );
                    (fresh.finished_count(), report.sim_time)
                })
            },
        );
    }
    group.bench_function("x10-snapshot-restore", |b| {
        b.iter(|| {
            let mut ra: ResilientDistArray<i64> = ResilientDistArray::new(dist.clone());
            for i in 0..128u32 {
                for j in 0..256u32 {
                    ra.array_mut().set(i, j, (i * j) as i64);
                }
            }
            ra.snapshot(&topo, &net);
            ra.restore(&[PlaceId(7)], &topo, &net).values
        })
    });
    group.finish();
}

criterion_group!(benches, bench_faulted_runs, bench_recovery_pass);
criterion_main!(benches);

//! Micro-benchmarks of the hot substrate pieces: per-vertex engine
//! throughput, the FIFO cache, the wire codec, distribution arithmetic
//! and pattern queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpx10_core::{DepView, DpApp, EngineConfig, FifoCache, ThreadedEngine};
use dpx10_dag::{builtin::Grid3, DagPattern, VertexId};
use dpx10_sim::{SimConfig, SimEngine};

#[derive(Clone)]
struct SumApp;

impl DpApp for SumApp {
    type Value = u64;
    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        deps.values().iter().sum::<u64>() ^ id.pack()
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-throughput");
    group.sample_size(10);
    let n = 150u32;
    group.throughput(Throughput::Elements(n as u64 * n as u64));
    group.bench_function(BenchmarkId::new("threaded", "1place"), |b| {
        b.iter(|| {
            ThreadedEngine::new(SumApp, Grid3::new(n, n), EngineConfig::flat(1))
                .run()
                .unwrap()
                .get(n - 1, n - 1)
        })
    });
    group.bench_function(BenchmarkId::new("simulated", "4places"), |b| {
        b.iter(|| {
            SimEngine::new(SumApp, Grid3::new(n, n), SimConfig::flat(4))
                .run()
                .unwrap()
                .get(n - 1, n - 1)
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("fifo-cache");
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert-evict", |b| {
        let mut cache: FifoCache<u64> = FifoCache::new(1024);
        let mut k = 0u64;
        b.iter(|| {
            cache.insert(k, k);
            k += 1;
        })
    });
    group.bench_function("hit", |b| {
        let mut cache: FifoCache<u64> = FifoCache::new(1024);
        for k in 0..1024u64 {
            cache.insert(k, k);
        }
        let mut k = 0u64;
        b.iter(|| {
            let v = cache.get(k % 1024);
            k += 1;
            v.copied()
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    use dpx10_apgas::Codec;
    let mut group = c.benchmark_group("codec");
    let value: Vec<u64> = (0..64).collect();
    group.throughput(Throughput::Bytes(value.wire_size() as u64));
    group.bench_function("encode-vec64", |b| {
        let mut buf = Vec::with_capacity(value.wire_size());
        b.iter(|| {
            buf.clear();
            value.encode(&mut buf);
            buf.len()
        })
    });
    let encoded = {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        buf
    };
    group.bench_function("decode-vec64", |b| {
        b.iter(|| {
            let mut src = encoded.as_slice();
            Vec::<u64>::decode(&mut src).unwrap().len()
        })
    });
    group.finish();
}

fn bench_dist(c: &mut Criterion) {
    use dpx10_apgas::PlaceId;
    use dpx10_distarray::{Dist, DistKind, Region2D};
    let dist = Dist::new(
        Region2D::new(4096, 4096),
        DistKind::BlockCol,
        (0..24).map(PlaceId).collect(),
    );
    let mut group = c.benchmark_group("dist");
    group.throughput(Throughput::Elements(1));
    group.bench_function("slot-of", |b| {
        let mut k = 0u32;
        b.iter(|| {
            let s = dist.slot_of(k % 4096, (k * 7) % 4096);
            k += 1;
            s
        })
    });
    group.bench_function("local-index", |b| {
        let mut k = 0u32;
        b.iter(|| {
            let li = dist.local_index(k % 4096, (k * 7) % 4096);
            k += 1;
            li
        })
    });
    group.finish();
}

fn bench_pattern_queries(c: &mut Criterion) {
    let pattern = Grid3::new(4096, 4096);
    let mut group = c.benchmark_group("pattern");
    group.throughput(Throughput::Elements(1));
    group.bench_function("grid3-dependencies", |b| {
        let mut out = Vec::with_capacity(4);
        let mut k = 1u32;
        b.iter(|| {
            out.clear();
            pattern.dependencies(k % 4095 + 1, (k * 13) % 4095 + 1, &mut out);
            k += 1;
            out.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_cache,
    bench_codec,
    bench_dist,
    bench_pattern_queries
);
criterion_main!(benches);

//! Criterion bench behind Fig. 12: framework overhead.
//!
//! This is the one figure that is *directly* measurable as wall time on
//! this host: the threaded DPX10 engine vs the hand-written pipeline on
//! identical SWLAG inputs. The simulated pairing (identical comm, cost
//! models differing only in per-vertex bookkeeping) is also benched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpx10_apps::{workload, SwlagApp};
use dpx10_baseline::NativeSwlag;
use dpx10_bench::sim_overhead_pair;
use dpx10_core::{EngineConfig, ThreadedEngine};

fn bench_threaded_vs_native(c: &mut Criterion) {
    let side = 200usize;
    let a = workload::dna(side, 1);
    let b = workload::dna(side, 2);

    let mut group = c.benchmark_group("fig12-wall");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("dpx10-threaded", side), |bench| {
        bench.iter(|| {
            let app = SwlagApp::new(a.clone(), b.clone());
            let pattern = app.pattern();
            ThreadedEngine::new(app, pattern, EngineConfig::flat(2).with_cache(0))
                .run()
                .unwrap()
                .get(side as u32, side as u32)
        })
    });
    group.bench_function(BenchmarkId::new("native-pipeline", side), |bench| {
        bench.iter(|| NativeSwlag::new(a.clone(), b.clone(), 2).best_score())
    });
    group.finish();
}

fn bench_sim_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12-sim");
    group.sample_size(10);
    group.bench_function("overhead-pair-100k-4nodes", |b| {
        b.iter(|| {
            let (fw, native) = sim_overhead_pair(100_000, 4);
            assert!(fw >= native);
            (fw, native)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_threaded_vs_native, bench_sim_pair);
criterion_main!(benches);

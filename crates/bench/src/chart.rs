//! A dependency-free SVG line-chart writer for the figure harness.
//!
//! The paper's figures are line/bar charts; `figures --svg DIR` renders
//! our regenerated data in the same visual form so the shapes can be
//! compared at a glance. Everything is hand-rolled (axes, tick labels,
//! legend), keeping the workspace inside the approved dependency set.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One line series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` samples in plot order.
    pub points: Vec<(f64, f64)>,
}

/// A simple line chart.
#[derive(Clone, Debug)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

/// Categorical palette (colour-blind friendly).
const PALETTE: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

const W: f64 = 640.0;
const H: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

impl Chart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Chart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn series(mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        self.series.push(Series {
            name: name.into(),
            points,
        });
        self
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the chart has no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the SVG document.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        let (x0, x1) = bounds(all.iter().map(|p| p.0));
        let (y0, y1) = bounds(all.iter().map(|p| p.1));
        // Anchor the y axis at zero for magnitude charts.
        let y0 = y0.min(0.0);

        let plot_w = W - MARGIN_L - MARGIN_R;
        let plot_h = H - MARGIN_T - MARGIN_B;
        let sx = move |x: f64| MARGIN_L + (x - x0) / (x1 - x0).max(f64::MIN_POSITIVE) * plot_w;
        let sy =
            move |y: f64| MARGIN_T + plot_h - (y - y0) / (y1 - y0).max(f64::MIN_POSITIVE) * plot_h;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="12">"#
        );
        let _ = writeln!(svg, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            W / 2.0,
            xml(&self.title)
        );

        // Axes.
        let _ = writeln!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h,
            W - MARGIN_R,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h
        );

        // Ticks + gridlines.
        for t in ticks(x0, x1, 6) {
            let x = sx(t);
            let _ = writeln!(
                svg,
                r##"<line x1="{x:.1}" y1="{MARGIN_T}" x2="{x:.1}" y2="{}" stroke="#ddd"/>"##,
                MARGIN_T + plot_h
            );
            let _ = writeln!(
                svg,
                r#"<text x="{x:.1}" y="{}" text-anchor="middle">{}</text>"#,
                MARGIN_T + plot_h + 18.0,
                fmt_tick(t)
            );
        }
        for t in ticks(y0, y1, 6) {
            let y = sy(t);
            let _ = writeln!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{}" y2="{y:.1}" stroke="#ddd"/>"##,
                W - MARGIN_R
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{:.1}" text-anchor="end">{}</text>"#,
                MARGIN_L - 6.0,
                y + 4.0,
                fmt_tick(t)
            );
        }

        // Axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            H - 12.0,
            xml(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml(&self.y_label)
        );

        // Series + legend.
        for (k, s) in self.series.iter().enumerate() {
            let colour = PALETTE[k % PALETTE.len()];
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{colour}" stroke-width="2"/>"#,
                pts.join(" ")
            );
            for &(x, y) in &s.points {
                let _ = writeln!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{colour}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            let ly = MARGIN_T + 8.0 + k as f64 * 16.0;
            let _ = writeln!(
                svg,
                r#"<line x1="{}" y1="{ly:.1}" x2="{}" y2="{ly:.1}" stroke="{colour}" stroke-width="2"/>"#,
                W - MARGIN_R - 120.0,
                W - MARGIN_R - 96.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{:.1}">{}</text>"#,
                W - MARGIN_R - 90.0,
                ly + 4.0,
                xml(&s.name)
            );
        }

        svg.push_str("</svg>\n");
        svg
    }

    /// Writes `<slug>.svg` under `dir`.
    pub fn write_svg(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-");
        let path = dir.join(format!("{slug}.svg"));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

/// Finite min/max with a degenerate-range guard.
fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return (0.0, 1.0);
    }
    if lo == hi {
        return (lo - 0.5, hi + 0.5);
    }
    (lo, hi)
}

/// Round tick positions covering `[lo, hi]` with about `n` steps.
fn ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let raw = span / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|s| span / s <= n as f64)
        .unwrap_or(mag * 10.0);
    let mut t = (lo / step).ceil() * step;
    let mut out = Vec::new();
    while t <= hi + step * 1e-9 {
        out.push(t);
        t += step;
    }
    out
}

/// Compact tick formatting (k/M suffixes).
fn fmt_tick(v: f64) -> String {
    let a = v.abs();
    if a >= 1e6 {
        format!("{}M", trim(v / 1e6))
    } else if a >= 1e3 {
        format!("{}k", trim(v / 1e3))
    } else {
        trim(v)
    }
}

fn trim(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// Escapes XML text content.
fn xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Chart {
        Chart::new("Fig X: demo", "nodes", "seconds")
            .series("SWLAG", vec![(2.0, 5.0), (4.0, 2.6), (12.0, 1.1)])
            .series("0/1KP", vec![(2.0, 10.0), (4.0, 8.0), (12.0, 3.3)])
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = sample().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains("SWLAG"));
        assert!(svg.contains("0/1KP"));
        assert!(svg.contains("nodes"));
        // Every opened text tag is closed.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn escapes_markup_in_labels() {
        let svg = Chart::new("a < b & c", "x", "y")
            .series("s", vec![(0.0, 0.0), (1.0, 1.0)])
            .render();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn ticks_are_round_and_cover_range() {
        let t = ticks(0.0, 10.0, 6);
        assert_eq!(t, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        let t = ticks(0.0, 0.0123, 6);
        assert!(t.len() >= 3 && t.len() <= 8, "{t:?}");
        let t = ticks(37.0, 41.0, 6);
        assert!(t.iter().all(|v| (37.0..=41.0).contains(v)));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(1500.0), "1.5k");
        assert_eq!(fmt_tick(2_000_000.0), "2M");
        assert_eq!(fmt_tick(0.25), "0.25");
        assert_eq!(fmt_tick(0.0), "0");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let svg = Chart::new("empty", "x", "y").render();
        assert!(svg.contains("</svg>"));
        let svg = Chart::new("flat", "x", "y")
            .series("s", vec![(1.0, 3.0), (2.0, 3.0)])
            .render();
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn write_svg_slugifies() {
        let dir = std::env::temp_dir().join(format!("dpx10-chart-{}", std::process::id()));
        let path = sample().write_svg(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("fig-x"));
        assert!(std::fs::read_to_string(&path).unwrap().contains("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Minimal aligned-table / CSV output for the figure harness.

use std::fmt::Write as _;
use std::path::Path;

/// A small column-aligned table that can also be dumped as CSV.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the CSV form to `dir/<slug>.csv` (title slugified).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-");
        let path = dir.join(format!("{slug}.csv"));
        let mut body = self.header.join(",");
        body.push('\n');
        for row in &self.rows {
            body.push_str(&row.join(","));
            body.push('\n');
        }
        std::fs::write(&path, body)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Fig X", &["nodes", "time"]);
        t.row(&["2".into(), "10.5".into()]);
        t.row(&["12".into(), "3.25".into()]);
        let s = t.render();
        assert!(s.contains("== Fig X =="));
        assert!(s.contains("nodes"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_round_trips() {
        let mut t = Table::new("Fig 10 (a) SWLAG", &["nodes", "seconds"]);
        t.row(&["2".into(), "1.5".into()]);
        let dir = std::env::temp_dir().join(format!("dpx10-table-{}", std::process::id()));
        let path = t.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "nodes,seconds\n2,1.5\n");
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("fig-10"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["1".into()]);
    }
}

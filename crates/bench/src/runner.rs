//! Executes registry [`Experiment`] cells through the real engines.
//!
//! One cell maps to one engine run: the deterministic simulator, the
//! threaded engine (tiled when the cell asks for `tile > 1`), or an
//! in-process socket mesh — every place a thread of this process over
//! real TCP, the `dpx10 bench` / chaos-harness idiom. Workloads are
//! rebuilt from the cell's derived seed exactly the way the CLI builds
//! them, so a registry cell and the equivalent `dpx10 run` invocation
//! compute the same DAG.

use std::net::TcpListener;

use dpx10_apgas::{PlaceId, SocketConfig};
use dpx10_apps::{
    workload, EditDistanceApp, GapApp, KnapsackApp, LcsApp, LpsApp, LwsApp, MtpApp,
    NeedlemanWunschApp, SwlagApp,
};
use dpx10_core::{
    run_tiled_threaded, DpApp, EngineConfig, RunReport, SocketEngine, ThreadedEngine, VertexValue,
};
use dpx10_dag::DagPattern;
use dpx10_sim::{CostModel, SimConfig, SimEngine};

use crate::plan::{Backend, BenchApp, Experiment};
use crate::registry::RunRecord;

/// Knapsack capacity pinned across the harness (matches the CLI).
const KNAPSACK_CAPACITY: u32 = 999;

/// Runs one cell, returning the result fingerprint and the engine's
/// report.
pub fn run_cell(exp: &Experiment) -> Result<(u64, RunReport), String> {
    let seed = exp.seed;
    let vertices = exp.vertices;
    match exp.app {
        BenchApp::Swlag => {
            let n = workload::side_for_vertices(vertices) as usize;
            run_backend(exp, move || {
                let app = SwlagApp::new(workload::dna(n, seed), workload::dna(n, seed + 1));
                let pattern = app.pattern();
                (app, pattern)
            })
        }
        BenchApp::Mtp => {
            let n = workload::side_for_vertices(vertices) + 1;
            run_backend(exp, move || {
                let app = MtpApp::new(n, n, seed);
                let pattern = app.pattern();
                (app, pattern)
            })
        }
        BenchApp::Lps => {
            let n = ((vertices as f64 * 2.0).sqrt() as usize).max(2);
            run_backend(exp, move || {
                let app = LpsApp::new(workload::letters(n, seed));
                let pattern = app.pattern();
                (app, pattern)
            })
        }
        BenchApp::Knapsack => {
            let shape = workload::knapsack_shape_for_vertices(vertices, KNAPSACK_CAPACITY);
            run_backend(exp, move || {
                let app =
                    KnapsackApp::new(workload::knapsack_items(shape, 64, seed), KNAPSACK_CAPACITY);
                let pattern = app.pattern();
                (app, pattern)
            })
        }
        BenchApp::Lcs => {
            let n = workload::side_for_vertices(vertices) as usize;
            run_backend(exp, move || {
                let app = LcsApp::new(workload::letters(n, seed), workload::letters(n, seed + 1));
                let pattern = app.pattern();
                (app, pattern)
            })
        }
        BenchApp::EditDistance => {
            let n = workload::side_for_vertices(vertices) as usize;
            run_backend(exp, move || {
                let app = EditDistanceApp::new(
                    workload::letters(n, seed),
                    workload::letters(n, seed + 1),
                );
                let pattern = app.pattern();
                (app, pattern)
            })
        }
        BenchApp::NeedlemanWunsch => {
            let n = workload::side_for_vertices(vertices) as usize;
            run_backend(exp, move || {
                let app =
                    NeedlemanWunschApp::new(workload::dna(n, seed), workload::dna(n, seed + 1));
                let pattern = app.pattern();
                (app, pattern)
            })
        }
        BenchApp::Lws => {
            // One cell per vertex: a 1×n row with prefix-min lanes. Runs
            // aggregated (the engine default), so the baseline's
            // pull_roundtrips column ratchets the O(1)-reads invariant.
            let n = (vertices as u32).max(2);
            run_backend(exp, move || {
                let app = LwsApp::new(n, seed);
                let pattern = app.pattern();
                (app, pattern)
            })
        }
        BenchApp::Gap => {
            let n = workload::side_for_vertices(vertices);
            run_backend(exp, move || {
                let app = GapApp::new(n, n, seed);
                let pattern = app.pattern();
                (app, pattern)
            })
        }
    }
}

/// SWLAG's affine-gap cell costs ~1.5x a plain DP cell in the
/// simulator's cost model (same constants as `dpx10 run`).
fn compute_ns(app: BenchApp) -> u64 {
    match app {
        BenchApp::Swlag => 90,
        _ => 60,
    }
}

/// The cell's engine config (threads/sockets path).
fn engine_config(exp: &Experiment) -> EngineConfig {
    let mut config = EngineConfig::flat(exp.places)
        .with_schedule(exp.schedule)
        .with_cache(exp.cache)
        .with_coalesce(exp.coalesce)
        .with_comms(exp.comms);
    if let Some(kind) = exp.dist.kind() {
        config = config.with_dist(kind);
    }
    config
}

/// Dispatches a cell to its backend. `make` rebuilds the app + pattern
/// from owned data so the socket path can instantiate one copy per
/// in-process place.
fn run_backend<A, P, F>(exp: &Experiment, make: F) -> Result<(u64, RunReport), String>
where
    A: DpApp + 'static,
    A::Value: VertexValue,
    P: DagPattern + Clone + 'static,
    F: Fn() -> (A, P) + Send + Clone + 'static,
{
    match exp.backend {
        Backend::Sim => {
            let mut config = SimConfig::flat(exp.places)
                .with_schedule(exp.schedule)
                .with_cache(exp.cache)
                .with_comms(exp.comms)
                .with_cost(CostModel::with_compute(compute_ns(exp.app)));
            if let Some(kind) = exp.dist.kind() {
                config = config.with_dist(kind);
            }
            let (app, pattern) = make();
            let result = SimEngine::new(app, pattern, config)
                .run()
                .map_err(|e| format!("{}: sim run failed: {e}", exp.cell))?;
            Ok((result.fingerprint(), result.report().clone()))
        }
        Backend::Threads if exp.tile > 1 => {
            let (app, pattern) = make();
            let run = run_tiled_threaded(app, pattern, exp.tile, engine_config(exp))
                .map_err(|e| format!("{}: tiled run failed: {e}", exp.cell))?;
            Ok((run.tiles().fingerprint(), run.tiles().report().clone()))
        }
        Backend::Threads => {
            let (app, pattern) = make();
            let result = ThreadedEngine::new(app, pattern, engine_config(exp))
                .run()
                .map_err(|e| format!("{}: threaded run failed: {e}", exp.cell))?;
            Ok((result.fingerprint(), result.report().clone()))
        }
        Backend::Sockets => socket_run(exp, make),
    }
}

/// Runs a cell over an in-process socket mesh: the coordinator on this
/// thread, every other place a spawned thread of this process joining
/// over real TCP on a loopback ephemeral port.
fn socket_run<A, P, F>(exp: &Experiment, make: F) -> Result<(u64, RunReport), String>
where
    A: DpApp + 'static,
    A::Value: VertexValue,
    P: DagPattern + Clone + 'static,
    F: Fn() -> (A, P) + Send + Clone + 'static,
{
    let places = exp.places;
    let config = engine_config(exp);
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("no local addr: {e}"))?
        .to_string();
    let mut workers = Vec::new();
    for p in 1..places {
        let addr = addr.clone();
        let config = config.clone();
        let make = make.clone();
        workers.push(std::thread::spawn(move || {
            let (app, pattern) = make();
            SocketEngine::new(app, pattern, config).run(SocketConfig::worker(
                PlaceId(p),
                places,
                addr,
            ))
        }));
    }
    let (app, pattern) = make();
    let outcome =
        SocketEngine::new(app, pattern, config).run(SocketConfig::coordinator(listener, places));
    for (idx, w) in workers.into_iter().enumerate() {
        match w.join() {
            Ok(Ok(None)) => {}
            Ok(other) => {
                return Err(format!(
                    "{}: worker place {} did not shut down cleanly: {:?}",
                    exp.cell,
                    idx + 1,
                    other.map(|r| r.map(|_| "unexpected result"))
                ));
            }
            Err(_) => return Err(format!("{}: worker place {} panicked", exp.cell, idx + 1)),
        }
    }
    let result = outcome
        .map_err(|e| format!("{}: coordinator failed: {e}", exp.cell))?
        .ok_or(format!("{}: coordinator returned no result", exp.cell))?;
    Ok((result.fingerprint(), result.report().clone()))
}

/// The wall-time scale injected by `DPX10_BENCH_WALL_SCALE` — the CI
/// self-test sets it to prove a deliberate tolerance breach actually
/// fails the ratchet; it defaults to 1 (no scaling).
fn wall_scale() -> u64 {
    std::env::var("DPX10_BENCH_WALL_SCALE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Builds the registry row for a finished cell.
pub fn record(
    exp: &Experiment,
    fingerprint: u64,
    report: &RunReport,
    git: &str,
    host: &str,
) -> RunRecord {
    RunRecord {
        plan: exp.plan.clone(),
        cell: exp.cell.clone(),
        prov: RunRecord::provenance(exp.plan_digest, &exp.cell, git, host),
        seed: exp.seed,
        git: git.to_string(),
        host: host.to_string(),
        source: "run".to_string(),
        backend: exp.backend.name().to_string(),
        pattern: exp.app.name().to_string(),
        vertices: exp.vertices,
        places: exp.places,
        coalesce: match exp.coalesce {
            None => "off".to_string(),
            Some(n) => n.to_string(),
        },
        tile: exp.tile,
        cache: exp.cache,
        fingerprint: format!("{fingerprint:#018x}"),
        computed: report.vertices_computed,
        recoveries: report.recoveries.len() as u64,
        frames: report.comm.messages_sent,
        bytes: report.comm.bytes_sent,
        sim_us: report.sim_time.as_micros() as u64,
        wall_us: (report.wall_time.as_micros() as u64).saturating_mul(wall_scale()),
        pull_roundtrips: report.comm.pulls_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AblationPlan;

    fn tiny_plan(backend: &str, extra: &str) -> AblationPlan {
        let text = format!(
            "name = \"t\"\nseed = 5\n[grid]\nbackend = [\"{backend}\"]\npattern = [\"lcs\"]\n\
             vertices = [900]\nplaces = [2]\ncoalesce = [\"off\"]\ntile = [1]\ncache = [4096]\n{extra}"
        );
        AblationPlan::parse(&text).unwrap()
    }

    #[test]
    fn sim_and_threads_agree_on_fingerprint() {
        let sim = tiny_plan("sim", "").expand();
        let thr = tiny_plan("threads", "").expand();
        let (fp_sim, rep_sim) = run_cell(&sim[0]).unwrap();
        let (fp_thr, _) = run_cell(&thr[0]).unwrap();
        // Different cell ids derive different seeds, so pin the seed to
        // compare across backends.
        let mut thr_cell = thr[0].clone();
        thr_cell.seed = sim[0].seed;
        let (fp_thr_same_seed, _) = run_cell(&thr_cell).unwrap();
        assert_ne!(fp_sim, 0);
        assert_eq!(fp_sim, fp_thr_same_seed);
        let _ = fp_thr;
        assert_eq!(rep_sim.vertices_computed, rep_sim.vertices_total);
    }

    #[test]
    fn record_scales_wall_time_only_via_env() {
        let exp = &tiny_plan("sim", "").expand()[0];
        let (fp, report) = run_cell(exp).unwrap();
        let row = record(exp, fp, &report, "g", "h");
        assert_eq!(row.computed, report.vertices_computed);
        assert_eq!(row.fingerprint, format!("{fp:#018x}"));
        assert_eq!(row.sim_us, report.sim_time.as_micros() as u64);
        assert_eq!(
            row.prov,
            RunRecord::provenance(exp.plan_digest, &exp.cell, "g", "h")
        );
    }
}

//! The declarative ablation-plan DSL.
//!
//! An [`AblationPlan`] is a TOML file describing a grid sweep over the
//! framework's launch axes — backend × pattern × vertices × places ×
//! coalesce-budget × tile-size × cache-capacity — plus fixed knobs
//! (distribution, scheduling strategy) and a base seed. [`expand`]
//! turns the grid into an ordered list of [`Experiment`] cells with
//! per-cell seeds, entirely deterministically: the same plan text and
//! seed always yield the byte-identical experiment list, and the plan's
//! [`digest`] is computed over a canonical serialization so reordering
//! keys or sections in the file cannot change any provenance hash.
//!
//! ```toml
//! name = "pinned-small"
//! seed = 1
//!
//! [grid]
//! backend = ["sim", "threads", "sockets"]
//! pattern = ["swlag", "lcs"]
//! vertices = [10000]
//! places = [2]
//! coalesce = ["off", 4096]
//! tile = [1]
//! cache = [4096]
//!
//! [fixed]
//! dist = "cyclic-col"
//! schedule = "local"
//! ```
//!
//! [`expand`]: AblationPlan::expand
//! [`digest`]: AblationPlan::digest

use std::fmt;

use dpx10_core::{CommsMode, ScheduleStrategy};
use dpx10_distarray::DistKind;

use crate::registry::fnv1a;
use crate::toml_lite::{self, Value};

/// Which engine executes a cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic cluster simulator.
    Sim,
    /// The threaded engine (one OS thread per place).
    Threads,
    /// The in-process socket mesh (one thread per place over real TCP,
    /// the `dpx10 bench` idiom).
    Sockets,
}

impl Backend {
    /// All backends with their plan-file names.
    pub const ALL: [(&'static str, Backend); 3] = [
        ("sim", Backend::Sim),
        ("threads", Backend::Threads),
        ("sockets", Backend::Sockets),
    ];

    /// The plan-file name.
    pub fn name(self) -> &'static str {
        Self::ALL
            .iter()
            .find(|&&(_, b)| b == self)
            .map(|&(n, _)| n)
            .expect("every backend is in ALL")
    }

    fn parse(s: &str) -> Option<Backend> {
        Self::ALL.iter().find(|(n, _)| *n == s).map(|&(_, b)| b)
    }
}

/// Which application (DAG pattern + kernel) a cell runs — the plan's
/// `pattern` axis, named after the paper's DAG-pattern abstraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchApp {
    /// Smith-Waterman, linear + affine gap (paper headline app).
    Swlag,
    /// Manhattan Tourists Problem.
    Mtp,
    /// Longest Palindromic Subsequence.
    Lps,
    /// 0/1 Knapsack.
    Knapsack,
    /// Longest Common Subsequence.
    Lcs,
    /// Levenshtein edit distance.
    EditDistance,
    /// Needleman-Wunsch global alignment.
    NeedlemanWunsch,
    /// Least-Weight Subsequence (interval deps + prefix-min lanes).
    Lws,
    /// Gap-penalty alignment (row+col interval deps).
    Gap,
}

impl BenchApp {
    /// All runnable apps with their plan-file names.
    pub const ALL: [(&'static str, BenchApp); 9] = [
        ("swlag", BenchApp::Swlag),
        ("mtp", BenchApp::Mtp),
        ("lps", BenchApp::Lps),
        ("knapsack", BenchApp::Knapsack),
        ("lcs", BenchApp::Lcs),
        ("edit-distance", BenchApp::EditDistance),
        ("needleman-wunsch", BenchApp::NeedlemanWunsch),
        ("lws", BenchApp::Lws),
        ("gap", BenchApp::Gap),
    ];

    /// The plan-file name.
    pub fn name(self) -> &'static str {
        Self::ALL
            .iter()
            .find(|&&(_, a)| a == self)
            .map(|&(n, _)| n)
            .expect("every app is in ALL")
    }

    fn parse(s: &str) -> Option<BenchApp> {
        Self::ALL.iter().find(|(n, _)| *n == s).map(|&(_, a)| a)
    }
}

/// The plan's fixed distribution knob (`Default` = the backend's
/// documented default, block-by-column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistChoice {
    /// Use the engine default.
    Default,
    /// Contiguous row blocks.
    BlockRow,
    /// Contiguous column blocks.
    BlockCol,
    /// Rows dealt round-robin.
    CyclicRow,
    /// Columns dealt round-robin.
    CyclicCol,
}

impl DistChoice {
    /// All choices with their plan-file names.
    pub const ALL: [(&'static str, DistChoice); 5] = [
        ("default", DistChoice::Default),
        ("block-row", DistChoice::BlockRow),
        ("block-col", DistChoice::BlockCol),
        ("cyclic-row", DistChoice::CyclicRow),
        ("cyclic-col", DistChoice::CyclicCol),
    ];

    /// The plan-file name.
    pub fn name(self) -> &'static str {
        Self::ALL
            .iter()
            .find(|&&(_, d)| d == self)
            .map(|&(n, _)| n)
            .expect("every choice is in ALL")
    }

    fn parse(s: &str) -> Option<DistChoice> {
        Self::ALL.iter().find(|(n, _)| *n == s).map(|&(_, d)| d)
    }

    /// The engine-level kind, or `None` for the default.
    pub fn kind(self) -> Option<DistKind> {
        match self {
            DistChoice::Default => None,
            DistChoice::BlockRow => Some(DistKind::BlockRow),
            DistChoice::BlockCol => Some(DistKind::BlockCol),
            DistChoice::CyclicRow => Some(DistKind::CyclicRow),
            DistChoice::CyclicCol => Some(DistKind::CyclicCol),
        }
    }
}

fn schedule_name(s: ScheduleStrategy) -> &'static str {
    match s {
        ScheduleStrategy::Local => "local",
        ScheduleStrategy::Random => "random",
        ScheduleStrategy::MinComm => "min-comm",
        ScheduleStrategy::WorkStealing => "work-stealing",
    }
}

fn schedule_parse(s: &str) -> Option<ScheduleStrategy> {
    match s {
        "local" => Some(ScheduleStrategy::Local),
        "random" => Some(ScheduleStrategy::Random),
        "min-comm" => Some(ScheduleStrategy::MinComm),
        "work-stealing" => Some(ScheduleStrategy::WorkStealing),
        _ => None,
    }
}

/// A declarative grid sweep: every axis is a non-empty value list and
/// the plan expands to their cartesian product in canonical axis order.
#[derive(Clone, Debug, PartialEq)]
pub struct AblationPlan {
    /// Plan identifier (registry rows and baseline files key on it).
    pub name: String,
    /// Base seed; every cell derives its own seed from it.
    pub seed: u64,
    /// Engine axis.
    pub backend: Vec<Backend>,
    /// Application axis.
    pub pattern: Vec<BenchApp>,
    /// Problem-scale axis (vertex counts).
    pub vertices: Vec<u64>,
    /// Place-count axis.
    pub places: Vec<u16>,
    /// Coalescing byte-budget axis (`None` = off).
    pub coalesce: Vec<Option<usize>>,
    /// Tile-size axis (1 = untiled; >1 needs the threads backend).
    pub tile: Vec<u32>,
    /// Remote-value cache-capacity axis.
    pub cache: Vec<usize>,
    /// Fixed distribution override.
    pub dist: DistChoice,
    /// Fixed scheduling strategy.
    pub schedule: ScheduleStrategy,
}

/// One expanded grid cell, ready to run.
#[derive(Clone, Debug, PartialEq)]
pub struct Experiment {
    /// Owning plan name.
    pub plan: String,
    /// Owning plan digest.
    pub plan_digest: u64,
    /// Position in the expansion (0-based, canonical order).
    pub index: usize,
    /// Stable cell id, e.g. `sim/swlag/v10000/p2/coff/t1/k4096`.
    pub cell: String,
    /// Engine.
    pub backend: Backend,
    /// Application.
    pub app: BenchApp,
    /// Problem scale.
    pub vertices: u64,
    /// Places.
    pub places: u16,
    /// Coalescing budget (`None` = off).
    pub coalesce: Option<usize>,
    /// Tile size (1 = untiled).
    pub tile: u32,
    /// Cache capacity.
    pub cache: usize,
    /// Distribution.
    pub dist: DistChoice,
    /// Scheduling strategy.
    pub schedule: ScheduleStrategy,
    /// Anti-dependency delivery mode (plans always expand to the pull
    /// plane; the `dpx10 bench --comms push` comparison constructs push
    /// cells directly, keeping plan digests and cell ids stable).
    pub comms: CommsMode,
    /// The cell's workload seed, derived from the plan seed and the
    /// cell id (stable under plan edits that leave this cell in place).
    pub seed: u64,
}

impl fmt::Display for Experiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.cell)
    }
}

/// SplitMix64 — the standard seed scrambler, also used by the chaos
/// harness's scenario expansion.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn coalesce_name(c: Option<usize>) -> String {
    match c {
        None => "off".into(),
        Some(n) => n.to_string(),
    }
}

impl AblationPlan {
    /// Parses a plan from TOML text. Unknown keys and sections are
    /// errors: a typoed axis must not silently vanish from a sweep.
    pub fn parse(text: &str) -> Result<AblationPlan, String> {
        let doc = toml_lite::parse(text)?;
        for section in &doc.sections {
            match section.path.as_slice() {
                [] => {
                    for (key, (_, line)) in &section.entries {
                        if key != "name" && key != "seed" {
                            return Err(format!("line {line}: unknown top-level key `{key}`"));
                        }
                    }
                }
                [s] if s == "grid" || s == "fixed" => {}
                other => {
                    return Err(format!(
                        "line {}: unknown section [{}]",
                        section.line,
                        other.join(".")
                    ))
                }
            }
        }
        let root = doc.root();
        let name = root
            .get("name")
            .and_then(Value::as_str)
            .ok_or("plan needs a top-level `name = \"…\"`")?
            .to_string();
        let seed = match root.get("seed") {
            None => 1,
            Some(Value::Int(n)) if *n >= 0 => *n as u64,
            Some(_) => return Err("`seed` must be a non-negative integer".into()),
        };
        let grid = doc
            .section(&["grid"])
            .ok_or("plan needs a [grid] section")?;
        for (key, (_, line)) in &grid.entries {
            if !matches!(
                key.as_str(),
                "backend" | "pattern" | "vertices" | "places" | "coalesce" | "tile" | "cache"
            ) {
                return Err(format!("line {line}: unknown grid axis `{key}`"));
            }
        }
        let axis = |key: &str| -> Result<Vec<Value>, String> {
            match grid.get(key) {
                Some(Value::Array(items)) => Ok(items.clone()),
                Some(single) => Ok(vec![single.clone()]),
                None => Err(format!("grid axis `{key}` is missing")),
            }
        };
        let backend = axis("backend")?
            .iter()
            .map(|v| {
                v.as_str()
                    .and_then(Backend::parse)
                    .ok_or(format!("bad backend {v:?} (sim|threads|sockets)"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pattern = axis("pattern")?
            .iter()
            .map(|v| {
                v.as_str()
                    .and_then(BenchApp::parse)
                    .ok_or(format!("bad pattern {v:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let uint_axis = |key: &str| -> Result<Vec<u64>, String> {
            axis(key)?
                .iter()
                .map(|v| match v.as_int() {
                    Some(n) if n >= 0 => Ok(n as u64),
                    _ => Err(format!("bad {key} value {v:?} (non-negative integer)")),
                })
                .collect()
        };
        let vertices = uint_axis("vertices")?;
        let places = uint_axis("places")?
            .into_iter()
            .map(|n| u16::try_from(n).map_err(|_| format!("places value {n} too large")))
            .collect::<Result<Vec<_>, _>>()?;
        let coalesce = axis("coalesce")?
            .iter()
            .map(|v| match v {
                Value::Str(s) if s == "off" => Ok(None),
                Value::Int(0) => Ok(None),
                Value::Int(n) if *n > 0 => Ok(Some(*n as usize)),
                other => Err(format!("bad coalesce value {other:?} (\"off\" or bytes)")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let tile = uint_axis("tile")?
            .into_iter()
            .map(|n| u32::try_from(n).map_err(|_| format!("tile value {n} too large")))
            .collect::<Result<Vec<_>, _>>()?;
        let cache = uint_axis("cache")?
            .into_iter()
            .map(|n| n as usize)
            .collect();
        let mut dist = DistChoice::Default;
        let mut schedule = ScheduleStrategy::Local;
        if let Some(fixed) = doc.section(&["fixed"]) {
            for (key, (value, line)) in &fixed.entries {
                match key.as_str() {
                    "dist" => {
                        dist = value
                            .as_str()
                            .and_then(DistChoice::parse)
                            .ok_or(format!("line {line}: bad dist {value:?}"))?
                    }
                    "schedule" => {
                        schedule = value
                            .as_str()
                            .and_then(schedule_parse)
                            .ok_or(format!("line {line}: bad schedule {value:?}"))?
                    }
                    other => return Err(format!("line {line}: unknown fixed knob `{other}`")),
                }
            }
        }
        Ok(AblationPlan {
            name,
            seed,
            backend,
            pattern,
            vertices,
            places,
            coalesce,
            tile,
            cache,
            dist,
            schedule,
        })
    }

    /// The canonical serialization the digest is computed over: fixed
    /// key order and one canonical spelling per value, so any TOML
    /// field/section reordering that parses to the same plan hashes to
    /// the same digest.
    pub fn canonical(&self) -> String {
        let list = |items: &[String]| items.join(",");
        format!(
            "plan={}\nseed={}\nbackend={}\npattern={}\nvertices={}\nplaces={}\ncoalesce={}\ntile={}\ncache={}\ndist={}\nschedule={}\n",
            self.name,
            self.seed,
            list(&self.backend.iter().map(|b| b.name().to_string()).collect::<Vec<_>>()),
            list(&self.pattern.iter().map(|a| a.name().to_string()).collect::<Vec<_>>()),
            list(&self.vertices.iter().map(u64::to_string).collect::<Vec<_>>()),
            list(&self.places.iter().map(u16::to_string).collect::<Vec<_>>()),
            list(&self.coalesce.iter().map(|c| coalesce_name(*c)).collect::<Vec<_>>()),
            list(&self.tile.iter().map(u32::to_string).collect::<Vec<_>>()),
            list(&self.cache.iter().map(|c| c.to_string()).collect::<Vec<_>>()),
            self.dist.name(),
            schedule_name(self.schedule),
        )
    }

    /// The plan's stable digest (FNV-1a over [`canonical`]).
    ///
    /// [`canonical`]: AblationPlan::canonical
    pub fn digest(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// Checks the plan describes something every cell can actually run.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(format!(
                "plan name `{}` must be non-empty [A-Za-z0-9._-] (it keys files and CSV rows)",
                self.name
            ));
        }
        macro_rules! check_axis {
            ($field:ident, $render:expr) => {
                if self.$field.is_empty() {
                    return Err(concat!("axis `", stringify!($field), "` is empty").into());
                }
                for (i, a) in self.$field.iter().enumerate() {
                    if self.$field[..i].contains(a) {
                        return Err(format!(
                            "axis `{}` lists {} twice (cells must be unique)",
                            stringify!($field),
                            $render(a)
                        ));
                    }
                }
            };
        }
        check_axis!(backend, |b: &Backend| b.name());
        check_axis!(pattern, |a: &BenchApp| a.name());
        check_axis!(vertices, |v: &u64| v.to_string());
        check_axis!(places, |p: &u16| p.to_string());
        check_axis!(coalesce, |c: &Option<usize>| coalesce_name(*c));
        check_axis!(tile, |t: &u32| t.to_string());
        check_axis!(cache, |c: &usize| c.to_string());
        if self.places.contains(&0) {
            return Err("places must be at least 1".into());
        }
        if self.tile.contains(&0) {
            return Err("tile must be at least 1 (1 = untiled)".into());
        }
        if self.vertices.iter().any(|&v| v < 4) {
            return Err("vertices must be at least 4".into());
        }
        if self.backend.contains(&Backend::Sockets) && self.places.iter().any(|&p| p < 2) {
            return Err("the sockets backend needs at least 2 places in the places axis".into());
        }
        if self.tile.iter().any(|&t| t > 1) && self.backend.iter().any(|&b| b != Backend::Threads) {
            return Err(
                "tile sizes above 1 run on the threads backend only; split the plan".into(),
            );
        }
        Ok(())
    }

    /// Expands the grid to its ordered experiment list. The nesting
    /// order is canonical (backend, pattern, vertices, places, coalesce,
    /// tile, cache — outermost first), so the same plan always produces
    /// the identical list.
    pub fn expand(&self) -> Vec<Experiment> {
        let digest = self.digest();
        let mut cells = Vec::new();
        for &backend in &self.backend {
            for &app in &self.pattern {
                for &vertices in &self.vertices {
                    for &places in &self.places {
                        for &coalesce in &self.coalesce {
                            for &tile in &self.tile {
                                for &cache in &self.cache {
                                    let cell = format!(
                                        "{}/{}/v{}/p{}/c{}/t{}/k{}",
                                        backend.name(),
                                        app.name(),
                                        vertices,
                                        places,
                                        coalesce_name(coalesce),
                                        tile,
                                        cache
                                    );
                                    let seed = splitmix64(self.seed ^ fnv1a(cell.as_bytes()));
                                    cells.push(Experiment {
                                        plan: self.name.clone(),
                                        plan_digest: digest,
                                        index: cells.len(),
                                        cell,
                                        backend,
                                        app,
                                        vertices,
                                        places,
                                        coalesce,
                                        tile,
                                        cache,
                                        dist: self.dist,
                                        schedule: self.schedule,
                                        comms: CommsMode::Pull,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// All one-step-smaller plans: each drops a single value from an
    /// axis that has at least two. Shrinking preserves validity and
    /// only removes cells, never invents new ones — the property tests
    /// pin both.
    pub fn shrink(&self) -> Vec<AblationPlan> {
        let mut out = Vec::new();
        macro_rules! shrink_axis {
            ($field:ident) => {
                if self.$field.len() > 1 {
                    for drop in 0..self.$field.len() {
                        let mut plan = self.clone();
                        plan.$field.remove(drop);
                        out.push(plan);
                    }
                }
            };
        }
        shrink_axis!(backend);
        shrink_axis!(pattern);
        shrink_axis!(vertices);
        shrink_axis!(places);
        shrink_axis!(coalesce);
        shrink_axis!(tile);
        shrink_axis!(cache);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
name = \"demo\"
seed = 9

[grid]
backend = [\"sim\", \"threads\"]
pattern = [\"lcs\"]
vertices = [2000]
places = [2]
coalesce = [\"off\", 4096]
tile = [1]
cache = [64, 4096]

[fixed]
dist = \"cyclic-col\"
schedule = \"local\"
";

    #[test]
    fn parse_expand_and_order() {
        let plan = AblationPlan::parse(DEMO).unwrap();
        plan.validate().unwrap();
        let cells = plan.expand();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].cell, "sim/lcs/v2000/p2/coff/t1/k64");
        assert_eq!(cells[7].cell, "threads/lcs/v2000/p2/c4096/t1/k4096");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.plan_digest, plan.digest());
        }
        // Same plan, same list — byte-identical.
        let again = AblationPlan::parse(DEMO).unwrap().expand();
        assert_eq!(cells, again);
    }

    #[test]
    fn digest_invariant_under_reordering() {
        let reordered = "\
[fixed]
schedule = \"local\"
dist = \"cyclic-col\"

[grid]
cache = [64, 4096]
tile = [1]
coalesce = [\"off\", 4096]
places = [2]
vertices = [2000]
pattern = [\"lcs\"]
backend = [\"sim\", \"threads\"]
";
        // Top-level keys must precede the first section in TOML, so the
        // reordered file carries them via a prepended root.
        let reordered = format!("seed = 9\nname = \"demo\"\n{reordered}");
        let a = AblationPlan::parse(DEMO).unwrap();
        let b = AblationPlan::parse(&reordered).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_sensitive_to_values() {
        let a = AblationPlan::parse(DEMO).unwrap();
        let mut b = a.clone();
        b.seed += 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.cache = vec![4096, 64]; // value order is meaningful
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let base = AblationPlan::parse(DEMO).unwrap();
        let mut empty_axis = base.clone();
        empty_axis.vertices.clear();
        assert!(empty_axis.validate().unwrap_err().contains("vertices"));
        let mut dup = base.clone();
        dup.cache = vec![64, 64];
        assert!(dup.validate().unwrap_err().contains("twice"));
        let mut tiled_sim = base.clone();
        tiled_sim.tile = vec![1, 4];
        assert!(tiled_sim.validate().unwrap_err().contains("threads"));
        let mut sockets_one_place = base.clone();
        sockets_one_place.backend = vec![Backend::Sockets];
        sockets_one_place.places = vec![1];
        assert!(sockets_one_place
            .validate()
            .unwrap_err()
            .contains("2 places"));
        let mut bad_name = base;
        bad_name.name = "has space".into();
        assert!(bad_name.validate().is_err());
    }

    #[test]
    fn unknown_keys_are_errors() {
        for (text, needle) in [
            (
                "name = \"x\"\nsped = 1\n[grid]\nbackend = [\"sim\"]\npattern = [\"lcs\"]\nvertices = [100]\nplaces = [1]\ncoalesce = [\"off\"]\ntile = [1]\ncache = [0]\n",
                "unknown top-level key `sped`",
            ),
            (
                "name = \"x\"\n[grid]\nbakend = [\"sim\"]\n",
                "unknown grid axis `bakend`",
            ),
            ("name = \"x\"\n[grd]\n", "unknown section"),
            (
                "name = \"x\"\n[grid]\nbackend = [\"sim\"]\npattern = [\"lcs\"]\nvertices = [100]\nplaces = [1]\ncoalesce = [\"off\"]\ntile = [1]\ncache = [0]\n[fixed]\ndost = \"cyclic-col\"\n",
                "unknown fixed knob",
            ),
        ] {
            let e = AblationPlan::parse(text).unwrap_err();
            assert!(e.contains(needle), "`{needle}` not in `{e}`");
        }
    }

    #[test]
    fn shrinks_stay_valid_and_shrink() {
        let plan = AblationPlan::parse(DEMO).unwrap();
        let shrinks = plan.shrink();
        assert!(!shrinks.is_empty());
        let full: Vec<String> = plan.expand().into_iter().map(|c| c.cell).collect();
        for small in &shrinks {
            small.validate().unwrap();
            let cells = small.expand();
            assert!(cells.len() < full.len());
            for c in &cells {
                assert!(full.contains(&c.cell), "shrink invented cell {}", c.cell);
            }
        }
    }
}

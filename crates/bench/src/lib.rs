//! Shared machinery for the evaluation harness: one runner per
//! application on the simulated cluster, plus small table/CSV helpers.
//!
//! Every figure of the paper's §VIII is regenerated from these runners
//! by the `figures` binary; the Criterion benches reuse them at smaller
//! scales. Workload generation is excluded from all timings, as in the
//! paper ("the time for initializing the cluster, generating test
//! graphs, and verifying results was not included").

#![warn(missing_docs)]

pub mod chart;
pub mod plan;
pub mod ratchet;
pub mod registry;
pub mod runner;
pub mod runners;
pub mod table;
pub mod toml_lite;

pub use chart::{Chart, Series};
pub use plan::{AblationPlan, Backend, BenchApp, DistChoice, Experiment};
pub use ratchet::{BaselineCell, RatchetReport, RatchetSpec, Tolerance};
pub use registry::{RunRecord, CSV_HEADER};
pub use runners::*;
pub use table::Table;

//! The append-only experiment registry: provenance hashing, the
//! `results/registry.csv` row format, per-run JSON reports, and the
//! trend aggregation the nightly job publishes.
//!
//! Every executed cell becomes one [`RunRecord`]. A record's provenance
//! hash binds the plan digest, the cell id, the git tree (`git
//! describe`), and a host fingerprint, so any registry row can be
//! traced back to the exact plan and environment that produced it. The
//! CSV is append-only: writers verify the committed header before
//! adding rows and never rewrite history.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// The canonical FNV-1a 64-bit hash — the same digest
/// `DagResult::fingerprint` builds on, reused here so provenance and
/// result hashes share one primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The git tree identity for provenance rows: the
/// `DPX10_GIT_DESCRIBE` env override if set (tests and CI pin it),
/// else `git describe --always --dirty`, else `"unknown"`.
pub fn git_describe() -> String {
    if let Ok(v) = std::env::var("DPX10_GIT_DESCRIBE") {
        if !v.is_empty() {
            return v;
        }
    }
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A short host fingerprint (OS, architecture, core count, hostname) so
/// registry rows from different machines are distinguishable without
/// leaking anything sensitive.
pub fn host_fingerprint() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let hostname = std::env::var("HOSTNAME").unwrap_or_default();
    format!(
        "{}-{}-c{}-{:08x}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        cores,
        fnv1a(hostname.as_bytes()) as u32
    )
}

/// One registry row: identity, provenance, cell coordinates, KPIs.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Plan name.
    pub plan: String,
    /// Cell id within the plan.
    pub cell: String,
    /// Provenance hash (see [`RunRecord::provenance`]).
    pub prov: u64,
    /// Workload seed the cell ran with.
    pub seed: u64,
    /// Git describe of the producing tree.
    pub git: String,
    /// Host fingerprint of the producing machine.
    pub host: String,
    /// Row origin: `run` for registry executions, `seed-import` for
    /// rows migrated from the pre-registry ablation CSVs.
    pub source: String,
    /// Backend name.
    pub backend: String,
    /// Pattern (app) name.
    pub pattern: String,
    /// Vertex count.
    pub vertices: u64,
    /// Place count.
    pub places: u16,
    /// Coalesce budget (`off` or bytes).
    pub coalesce: String,
    /// Tile size.
    pub tile: u32,
    /// Cache capacity.
    pub cache: usize,
    /// Result fingerprint as `0x…` hex, or `-` when unknown.
    pub fingerprint: String,
    /// KPI: vertices computed (includes fault recomputation).
    pub computed: u64,
    /// KPI: recovery passes performed.
    pub recoveries: u64,
    /// KPI: transport frames sent.
    pub frames: u64,
    /// KPI: payload bytes moved.
    pub bytes: u64,
    /// KPI: simulated makespan in microseconds (0 off-simulator).
    pub sim_us: u64,
    /// KPI: measured wall time in microseconds (noisy; ratcheted with
    /// a wide tolerance only).
    pub wall_us: u64,
    /// KPI: pull round-trips issued (`pulls_sent`) — the request half
    /// of the cache-miss path that push mode exists to avoid. Rows
    /// written before the column existed parse as 0.
    pub pull_roundtrips: u64,
}

/// The registry CSV header, exactly as committed in
/// `results/registry.csv`.
pub const CSV_HEADER: &str = "plan,cell,prov,seed,git,host,source,backend,pattern,vertices,\
places,coalesce,tile,cache,fingerprint,computed,recoveries,frames,bytes,sim_us,wall_us,\
pull_roundtrips";

impl RunRecord {
    /// The provenance hash for a cell produced under `git` on `host`:
    /// FNV-1a over the plan digest, cell id, git describe, and host
    /// fingerprint, field-separated so no pair of fields can collide by
    /// concatenation.
    pub fn provenance(plan_digest: u64, cell: &str, git: &str, host: &str) -> u64 {
        fnv1a(format!("{plan_digest:016x}\u{1f}{cell}\u{1f}{git}\u{1f}{host}").as_bytes())
    }

    /// Renders the row in registry CSV column order.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{:016x},{:#018x},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.plan,
            self.cell,
            self.prov,
            self.seed,
            self.git,
            self.host,
            self.source,
            self.backend,
            self.pattern,
            self.vertices,
            self.places,
            self.coalesce,
            self.tile,
            self.cache,
            self.fingerprint,
            self.computed,
            self.recoveries,
            self.frames,
            self.bytes,
            self.sim_us,
            self.wall_us,
            self.pull_roundtrips
        )
    }

    /// Parses one registry CSV row (the inverse of [`to_csv`]).
    ///
    /// [`to_csv`]: RunRecord::to_csv
    pub fn from_csv(line: &str) -> Result<RunRecord, String> {
        let f: Vec<&str> = line.split(',').collect();
        // 21 fields is the pre-`pull_roundtrips` schema; its missing
        // KPI reads as 0 so historical rows stay loadable.
        if f.len() != 21 && f.len() != 22 {
            return Err(format!(
                "registry row has {} fields, expected 21 or 22",
                f.len()
            ));
        }
        let uint = |i: usize, name: &str| -> Result<u64, String> {
            f[i].parse::<u64>()
                .map_err(|_| format!("registry row: bad {name} `{}`", f[i]))
        };
        let hex = |i: usize, name: &str| -> Result<u64, String> {
            u64::from_str_radix(f[i].trim_start_matches("0x"), 16)
                .map_err(|_| format!("registry row: bad {name} `{}`", f[i]))
        };
        Ok(RunRecord {
            plan: f[0].to_string(),
            cell: f[1].to_string(),
            prov: hex(2, "prov")?,
            seed: hex(3, "seed")?,
            git: f[4].to_string(),
            host: f[5].to_string(),
            source: f[6].to_string(),
            backend: f[7].to_string(),
            pattern: f[8].to_string(),
            vertices: uint(9, "vertices")?,
            places: uint(10, "places")? as u16,
            coalesce: f[11].to_string(),
            tile: uint(12, "tile")? as u32,
            cache: uint(13, "cache")? as usize,
            fingerprint: f[14].to_string(),
            computed: uint(15, "computed")?,
            recoveries: uint(16, "recoveries")?,
            frames: uint(17, "frames")?,
            bytes: uint(18, "bytes")?,
            sim_us: uint(19, "sim_us")?,
            wall_us: uint(20, "wall_us")?,
            pull_roundtrips: if f.len() > 21 {
                uint(21, "pull_roundtrips")?
            } else {
                0
            },
        })
    }

    /// The record's deterministic KPIs in a fixed render order —
    /// exactly the values two back-to-back runs of the same cell must
    /// reproduce byte-identically (on the simulator `frames`/`bytes`/
    /// `sim_us` are deterministic too, but the shared floor is what the
    /// differential tests pin on every backend).
    pub fn det_kpis(&self) -> [(&'static str, u64); 2] {
        [("computed", self.computed), ("recoveries", self.recoveries)]
    }

    /// All ratchetable KPIs in a fixed render order.
    pub fn kpis(&self) -> [(&'static str, u64); 7] {
        [
            ("computed", self.computed),
            ("recoveries", self.recoveries),
            ("frames", self.frames),
            ("bytes", self.bytes),
            ("sim_us", self.sim_us),
            ("wall_us", self.wall_us),
            ("pull_roundtrips", self.pull_roundtrips),
        ]
    }

    /// Looks a KPI up by its registry column name.
    pub fn kpi(&self, name: &str) -> Option<u64> {
        self.kpis()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Appends records to the registry CSV at `path`, creating it (with the
/// canonical header) if missing. An existing file must start with the
/// exact committed header — a drifted schema is an error, never a
/// silent reinterpretation.
pub fn append(path: &Path, records: &[RunRecord]) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    let existing = match fs::read_to_string(path) {
        Ok(text) => {
            let head = text.lines().next().unwrap_or("");
            if head != CSV_HEADER {
                return Err(format!(
                    "{}: header mismatch — found `{head}`, expected `{CSV_HEADER}`; \
                     refusing to append to a registry with a different schema",
                    path.display()
                ));
            }
            Some(text.ends_with('\n'))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let mut out = String::new();
    match existing {
        None => {
            out.push_str(CSV_HEADER);
            out.push('\n');
        }
        Some(true) => {}
        Some(false) => out.push('\n'),
    }
    for r in records {
        out.push_str(&r.to_csv());
        out.push('\n');
    }
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    file.write_all(out.as_bytes())
        .map_err(|e| format!("append {}: {e}", path.display()))
}

/// Loads every row of the registry CSV (skipping the header).
pub fn load(path: &Path) -> Result<Vec<RunRecord>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut lines = text.lines();
    match lines.next() {
        Some(head) if head == CSV_HEADER => {}
        Some(head) => {
            return Err(format!(
                "{}: header mismatch — found `{head}`",
                path.display()
            ))
        }
        None => return Err(format!("{}: empty registry", path.display())),
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        rows.push(
            RunRecord::from_csv(line)
                .map_err(|e| format!("{} line {}: {e}", path.display(), i + 2))?,
        );
    }
    Ok(rows)
}

/// Writes the per-run JSON report: provenance block plus one object per
/// record, in execution order.
pub fn write_run_json(
    path: &Path,
    plan_name: &str,
    plan_digest: u64,
    records: &[RunRecord],
) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"plan\": \"{plan_name}\",\n  \"plan_digest\": \"{plan_digest:016x}\",\n  \"git\": \"{}\",\n  \"host\": \"{}\",\n  \"cells\": [",
        records.first().map(|r| r.git.as_str()).unwrap_or("unknown"),
        records.first().map(|r| r.host.as_str()).unwrap_or("unknown"),
    );
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    {{ \"cell\": \"{}\", \"prov\": \"{:016x}\", \"seed\": \"{:#018x}\", \"fingerprint\": \"{}\", \
\"computed\": {}, \"recoveries\": {}, \"frames\": {}, \"bytes\": {}, \"sim_us\": {}, \"wall_us\": {} }}",
            if i == 0 { "" } else { "," },
            r.cell,
            r.prov,
            r.seed,
            r.fingerprint,
            r.computed,
            r.recoveries,
            r.frames,
            r.bytes,
            r.sim_us,
            r.wall_us
        );
    }
    json.push_str("\n  ]\n}\n");
    fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Aggregates the registry into per-cell trend series (latest-first is
/// not assumed — rows keep file order, which is append order) and
/// renders the JSON artifact the nightly job uploads.
pub fn trend_json(rows: &[RunRecord]) -> String {
    // Preserve first-seen cell order for a stable artifact.
    let mut cells: Vec<(String, Vec<&RunRecord>)> = Vec::new();
    for row in rows {
        let key = format!("{}/{}", row.plan, row.cell);
        match cells.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(row),
            None => cells.push((key, vec![row])),
        }
    }
    let mut json = String::from("{\n  \"cells\": [");
    for (i, (key, runs)) in cells.iter().enumerate() {
        let series = |pick: fn(&RunRecord) -> u64| -> String {
            let vals: Vec<String> = runs.iter().map(|r| pick(r).to_string()).collect();
            format!("[{}]", vals.join(","))
        };
        let _ = write!(
            json,
            "{}\n    {{ \"cell\": \"{key}\", \"runs\": {}, \"git\": [{}], \
\"wall_us\": {}, \"sim_us\": {}, \"frames\": {}, \"bytes\": {}, \"computed\": {}, \"recoveries\": {} }}",
            if i == 0 { "" } else { "," },
            runs.len(),
            runs.iter()
                .map(|r| format!("\"{}\"", r.git))
                .collect::<Vec<_>>()
                .join(","),
            series(|r| r.wall_us),
            series(|r| r.sim_us),
            series(|r| r.frames),
            series(|r| r.bytes),
            series(|r| r.computed),
            series(|r| r.recoveries),
        );
    }
    json.push_str("\n  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cell: &str, wall: u64) -> RunRecord {
        RunRecord {
            plan: "demo".into(),
            cell: cell.into(),
            prov: RunRecord::provenance(7, cell, "g0", "h0"),
            seed: 0x1234,
            git: "g0".into(),
            host: "h0".into(),
            source: "run".into(),
            backend: "sim".into(),
            pattern: "lcs".into(),
            vertices: 1000,
            places: 2,
            coalesce: "off".into(),
            tile: 1,
            cache: 64,
            fingerprint: "0x00000000deadbeef".into(),
            computed: 1000,
            recoveries: 0,
            frames: 42,
            bytes: 4242,
            sim_us: 900,
            wall_us: wall,
            pull_roundtrips: 3,
        }
    }

    #[test]
    fn csv_round_trip() {
        let r = record("sim/lcs/v1000/p2/coff/t1/k64", 1234);
        let parsed = RunRecord::from_csv(&r.to_csv()).unwrap();
        assert_eq!(r, parsed);
    }

    #[test]
    fn header_field_count_matches_rows() {
        assert_eq!(CSV_HEADER.split(',').count(), 22);
        assert_eq!(record("c", 1).to_csv().split(',').count(), 22);
    }

    #[test]
    fn legacy_21_field_row_parses_with_zero_pull_roundtrips() {
        let full = record("sim/lcs/v1000/p2/coff/t1/k64", 1234).to_csv();
        let legacy = full.rsplit_once(',').unwrap().0;
        let parsed = RunRecord::from_csv(legacy).unwrap();
        assert_eq!(parsed.pull_roundtrips, 0);
        assert_eq!(parsed.wall_us, 1234);
    }

    #[test]
    fn provenance_separates_fields() {
        // Moving a character across a field boundary must change the hash.
        let a = RunRecord::provenance(1, "ab", "c", "d");
        let b = RunRecord::provenance(1, "a", "bc", "d");
        assert_ne!(a, b);
    }

    #[test]
    fn append_creates_verifies_and_accumulates() {
        let dir = std::env::temp_dir().join(format!("dpx10-registry-{}", std::process::id()));
        let path = dir.join("registry.csv");
        let _ = fs::remove_file(&path);
        append(&path, &[record("a", 1)]).unwrap();
        append(&path, &[record("b", 2)]).unwrap();
        let rows = load(&path).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cell, "a");
        assert_eq!(rows[1].cell, "b");
        // A foreign header is refused.
        fs::write(&path, "not,the,header\n").unwrap();
        let err = append(&path, &[record("c", 3)]).unwrap_err();
        assert!(err.contains("header mismatch"), "{err}");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_dir(&dir);
    }

    #[test]
    fn trend_groups_by_cell_in_first_seen_order() {
        let rows = vec![record("a", 10), record("b", 20), record("a", 12)];
        let json = trend_json(&rows);
        let a_pos = json.find("demo/a").unwrap();
        let b_pos = json.find("demo/b").unwrap();
        assert!(a_pos < b_pos);
        assert!(json.contains("\"wall_us\": [10,12]"), "{json}");
        assert!(json.contains("\"runs\": 2"), "{json}");
    }
}

//! A minimal TOML-subset reader for plan and baseline files.
//!
//! The workspace builds fully offline (no serde, no `toml` crate), so
//! the registry's declarative files are parsed by hand. The accepted
//! subset is deliberately small but is real TOML — any file this module
//! accepts means the same thing to a full TOML parser:
//!
//! * `key = value` pairs, where a value is a `"string"`, an integer, a
//!   float, a boolean, or a single-level array of those scalars
//!   (arrays may span lines until the closing `]`),
//! * `[section]` headers with dotted paths whose segments may be
//!   `"quoted"` (so cell ids like `[cells."sim/swlag/v10000"]` work),
//! * `#` comments and blank lines.
//!
//! Everything else — inline tables, multi-line strings, dates, nested
//! arrays — is a parse error carrying the offending line number, which
//! is exactly what the ratchet wants for actionable diagnostics.

use std::collections::BTreeMap;

/// A parsed scalar or array value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A `"quoted"` string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-level array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Renders the value back as TOML.
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => format!("{s:?}"),
            Value::Int(n) => n.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(Value::render).collect();
                format!("[{}]", inner.join(", "))
            }
        }
    }
}

/// One `[section]` of a document: its dotted path and its keys (with the
/// line each key was defined on, for diagnostics).
#[derive(Clone, Debug)]
pub struct Section {
    /// The dotted path, quoted segments unescaped (`cells."a/b"` →
    /// `["cells", "a/b"]`). The root section has an empty path.
    pub path: Vec<String>,
    /// Line number of the header (1-based; 0 for the root section).
    pub line: usize,
    /// Key → (value, defining line).
    pub entries: BTreeMap<String, (Value, usize)>,
}

impl Section {
    /// Looks up a key's value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key).map(|(v, _)| v)
    }
}

/// A parsed document: the root section followed by the named sections in
/// file order.
#[derive(Clone, Debug, Default)]
pub struct Doc {
    /// All sections; index 0 is the root (possibly empty).
    pub sections: Vec<Section>,
}

impl Doc {
    /// The root (header-less) section.
    pub fn root(&self) -> &Section {
        &self.sections[0]
    }

    /// The first section with exactly this path.
    pub fn section(&self, path: &[&str]) -> Option<&Section> {
        self.sections
            .iter()
            .find(|s| s.path.len() == path.len() && s.path.iter().zip(path).all(|(a, b)| a == b))
    }

    /// All sections whose path starts with `prefix` (and is longer).
    pub fn sections_under<'d>(&'d self, prefix: &'d str) -> impl Iterator<Item = &'d Section> {
        self.sections
            .iter()
            .filter(move |s| s.path.len() > 1 && s.path[0] == prefix)
    }
}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, String> {
    Err(format!("line {line}: {}", msg.into()))
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => escaped = false,
        }
    }
    line
}

/// Parses a section-header path like `cells."sim/swlag"` into segments.
fn parse_path(raw: &str, line: usize) -> Result<Vec<String>, String> {
    let mut segments = Vec::new();
    let mut rest = raw.trim();
    loop {
        if rest.starts_with('"') {
            let end = rest[1..]
                .find('"')
                .ok_or(format!("line {line}: unterminated quoted key"))?;
            segments.push(rest[1..1 + end].to_string());
            rest = rest[2 + end..].trim_start();
        } else {
            let end = rest.find('.').unwrap_or(rest.len());
            let seg = rest[..end].trim();
            if seg.is_empty() {
                return err(line, "empty path segment in section header");
            }
            segments.push(seg.to_string());
            rest = &rest[end..];
        }
        if rest.is_empty() {
            return Ok(segments);
        }
        rest = rest
            .strip_prefix('.')
            .ok_or(format!("line {line}: expected `.` between path segments"))?
            .trim_start();
    }
}

/// Parses one scalar token.
fn parse_scalar(token: &str, line: usize) -> Result<Value, String> {
    let token = token.trim();
    if let Some(inner) = token.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or(format!("line {line}: unterminated string"))?;
        if inner.contains('"') || inner.contains('\\') {
            return err(line, "escapes inside strings are not supported");
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match token {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        "" => return err(line, "empty value"),
        _ => {}
    }
    if let Ok(n) = token.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    if let Ok(f) = token.parse::<f64>() {
        if token.contains(['.', 'e', 'E']) {
            return Ok(Value::Float(f));
        }
    }
    err(
        line,
        format!("unrecognised value `{token}` (expected string, number, or bool)"),
    )
}

/// Splits an array body on top-level commas (strings may contain commas).
fn split_array(body: &str, line: usize) -> Result<Vec<Value>, String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                current.push(c);
            }
            '[' | ']' if !in_str => return err(line, "nested arrays are not supported"),
            ',' if !in_str => {
                if !current.trim().is_empty() {
                    items.push(parse_scalar(&current, line)?);
                }
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        items.push(parse_scalar(&current, line)?);
    }
    Ok(items)
}

/// Parses a document. Errors carry 1-based line numbers.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc = Doc {
        sections: vec![Section {
            path: Vec::new(),
            line: 0,
            entries: BTreeMap::new(),
        }],
    };
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or(format!("line {lineno}: unterminated section header"))?;
            if header.starts_with('[') {
                return err(lineno, "array-of-tables `[[…]]` is not supported");
            }
            let path = parse_path(header, lineno)?;
            if doc
                .sections
                .iter()
                .any(|s| !s.path.is_empty() && s.path == path)
            {
                return err(lineno, format!("duplicate section [{header}]"));
            }
            doc.sections.push(Section {
                path,
                line: lineno,
                entries: BTreeMap::new(),
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || key.contains(['"', '.', ' ']) {
            return err(lineno, format!("bad key `{key}`"));
        }
        let mut value = value.trim().to_string();
        // Arrays may span lines: accumulate until the bracket closes.
        if value.starts_with('[') {
            while !value.trim_end().ends_with(']') {
                let Some((_, next)) = lines.next() else {
                    return err(lineno, format!("unterminated array for key `{key}`"));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
        }
        let parsed = if let Some(body) = value.strip_prefix('[') {
            let body = body
                .strip_suffix(']')
                .ok_or(format!("line {lineno}: unterminated array"))?;
            Value::Array(split_array(body, lineno)?)
        } else {
            parse_scalar(&value, lineno)?
        };
        let section = doc.sections.last_mut().expect("root always present");
        if section
            .entries
            .insert(key.to_string(), (parsed, lineno))
            .is_some()
        {
            return err(lineno, format!("duplicate key `{key}`"));
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_sections_and_arrays_parse() {
        let doc = parse(
            "name = \"demo\"  # comment\n\
             seed = 7\n\
             frac = 0.5\n\
             flag = true\n\
             \n\
             [grid]\n\
             backend = [\"sim\", \"threads\"]\n\
             vertices = [100,\n  200]\n\
             [cells.\"sim/a/b\"]\n\
             wall_us = 12\n",
        )
        .unwrap();
        assert_eq!(doc.root().get("name"), Some(&Value::Str("demo".into())));
        assert_eq!(doc.root().get("seed"), Some(&Value::Int(7)));
        assert_eq!(doc.root().get("frac"), Some(&Value::Float(0.5)));
        assert_eq!(doc.root().get("flag"), Some(&Value::Bool(true)));
        let grid = doc.section(&["grid"]).unwrap();
        assert_eq!(
            grid.get("backend"),
            Some(&Value::Array(vec![
                Value::Str("sim".into()),
                Value::Str("threads".into())
            ]))
        );
        assert_eq!(
            grid.get("vertices"),
            Some(&Value::Array(vec![Value::Int(100), Value::Int(200)]))
        );
        let cell = doc.section(&["cells", "sim/a/b"]).unwrap();
        assert_eq!(cell.get("wall_us"), Some(&Value::Int(12)));
        assert_eq!(doc.sections_under("cells").count(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, needle) in [
            ("a = ", "line 1"),
            ("x = \"unterminated", "unterminated"),
            ("[grid\nb = 1", "unterminated section"),
            ("a = 1\na = 2", "duplicate key"),
            ("[s]\n[s]", "duplicate section"),
            ("a = [[1]]", "nested arrays"),
            ("just words", "key = value"),
            ("a = 1unparseable", "unrecognised value"),
        ] {
            let e = parse(text).unwrap_err();
            assert!(e.contains(needle), "`{text}` -> `{e}`");
        }
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = parse("a = \"not # a comment\"\n").unwrap();
        assert_eq!(
            doc.root().get("a"),
            Some(&Value::Str("not # a comment".into()))
        );
    }

    #[test]
    fn render_round_trips() {
        for v in [
            Value::Str("x/y".into()),
            Value::Int(-3),
            Value::Float(2.5),
            Value::Bool(false),
            Value::Array(vec![Value::Int(1), Value::Str("off".into())]),
        ] {
            let text = format!("k = {}\n", v.render());
            let doc = parse(&text).unwrap();
            assert_eq!(doc.root().get("k"), Some(&v), "{text}");
        }
    }
}

//! The perf ratchet: committed KPI baselines with per-metric
//! tolerances, compared against a fresh run of the same plan.
//!
//! A [`RatchetSpec`] is a TOML baseline file (one per plan, committed
//! under `plans/baselines/`). Every cell of the plan has a section with
//! its expected fingerprint and KPI values; `[tolerances.<kpi>]`
//! sections widen the allowed regression per metric. All KPIs are
//! lower-is-better: a measured value above
//! `baseline * (1 + rel) + abs` is a regression and fails the run.
//! Improvements always pass but only tighten the committed baseline
//! when the run is invoked with `--update-baseline` — the ratchet never
//! loosens itself.
//!
//! Baseline/run mismatches are hard errors, not silent passes: a cell
//! present on one side only, an unknown KPI name, or a plan-digest
//! mismatch all abort the comparison (a renamed metric must not make a
//! regression invisible).

use std::fmt::Write as _;

use crate::registry::RunRecord;
use crate::toml_lite::{self, Value};

/// How far above its baseline a KPI may drift before failing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerance {
    /// Relative headroom (0.5 = fail beyond 1.5x the baseline).
    pub rel: f64,
    /// Absolute headroom in the KPI's own unit, added on top.
    pub abs: u64,
}

impl Tolerance {
    /// Zero tolerance: any increase is a regression.
    pub const EXACT: Tolerance = Tolerance { rel: 0.0, abs: 0 };

    /// The built-in default for a KPI, used when the baseline file does
    /// not override it. Deterministic metrics get zero tolerance;
    /// traffic counters get modest headroom (coalescing flush timing
    /// on the threaded/socket backends is not cycle-exact); wall time
    /// is noise-dominated on shared runners and gets a wide band.
    pub fn default_for(kpi: &str) -> Option<Tolerance> {
        match kpi {
            "computed" | "recoveries" | "sim_us" => Some(Tolerance::EXACT),
            "frames" => Some(Tolerance { rel: 0.25, abs: 64 }),
            "bytes" => Some(Tolerance {
                rel: 0.25,
                abs: 65_536,
            }),
            "wall_us" => Some(Tolerance {
                rel: 1.0,
                abs: 250_000,
            }),
            // Pull issuance depends on gather/reply interleaving on the
            // threaded/socket backends, so it gets the same band as the
            // other traffic counters.
            "pull_roundtrips" => Some(Tolerance { rel: 0.25, abs: 64 }),
            _ => None,
        }
    }

    /// The highest measured value that still passes against `base`.
    pub fn limit(&self, base: u64) -> f64 {
        base as f64 * (1.0 + self.rel) + self.abs as f64
    }
}

/// One cell's committed baseline: the expected fingerprint plus every
/// ratcheted KPI.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineCell {
    /// Cell id within the plan.
    pub cell: String,
    /// Expected result fingerprint (`0x…`), exact-matched.
    pub fingerprint: String,
    /// KPI name → committed best-known value.
    pub kpis: Vec<(String, u64)>,
}

/// A plan's committed baseline file.
#[derive(Clone, Debug, PartialEq)]
pub struct RatchetSpec {
    /// Plan name the baseline belongs to.
    pub plan: String,
    /// Digest of the plan the baseline was generated from; a fresh run
    /// under a different digest is incomparable and errors out.
    pub plan_digest: u64,
    /// Per-KPI tolerance overrides (defaults apply otherwise).
    pub tolerances: Vec<(String, Tolerance)>,
    /// One entry per plan cell, in plan expansion order.
    pub cells: Vec<BaselineCell>,
}

/// Outcome of comparing a run against a [`RatchetSpec`].
#[derive(Clone, Debug, Default)]
pub struct RatchetReport {
    /// Human-readable `cell kpi measured vs limit` regression lines.
    pub regressions: Vec<String>,
    /// `(cell, kpi, baseline, measured)` improvements — candidates for
    /// `--update-baseline`.
    pub improvements: Vec<(String, String, u64, u64)>,
    /// Cells compared.
    pub cells: usize,
}

impl RatchetReport {
    /// True when no KPI regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// The KPI names a baseline is allowed to ratchet.
const KNOWN_KPIS: [&str; 7] = [
    "computed",
    "recoveries",
    "frames",
    "bytes",
    "sim_us",
    "wall_us",
    "pull_roundtrips",
];

impl RatchetSpec {
    /// Parses a baseline file. Diagnostics carry line numbers and the
    /// offending key so a malformed committed baseline is fixable from
    /// the error alone.
    pub fn parse(text: &str) -> Result<RatchetSpec, String> {
        let doc = toml_lite::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let root = doc.root();
        let plan = root
            .get("plan")
            .and_then(Value::as_str)
            .ok_or("baseline: missing top-level `plan = \"…\"`")?
            .to_string();
        let plan_digest = root
            .get("plan_digest")
            .and_then(Value::as_str)
            .ok_or("baseline: missing `plan_digest = \"<16 hex digits>\"`")
            .and_then(|s| {
                u64::from_str_radix(s, 16)
                    .map_err(|_| "baseline: `plan_digest` is not a hex digest")
            })?;
        for (key, (_, line)) in &root.entries {
            if key != "plan" && key != "plan_digest" {
                return Err(format!(
                    "baseline line {line}: unknown top-level key `{key}`"
                ));
            }
        }
        let mut tolerances = Vec::new();
        for section in doc.sections_under("tolerances") {
            let kpi = section.path[1].clone();
            if !KNOWN_KPIS.contains(&kpi.as_str()) {
                return Err(format!(
                    "baseline line {}: [tolerances.{kpi}] names no known KPI (known: {})",
                    section.line,
                    KNOWN_KPIS.join(", ")
                ));
            }
            let mut tol = Tolerance::default_for(&kpi).unwrap_or(Tolerance::EXACT);
            for (key, (value, line)) in &section.entries {
                match (key.as_str(), value.as_f64()) {
                    ("rel", Some(f)) if f >= 0.0 => tol.rel = f,
                    ("abs", _) => match value.as_int() {
                        Some(n) if n >= 0 => tol.abs = n as u64,
                        _ => {
                            return Err(format!(
                                "baseline line {line}: `abs` must be a non-negative integer"
                            ))
                        }
                    },
                    ("rel", _) => {
                        return Err(format!(
                            "baseline line {line}: `rel` must be a non-negative number"
                        ))
                    }
                    (other, _) => {
                        return Err(format!(
                            "baseline line {line}: unknown tolerance field `{other}` (rel|abs)"
                        ))
                    }
                }
            }
            tolerances.push((kpi, tol));
        }
        let mut cells = Vec::new();
        for section in doc.sections_under("cells") {
            let cell = section.path[1].clone();
            let fingerprint = section
                .get("fingerprint")
                .and_then(Value::as_str)
                .ok_or(format!(
                    "baseline line {}: cell `{cell}` is missing `fingerprint = \"0x…\"`",
                    section.line
                ))?
                .to_string();
            let mut kpis = Vec::new();
            for (key, (value, line)) in &section.entries {
                if key == "fingerprint" {
                    continue;
                }
                if !KNOWN_KPIS.contains(&key.as_str()) {
                    return Err(format!(
                        "baseline line {line}: cell `{cell}` ratchets unknown KPI `{key}` \
                         (known: {}) — a renamed KPI must be renamed here too",
                        KNOWN_KPIS.join(", ")
                    ));
                }
                match value.as_int() {
                    Some(n) if n >= 0 => kpis.push((key.clone(), n as u64)),
                    _ => {
                        return Err(format!(
                            "baseline line {line}: cell `{cell}` KPI `{key}` must be a \
                             non-negative integer, got {value:?}"
                        ))
                    }
                }
            }
            if kpis.is_empty() {
                return Err(format!(
                    "baseline line {}: cell `{cell}` ratchets no KPIs",
                    section.line
                ));
            }
            cells.push(BaselineCell {
                cell,
                fingerprint,
                kpis,
            });
        }
        for section in &doc.sections {
            match section.path.as_slice() {
                [] => {}
                [p, _] if p == "tolerances" || p == "cells" => {}
                other => {
                    return Err(format!(
                        "baseline line {}: unknown section [{}]",
                        section.line,
                        other.join(".")
                    ))
                }
            }
        }
        if cells.is_empty() {
            return Err("baseline: no [cells.\"…\"] sections".into());
        }
        Ok(RatchetSpec {
            plan,
            plan_digest,
            tolerances,
            cells,
        })
    }

    /// Renders the baseline back to its canonical TOML form.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# Perf-ratchet baseline for plan `{}` — regenerate with\n\
             # `dpx10 bench --plan plans/{}.toml --ratchet --update-baseline`.\n\
             plan = \"{}\"\nplan_digest = \"{:016x}\"\n",
            self.plan, self.plan, self.plan, self.plan_digest
        );
        for (kpi, tol) in &self.tolerances {
            let _ = write!(
                out,
                "\n[tolerances.{kpi}]\nrel = {}\nabs = {}\n",
                crate::toml_lite::Value::Float(tol.rel).render(),
                tol.abs
            );
        }
        for cell in &self.cells {
            let _ = write!(
                out,
                "\n[cells.\"{}\"]\nfingerprint = \"{}\"\n",
                cell.cell, cell.fingerprint
            );
            for (kpi, value) in &cell.kpis {
                let _ = writeln!(out, "{kpi} = {value}");
            }
        }
        out
    }

    /// The effective tolerance for a KPI (file override, else default).
    pub fn tolerance(&self, kpi: &str) -> Tolerance {
        self.tolerances
            .iter()
            .find(|(k, _)| k == kpi)
            .map(|&(_, t)| t)
            .or_else(|| Tolerance::default_for(kpi))
            .unwrap_or(Tolerance::EXACT)
    }

    /// Compares a fresh run against the baseline. Structural mismatches
    /// (digest, cell set, fingerprint, KPI names) are `Err`; KPI
    /// regressions land in the report.
    pub fn compare(
        &self,
        plan_digest: u64,
        records: &[RunRecord],
    ) -> Result<RatchetReport, String> {
        if plan_digest != self.plan_digest {
            return Err(format!(
                "baseline was generated from plan digest {:016x} but this plan has digest \
                 {plan_digest:016x}; regenerate with --update-baseline after changing the plan",
                self.plan_digest
            ));
        }
        let mut report = RatchetReport::default();
        for base in &self.cells {
            let run = records.iter().find(|r| r.cell == base.cell).ok_or(format!(
                "baseline cell `{}` was not produced by this run — \
                     the plan and baseline have diverged",
                base.cell
            ))?;
            if run.fingerprint != base.fingerprint {
                return Err(format!(
                    "cell `{}`: result fingerprint {} does not match baseline {} — \
                     the computation itself changed, not just its speed",
                    base.cell, run.fingerprint, base.fingerprint
                ));
            }
            for (kpi, &base_value) in base.kpis.iter().map(|(k, v)| (k, v)) {
                let measured = run.kpi(kpi).ok_or(format!(
                    "cell `{}`: baseline ratchets KPI `{kpi}` but the runner no longer \
                     reports it — rename it in the baseline or restore the metric",
                    base.cell
                ))?;
                let tol = self.tolerance(kpi);
                let limit = tol.limit(base_value);
                if measured as f64 > limit {
                    report.regressions.push(format!(
                        "{} {kpi}: measured {measured} exceeds baseline {base_value} \
                         + tolerance (limit {limit:.0})",
                        base.cell
                    ));
                } else if measured < base_value {
                    report.improvements.push((
                        base.cell.clone(),
                        kpi.clone(),
                        base_value,
                        measured,
                    ));
                }
            }
            report.cells += 1;
        }
        for run in records {
            if !self.cells.iter().any(|c| c.cell == run.cell) {
                return Err(format!(
                    "run produced cell `{}` that the baseline does not ratchet — \
                     regenerate the baseline with --update-baseline",
                    run.cell
                ));
            }
        }
        Ok(report)
    }

    /// A fresh baseline from a run: every cell's measured KPIs become
    /// the committed values. Used when no baseline exists yet.
    pub fn from_run(plan: &str, plan_digest: u64, records: &[RunRecord]) -> RatchetSpec {
        RatchetSpec {
            plan: plan.to_string(),
            plan_digest,
            tolerances: Vec::new(),
            cells: records
                .iter()
                .map(|r| {
                    // Keyed alphabetically, matching the parse order, so
                    // render → parse round-trips to the same spec.
                    let mut kpis: Vec<(String, u64)> =
                        r.kpis().iter().map(|&(k, v)| (k.to_string(), v)).collect();
                    kpis.sort();
                    BaselineCell {
                        cell: r.cell.clone(),
                        fingerprint: r.fingerprint.clone(),
                        kpis,
                    }
                })
                .collect(),
        }
    }

    /// The baseline after `--update-baseline`: per-KPI minimum of the
    /// committed and measured values (the ratchet only tightens).
    pub fn tightened(&self, records: &[RunRecord]) -> RatchetSpec {
        let mut next = self.clone();
        for cell in &mut next.cells {
            if let Some(run) = records.iter().find(|r| r.cell == cell.cell) {
                for (kpi, value) in &mut cell.kpis {
                    if let Some(measured) = run.kpi(kpi) {
                        *value = (*value).min(measured);
                    }
                }
                // A KPI the run tracks but the committed baseline
                // predates (schema growth, e.g. `pull_roundtrips`) is
                // adopted at its measured value so the next commit of
                // the baseline starts ratcheting it.
                for (kpi, measured) in run.kpis() {
                    if !cell.kpis.iter().any(|(k, _)| k == kpi) {
                        cell.kpis.push((kpi.to_string(), measured));
                    }
                }
                cell.kpis.sort();
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cell: &str, wall: u64) -> RunRecord {
        RunRecord {
            plan: "demo".into(),
            cell: cell.into(),
            prov: 0,
            seed: 1,
            git: "g".into(),
            host: "h".into(),
            source: "run".into(),
            backend: "sim".into(),
            pattern: "lcs".into(),
            vertices: 1000,
            places: 2,
            coalesce: "off".into(),
            tile: 1,
            cache: 64,
            fingerprint: "0xabcd".into(),
            computed: 1000,
            recoveries: 0,
            frames: 100,
            bytes: 1000,
            sim_us: 500,
            wall_us: wall,
            pull_roundtrips: 40,
        }
    }

    fn spec() -> RatchetSpec {
        let mut s = RatchetSpec::from_run("demo", 7, &[record("a", 1000)]);
        s.tolerances
            .push(("wall_us".into(), Tolerance { rel: 0.5, abs: 0 }));
        s
    }

    #[test]
    fn round_trip_through_toml() {
        let s = spec();
        let parsed = RatchetSpec::parse(&s.render()).unwrap();
        assert_eq!(s, parsed);
    }

    #[test]
    fn within_tolerance_passes_and_breach_fails() {
        let s = spec();
        // wall 1400 < 1000 * 1.5 → pass.
        let ok = s.compare(7, &[record("a", 1400)]).unwrap();
        assert!(ok.passed());
        // wall 2000 > 1500 → regression.
        let bad = s.compare(7, &[record("a", 2000)]).unwrap();
        assert!(!bad.passed());
        assert!(
            bad.regressions[0].contains("wall_us"),
            "{:?}",
            bad.regressions
        );
    }

    #[test]
    fn deterministic_kpis_have_zero_tolerance() {
        let s = spec();
        let mut r = record("a", 1000);
        r.computed += 1;
        let rep = s.compare(7, &[r]).unwrap();
        assert!(!rep.passed());
        assert!(rep.regressions[0].contains("computed"));
    }

    #[test]
    fn improvement_passes_and_tightens_only_on_update() {
        let s = spec();
        let faster = record("a", 400);
        let rep = s.compare(7, std::slice::from_ref(&faster)).unwrap();
        assert!(rep.passed());
        assert!(rep
            .improvements
            .iter()
            .any(|(_, k, b, m)| k == "wall_us" && *b == 1000 && *m == 400));
        // compare() left the spec untouched; tightened() takes the min.
        assert_eq!(
            s.cells[0]
                .kpis
                .iter()
                .find(|(k, _)| k == "wall_us")
                .unwrap()
                .1,
            1000
        );
        let tight = s.tightened(&[faster]);
        assert_eq!(
            tight.cells[0]
                .kpis
                .iter()
                .find(|(k, _)| k == "wall_us")
                .unwrap()
                .1,
            400
        );
        // Tightening never loosens: a slower rerun keeps the old floor.
        let loose = tight.tightened(&[record("a", 5000)]);
        assert_eq!(
            loose.cells[0]
                .kpis
                .iter()
                .find(|(k, _)| k == "wall_us")
                .unwrap()
                .1,
            400
        );
    }

    #[test]
    fn structural_mismatches_are_hard_errors() {
        let s = spec();
        // Digest drift.
        assert!(s
            .compare(8, &[record("a", 1000)])
            .unwrap_err()
            .contains("digest"));
        // Baseline cell missing from the run.
        assert!(s.compare(7, &[]).unwrap_err().contains("not produced"));
        // Run cell missing from the baseline.
        let err = s
            .compare(7, &[record("a", 1000), record("b", 1)])
            .unwrap_err();
        assert!(err.contains("does not ratchet"), "{err}");
        // Fingerprint drift.
        let mut r = record("a", 1000);
        r.fingerprint = "0xffff".into();
        assert!(s.compare(7, &[r]).unwrap_err().contains("fingerprint"));
        // Renamed KPI.
        let mut renamed = s.clone();
        renamed.cells[0].kpis[0].0 = "walls_us".into();
        let err = renamed.compare(7, &[record("a", 1000)]).unwrap_err();
        assert!(err.contains("no longer"), "{err}");
    }

    #[test]
    fn malformed_baselines_diagnose_precisely() {
        for (text, needle) in [
            ("plan_digest = \"7\"\n[cells.\"a\"]\nfingerprint = \"0x1\"\ncomputed = 1\n", "missing top-level `plan"),
            ("plan = \"p\"\n[cells.\"a\"]\nfingerprint = \"0x1\"\ncomputed = 1\n", "plan_digest"),
            (
                "plan = \"p\"\nplan_digest = \"7\"\n[tolerances.walrus]\nrel = 0.5\n",
                "no known KPI",
            ),
            (
                "plan = \"p\"\nplan_digest = \"7\"\n[cells.\"a\"]\ncomputed = 1\n",
                "fingerprint",
            ),
            (
                "plan = \"p\"\nplan_digest = \"7\"\n[cells.\"a\"]\nfingerprint = \"0x1\"\nbananas = 9\n",
                "unknown KPI `bananas`",
            ),
            (
                "plan = \"p\"\nplan_digest = \"7\"\n[cells.\"a\"]\nfingerprint = \"0x1\"\ncomputed = -4\n",
                "non-negative",
            ),
            ("plan = \"p\"\nplan_digest = \"7\"\n", "no [cells"),
        ] {
            let e = RatchetSpec::parse(text).unwrap_err();
            assert!(e.contains(needle), "`{needle}` not in `{e}`");
        }
    }
}

//! Regenerates every figure of the paper's evaluation (§VIII) on the
//! simulated cluster, plus this reproduction's ablations.
//!
//! ```text
//! cargo run --release -p dpx10-bench --bin figures -- all
//! cargo run --release -p dpx10-bench --bin figures -- fig10 --vertices 1000000
//! cargo run --release -p dpx10-bench --bin figures -- fig12 --csv results/
//! ```
//!
//! The paper runs 10⁸–10⁹ vertices on real nodes; the harness defaults to
//! a scale of 10⁵–10⁶ simulated vertices so the full suite finishes in
//! minutes (`--vertices` raises it). Shapes, not absolute seconds, are
//! the reproduction target — see EXPERIMENTS.md.

use std::path::PathBuf;
use std::time::Duration;

use std::cell::RefCell;

use dpx10_bench::registry::{self, RunRecord};
use dpx10_bench::{
    run_recovery, run_sim, run_sim_with, sim_overhead_pair, threaded_overhead_pair, AppKind, Chart,
    Table,
};
use dpx10_core::{DistKind, PlaceId, RestoreManner, RunReport, ScheduleStrategy};
use dpx10_sim::SimFaultPlan;

/// The pinned plan digest for figure-sourced registry rows: there is no
/// plan TOML to hash, but rows still need a stable digest so the same
/// figure cell re-run on the same commit+host collides to the same
/// provenance hash, exactly like `dpx10 bench --plan` rows.
const FIGURES_PLAN_DIGEST: u64 = 0x6669_6775_7265_7321; // "figures!"

struct Opts {
    vertices: u64,
    csv: Option<PathBuf>,
    svg: Option<PathBuf>,
    /// Append figure runs to this registry CSV (provenance-hashed rows,
    /// `source = "figures"`, same schema as `dpx10 bench --plan`).
    registry: Option<PathBuf>,
    rows: RefCell<Vec<RunRecord>>,
}

impl Opts {
    /// Records one figure run as a registry row. The simulator figures
    /// report makespans, not result digests, so the fingerprint column
    /// carries the `-` placeholder the seed-import rows pinned.
    fn record(&self, figure: &str, app: AppKind, vertices: u64, nodes: u16, report: &RunReport) {
        if self.registry.is_none() {
            return;
        }
        let git = registry::git_describe();
        let host = registry::host_fingerprint();
        let cell = format!("{figure}/sim/{}/v{vertices}/n{nodes}", app.name());
        self.rows.borrow_mut().push(RunRecord {
            prov: RunRecord::provenance(FIGURES_PLAN_DIGEST, &cell, &git, &host),
            plan: "figures".into(),
            cell,
            seed: 1,
            git,
            host,
            source: "figures".into(),
            backend: "sim".into(),
            pattern: app.name().into(),
            vertices,
            places: nodes,
            coalesce: "off".into(),
            tile: 1,
            cache: 4096,
            fingerprint: "-".into(),
            computed: report.vertices_computed,
            recoveries: report.recoveries.len() as u64,
            frames: report.comm.messages_sent,
            bytes: report.comm.bytes_sent,
            sim_us: report.sim_time.as_micros() as u64,
            wall_us: report.wall_time.as_micros() as u64,
            pull_roundtrips: report.comm.pulls_sent,
        });
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "all".to_string());
    let mut opts = Opts {
        vertices: 1_000_000,
        csv: None,
        svg: None,
        registry: None,
        rows: RefCell::new(Vec::new()),
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--vertices" => {
                opts.vertices = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--vertices N");
            }
            "--csv" => {
                opts.csv = Some(PathBuf::from(args.next().expect("--csv DIR")));
            }
            "--svg" => {
                opts.svg = Some(PathBuf::from(args.next().expect("--svg DIR")));
            }
            "--registry" => {
                opts.registry = Some(PathBuf::from(args.next().expect("--registry FILE")));
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    match cmd.as_str() {
        "fig10" => fig10(&opts),
        "fig11" => fig11(&opts),
        "fig12" => fig12(&opts),
        "fig13" => fig13(&opts),
        "ablation" => ablation(&opts),
        "nested" => nested(&opts),
        "all" => {
            fig10(&opts);
            fig11(&opts);
            fig12(&opts);
            fig13(&opts);
            ablation(&opts);
            nested(&opts);
        }
        other => {
            eprintln!("usage: figures [all|fig10|fig11|fig12|fig13|ablation|nested] [--vertices N] [--csv DIR] [--svg DIR] [--registry FILE]");
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }

    if let Some(path) = &opts.registry {
        let rows = opts.rows.borrow();
        registry::append(path, &rows).expect("append figure rows to registry");
        println!(
            "registry: appended {} rows to {}",
            rows.len(),
            path.display()
        );
    }
}

fn emit(table: Table, opts: &Opts) {
    print!("{}", table.render());
    println!();
    if let Some(dir) = &opts.csv {
        let path = table.write_csv(dir).expect("write csv");
        println!("  -> {}", path.display());
    }
}

fn emit_chart(chart: Chart, opts: &Opts) {
    if let Some(dir) = &opts.svg {
        let path = chart.write_svg(dir).expect("write svg");
        println!("  -> {}", path.display());
    }
}

fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Fig. 10: execution time of the four apps, 300 M-vertex-equivalent,
/// 2 → 12 nodes. Paper shape: time drops steeply then plateaus; speedup
/// ≈4 (SWLAG/MTP/LPS) and ≈3 (0/1KP) for the 6× node increase.
fn fig10(opts: &Opts) {
    let nodes = [2u16, 4, 6, 8, 10, 12];
    let mut table = Table::new(
        format!("Fig 10: runtime vs nodes ({} vertices)", opts.vertices),
        &["nodes", "SWLAG_s", "MTP_s", "LPS_s", "01KP_s"],
    );
    let mut first: Option<Vec<Duration>> = None;
    let mut last: Option<Vec<Duration>> = None;
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
    for &n in &nodes {
        let row: Vec<Duration> = AppKind::ALL
            .iter()
            .map(|&app| {
                let report = run_sim(app, opts.vertices, n);
                opts.record("fig10", app, opts.vertices, n, &report);
                report.sim_time
            })
            .collect();
        for (k, t) in row.iter().enumerate() {
            series[k].push((n as f64, t.as_secs_f64()));
        }
        table.row(&[
            n.to_string(),
            secs(row[0]),
            secs(row[1]),
            secs(row[2]),
            secs(row[3]),
        ]);
        if first.is_none() {
            first = Some(row.clone());
        }
        last = Some(row);
    }
    emit(table, opts);
    let mut chart = Chart::new("Fig 10: runtime vs nodes", "nodes", "simulated seconds");
    for (k, app) in AppKind::ALL.iter().enumerate() {
        chart = chart.series(app.name(), series[k].clone());
    }
    emit_chart(chart, opts);

    let (first, last) = (first.unwrap(), last.unwrap());
    let mut speedups = Table::new(
        "Fig 10 summary: speedup 2 nodes -> 12 nodes (paper: ~4x for a-c, ~3x for d)",
        &["app", "speedup"],
    );
    for (k, app) in AppKind::ALL.iter().enumerate() {
        speedups.row(&[
            app.name().to_string(),
            format!("{:.2}", first[k].as_secs_f64() / last[k].as_secs_f64()),
        ]);
    }
    emit(speedups, opts);
}

/// Fig. 11: execution time on 10 nodes, vertices 100 M → 1 B
/// (scaled to 10 % → 100 % of `--vertices` × 4). Paper shape: linear in
/// graph size, with 0/1KP slightly above the others.
fn fig11(opts: &Opts) {
    let max = opts.vertices * 4;
    let mut table = Table::new(
        format!("Fig 11: runtime vs vertices on 10 nodes (up to {max})"),
        &["vertices", "SWLAG_s", "MTP_s", "LPS_s", "01KP_s"],
    );
    let mut sizes = Vec::new();
    let mut swlag_times = Vec::new();
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
    for k in 1..=10u64 {
        let v = max * k / 10;
        let row: Vec<Duration> = AppKind::ALL
            .iter()
            .map(|&app| {
                let report = run_sim(app, v, 10);
                opts.record("fig11", app, v, 10, &report);
                report.sim_time
            })
            .collect();
        for (s_idx, t) in row.iter().enumerate() {
            series[s_idx].push((v as f64, t.as_secs_f64()));
        }
        sizes.push(v as f64);
        swlag_times.push(row[0].as_secs_f64());
        table.row(&[
            v.to_string(),
            secs(row[0]),
            secs(row[1]),
            secs(row[2]),
            secs(row[3]),
        ]);
    }
    emit(table, opts);
    let mut chart = Chart::new(
        "Fig 11: runtime vs vertices (10 nodes)",
        "vertices",
        "simulated seconds",
    );
    for (k, app) in AppKind::ALL.iter().enumerate() {
        chart = chart.series(app.name(), series[k].clone());
    }
    emit_chart(chart, opts);
    println!(
        "  linearity check (SWLAG): R^2 = {:.4} (paper: \"linear scalability with the graph size\")\n",
        r_squared(&sizes, &swlag_times)
    );
}

/// Fig. 12: DPX10 vs hand-written native SWLAG on 4 and 8 nodes
/// (simulated makespans) plus real wall-clock pairs on this host.
/// Paper shape: DPX10/X10 ratio ≈ 1.02–1.12.
fn fig12(opts: &Opts) {
    let mut table = Table::new(
        "Fig 12: DPX10 vs native X10 (SWLAG, simulated, identical comm config)",
        &["nodes", "vertices", "dpx10_s", "native_s", "ratio"],
    );
    let mut ratio_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for &nodes in &[4u16, 8] {
        let mut pts = Vec::new();
        for k in 1..=5u64 {
            let v = opts.vertices * k / 5;
            let (fw, native) = sim_overhead_pair(v, nodes);
            let ratio = fw.as_secs_f64() / native.as_secs_f64();
            pts.push((v as f64, ratio));
            table.row(&[
                nodes.to_string(),
                v.to_string(),
                secs(fw),
                secs(native),
                format!("{ratio:.3}"),
            ]);
        }
        ratio_series.push((format!("{nodes} nodes"), pts));
    }
    emit(table, opts);
    let mut chart = Chart::new("Fig 12 (b): DPX10 / native X10 ratio", "vertices", "ratio");
    for (name, pts) in ratio_series {
        chart = chart.series(name, pts);
    }
    emit_chart(chart, opts);

    let mut wall = Table::new(
        "Fig 12 (wall clock on this host): threaded engine vs hand-written pipeline",
        &["side", "places", "dpx10_ms", "native_ms", "ratio"],
    );
    for &side in &[200usize, 400, 600] {
        let (fw, native) = threaded_overhead_pair(side, 2);
        wall.row(&[
            side.to_string(),
            "2".to_string(),
            format!("{:.1}", fw.as_secs_f64() * 1e3),
            format!("{:.1}", native.as_secs_f64() * 1e3),
            format!("{:.2}", fw.as_secs_f64() / native.as_secs_f64()),
        ]);
    }
    emit(wall, opts);
    println!("  note: the wall-clock pair compares the framework against a hand-tight");
    println!("  Rust pipeline; the paper's native comparator kept X10's per-vertex");
    println!("  activity machinery, so its 1.02-1.12 band corresponds to the simulated");
    println!("  table above, while this wall-clock ratio bounds the absolute per-vertex");
    println!("  cost of the framework machinery itself.\n");
}

/// Fig. 13: (a) recovery time vs size on 4 and 8 nodes — linear in
/// size, ~2× faster on 8 nodes; (b) normalized one-fault runtime vs
/// nodes — overhead shrinks as nodes grow.
fn fig13(opts: &Opts) {
    let mut a = Table::new(
        "Fig 13 (a): recovery time vs vertices",
        &["vertices", "nodes4_ms", "nodes8_ms"],
    );
    let (mut s4, mut s8) = (Vec::new(), Vec::new());
    for k in 1..=5u64 {
        let v = opts.vertices * k / 5;
        let (_, _, rec4) = run_recovery(v, 4, RestoreManner::RecomputeRemote);
        let (_, _, rec8) = run_recovery(v, 8, RestoreManner::RecomputeRemote);
        s4.push((v as f64, rec4.as_secs_f64() * 1e3));
        s8.push((v as f64, rec8.as_secs_f64() * 1e3));
        a.row(&[
            v.to_string(),
            format!("{:.3}", rec4.as_secs_f64() * 1e3),
            format!("{:.3}", rec8.as_secs_f64() * 1e3),
        ]);
    }
    emit(a, opts);
    emit_chart(
        Chart::new(
            "Fig 13 (a): recovery time vs vertices",
            "vertices",
            "recovery ms",
        )
        .series("4 nodes", s4)
        .series("8 nodes", s8),
        opts,
    );

    let mut b = Table::new(
        "Fig 13 (b): normalized execution time with one mid-run fault",
        &["nodes", "clean_s", "faulty_s", "normalized"],
    );
    let mut norm = Vec::new();
    for &nodes in &[2u16, 4, 6, 8, 10, 12] {
        let (clean, faulty, _) = run_recovery(opts.vertices, nodes, RestoreManner::RecomputeRemote);
        let ratio = faulty.as_secs_f64() / clean.as_secs_f64();
        norm.push((nodes as f64, ratio));
        b.row(&[
            nodes.to_string(),
            secs(clean),
            secs(faulty),
            format!("{ratio:.3}"),
        ]);
    }
    emit(b, opts);
    emit_chart(
        Chart::new(
            "Fig 13 (b): normalized one-fault runtime",
            "nodes",
            "faulty / clean",
        )
        .series("SWLAG", norm),
        opts,
    );
}

/// Ablations over the §VI-E refinements and the §X extensions.
fn ablation(opts: &Opts) {
    // Cache size (§VI-E "Cache size").
    let mut cache = Table::new(
        "Ablation: cache capacity (SWLAG, cyclic columns)",
        &["capacity", "makespan_s", "hits", "misses"],
    );
    for &cap in &[0usize, 1, 16, 256, 4096] {
        let report = run_sim_with(AppKind::Swlag, opts.vertices / 5, 4, |c| {
            c.with_dist(DistKind::CyclicCol).with_cache(cap)
        });
        cache.row(&[
            cap.to_string(),
            secs(report.sim_time),
            report.comm.cache_hits.to_string(),
            report.comm.cache_misses.to_string(),
        ]);
    }
    emit(cache, opts);

    // Scheduling strategy (§VI-C).
    let mut sched = Table::new(
        "Ablation: scheduling strategy (MTP)",
        &["strategy", "makespan_s", "messages", "bytes"],
    );
    for strat in ScheduleStrategy::ALL {
        let report = run_sim_with(AppKind::Mtp, opts.vertices / 5, 4, |c| {
            c.with_schedule(strat)
        });
        sched.row(&[
            strat.name().to_string(),
            secs(report.sim_time),
            report.comm.messages_sent.to_string(),
            report.comm.bytes_sent.to_string(),
        ]);
    }
    emit(sched, opts);

    // Distribution (§VI-E "Distribution of DAG"): knapsack by row vs col.
    let mut dist = Table::new(
        "Ablation: distribution (0/1KP)",
        &["distribution", "makespan_s", "messages"],
    );
    for (name, kind) in [
        ("block-row", DistKind::BlockRow),
        ("block-col", DistKind::BlockCol),
        ("cyclic-row", DistKind::CyclicRow),
    ] {
        let report = run_sim_with(AppKind::Knapsack, opts.vertices / 5, 4, |c| {
            c.with_dist(kind)
        });
        dist.row(&[
            name.to_string(),
            secs(report.sim_time),
            report.comm.messages_sent.to_string(),
        ]);
    }
    emit(dist, opts);

    // Restore manner (§VI-E "Restore manner").
    let mut restore = Table::new(
        "Ablation: restore manner after one fault (SWLAG)",
        &["manner", "faulty_s", "recovery_ms", "recomputed"],
    );
    for (name, manner) in [
        ("recompute-remote", RestoreManner::RecomputeRemote),
        ("copy-remote", RestoreManner::CopyRemote),
    ] {
        let report = run_sim_with(AppKind::Swlag, opts.vertices / 5, 4, |c| {
            c.with_restore(manner)
                .with_fault(SimFaultPlan::mid_run(PlaceId(7)))
        });
        restore.row(&[
            name.to_string(),
            secs(report.sim_time),
            format!("{:.3}", report.recovery_time.as_secs_f64() * 1e3),
            report.recomputed().to_string(),
        ]);
    }
    emit(restore, opts);

    // Ready-list policy (extension; sim::ready): ordering the ready list.
    let mut policies = Table::new(
        "Ablation: ready-list policy (SWLAG)",
        &["policy", "makespan_s", "utilization_pct"],
    );
    {
        use dpx10_sim::ReadyPolicy;
        for policy in ReadyPolicy::ALL {
            let report = run_sim_with(AppKind::Swlag, opts.vertices / 5, 4, |c| {
                c.with_ready_policy(policy)
            });
            let util = report.utilization(6).unwrap_or(0.0) * 100.0;
            policies.row(&[
                policy.name().to_string(),
                secs(report.sim_time),
                format!("{util:.1}"),
            ]);
        }
    }
    emit(policies, opts);

    // Tiled execution (extension; core::tiled): amortising the per-vertex
    // overhead and batching boundary messages.
    let mut tiles = Table::new(
        "Ablation: tile size (SWLAG on the simulated cluster)",
        &["tile", "scheduled_vertices", "makespan_s", "messages"],
    );
    {
        use dpx10_apps::{workload, SwlagApp};
        use dpx10_core::tiled::TiledApp;
        use dpx10_dag::TiledDag;
        use dpx10_sim::{CostModel, SimConfig, SimEngine};
        use std::sync::Arc;

        let n = workload::side_for_vertices(opts.vertices / 5) as usize;
        for &tile in &[1u32, 4, 16, 64] {
            let app = SwlagApp::new(workload::dna(n, 1), workload::dna(n, 2));
            let geometry = Arc::new(TiledDag::new(app.pattern(), tile));
            let tiled_app = TiledApp::new(app, geometry.clone());
            // The macro-vertex costs t^2 cell computations; overhead is
            // paid once per tile.
            let cell = 90u64;
            let cost = CostModel {
                compute: std::time::Duration::from_nanos(cell * (tile as u64).pow(2)),
                ..CostModel::default()
            };
            let report = SimEngine::new(tiled_app, geometry, SimConfig::paper(4).with_cost(cost))
                .run()
                .unwrap()
                .report()
                .clone();
            tiles.row(&[
                tile.to_string(),
                report.vertices_total.to_string(),
                secs(report.sim_time),
                report.comm.messages_sent.to_string(),
            ]);
        }
    }
    emit(tiles, opts);

    // The 2D/iD caveat (§III): a 2D/1D pattern's per-vertex cost.
    let mut heavy = Table::new(
        "Ablation: 2D/0D vs 2D/1D pattern cost (paper SIII caveat)",
        &[
            "pattern",
            "vertices",
            "makespan_s",
            "normalized_per_vertex_ns",
        ],
    );
    {
        use dpx10_core::{DepView, DpApp};
        use dpx10_dag::{builtin::*, VertexId};
        use dpx10_sim::{SimConfig, SimEngine};

        #[derive(Clone)]
        struct Sum;
        impl DpApp for Sum {
            type Value = u64;
            fn compute(&self, _id: VertexId, deps: &DepView<'_, u64>) -> u64 {
                deps.values().iter().sum::<u64>() + 1
            }
        }
        let n = 96u32;
        for (name, run) in [
            (
                "grid3 (2D/0D)",
                SimEngine::new(Sum, Grid3::new(n, n), SimConfig::paper(4))
                    .run()
                    .unwrap(),
            ),
            (
                "full-prev-row-col (2D/1D)",
                SimEngine::new(Sum, FullPrevRowCol::new(n, n), SimConfig::paper(4))
                    .run()
                    .unwrap(),
            ),
        ] {
            let rep = run.report();
            let per_vertex = rep.sim_time.as_nanos() as f64 / rep.vertices_total as f64;
            heavy.row(&[
                name.to_string(),
                rep.vertices_total.to_string(),
                secs(rep.sim_time),
                format!("{per_vertex:.0}"),
            ]);
        }
    }
    emit(heavy, opts);
}

/// Fig. 10-style scaling curve for the nested-dataflow extension: GAP
/// runtime vs places on the threaded engine, prefix aggregation on vs
/// off. Each GAP cell depends on its whole row and column prefix; the
/// aggregated path reads that interval as one O(1) prefix-min lane
/// lookup, so its curve tracks the O(1)-degree apps of Fig. 10, while
/// the enumerated path pays the O(n) interval walk per cell.
fn nested(opts: &Opts) {
    use dpx10_apps::{workload, GapApp};
    use dpx10_core::{EngineConfig, ThreadedEngine};

    let side = workload::side_for_vertices(opts.vertices / 4);
    let places = [2u16, 4, 6, 8, 10, 12];
    let mut table = Table::new(
        format!(
            "Fig 10-style: GAP runtime vs places ({} vertices, nested dataflow)",
            u64::from(side) * u64::from(side)
        ),
        &["places", "agg_on_s", "agg_off_s", "agg_off_over_on"],
    );
    let (mut on_pts, mut off_pts) = (Vec::new(), Vec::new());
    for &p in &places {
        let run = |agg: bool| {
            let app = GapApp::new(side, side, 1);
            ThreadedEngine::new(
                app,
                app.pattern(),
                EngineConfig::flat(p).with_aggregation(agg),
            )
            .run()
            .expect("gap run")
            .report()
            .clone()
        };
        let on = run(true).wall_time;
        let off = run(false).wall_time;
        on_pts.push((f64::from(p), on.as_secs_f64()));
        off_pts.push((f64::from(p), off.as_secs_f64()));
        table.row(&[
            p.to_string(),
            secs(on),
            secs(off),
            format!("{:.2}", off.as_secs_f64() / on.as_secs_f64()),
        ]);
    }
    emit(table, opts);
    emit_chart(
        Chart::new(
            "Fig 10-style: GAP scaling, prefix aggregation vs enumeration",
            "places",
            "wall seconds",
        )
        .series("agg on (O(1) reads)", on_pts)
        .series("agg off (O(n) reads)", off_pts),
        opts,
    );
}

/// R² of a least-squares line through `(x, y)`.
fn r_squared(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let sxx: f64 = x.iter().map(|a| (a - mx).powi(2)).sum();
    let syy: f64 = y.iter().map(|b| (b - my).powi(2)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return 1.0;
    }
    (sxy * sxy) / (sxx * syy)
}

//! Application runners on the simulated cluster (and the two Fig. 12
//! comparators), parameterised exactly along the paper's sweep axes.

use std::time::Duration;

use dpx10_apps::{workload, KnapsackApp, LpsApp, MtpApp, SwlagApp};
use dpx10_baseline::{framework_cost_model, native_cost_model, NativeSwlag};
use dpx10_core::{
    DistKind, EngineConfig, FaultPlan, PlaceId, RestoreManner, RunReport, ThreadedEngine,
};
use dpx10_sim::{SimConfig, SimEngine, SimFaultPlan};

/// The four evaluation applications of §VIII.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppKind {
    /// Smith-Waterman, linear + affine gap.
    Swlag,
    /// Manhattan Tourists Problem.
    Mtp,
    /// Longest Palindromic Subsequence.
    Lps,
    /// 0/1 Knapsack Problem.
    Knapsack,
}

impl AppKind {
    /// All four, in the paper's order.
    pub const ALL: [AppKind; 4] = [
        AppKind::Swlag,
        AppKind::Mtp,
        AppKind::Lps,
        AppKind::Knapsack,
    ];

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Swlag => "SWLAG",
            AppKind::Mtp => "MTP",
            AppKind::Lps => "LPS",
            AppKind::Knapsack => "0/1KP",
        }
    }

    /// SWLAG's affine-gap cell does roughly 1.5× the work of the other
    /// apps' cells; the cost model reflects that (DESIGN.md §6).
    fn compute_ns(self) -> u64 {
        match self {
            AppKind::Swlag => 90,
            _ => 60,
        }
    }

    /// The paper's knapsack runs distribute by row (the recurrence only
    /// looks one row up); grids use the framework default (by column).
    fn dist(self) -> DistKind {
        match self {
            AppKind::Knapsack => DistKind::BlockRow,
            _ => DistKind::BlockCol,
        }
    }
}

/// Knapsack capacity used throughout the harness.
pub const KNAPSACK_CAPACITY: u32 = 999;

/// Runs `app` with ~`vertices` vertices on a simulated `nodes`-node
/// paper cluster, returning the run report (`sim_time` = makespan).
pub fn run_sim(app: AppKind, vertices: u64, nodes: u16) -> RunReport {
    run_sim_with(app, vertices, nodes, |c| c)
}

/// [`run_sim`] with a config hook for ablations.
pub fn run_sim_with(
    app: AppKind,
    vertices: u64,
    nodes: u16,
    tweak: impl FnOnce(SimConfig) -> SimConfig,
) -> RunReport {
    let config = tweak(
        SimConfig::paper(nodes)
            .with_dist(app.dist())
            .with_cost(dpx10_sim::CostModel::with_compute(app.compute_ns())),
    );
    match app {
        AppKind::Swlag => {
            let n = workload::side_for_vertices(vertices) as usize;
            let a = SwlagApp::new(workload::dna(n, 1), workload::dna(n, 2));
            let pattern = a.pattern();
            SimEngine::new(a, pattern, config)
                .run()
                .unwrap()
                .report()
                .clone()
        }
        AppKind::Mtp => {
            let n = workload::side_for_vertices(vertices) + 1;
            let a = MtpApp::new(n, n, 42);
            let pattern = a.pattern();
            SimEngine::new(a, pattern, config)
                .run()
                .unwrap()
                .report()
                .clone()
        }
        AppKind::Lps => {
            let n = ((vertices as f64 * 2.0).sqrt() as usize).max(2);
            let a = LpsApp::new(workload::letters(n, 3));
            let pattern = a.pattern();
            SimEngine::new(a, pattern, config)
                .run()
                .unwrap()
                .report()
                .clone()
        }
        AppKind::Knapsack => {
            let items = workload::knapsack_items(
                workload::knapsack_shape_for_vertices(vertices, KNAPSACK_CAPACITY),
                64,
                4,
            );
            let a = KnapsackApp::new(items, KNAPSACK_CAPACITY);
            let pattern = a.pattern();
            SimEngine::new(a, pattern, config)
                .run()
                .unwrap()
                .report()
                .clone()
        }
    }
}

/// Fig. 12 pairing on the simulator: (DPX10 makespan, native makespan)
/// for SWLAG at ~`vertices` vertices on `nodes` nodes.
///
/// The paper disables the cache on both sides; here both sides run the
/// *same* communication configuration (push-decrement protocol, default
/// cache) and differ only in per-vertex bookkeeping cost — with the
/// cache disabled the simulated run degenerates to pull-latency-bound
/// and the per-vertex overhead becomes invisible (ratio → 1.000), which
/// hides exactly the quantity Fig. 12 measures.
pub fn sim_overhead_pair(vertices: u64, nodes: u16) -> (Duration, Duration) {
    let n = workload::side_for_vertices(vertices) as usize;
    let run = |cost| {
        let a = SwlagApp::new(workload::dna(n, 1), workload::dna(n, 2));
        let pattern = a.pattern();
        SimEngine::new(a, pattern, SimConfig::paper(nodes).with_cost(cost))
            .run()
            .unwrap()
            .report()
            .sim_time
    };
    (run(framework_cost_model(90)), run(native_cost_model(90)))
}

/// Fig. 12 pairing with *real wall time* on this machine: the threaded
/// DPX10 engine vs the hand-written pipeline, same sequences, cache
/// disabled. On a 1-core host both run serially, so the ratio isolates
/// per-vertex framework overhead exactly.
pub fn threaded_overhead_pair(side: usize, places: u16) -> (Duration, Duration) {
    let a = workload::dna(side, 1);
    let b = workload::dna(side, 2);

    let app = SwlagApp::new(a.clone(), b.clone());
    let pattern = app.pattern();
    let fw = ThreadedEngine::new(app, pattern, EngineConfig::flat(places).with_cache(0))
        .run()
        .unwrap()
        .report()
        .wall_time;

    let t0 = std::time::Instant::now();
    let native = NativeSwlag::new(a, b, places);
    std::hint::black_box(native.run());
    (fw, t0.elapsed())
}

/// Fig. 13 runner: SWLAG with a mid-run failure on a `nodes`-node
/// simulated cluster. Returns (clean makespan, faulty makespan,
/// recovery time).
pub fn run_recovery(
    vertices: u64,
    nodes: u16,
    manner: RestoreManner,
) -> (Duration, Duration, Duration) {
    let clean = run_sim(AppKind::Swlag, vertices, nodes).sim_time;
    let report = run_sim_with(AppKind::Swlag, vertices, nodes, |c| {
        c.with_restore(manner)
            .with_fault(SimFaultPlan::mid_run(PlaceId(Topo::victim(nodes))))
    });
    (clean, report.sim_time, report.recovery_time)
}

/// Picks the last place as the fault victim (never place 0).
struct Topo;

impl Topo {
    fn victim(nodes: u16) -> u16 {
        2 * nodes - 1
    }
}

/// A threaded-engine fault run for the recovery tests/benches on real
/// threads (small scale).
pub fn threaded_recovery(side: u32, places: u16) -> RunReport {
    let app = MtpApp::new(side, side, 5);
    let pattern = app.pattern();
    ThreadedEngine::new(
        app,
        pattern,
        EngineConfig::flat(places)
            .with_dist(DistKind::BlockRow)
            .with_fault(FaultPlan::mid_run(PlaceId(places - 1))),
    )
    .run()
    .unwrap()
    .report()
    .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runners_produce_sane_reports() {
        for app in AppKind::ALL {
            let report = run_sim(app, 20_000, 2);
            assert!(report.sim_time > Duration::ZERO, "{app:?}");
            assert_eq!(report.vertices_computed, report.vertices_total);
        }
    }

    #[test]
    fn overhead_pair_framework_is_slower() {
        let (fw, native) = sim_overhead_pair(20_000, 2);
        assert!(fw > native);
        let ratio = fw.as_secs_f64() / native.as_secs_f64();
        assert!(ratio < 1.5, "overhead ratio {ratio} should be modest");
    }

    #[test]
    fn recovery_run_costs_time() {
        let (clean, faulty, rec) = run_recovery(20_000, 2, RestoreManner::RecomputeRemote);
        assert!(faulty > clean);
        assert!(rec > Duration::ZERO);
    }
}

//! Multi-producer multi-consumer channels with `crossbeam-channel`
//! calling conventions, built on `Mutex` + `Condvar`.
//!
//! Both [`Sender`] and [`Receiver`] are `Clone`. Disconnection follows
//! crossbeam's rules: a receive on an empty channel whose senders are
//! all gone fails with `Disconnected`; a send into a channel whose
//! receivers are all gone fails with [`SendError`].

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Chan<T> {
    fn no_senders(&self) -> bool {
        self.senders.load(Ordering::Acquire) == 0
    }
    fn no_receivers(&self) -> bool {
        self.receivers.load(Ordering::Acquire) == 0
    }
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Cloneable — clones share the same
/// queue, each message is delivered to exactly one receiver.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel: `send` blocks while `cap` messages are
/// queued. A capacity of zero is rounded up to one (our engines never
/// rely on rendezvous semantics).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let chan = &*self.chan;
        let mut queue = chan.queue.lock();
        loop {
            if chan.no_receivers() {
                return Err(SendError(value));
            }
            match chan.cap {
                Some(cap) if queue.len() >= cap => {
                    // Re-check disconnection at least every 10ms so a
                    // send into a full, abandoned channel cannot hang.
                    chan.not_full
                        .wait_for(&mut queue, Duration::from_millis(10));
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        chan.not_empty.notify_one();
        Ok(())
    }

    /// Sends without blocking; returns the message if the channel is
    /// full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        let chan = &*self.chan;
        let mut queue = chan.queue.lock();
        if chan.no_receivers() {
            return Err(SendError(value));
        }
        if let Some(cap) = chan.cap {
            if queue.len() >= cap {
                return Err(SendError(value));
            }
        }
        queue.push_back(value);
        drop(queue);
        chan.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.queue.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake every blocked receiver. Taking the
            // queue lock first serialises with a receiver's
            // check-then-wait, so the notification cannot fall between
            // its disconnect check and its wait.
            let guard = self.chan.queue.lock();
            drop(guard);
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or every sender
    /// is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let chan = &*self.chan;
        let mut queue = chan.queue.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                chan.not_full.notify_one();
                return Ok(v);
            }
            if chan.no_senders() {
                return Err(RecvError);
            }
            chan.not_empty.wait(&mut queue);
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let chan = &*self.chan;
        let mut queue = chan.queue.lock();
        if let Some(v) = queue.pop_front() {
            drop(queue);
            chan.not_full.notify_one();
            return Ok(v);
        }
        if chan.no_senders() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let chan = &*self.chan;
        let mut queue = chan.queue.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                chan.not_full.notify_one();
                return Ok(v);
            }
            if chan.no_senders() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            chan.not_empty.wait_for(&mut queue, deadline - now);
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.queue.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator that ends when the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.chan.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver gone: wake every blocked sender (same
            // lock-then-notify ordering as the sender side).
            let guard = self.chan.queue.lock();
            drop(guard);
            self.chan.not_full.notify_all();
        }
    }
}

/// Blocking iterator over received messages; see [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        for i in 0..400 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(tx.try_send(3).is_err());
        let h = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn recv_timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}

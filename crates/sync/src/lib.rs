//! Std-only synchronisation primitives for the DPX10 workspace.
//!
//! The repository builds in fully offline environments, so the runtime
//! cannot pull `crossbeam` or `parking_lot` from a registry. This crate
//! provides the small API surface those crates were used for, built on
//! `std::sync` alone:
//!
//! * [`Mutex`] / [`Condvar`] — `parking_lot`-style (no lock poisoning,
//!   `lock()` returns the guard directly).
//! * [`channel`] — multi-producer **multi-consumer** channels with the
//!   `crossbeam-channel` calling conventions (`Receiver` is `Clone`,
//!   `recv_timeout`, `len`, `iter`).
//! * [`SegQueue`] — an unbounded MPMC queue.
//!
//! The implementations favour simplicity and correctness over raw
//! throughput; every queue is a `VecDeque` behind a `Mutex`. For the
//! message rates the engines generate this is far from the bottleneck
//! (the socket backend is bounded by syscalls, the threaded backend by
//! vertex compute).

#![warn(missing_docs)]

pub mod channel;

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A mutual-exclusion lock in the `parking_lot` style: `lock()` returns
/// the guard directly and panicking while holding the lock does not
/// poison it for other threads.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The guard is stored as an `Option` so [`Condvar::wait`] can hand it
/// to `std::sync::Condvar` (which consumes and returns guards by value)
/// while our API takes `&mut` like `parking_lot`. The option is only
/// ever `None` transiently inside `Condvar` methods.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(match self.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

/// A condition variable paired with [`Mutex`], mirroring the
/// `parking_lot` API (`wait` takes the guard by `&mut`).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let owned = guard.inner.take().expect("guard present outside wait");
        guard.inner = Some(match self.inner.wait(owned) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses. Returns `true` when
    /// the wait **timed out** (matching `parking_lot::WaitTimeoutResult`).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let owned = guard.inner.take().expect("guard present outside wait");
        let (fresh, timed_out) = match self.inner.wait_timeout(owned, timeout) {
            Ok((g, res)) => (g, res.timed_out()),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res.timed_out())
            }
        };
        guard.inner = Some(fresh);
        timed_out
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// An unbounded MPMC queue (stand-in for `crossbeam::queue::SegQueue`).
pub struct SegQueue<T> {
    items: Mutex<VecDeque<T>>,
    len: AtomicUsize,
}

impl<T> SegQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SegQueue {
            items: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Appends an element to the back of the queue.
    pub fn push(&self, value: T) {
        self.items.lock().push_back(value);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops an element from the front of the queue.
    pub fn pop(&self) -> Option<T> {
        let popped = self.items.lock().pop_front();
        if popped.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        popped
    }

    /// Number of queued elements (racy snapshot, like crossbeam's).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_signal() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn segqueue_fifo_across_threads() {
        let q = Arc::new(SegQueue::new());
        let q2 = q.clone();
        let h = thread::spawn(move || {
            for i in 0..1000u32 {
                q2.push(i);
            }
        });
        h.join().unwrap();
        assert_eq!(q.len(), 1000);
        let mut last = None;
        while let Some(v) = q.pop() {
            if let Some(prev) = last {
                assert!(v > prev);
            }
            last = Some(v);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn mutex_survives_holder_panic() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("drop while locked");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}

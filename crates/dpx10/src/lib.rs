//! # dpx10 — a Rust reproduction of the DPX10 framework
//!
//! DPX10 (Wang, Yu, Sun, Meng — ICPP 2015) is a distributed framework
//! for dynamic-programming applications on the X10/APGAS model: the user
//! supplies a **DAG pattern** and a **compute()** kernel, and the
//! framework handles distribution, scheduling, communication and fault
//! tolerance. This crate is the public facade of the reproduction; see
//! the workspace's `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`apgas`] | places, activities, `finish`, mailboxes, fault model, transports (in-memory + TCP sockets) |
//! | [`dag`] | the DAG-pattern library (8 built-ins, knapsack, custom) |
//! | [`distarray`] | `Dist`/`DistArray`, snapshot baseline, new recovery |
//! | [`core`] | the framework engines (threaded + multi-process sockets) and their configuration |
//! | [`sim`] | the deterministic cluster simulator (all figures) |
//! | [`apps`] | SWLAG, MTP, LPS, 0/1KP, LCS + serial oracles |
//! | [`baseline`] | the hand-written "native X10" comparator |
//!
//! ## Quickstart
//!
//! ```
//! use dpx10::prelude::*;
//!
//! let app = dpx10::apps::LcsApp::new(b"ABC".to_vec(), b"DBC".to_vec());
//! let pattern = app.pattern();
//! let result = ThreadedEngine::new(
//!     dpx10::apps::LcsApp::new(b"ABC".to_vec(), b"DBC".to_vec()),
//!     pattern,
//!     EngineConfig::flat(2),
//! )
//! .run()
//! .unwrap();
//! assert_eq!(app.length(&result), 2);
//! assert_eq!(app.backtrack(&result), b"BC");
//! ```

#![warn(missing_docs)]

pub use dpx10_apgas as apgas;
pub use dpx10_apps as apps;
pub use dpx10_baseline as baseline;
pub use dpx10_core as core;
pub use dpx10_dag as dag;
pub use dpx10_distarray as distarray;
pub use dpx10_sim as sim;

/// The names most programs need.
pub mod prelude {
    pub use dpx10_apgas::{
        launch_places, NetworkModel, PlaceId, SocketConfig, Topology, Transport,
    };
    pub use dpx10_core::{
        DagResult, DepView, DistKind, DpApp, EngineConfig, FaultPlan, RestoreManner, RunReport,
        ScheduleStrategy, SocketEngine, ThreadedEngine, VertexValue,
    };
    pub use dpx10_dag::{
        builtin::*, BandedGrid3, BuiltinKind, CustomDag, DagPattern, IntervalSplits, KnapsackDag,
        TiledDag, VertexId,
    };
    pub use dpx10_sim::{CostModel, ReadyPolicy, SimConfig, SimEngine, SimFaultPlan};
}

//! Topology utilities: vertex enumeration, Kahn ordering, wavefront and
//! critical-path analysis.
//!
//! These walk the *whole* graph and are meant for tests, validation and
//! offline analysis at moderate sizes — the runtime engines never
//! materialise the graph.

use crate::{DagPattern, VertexId};

/// Calls `f` for every vertex of `pattern`, in row-major order.
pub fn for_each_vertex<P: DagPattern + ?Sized>(pattern: &P, mut f: impl FnMut(VertexId)) {
    for i in 0..pattern.height() {
        for j in 0..pattern.width() {
            if pattern.contains(i, j) {
                f(VertexId::new(i, j));
            }
        }
    }
}

/// Collects all vertices in row-major order.
pub fn all_vertices<P: DagPattern + ?Sized>(pattern: &P) -> Vec<VertexId> {
    let mut v = Vec::with_capacity(pattern.vertex_count() as usize);
    for_each_vertex(pattern, |id| v.push(id));
    v
}

/// Computes a topological order of the pattern with Kahn's algorithm.
///
/// Returns `None` if the pattern is cyclic or if some vertex can never be
/// scheduled (its indegree never reaches zero) — either means the pattern
/// violates the [`DagPattern`] contract.
pub fn topological_order<P: DagPattern + ?Sized>(pattern: &P) -> Option<Vec<VertexId>> {
    let total = pattern.vertex_count() as usize;
    let index = VertexIndex::new(pattern);
    let mut indegree = vec![0u32; total];
    for_each_vertex(pattern, |id| {
        indegree[index.of(id)] = pattern.indegree(id.i, id.j);
    });

    let mut order = Vec::with_capacity(total);
    let mut queue: Vec<VertexId> = Vec::new();
    for_each_vertex(pattern, |id| {
        if indegree[index.of(id)] == 0 {
            queue.push(id);
        }
    });

    let mut anti = Vec::new();
    while let Some(id) = queue.pop() {
        order.push(id);
        anti.clear();
        pattern.anti_dependencies(id.i, id.j, &mut anti);
        for &succ in &anti {
            let slot = &mut indegree[index.of(succ)];
            debug_assert!(*slot > 0, "anti-dependency underflow at {succ}");
            *slot -= 1;
            if *slot == 0 {
                queue.push(succ);
            }
        }
    }

    (order.len() == total).then_some(order)
}

/// The *wavefront profile*: `profile[s]` is the number of vertices whose
/// longest dependency chain from a source has length `s`.
///
/// The profile length is the critical-path length in steps; its maximum is
/// the peak available parallelism. For an `n × n` [`crate::builtin::Grid3`]
/// the profile is the anti-diagonal lengths `1, 2, …, n, …, 2, 1`.
pub fn wavefront_profile<P: DagPattern + ?Sized>(pattern: &P) -> Vec<u64> {
    let index = VertexIndex::new(pattern);
    let mut level = vec![0u32; pattern.vertex_count() as usize];
    let order = topological_order(pattern).expect("pattern must be acyclic");
    let mut deps = Vec::new();
    let mut profile: Vec<u64> = Vec::new();
    // `topological_order` guarantees deps precede dependents, but the order
    // it returns is LIFO; levels only need deps-before-use, which holds.
    for id in order {
        deps.clear();
        pattern.dependencies(id.i, id.j, &mut deps);
        let lvl = deps
            .iter()
            .map(|d| level[index.of(*d)] + 1)
            .max()
            .unwrap_or(0);
        level[index.of(id)] = lvl;
        let lvl = lvl as usize;
        if profile.len() <= lvl {
            profile.resize(lvl + 1, 0);
        }
        profile[lvl] += 1;
    }
    profile
}

/// Length (in vertices) of the longest dependency chain — the number of
/// inherently sequential steps, a lower bound on parallel makespan.
pub fn critical_path_len<P: DagPattern + ?Sized>(pattern: &P) -> u64 {
    wavefront_profile(pattern).len() as u64
}

/// Dense index of the (possibly masked) vertex set, for analysis passes.
struct VertexIndex {
    width: u32,
    /// `slot[i*width + j]` = dense index, or `u32::MAX` outside the mask.
    slot: Vec<u32>,
}

impl VertexIndex {
    fn new<P: DagPattern + ?Sized>(pattern: &P) -> Self {
        let (h, w) = (pattern.height() as usize, pattern.width() as usize);
        let mut slot = vec![u32::MAX; h * w];
        let mut next = 0u32;
        for i in 0..pattern.height() {
            for j in 0..pattern.width() {
                if pattern.contains(i, j) {
                    slot[i as usize * w + j as usize] = next;
                    next += 1;
                }
            }
        }
        VertexIndex {
            width: pattern.width(),
            slot,
        }
    }

    #[inline]
    fn of(&self, id: VertexId) -> usize {
        let s = self.slot[id.i as usize * self.width as usize + id.j as usize];
        debug_assert_ne!(s, u32::MAX, "vertex {id} outside the pattern");
        s as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::*;
    use crate::{BuiltinKind, KnapsackDag};

    #[test]
    fn topo_order_exists_for_all_builtins() {
        for kind in BuiltinKind::ALL {
            let p = kind.instantiate(7, 7);
            let order = topological_order(&p).unwrap_or_else(|| panic!("{kind:?} cyclic"));
            assert_eq!(order.len() as u64, p.vertex_count());
        }
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let p = Grid3::new(6, 6);
        let order = topological_order(&p).unwrap();
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(k, &v)| (v, k)).collect();
        let mut deps = Vec::new();
        for &v in &order {
            deps.clear();
            p.dependencies(v.i, v.j, &mut deps);
            for d in &deps {
                assert!(pos[d] < pos[&v], "{d} must precede {v}");
            }
        }
    }

    #[test]
    fn grid3_wavefront_is_antidiagonals() {
        let p = Grid3::new(4, 4);
        assert_eq!(wavefront_profile(&p), vec![1, 2, 3, 4, 3, 2, 1]);
        assert_eq!(critical_path_len(&p), 7);
    }

    #[test]
    fn diagonal_pattern_has_max_parallelism() {
        let p = Diagonal::new(4, 4);
        // Chains of length <= 4; level s holds all cells (i,j) with
        // min(i,j) == s.
        assert_eq!(wavefront_profile(&p), vec![7, 5, 3, 1]);
    }

    #[test]
    fn rowwave_levels_are_columns() {
        let p = RowWave::new(3, 5);
        assert_eq!(wavefront_profile(&p), vec![3; 5]);
    }

    #[test]
    fn interval_levels_are_bands() {
        let p = IntervalUpper::new(5);
        // Band `j - i = s` has `n - s` cells.
        assert_eq!(wavefront_profile(&p), vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn knapsack_levels_are_rows() {
        let p = KnapsackDag::new(vec![2, 3, 1], 6);
        // Every row only depends on the previous row.
        assert_eq!(wavefront_profile(&p), vec![7; 4]);
    }

    #[test]
    fn pyramid_levels_are_rows() {
        let p = Pyramid::new(4, 6);
        assert_eq!(wavefront_profile(&p), vec![6; 4]);
    }

    #[test]
    fn fullrowcol_critical_path() {
        let p = FullPrevRowCol::new(3, 3);
        // Longest chain walks alternating row/column steps: length i+j+1.
        assert_eq!(critical_path_len(&p), 5);
    }

    #[test]
    fn all_vertices_row_major() {
        let p = Grid2::new(2, 2);
        assert_eq!(
            all_vertices(&p),
            vec![
                VertexId::new(0, 0),
                VertexId::new(0, 1),
                VertexId::new(1, 0),
                VertexId::new(1, 1)
            ]
        );
    }
}

//! Extension patterns beyond the paper's built-in eight — its stated
//! future work ("Planned and ongoing work of DPX10 also includes
//! developing more DAG patterns", §X).
//!
//! * [`BandedGrid3`] — the banded-alignment variant of Fig. 5 (b): only
//!   cells within `band` of the main diagonal exist, the classic
//!   O(n·band) optimisation of sequence alignment.
//! * [`IntervalSplits`] — the genuinely 2D/1D interval pattern: besides
//!   the three neighbours, `(i, j)` depends on **every split**
//!   `(i, k)`/`(k+1, j)`. This is the dependency structure of
//!   matrix-chain multiplication, optimal BSTs and Nussinov RNA folding
//!   (paper Algorithm 3.2), and the concrete case behind the paper's
//!   "2D/iD performance is less than satisfactory" caveat.

use crate::{DagPattern, VertexId};

/// Banded three-parent grid: vertex `(i, j)` exists iff
/// `|i − j| ≤ band`, with the usual top/left/diagonal edges clipped to
/// the band.
#[derive(Clone, Copy, Debug)]
pub struct BandedGrid3 {
    n: u32,
    band: u32,
}

impl BandedGrid3 {
    /// Creates the banded pattern over an `n × n` matrix.
    pub fn new(n: u32, band: u32) -> Self {
        assert!(n > 0, "pattern must be non-empty");
        BandedGrid3 { n, band }
    }

    /// Band half-width.
    pub fn band(&self) -> u32 {
        self.band
    }

    #[inline]
    fn in_band(&self, i: u32, j: u32) -> bool {
        let d = i.abs_diff(j);
        d <= self.band
    }
}

impl DagPattern for BandedGrid3 {
    fn height(&self) -> u32 {
        self.n
    }

    fn width(&self) -> u32 {
        self.n
    }

    #[inline]
    fn contains(&self, i: u32, j: u32) -> bool {
        i < self.n && j < self.n && self.in_band(i, j)
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.contains(i, j));
        if i > 0 && self.in_band(i - 1, j) {
            out.push(VertexId::new(i - 1, j));
        }
        if j > 0 && self.in_band(i, j - 1) {
            out.push(VertexId::new(i, j - 1));
        }
        if i > 0 && j > 0 {
            out.push(VertexId::new(i - 1, j - 1)); // always in band
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.contains(i, j));
        if i + 1 < self.n && self.in_band(i + 1, j) {
            out.push(VertexId::new(i + 1, j));
        }
        if j + 1 < self.n && self.in_band(i, j + 1) {
            out.push(VertexId::new(i, j + 1));
        }
        if i + 1 < self.n && j + 1 < self.n {
            out.push(VertexId::new(i + 1, j + 1));
        }
    }

    fn vertex_count(&self) -> u64 {
        let (n, b) = (self.n as u64, self.band as u64);
        // Full square minus the two triangles outside the band.
        let tri = |k: u64| k * (k + 1) / 2;
        let outside = if b + 1 >= n { 0 } else { 2 * tri(n - b - 1) };
        n * n - outside
    }

    fn name(&self) -> &str {
        "banded-grid3"
    }
}

/// Interval DP **with splits**: `(i, j)` (for `i ≤ j` in an upper
/// triangle) depends on `(i, k)` and `(k+1, j)` for every `i ≤ k < j`
/// — which subsumes the neighbour edges `(i, j-1)` and `(i+1, j)` —
/// plus the inner interval `(i+1, j-1)` needed by pairing recurrences
/// (Nussinov). Indegree of an interval of length `L` is `2(L-1)` plus
/// one when `L ≥ 3`.
#[derive(Clone, Copy, Debug)]
pub struct IntervalSplits {
    n: u32,
}

impl IntervalSplits {
    /// Creates the pattern over intervals of a length-`n` sequence.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "pattern must be non-empty");
        IntervalSplits { n }
    }
}

impl DagPattern for IntervalSplits {
    fn height(&self) -> u32 {
        self.n
    }

    fn width(&self) -> u32 {
        self.n
    }

    #[inline]
    fn contains(&self, i: u32, j: u32) -> bool {
        i <= j && j < self.n
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.contains(i, j));
        out.reserve(2 * (j - i) as usize + 1);
        for k in i..j {
            out.push(VertexId::new(i, k));
            out.push(VertexId::new(k + 1, j));
        }
        if j >= i + 2 {
            out.push(VertexId::new(i + 1, j - 1));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.contains(i, j));
        // (i, j) is a left part of (i, j') for every j' > j, and a right
        // part of (i', j) for every i' < i.
        for jp in j + 1..self.n {
            out.push(VertexId::new(i, jp));
        }
        for ip in 0..i {
            out.push(VertexId::new(ip, j));
        }
        // (i, j) is the inner interval of (i-1, j+1).
        if i > 0 && j + 1 < self.n {
            out.push(VertexId::new(i - 1, j + 1));
        }
    }

    fn indegree(&self, i: u32, j: u32) -> u32 {
        2 * (j - i) + (j >= i + 2) as u32
    }

    fn vertex_count(&self) -> u64 {
        let n = self.n as u64;
        n * (n + 1) / 2
    }

    fn name(&self) -> &str {
        "interval-splits"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{critical_path_len, validate_pattern};

    #[test]
    fn banded_validates_at_various_bands() {
        for band in [0u32, 1, 3, 10, 64] {
            let p = BandedGrid3::new(12, band);
            validate_pattern(&p).unwrap_or_else(|e| panic!("band {band}: {e}"));
        }
    }

    #[test]
    fn banded_vertex_count_closed_form() {
        for (n, band) in [(6u32, 1u32), (8, 2), (5, 10), (12, 0)] {
            let p = BandedGrid3::new(n, band);
            let mut count = 0u64;
            for i in 0..n {
                for j in 0..n {
                    count += p.contains(i, j) as u64;
                }
            }
            assert_eq!(p.vertex_count(), count, "n={n} band={band}");
        }
    }

    #[test]
    fn band_zero_is_a_diagonal_chain() {
        let p = BandedGrid3::new(6, 0);
        assert_eq!(p.vertex_count(), 6);
        assert_eq!(critical_path_len(&p), 6);
        let mut deps = Vec::new();
        p.dependencies(3, 3, &mut deps);
        assert_eq!(deps, vec![VertexId::new(2, 2)]);
    }

    #[test]
    fn interval_splits_validates() {
        validate_pattern(&IntervalSplits::new(9)).unwrap();
    }

    #[test]
    fn interval_splits_indegree_is_2l() {
        let p = IntervalSplits::new(8);
        assert_eq!(p.indegree(2, 2), 0);
        assert_eq!(p.indegree(2, 3), 2);
        assert_eq!(p.indegree(0, 7), 15);
        let mut deps = Vec::new();
        p.dependencies(1, 3, &mut deps);
        deps.sort();
        assert_eq!(
            deps,
            vec![
                VertexId::new(1, 1),
                VertexId::new(1, 2),
                VertexId::new(2, 2), // inner interval for pairing DPs
                VertexId::new(2, 3),
                VertexId::new(3, 3)
            ]
        );
    }

    #[test]
    fn interval_splits_levels_are_lengths() {
        let p = IntervalSplits::new(6);
        assert_eq!(critical_path_len(&p), 6);
        assert_eq!(crate::wavefront_profile(&p), vec![6, 5, 4, 3, 2, 1]);
    }
}

//! Fig. 5 (a): the two-parent grid pattern.

use super::Rect;
use crate::{DagPattern, VertexId};

/// Each vertex `(i, j)` depends on its **top** `(i-1, j)` and **left**
/// `(i, j-1)` neighbours.
///
/// This is the pattern of the Manhattan Tourist Problem (paper §VIII) and
/// of every 2D/0D recurrence of the form
/// `D[i,j] = f(D[i-1,j], D[i,j-1])` (paper Algorithm 3.1).
///
/// Vertex `(0, 0)` is the unique source; `(h-1, w-1)` the unique sink.
#[derive(Clone, Copy, Debug)]
pub struct Grid2 {
    rect: Rect,
}

impl Grid2 {
    /// Creates the pattern for a `height × width` matrix.
    pub fn new(height: u32, width: u32) -> Self {
        Grid2 {
            rect: Rect::new(height, width),
        }
    }
}

impl DagPattern for Grid2 {
    fn height(&self) -> u32 {
        self.rect.height
    }

    fn width(&self) -> u32 {
        self.rect.width
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if i > 0 {
            out.push(VertexId::new(i - 1, j));
        }
        if j > 0 {
            out.push(VertexId::new(i, j - 1));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if i + 1 < self.rect.height {
            out.push(VertexId::new(i + 1, j));
        }
        if j + 1 < self.rect.width {
            out.push(VertexId::new(i, j + 1));
        }
    }

    fn indegree(&self, i: u32, j: u32) -> u32 {
        (i > 0) as u32 + (j > 0) as u32
    }

    fn name(&self) -> &str {
        "grid2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_vertices() {
        let p = Grid2::new(3, 3);
        let mut v = Vec::new();
        p.dependencies(0, 0, &mut v);
        assert!(v.is_empty());
        p.anti_dependencies(2, 2, &mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn interior_vertex_has_two_parents_two_children() {
        let p = Grid2::new(3, 3);
        let mut deps = Vec::new();
        p.dependencies(1, 1, &mut deps);
        assert_eq!(deps, vec![VertexId::new(0, 1), VertexId::new(1, 0)]);
        let mut anti = Vec::new();
        p.anti_dependencies(1, 1, &mut anti);
        assert_eq!(anti, vec![VertexId::new(2, 1), VertexId::new(1, 1 + 1)]);
    }

    #[test]
    fn indegree_closed_form_matches_enumeration() {
        let p = Grid2::new(4, 6);
        let mut buf = Vec::new();
        for i in 0..4 {
            for j in 0..6 {
                buf.clear();
                p.dependencies(i, j, &mut buf);
                assert_eq!(p.indegree(i, j), buf.len() as u32, "at ({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = Grid2::new(0, 3);
    }
}

//! Fig. 5 (e): independent left-to-right chains along each row.

use super::Rect;
use crate::{DagPattern, VertexId};

/// Each vertex `(i, j)` depends only on its **left** neighbour `(i, j-1)`.
///
/// The graph is `height` independent chains — the shape of per-row prefix
/// scans (e.g. per-sequence 1-D DP batched over many sequences).
#[derive(Clone, Copy, Debug)]
pub struct RowWave {
    rect: Rect,
}

impl RowWave {
    /// Creates the pattern for a `height × width` matrix.
    pub fn new(height: u32, width: u32) -> Self {
        RowWave {
            rect: Rect::new(height, width),
        }
    }
}

impl DagPattern for RowWave {
    fn height(&self) -> u32 {
        self.rect.height
    }

    fn width(&self) -> u32 {
        self.rect.width
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if j > 0 {
            out.push(VertexId::new(i, j - 1));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if j + 1 < self.rect.width {
            out.push(VertexId::new(i, j + 1));
        }
    }

    fn indegree(&self, _i: u32, j: u32) -> u32 {
        (j > 0) as u32
    }

    fn name(&self) -> &str {
        "row-wave"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_row_is_a_chain() {
        let p = RowWave::new(2, 4);
        let mut deps = Vec::new();
        p.dependencies(1, 3, &mut deps);
        assert_eq!(deps, vec![VertexId::new(1, 2)]);
        assert_eq!(p.indegree(0, 0), 0);
        assert_eq!(p.indegree(1, 0), 0);
    }

    #[test]
    fn rows_do_not_interact() {
        let p = RowWave::new(3, 3);
        let mut all = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                p.dependencies(i, j, &mut all);
                p.anti_dependencies(i, j, &mut all);
            }
        }
        // Every referenced vertex stays in the same row as its referrer.
        // (Checked indirectly: no dep may change `i`, verified per vertex.)
        let mut buf = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                buf.clear();
                p.dependencies(i, j, &mut buf);
                assert!(buf.iter().all(|d| d.i == i));
            }
        }
    }
}

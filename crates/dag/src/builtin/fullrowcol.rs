//! Fig. 5 (h): full previous-row-and-column dependencies (2D/1D type).

use super::Rect;
use crate::{DagPattern, VertexId};

/// Each vertex `(i, j)` depends on **every** earlier cell in its row
/// (`(i, k)` for `k < j`) and **every** earlier cell in its column
/// (`(k, j)` for `k < i`).
///
/// This is the dependency closure of 2D/1D recurrences such as matrix-chain
/// multiplication or optimal binary search trees (paper Algorithm 3.2
/// shape). The paper notes DPX10 *can express* `2D/iD (i ≥ 1)` recurrences
/// but that "the performance is less than satisfactory" (§III) — the
/// O(n) indegree per vertex shown here is exactly why, and the benches
/// quantify it.
#[derive(Clone, Copy, Debug)]
pub struct FullPrevRowCol {
    rect: Rect,
}

impl FullPrevRowCol {
    /// Creates the pattern for a `height × width` matrix.
    pub fn new(height: u32, width: u32) -> Self {
        FullPrevRowCol {
            rect: Rect::new(height, width),
        }
    }
}

impl DagPattern for FullPrevRowCol {
    fn height(&self) -> u32 {
        self.rect.height
    }

    fn width(&self) -> u32 {
        self.rect.width
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        out.reserve((i + j) as usize);
        for k in 0..j {
            out.push(VertexId::new(i, k));
        }
        for k in 0..i {
            out.push(VertexId::new(k, j));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        out.reserve((self.rect.width - j + self.rect.height - i) as usize);
        for k in j + 1..self.rect.width {
            out.push(VertexId::new(i, k));
        }
        for k in i + 1..self.rect.height {
            out.push(VertexId::new(k, j));
        }
    }

    fn indegree(&self, i: u32, j: u32) -> u32 {
        i + j
    }

    fn name(&self) -> &str {
        "full-prev-row-col"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_source() {
        let p = FullPrevRowCol::new(3, 3);
        assert_eq!(p.indegree(0, 0), 0);
        assert_eq!(p.indegree(2, 2), 4);
    }

    #[test]
    fn deps_cover_row_and_column_prefixes() {
        let p = FullPrevRowCol::new(3, 4);
        let mut deps = Vec::new();
        p.dependencies(2, 1, &mut deps);
        deps.sort();
        assert_eq!(
            deps,
            vec![
                VertexId::new(0, 1),
                VertexId::new(1, 1),
                VertexId::new(2, 0)
            ]
        );
    }

    #[test]
    fn anti_deps_cover_row_and_column_suffixes() {
        let p = FullPrevRowCol::new(3, 3);
        let mut anti = Vec::new();
        p.anti_dependencies(1, 1, &mut anti);
        anti.sort();
        assert_eq!(anti, vec![VertexId::new(1, 2), VertexId::new(2, 1)]);
    }

    #[test]
    fn indegree_closed_form_matches_enumeration() {
        let p = FullPrevRowCol::new(4, 4);
        let mut buf = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                buf.clear();
                p.dependencies(i, j, &mut buf);
                assert_eq!(p.indegree(i, j), buf.len() as u32);
            }
        }
    }
}

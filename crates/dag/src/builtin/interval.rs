//! Fig. 5 (d): upper-triangular interval-DP pattern.

use crate::{DagPattern, VertexId};

/// The interval-DP pattern over the upper triangle of an `n × n` matrix:
/// vertex `(i, j)` exists for `i ≤ j` and (for `j > i`) depends on
/// `(i+1, j)`, `(i, j-1)` and, when `j ≥ i+2`, `(i+1, j-1)`.
///
/// This is the dependency structure of the Longest Palindromic Subsequence
/// application (paper §VIII): intervals are filled from the main diagonal
/// outwards, so the wavefront runs along `j - i = const` bands. The
/// diagonal cells `(i, i)` are the DAG sources.
#[derive(Clone, Copy, Debug)]
pub struct IntervalUpper {
    n: u32,
}

impl IntervalUpper {
    /// Creates the pattern over intervals of a length-`n` sequence.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "pattern must be non-empty");
        IntervalUpper { n }
    }

    /// The sequence length `n`.
    pub fn n(&self) -> u32 {
        self.n
    }
}

impl DagPattern for IntervalUpper {
    fn height(&self) -> u32 {
        self.n
    }

    fn width(&self) -> u32 {
        self.n
    }

    #[inline]
    fn contains(&self, i: u32, j: u32) -> bool {
        i <= j && j < self.n
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.contains(i, j));
        if j == i {
            return; // base case D(i, i)
        }
        out.push(VertexId::new(i + 1, j));
        out.push(VertexId::new(i, j - 1));
        if j >= i + 2 {
            out.push(VertexId::new(i + 1, j - 1));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.contains(i, j));
        if i > 0 {
            out.push(VertexId::new(i - 1, j));
        }
        if j + 1 < self.n {
            out.push(VertexId::new(i, j + 1));
        }
        if i > 0 && j + 1 < self.n {
            out.push(VertexId::new(i - 1, j + 1));
        }
    }

    fn indegree(&self, i: u32, j: u32) -> u32 {
        if j == i {
            0
        } else if j == i + 1 {
            2
        } else {
            3
        }
    }

    fn vertex_count(&self) -> u64 {
        let n = self.n as u64;
        n * (n + 1) / 2
    }

    fn name(&self) -> &str {
        "interval-upper"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_cells_are_sources() {
        let p = IntervalUpper::new(5);
        for i in 0..5 {
            assert_eq!(p.indegree(i, i), 0);
        }
    }

    #[test]
    fn off_diagonal_deps() {
        let p = IntervalUpper::new(5);
        let mut deps = Vec::new();
        p.dependencies(1, 2, &mut deps);
        assert_eq!(deps, vec![VertexId::new(2, 2), VertexId::new(1, 1)]);
        deps.clear();
        p.dependencies(0, 4, &mut deps);
        assert_eq!(
            deps,
            vec![
                VertexId::new(1, 4),
                VertexId::new(0, 3),
                VertexId::new(1, 3)
            ]
        );
    }

    #[test]
    fn lower_triangle_excluded() {
        let p = IntervalUpper::new(4);
        assert!(!p.contains(2, 1));
        assert!(p.contains(2, 2));
        assert!(!p.contains(0, 4));
    }

    #[test]
    fn vertex_count_is_triangular_number() {
        assert_eq!(IntervalUpper::new(4).vertex_count(), 10);
        assert_eq!(IntervalUpper::new(1).vertex_count(), 1);
    }

    #[test]
    fn unique_sink_is_full_interval() {
        let p = IntervalUpper::new(6);
        let mut anti = Vec::new();
        p.anti_dependencies(0, 5, &mut anti);
        assert!(anti.is_empty());
    }

    #[test]
    fn indegree_closed_form_matches_enumeration() {
        let p = IntervalUpper::new(6);
        let mut buf = Vec::new();
        for i in 0..6 {
            for j in i..6 {
                buf.clear();
                p.dependencies(i, j, &mut buf);
                assert_eq!(p.indegree(i, j), buf.len() as u32, "at ({i},{j})");
            }
        }
    }
}

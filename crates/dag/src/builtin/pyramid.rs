//! Fig. 5 (g): the three-parent pyramid stencil.

use super::Rect;
use crate::{DagPattern, VertexId};

/// Each vertex `(i, j)` depends on the three cells above it:
/// `(i-1, j-1)`, `(i-1, j)` and `(i-1, j+1)` (where they exist).
///
/// This is the shape of triangle-smoothing / Viterbi-like recurrences where
/// a cell aggregates a window of the previous row. Row 0 is entirely
/// sources, so the wavefront advances one full row at a time with maximum
/// width — a contrast case to the anti-diagonal wavefront of
/// [`super::Grid3`].
#[derive(Clone, Copy, Debug)]
pub struct Pyramid {
    rect: Rect,
}

impl Pyramid {
    /// Creates the pattern for a `height × width` matrix.
    pub fn new(height: u32, width: u32) -> Self {
        Pyramid {
            rect: Rect::new(height, width),
        }
    }
}

impl DagPattern for Pyramid {
    fn height(&self) -> u32 {
        self.rect.height
    }

    fn width(&self) -> u32 {
        self.rect.width
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if i == 0 {
            return;
        }
        if j > 0 {
            out.push(VertexId::new(i - 1, j - 1));
        }
        out.push(VertexId::new(i - 1, j));
        if j + 1 < self.rect.width {
            out.push(VertexId::new(i - 1, j + 1));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if i + 1 >= self.rect.height {
            return;
        }
        if j > 0 {
            out.push(VertexId::new(i + 1, j - 1));
        }
        out.push(VertexId::new(i + 1, j));
        if j + 1 < self.rect.width {
            out.push(VertexId::new(i + 1, j + 1));
        }
    }

    fn indegree(&self, i: u32, j: u32) -> u32 {
        if i == 0 {
            0
        } else {
            1 + (j > 0) as u32 + (j + 1 < self.rect.width) as u32
        }
    }

    fn name(&self) -> &str {
        "pyramid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_row_all_sources() {
        let p = Pyramid::new(3, 4);
        for j in 0..4 {
            assert_eq!(p.indegree(0, j), 0);
        }
    }

    #[test]
    fn interior_has_three_parents() {
        let p = Pyramid::new(3, 4);
        let mut deps = Vec::new();
        p.dependencies(1, 1, &mut deps);
        assert_eq!(
            deps,
            vec![
                VertexId::new(0, 0),
                VertexId::new(0, 1),
                VertexId::new(0, 2)
            ]
        );
    }

    #[test]
    fn edges_clamped_at_borders() {
        let p = Pyramid::new(3, 4);
        assert_eq!(p.indegree(1, 0), 2);
        assert_eq!(p.indegree(1, 3), 2);
        let mut anti = Vec::new();
        p.anti_dependencies(1, 0, &mut anti);
        assert_eq!(anti, vec![VertexId::new(2, 0), VertexId::new(2, 1)]);
    }

    #[test]
    fn indegree_closed_form_matches_enumeration() {
        let p = Pyramid::new(4, 5);
        let mut buf = Vec::new();
        for i in 0..4 {
            for j in 0..5 {
                buf.clear();
                p.dependencies(i, j, &mut buf);
                assert_eq!(p.indegree(i, j), buf.len() as u32);
            }
        }
    }
}

//! The eight built-in DAG patterns (paper §VI-B, Fig. 5).
//!
//! Every pattern is a zero-allocation value type parameterised only by its
//! size, so a pattern can describe a billion-vertex graph in 8 bytes.

mod colwave;
mod diagonal;
mod fullrowcol;
mod grid2;
mod grid3;
mod interval;
mod pyramid;
mod rowwave;

pub use colwave::ColWave;
pub use diagonal::Diagonal;
pub use fullrowcol::FullPrevRowCol;
pub use grid2::Grid2;
pub use grid3::Grid3;
pub use interval::IntervalUpper;
pub use pyramid::Pyramid;
pub use rowwave::RowWave;

/// Shared rectangular-bounds helper embedded in each grid-shaped pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Rect {
    pub height: u32,
    pub width: u32,
}

impl Rect {
    pub(crate) fn new(height: u32, width: u32) -> Self {
        assert!(height > 0 && width > 0, "pattern must be non-empty");
        Rect { height, width }
    }

    #[inline]
    pub(crate) fn contains(&self, i: u32, j: u32) -> bool {
        i < self.height && j < self.width
    }
}

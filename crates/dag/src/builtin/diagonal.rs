//! Fig. 5 (c): independent diagonal chains.

use super::Rect;
use crate::{DagPattern, VertexId};

/// Each vertex `(i, j)` depends only on its diagonal predecessor
/// `(i-1, j-1)`.
///
/// The graph decomposes into `height + width - 1` independent chains (one
/// per diagonal), giving the highest parallelism of the built-in library —
/// useful both for embarrassingly parallel per-diagonal recurrences and as
/// the "maximum parallelism" control in scheduling experiments.
#[derive(Clone, Copy, Debug)]
pub struct Diagonal {
    rect: Rect,
}

impl Diagonal {
    /// Creates the pattern for a `height × width` matrix.
    pub fn new(height: u32, width: u32) -> Self {
        Diagonal {
            rect: Rect::new(height, width),
        }
    }
}

impl DagPattern for Diagonal {
    fn height(&self) -> u32 {
        self.rect.height
    }

    fn width(&self) -> u32 {
        self.rect.width
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if i > 0 && j > 0 {
            out.push(VertexId::new(i - 1, j - 1));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if i + 1 < self.rect.height && j + 1 < self.rect.width {
            out.push(VertexId::new(i + 1, j + 1));
        }
    }

    fn indegree(&self, i: u32, j: u32) -> u32 {
        (i > 0 && j > 0) as u32
    }

    fn name(&self) -> &str {
        "diagonal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_row_and_column_are_sources() {
        let p = Diagonal::new(4, 4);
        for j in 0..4 {
            assert_eq!(p.indegree(0, j), 0);
        }
        for i in 0..4 {
            assert_eq!(p.indegree(i, 0), 0);
        }
    }

    #[test]
    fn chains_are_disjoint() {
        let p = Diagonal::new(3, 5);
        let mut deps = Vec::new();
        p.dependencies(2, 3, &mut deps);
        assert_eq!(deps, vec![VertexId::new(1, 2)]);
        let mut anti = Vec::new();
        p.anti_dependencies(1, 2, &mut anti);
        assert_eq!(anti, vec![VertexId::new(2, 3)]);
    }

    #[test]
    fn source_count_is_h_plus_w_minus_1() {
        let p = Diagonal::new(3, 5);
        let mut sources = 0;
        for i in 0..3 {
            for j in 0..5 {
                if p.indegree(i, j) == 0 {
                    sources += 1;
                }
            }
        }
        assert_eq!(sources, 3 + 5 - 1);
    }
}

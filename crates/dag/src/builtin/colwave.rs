//! Fig. 5 (f): independent top-to-bottom chains along each column.

use super::Rect;
use crate::{DagPattern, VertexId};

/// Each vertex `(i, j)` depends only on its **top** neighbour `(i-1, j)`.
///
/// The column-wise mirror of [`super::RowWave`]: `width` independent
/// chains. Together the two expose distribution effects cleanly — a
/// row-block distribution makes every `ColWave` edge remote while every
/// `RowWave` edge stays local, and vice versa.
#[derive(Clone, Copy, Debug)]
pub struct ColWave {
    rect: Rect,
}

impl ColWave {
    /// Creates the pattern for a `height × width` matrix.
    pub fn new(height: u32, width: u32) -> Self {
        ColWave {
            rect: Rect::new(height, width),
        }
    }
}

impl DagPattern for ColWave {
    fn height(&self) -> u32 {
        self.rect.height
    }

    fn width(&self) -> u32 {
        self.rect.width
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if i > 0 {
            out.push(VertexId::new(i - 1, j));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if i + 1 < self.rect.height {
            out.push(VertexId::new(i + 1, j));
        }
    }

    fn indegree(&self, i: u32, _j: u32) -> u32 {
        (i > 0) as u32
    }

    fn name(&self) -> &str {
        "col-wave"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_column_is_a_chain() {
        let p = ColWave::new(4, 2);
        let mut deps = Vec::new();
        p.dependencies(3, 1, &mut deps);
        assert_eq!(deps, vec![VertexId::new(2, 1)]);
        assert_eq!(p.indegree(0, 1), 0);
    }

    #[test]
    fn columns_do_not_interact() {
        let p = ColWave::new(3, 3);
        let mut buf = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                buf.clear();
                p.dependencies(i, j, &mut buf);
                p.anti_dependencies(i, j, &mut buf);
                assert!(buf.iter().all(|d| d.j == j));
            }
        }
    }
}

//! Fig. 5 (b): the three-parent grid pattern (LCS / Smith-Waterman).

use super::Rect;
use crate::{DagPattern, VertexId};

/// Each vertex `(i, j)` depends on **top** `(i-1, j)`, **left** `(i, j-1)`
/// and **diagonal** `(i-1, j-1)` neighbours.
///
/// This is the pattern of the Longest Common Subsequence walk-through
/// (paper Fig. 1) and of the Smith-Waterman demo application (paper
/// §VII-A): the classic string-alignment wavefront.
#[derive(Clone, Copy, Debug)]
pub struct Grid3 {
    rect: Rect,
}

impl Grid3 {
    /// Creates the pattern for a `height × width` matrix.
    pub fn new(height: u32, width: u32) -> Self {
        Grid3 {
            rect: Rect::new(height, width),
        }
    }
}

impl DagPattern for Grid3 {
    fn height(&self) -> u32 {
        self.rect.height
    }

    fn width(&self) -> u32 {
        self.rect.width
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        if i > 0 {
            out.push(VertexId::new(i - 1, j));
        }
        if j > 0 {
            out.push(VertexId::new(i, j - 1));
        }
        if i > 0 && j > 0 {
            out.push(VertexId::new(i - 1, j - 1));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.rect.contains(i, j));
        let down = i + 1 < self.rect.height;
        let right = j + 1 < self.rect.width;
        if down {
            out.push(VertexId::new(i + 1, j));
        }
        if right {
            out.push(VertexId::new(i, j + 1));
        }
        if down && right {
            out.push(VertexId::new(i + 1, j + 1));
        }
    }

    fn indegree(&self, i: u32, j: u32) -> u32 {
        (i > 0) as u32 + (j > 0) as u32 + (i > 0 && j > 0) as u32
    }

    fn name(&self) -> &str {
        "grid3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_fig1_example() {
        // Paper §IV: when computing (2, 2) the deps are (1, 1), (2, 1), (1, 2)
        // (order aside).
        let p = Grid3::new(3, 3);
        let mut deps = Vec::new();
        p.dependencies(2, 2, &mut deps);
        deps.sort();
        assert_eq!(
            deps,
            vec![
                VertexId::new(1, 1),
                VertexId::new(1, 2),
                VertexId::new(2, 1)
            ]
        );
    }

    #[test]
    fn source_and_sink() {
        let p = Grid3::new(3, 3);
        assert_eq!(p.indegree(0, 0), 0);
        let mut anti = Vec::new();
        p.anti_dependencies(2, 2, &mut anti);
        assert!(anti.is_empty());
    }

    #[test]
    fn border_vertices_have_partial_deps() {
        let p = Grid3::new(3, 3);
        assert_eq!(p.indegree(0, 2), 1); // only left
        assert_eq!(p.indegree(2, 0), 1); // only top
        assert_eq!(p.indegree(1, 1), 3);
    }

    #[test]
    fn indegree_closed_form_matches_enumeration() {
        let p = Grid3::new(5, 4);
        let mut buf = Vec::new();
        for i in 0..5 {
            for j in 0..4 {
                buf.clear();
                p.dependencies(i, j, &mut buf);
                assert_eq!(p.indegree(i, j), buf.len() as u32);
            }
        }
    }
}

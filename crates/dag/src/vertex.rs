//! Vertex identifiers.

use std::fmt;

/// The unique 2-D coordinate of a DAG vertex (paper §VI-B: "Each vertex in
/// a DAG has a unique 2D coordinate marked as (i, j)").
///
/// `i` is the row, `j` is the column. Both are `u32`, which is enough for
/// the paper's billion-vertex graphs (a 31623×31623 matrix) with room to
/// spare, while keeping the id at 8 bytes so it packs into a `u64` for
/// hashing and wire transfer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId {
    /// Row coordinate.
    pub i: u32,
    /// Column coordinate.
    pub j: u32,
}

impl VertexId {
    /// Creates a vertex id from row `i` and column `j`.
    #[inline]
    pub const fn new(i: u32, j: u32) -> Self {
        VertexId { i, j }
    }

    /// Packs the id into a single `u64` (`i` in the high half).
    ///
    /// The packed form is the wire and cache-key representation.
    #[inline]
    pub const fn pack(self) -> u64 {
        ((self.i as u64) << 32) | self.j as u64
    }

    /// Inverse of [`VertexId::pack`].
    #[inline]
    pub const fn unpack(raw: u64) -> Self {
        VertexId {
            i: (raw >> 32) as u32,
            j: raw as u32,
        }
    }

    /// The anti-diagonal index `i + j`, the natural wavefront number for
    /// grid-shaped DP recurrences.
    #[inline]
    pub const fn antidiagonal(self) -> u64 {
        self.i as u64 + self.j as u64
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.i, self.j)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.i, self.j)
    }
}

impl From<(u32, u32)> for VertexId {
    fn from((i, j): (u32, u32)) -> Self {
        VertexId::new(i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        for &(i, j) in &[(0, 0), (1, 2), (u32::MAX, 0), (0, u32::MAX), (123, 456)] {
            let id = VertexId::new(i, j);
            assert_eq!(VertexId::unpack(id.pack()), id);
        }
    }

    #[test]
    fn pack_orders_row_major() {
        // Packing preserves (i, j) lexicographic order.
        let a = VertexId::new(1, u32::MAX).pack();
        let b = VertexId::new(2, 0).pack();
        assert!(a < b);
    }

    #[test]
    fn antidiagonal_no_overflow() {
        let id = VertexId::new(u32::MAX, u32::MAX);
        assert_eq!(id.antidiagonal(), 2 * (u32::MAX as u64));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(VertexId::new(2, 3).to_string(), "(2, 3)");
    }

    #[test]
    fn from_tuple() {
        let id: VertexId = (4, 5).into();
        assert_eq!(id, VertexId::new(4, 5));
    }
}

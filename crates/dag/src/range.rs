//! Interval-dependency patterns — the nested-dataflow extension of the
//! paper's enumerated `getDependency()` API.
//!
//! All eight builtin patterns have O(1)-degree dependencies, but the
//! harder DP class (LWS, GAP, RNA-style recurrences) reads O(n)
//! predecessors per cell: "cell (i, j) depends on every earlier cell of
//! row i and column j". Enumerating those edges is wasteful twice over —
//! once in the pattern query and once in the runtime, which would gather
//! O(n) values per vertex. The [`RangeDep`] trait expresses such
//! dependencies as *intervals* (`row i, columns lo..hi`), and the
//! [`RangedDag`] adapter lowers them to the classic [`DagPattern`]
//! enumeration so every existing engine consumes either form unchanged.
//! Engines that understand intervals natively recover the ranged view
//! through [`DagPattern::as_range`] and pair it with the prefix
//! aggregation layer (`dpx10_distarray::aggregate`) to make each
//! interval read an O(1) lookup.

use std::sync::Arc;

use crate::pattern::DagPattern;
use crate::VertexId;

/// A contiguous run of cells along one axis, half-open on the moving
/// coordinate: `Row { i, lo, hi }` is the cells `(i, lo), …, (i, hi-1)`
/// and `Col { j, lo, hi }` is `(lo, j), …, (hi-1, j)`. An interval with
/// `lo >= hi` is empty and contributes nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepInterval {
    /// Cells `(i, lo..hi)` of row `i`.
    Row {
        /// The fixed row.
        i: u32,
        /// First column (inclusive).
        lo: u32,
        /// Past-the-end column (exclusive).
        hi: u32,
    },
    /// Cells `(lo..hi, j)` of column `j`.
    Col {
        /// The fixed column.
        j: u32,
        /// First row (inclusive).
        lo: u32,
        /// Past-the-end row (exclusive).
        hi: u32,
    },
}

impl DepInterval {
    /// Number of cells the interval covers (0 when `lo >= hi`).
    #[inline]
    pub fn len(self) -> u32 {
        match self {
            DepInterval::Row { lo, hi, .. } | DepInterval::Col { lo, hi, .. } => {
                hi.saturating_sub(lo)
            }
        }
    }

    /// Whether the interval covers no cells.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Appends every covered cell id to `out`, in axis order.
    pub fn enumerate(self, out: &mut Vec<VertexId>) {
        match self {
            DepInterval::Row { i, lo, hi } => {
                for j in lo..hi {
                    out.push(VertexId::new(i, j));
                }
            }
            DepInterval::Col { j, lo, hi } => {
                for i in lo..hi {
                    out.push(VertexId::new(i, j));
                }
            }
        }
    }

    /// Iterates the covered cell ids without materialising them.
    pub fn iter(self) -> impl Iterator<Item = VertexId> {
        let (row, fixed, lo, hi) = match self {
            DepInterval::Row { i, lo, hi } => (true, i, lo, hi),
            DepInterval::Col { j, lo, hi } => (false, j, lo, hi),
        };
        (lo..hi).map(move |k| {
            if row {
                VertexId::new(fixed, k)
            } else {
                VertexId::new(k, fixed)
            }
        })
    }
}

/// A running reduction maintained over a row or column prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// Running minimum (min-plus recurrences: LWS, GAP).
    Min,
    /// Running maximum (max-plus recurrences).
    Max,
    /// Running sum.
    Sum,
}

impl Reduction {
    /// The fold's identity element.
    #[inline]
    pub fn identity(self) -> i64 {
        match self {
            Reduction::Min => i64::MAX,
            Reduction::Max => i64::MIN,
            Reduction::Sum => 0,
        }
    }

    /// Folds one key into the accumulator.
    #[inline]
    pub fn fold(self, acc: i64, key: i64) -> i64 {
        match self {
            Reduction::Min => acc.min(key),
            Reduction::Max => acc.max(key),
            Reduction::Sum => acc.wrapping_add(key),
        }
    }

    /// The CLI / report spelling.
    pub fn name(self) -> &'static str {
        match self {
            Reduction::Min => "min",
            Reduction::Max => "max",
            Reduction::Sum => "sum",
        }
    }
}

/// Which axis an aggregation lane runs along.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// One lane per row, indexed by column.
    Row,
    /// One lane per column, indexed by row.
    Col,
}

/// Which prefix reductions an application wants the runtime to maintain
/// as cells finish. `None` on an axis means the app never reads interval
/// aggregates along it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// Reduction maintained per row (lane index = column).
    pub rows: Option<Reduction>,
    /// Reduction maintained per column (lane index = row).
    pub cols: Option<Reduction>,
}

impl AggSpec {
    /// Row-only spec.
    pub fn rows(red: Reduction) -> Self {
        AggSpec {
            rows: Some(red),
            cols: None,
        }
    }

    /// Column-only spec.
    pub fn cols(red: Reduction) -> Self {
        AggSpec {
            rows: None,
            cols: Some(red),
        }
    }

    /// Both axes with the same reduction.
    pub fn both(red: Reduction) -> Self {
        AggSpec {
            rows: Some(red),
            cols: Some(red),
        }
    }
}

/// A DAG pattern whose dependencies are point edges plus contiguous
/// intervals — the nested-dataflow analogue of [`DagPattern`].
///
/// The same contract applies (containment, inversion, acyclicity), with
/// inversion read over the union of points and intervals: `d` is covered
/// by `point_deps(v) ∪ dep_intervals(v)` ⇔ `v` is covered by
/// `anti_point_deps(d) ∪ anti_intervals(d)`. The [`RangedDag`] adapter
/// lowers both queries to enumeration, so `crate::validate_pattern`
/// checks the ranged contract too.
pub trait RangeDep: Send + Sync {
    /// Number of rows.
    fn height(&self) -> u32;

    /// Number of columns.
    fn width(&self) -> u32;

    /// Whether `(i, j)` is a vertex (defaults to the full rectangle).
    #[inline]
    fn contains(&self, i: u32, j: u32) -> bool {
        i < self.height() && j < self.width()
    }

    /// Appends the O(1) point dependencies of `(i, j)` (e.g. GAP's
    /// diagonal substitution edge). Must not overlap the intervals.
    fn point_deps(&self, i: u32, j: u32, out: &mut Vec<VertexId>);

    /// Appends the interval dependencies of `(i, j)`.
    fn dep_intervals(&self, i: u32, j: u32, out: &mut Vec<DepInterval>);

    /// Appends the O(1) point consumers of `(i, j)`.
    fn anti_point_deps(&self, i: u32, j: u32, out: &mut Vec<VertexId>);

    /// Appends the interval consumers of `(i, j)`.
    fn anti_intervals(&self, i: u32, j: u32, out: &mut Vec<DepInterval>);

    /// Total number of vertices (defaults to the full rectangle).
    fn vertex_count(&self) -> u64 {
        self.height() as u64 * self.width() as u64
    }

    /// A short human-readable name.
    fn name(&self) -> &str {
        "ranged"
    }
}

/// Adapter from [`RangeDep`] to [`DagPattern`]: lowers interval queries
/// to enumerated edge lists so every engine, validator and tiler that
/// speaks the classic API consumes ranged patterns unchanged, while
/// interval-aware engines recover the ranged view via
/// [`DagPattern::as_range`].
#[derive(Clone)]
pub struct RangedDag {
    inner: Arc<dyn RangeDep>,
}

impl RangedDag {
    /// Wraps a ranged pattern.
    pub fn new<R: RangeDep + 'static>(inner: R) -> Self {
        RangedDag {
            inner: Arc::new(inner),
        }
    }

    /// Wraps an already-shared ranged pattern.
    pub fn from_arc(inner: Arc<dyn RangeDep>) -> Self {
        RangedDag { inner }
    }

    /// The wrapped ranged pattern.
    pub fn inner(&self) -> &Arc<dyn RangeDep> {
        &self.inner
    }
}

impl DagPattern for RangedDag {
    fn height(&self) -> u32 {
        self.inner.height()
    }

    fn width(&self) -> u32 {
        self.inner.width()
    }

    fn contains(&self, i: u32, j: u32) -> bool {
        self.inner.contains(i, j)
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        self.inner.point_deps(i, j, out);
        let mut ivs = Vec::with_capacity(2);
        self.inner.dep_intervals(i, j, &mut ivs);
        for iv in ivs {
            iv.enumerate(out);
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        self.inner.anti_point_deps(i, j, out);
        let mut ivs = Vec::with_capacity(2);
        self.inner.anti_intervals(i, j, &mut ivs);
        for iv in ivs {
            iv.enumerate(out);
        }
    }

    fn indegree(&self, i: u32, j: u32) -> u32 {
        // Closed form: point count + interval lengths. Graph
        // initialisation over an O(n)-degree pattern stays O(1) per cell
        // instead of materialising the edge list.
        let mut pts = Vec::with_capacity(2);
        self.inner.point_deps(i, j, &mut pts);
        let mut ivs = Vec::with_capacity(2);
        self.inner.dep_intervals(i, j, &mut ivs);
        pts.len() as u32 + ivs.iter().map(|iv| iv.len()).sum::<u32>()
    }

    fn vertex_count(&self) -> u64 {
        self.inner.vertex_count()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn as_range(&self) -> Option<&dyn RangeDep> {
        Some(self.inner.as_ref())
    }
}

/// The least-weight-subsequence pattern: a single row of `n` cells where
/// cell `(0, j)` depends on *every* earlier cell `(0, 0..j)` — the
/// 1-D/1-D nested-dataflow recurrence `D[j] = min_{i<j}(D[i] + w(i, j))`.
#[derive(Clone, Copy, Debug)]
pub struct LwsDag {
    n: u32,
}

impl LwsDag {
    /// A chain of `n` cells.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "LwsDag needs at least one cell");
        LwsDag { n }
    }
}

impl RangeDep for LwsDag {
    fn height(&self) -> u32 {
        1
    }

    fn width(&self) -> u32 {
        self.n
    }

    fn point_deps(&self, _i: u32, _j: u32, _out: &mut Vec<VertexId>) {}

    fn dep_intervals(&self, _i: u32, j: u32, out: &mut Vec<DepInterval>) {
        if j > 0 {
            out.push(DepInterval::Row { i: 0, lo: 0, hi: j });
        }
    }

    fn anti_point_deps(&self, _i: u32, _j: u32, _out: &mut Vec<VertexId>) {}

    fn anti_intervals(&self, _i: u32, j: u32, out: &mut Vec<DepInterval>) {
        if j + 1 < self.n {
            out.push(DepInterval::Row {
                i: 0,
                lo: j + 1,
                hi: self.n,
            });
        }
    }

    fn name(&self) -> &str {
        "lws"
    }
}

/// The GAP (sequence alignment with general gap costs) pattern: cell
/// `(i, j)` depends on the diagonal point `(i-1, j-1)` plus the full row
/// prefix `(i, 0..j)` and column prefix `(0..i, j)` — the 2-D/1-D
/// nested-dataflow recurrence of Galil–Giancarlo.
#[derive(Clone, Copy, Debug)]
pub struct GapDag {
    h: u32,
    w: u32,
}

impl GapDag {
    /// An `height × width` alignment table.
    pub fn new(height: u32, width: u32) -> Self {
        assert!(height > 0 && width > 0, "GapDag needs a non-empty table");
        GapDag {
            h: height,
            w: width,
        }
    }
}

impl RangeDep for GapDag {
    fn height(&self) -> u32 {
        self.h
    }

    fn width(&self) -> u32 {
        self.w
    }

    fn point_deps(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        if i > 0 && j > 0 {
            out.push(VertexId::new(i - 1, j - 1));
        }
    }

    fn dep_intervals(&self, i: u32, j: u32, out: &mut Vec<DepInterval>) {
        if j > 0 {
            out.push(DepInterval::Row { i, lo: 0, hi: j });
        }
        if i > 0 {
            out.push(DepInterval::Col { j, lo: 0, hi: i });
        }
    }

    fn anti_point_deps(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        if i + 1 < self.h && j + 1 < self.w {
            out.push(VertexId::new(i + 1, j + 1));
        }
    }

    fn anti_intervals(&self, i: u32, j: u32, out: &mut Vec<DepInterval>) {
        if j + 1 < self.w {
            out.push(DepInterval::Row {
                i,
                lo: j + 1,
                hi: self.w,
            });
        }
        if i + 1 < self.h {
            out.push(DepInterval::Col {
                j,
                lo: i + 1,
                hi: self.h,
            });
        }
    }

    fn name(&self) -> &str {
        "gap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_pattern;
    use crate::DagPattern;

    fn enumerated_indegree(p: &dyn DagPattern, i: u32, j: u32) -> u32 {
        let mut buf = Vec::new();
        p.dependencies(i, j, &mut buf);
        buf.len() as u32
    }

    #[test]
    fn interval_enumeration_and_len_agree() {
        let iv = DepInterval::Row { i: 3, lo: 2, hi: 6 };
        let mut out = Vec::new();
        iv.enumerate(&mut out);
        assert_eq!(out.len() as u32, iv.len());
        assert_eq!(out[0], VertexId::new(3, 2));
        assert_eq!(out[3], VertexId::new(3, 5));
        let empty = DepInterval::Col { j: 1, lo: 5, hi: 5 };
        assert!(empty.is_empty());
        let mut none = Vec::new();
        empty.enumerate(&mut none);
        assert!(none.is_empty());
        // Inverted bounds are empty, not a panic.
        assert_eq!(DepInterval::Row { i: 0, lo: 7, hi: 3 }.len(), 0);
    }

    #[test]
    fn lws_adapter_validates_and_counts() {
        let dag = RangedDag::new(LwsDag::new(17));
        validate_pattern(&dag).expect("LWS contract holds");
        assert_eq!(dag.vertex_count(), 17);
        for j in 0..17 {
            assert_eq!(dag.indegree(0, j), j, "cell j reads all j predecessors");
            assert_eq!(dag.indegree(0, j), enumerated_indegree(&dag, 0, j));
        }
    }

    #[test]
    fn gap_adapter_validates_and_counts() {
        let dag = RangedDag::new(GapDag::new(7, 9));
        validate_pattern(&dag).expect("GAP contract holds");
        for i in 0..7 {
            for j in 0..9 {
                let diag = u32::from(i > 0 && j > 0);
                assert_eq!(dag.indegree(i, j), i + j + diag);
                assert_eq!(dag.indegree(i, j), enumerated_indegree(&dag, i, j));
            }
        }
    }

    #[test]
    fn as_range_round_trips_through_trait_objects() {
        let dag = RangedDag::new(GapDag::new(4, 4));
        assert!(dag.as_range().is_some());
        let boxed: Box<dyn DagPattern> = Box::new(dag);
        assert!(boxed.as_range().is_some(), "forwarded through Box");
        let arc: std::sync::Arc<dyn DagPattern> = std::sync::Arc::from(boxed);
        assert!(arc.as_range().is_some(), "forwarded through Arc");
        // Classic patterns report no ranged view.
        let classic = crate::builtin::Grid2::new(3, 3);
        assert!(classic.as_range().is_none());
    }

    #[test]
    fn reduction_folds() {
        assert_eq!(Reduction::Min.fold(Reduction::Min.identity(), 5), 5);
        assert_eq!(Reduction::Max.fold(Reduction::Max.identity(), -5), -5);
        assert_eq!(Reduction::Sum.fold(Reduction::Sum.identity(), 7), 7);
        assert_eq!(Reduction::Min.fold(3, 5), 3);
        assert_eq!(Reduction::Max.fold(3, 5), 5);
        assert_eq!(Reduction::Sum.fold(3, 5), 8);
    }
}

//! The 0/1-Knapsack DAG pattern (paper §VII-B, Figs. 8–9).
//!
//! Unlike the eight built-ins, the edge set here is **data-dependent**: the
//! second parent of `(i, j)` is `(i-1, j - w_i)`, a jump whose length is
//! the weight of item `i`. The paper uses this pattern both as its custom-
//! pattern tutorial and as the fourth evaluation application (0/1KP), the
//! one with "nondeterministic dependencies" that scales worst in Fig. 10.

use crate::{DagPattern, VertexId};

/// DAG pattern for the 0/1 Knapsack recurrence
/// `m(i,j) = max(m(i-1,j), m(i-1, j-w_i) + v_i)`.
///
/// Row `i` corresponds to "items considered up to `i`" (`0 ..= n_items`),
/// column `j` to remaining capacity (`0 ..= capacity`). Row 0 holds the
/// zero-item base case and has no dependencies, mirroring the paper's
/// `KnapsackDag` (Fig. 9).
#[derive(Clone, Debug)]
pub struct KnapsackDag {
    /// `weights[k]` is the weight of item `k+1` (items are 1-based in the
    /// recurrence, exactly as the paper's `Knapsack.weight(i-1)` indexing).
    weights: Vec<u32>,
    capacity: u32,
}

impl KnapsackDag {
    /// Creates the pattern for the given item weights and knapsack
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is zero (the recurrence
    /// requires strictly positive integer weights, paper §VII-B).
    pub fn new(weights: Vec<u32>, capacity: u32) -> Self {
        assert!(!weights.is_empty(), "knapsack needs at least one item");
        assert!(
            weights.iter().all(|&w| w > 0),
            "knapsack weights must be strictly positive"
        );
        KnapsackDag { weights, capacity }
    }

    /// Weight of (1-based) item `i`.
    #[inline]
    fn weight(&self, i: u32) -> u32 {
        self.weights[(i - 1) as usize]
    }

    /// Number of items.
    pub fn items(&self) -> u32 {
        self.weights.len() as u32
    }

    /// Knapsack capacity `W`.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

impl DagPattern for KnapsackDag {
    fn height(&self) -> u32 {
        self.items() + 1
    }

    fn width(&self) -> u32 {
        self.capacity + 1
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.contains(i, j));
        if i == 0 {
            return; // base row: m(0, j) = 0
        }
        out.push(VertexId::new(i - 1, j));
        let w = self.weight(i);
        if w <= j {
            out.push(VertexId::new(i - 1, j - w));
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        debug_assert!(self.contains(i, j));
        if i == self.items() {
            return; // last row: nothing below
        }
        // (i+1, j) always takes m(i, j) as its "skip item i+1" parent.
        out.push(VertexId::new(i + 1, j));
        // (i+1, j + w_{i+1}) takes m(i, j) as its "take item i+1" parent.
        let w = self.weight(i + 1);
        if j + w <= self.capacity {
            out.push(VertexId::new(i + 1, j + w));
        }
    }

    fn indegree(&self, i: u32, j: u32) -> u32 {
        if i == 0 {
            0
        } else {
            1 + (self.weight(i) <= j) as u32
        }
    }

    fn name(&self) -> &str {
        "knapsack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnapsackDag {
        // 3 items of weights 2, 1, 3; capacity 4.
        KnapsackDag::new(vec![2, 1, 3], 4)
    }

    #[test]
    fn shape_is_items_plus_one_by_capacity_plus_one() {
        let p = sample();
        assert_eq!(p.height(), 4);
        assert_eq!(p.width(), 5);
        assert_eq!(p.vertex_count(), 20);
    }

    #[test]
    fn base_row_has_no_dependencies() {
        let p = sample();
        let mut deps = Vec::new();
        for j in 0..5 {
            deps.clear();
            p.dependencies(0, j, &mut deps);
            assert!(deps.is_empty());
        }
    }

    #[test]
    fn take_branch_appears_when_capacity_allows() {
        let p = sample();
        let mut deps = Vec::new();
        // Item 1 has weight 2: vertex (1, 1) cannot take it.
        p.dependencies(1, 1, &mut deps);
        assert_eq!(deps, vec![VertexId::new(0, 1)]);
        // Vertex (1, 3) can: depends on (0, 3) and (0, 1).
        deps.clear();
        p.dependencies(1, 3, &mut deps);
        assert_eq!(deps, vec![VertexId::new(0, 3), VertexId::new(0, 1)]);
    }

    #[test]
    fn anti_deps_mirror_paper_fig9() {
        let p = sample();
        let mut anti = Vec::new();
        // From row 0, item 1 (weight 2) consumes (0, j) at (1, j) and
        // (1, j+2).
        p.anti_dependencies(0, 1, &mut anti);
        assert_eq!(anti, vec![VertexId::new(1, 1), VertexId::new(1, 3)]);
        // Capacity-clipped: (0, 4) only feeds (1, 4).
        anti.clear();
        p.anti_dependencies(0, 4, &mut anti);
        assert_eq!(anti, vec![VertexId::new(1, 4)]);
        // Last row has no anti-dependencies.
        anti.clear();
        p.anti_dependencies(3, 2, &mut anti);
        assert!(anti.is_empty());
    }

    #[test]
    fn indegree_closed_form_matches_enumeration() {
        let p = sample();
        let mut buf = Vec::new();
        for i in 0..p.height() {
            for j in 0..p.width() {
                buf.clear();
                p.dependencies(i, j, &mut buf);
                assert_eq!(p.indegree(i, j), buf.len() as u32, "at ({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_weight_rejected() {
        let _ = KnapsackDag::new(vec![1, 0], 4);
    }
}

//! Closure-based custom DAG patterns.
//!
//! The paper's custom-pattern API is subclassing `Dag[T]` (Fig. 3); the
//! idiomatic Rust equivalent is either implementing [`DagPattern`] on your
//! own type (as [`crate::KnapsackDag`] does) or, for quick experiments,
//! building a [`CustomDag`] from two closures.

use crate::{DagPattern, VertexId};

/// Boxed `getDependency`-style closure.
type DepFn = Box<dyn Fn(u32, u32, &mut Vec<VertexId>) + Send + Sync>;
/// Boxed `getAntiDependency`-style closure (also receives `(h, w)`).
type AntiFn = Box<dyn Fn(u32, u32, &mut Vec<VertexId>, (u32, u32)) + Send + Sync>;

/// A DAG pattern defined by a pair of closures over `(i, j)`.
///
/// `deps` plays the role of `getDependency()` and `anti` of
/// `getAntiDependency()`. An optional `mask` restricts the vertex set
/// (e.g. to a triangle); by default the full rectangle is used.
///
/// # Example
///
/// ```
/// use dpx10_dag::{CustomDag, DagPattern, VertexId};
///
/// // A "skip-one" chain: (0,j) depends on (0,j-2).
/// let dag = CustomDag::new(1, 8)
///     .with_dependencies(|_i, j, out| {
///         if j >= 2 {
///             out.push(VertexId::new(0, j - 2));
///         }
///     })
///     .with_anti_dependencies(|_i, j, out, (_h, w)| {
///         if j + 2 < w {
///             out.push(VertexId::new(0, j + 2));
///         }
///     });
/// assert_eq!(dag.indegree(0, 5), 1);
/// dpx10_dag::validate_pattern(&dag).unwrap();
/// ```
pub struct CustomDag {
    height: u32,
    width: u32,
    name: String,
    deps: DepFn,
    anti: AntiFn,
    mask: Option<Box<dyn Fn(u32, u32) -> bool + Send + Sync>>,
}

impl CustomDag {
    /// Creates an edgeless pattern of the given size; attach edges with
    /// [`with_dependencies`](Self::with_dependencies) and
    /// [`with_anti_dependencies`](Self::with_anti_dependencies).
    pub fn new(height: u32, width: u32) -> Self {
        assert!(height > 0 && width > 0, "pattern must be non-empty");
        CustomDag {
            height,
            width,
            name: "custom".to_string(),
            deps: Box::new(|_, _, _| {}),
            anti: Box::new(|_, _, _, _| {}),
            mask: None,
        }
    }

    /// Sets the report name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the dependency closure (the paper's `getDependency`).
    pub fn with_dependencies<F>(mut self, f: F) -> Self
    where
        F: Fn(u32, u32, &mut Vec<VertexId>) + Send + Sync + 'static,
    {
        self.deps = Box::new(f);
        self
    }

    /// Sets the anti-dependency closure (the paper's `getAntiDependency`).
    /// The closure also receives `(height, width)` for boundary clipping.
    pub fn with_anti_dependencies<F>(mut self, f: F) -> Self
    where
        F: Fn(u32, u32, &mut Vec<VertexId>, (u32, u32)) + Send + Sync + 'static,
    {
        self.anti = Box::new(f);
        self
    }

    /// Restricts the vertex set to points where `mask(i, j)` holds.
    pub fn with_mask<F>(mut self, mask: F) -> Self
    where
        F: Fn(u32, u32) -> bool + Send + Sync + 'static,
    {
        self.mask = Some(Box::new(mask));
        self
    }
}

impl DagPattern for CustomDag {
    fn height(&self) -> u32 {
        self.height
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn contains(&self, i: u32, j: u32) -> bool {
        i < self.height && j < self.width && self.mask.as_ref().map_or(true, |m| m(i, j))
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        (self.deps)(i, j, out);
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        (self.anti)(i, j, out, (self.height, self.width));
    }

    fn vertex_count(&self) -> u64 {
        match &self.mask {
            None => self.height as u64 * self.width as u64,
            Some(m) => {
                let mut n = 0;
                for i in 0..self.height {
                    for j in 0..self.width {
                        n += m(i, j) as u64;
                    }
                }
                n
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_pattern;

    fn grid2_as_custom(h: u32, w: u32) -> CustomDag {
        CustomDag::new(h, w)
            .with_name("custom-grid2")
            .with_dependencies(|i, j, out| {
                if i > 0 {
                    out.push(VertexId::new(i - 1, j));
                }
                if j > 0 {
                    out.push(VertexId::new(i, j - 1));
                }
            })
            .with_anti_dependencies(|i, j, out, (h, w)| {
                if i + 1 < h {
                    out.push(VertexId::new(i + 1, j));
                }
                if j + 1 < w {
                    out.push(VertexId::new(i, j + 1));
                }
            })
    }

    #[test]
    fn custom_grid2_validates() {
        validate_pattern(&grid2_as_custom(6, 5)).unwrap();
    }

    #[test]
    fn custom_matches_builtin() {
        use crate::builtin::Grid2;
        let custom = grid2_as_custom(4, 4);
        let builtin = Grid2::new(4, 4);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..4 {
            for j in 0..4 {
                a.clear();
                b.clear();
                custom.dependencies(i, j, &mut a);
                builtin.dependencies(i, j, &mut b);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn mask_restricts_vertex_set() {
        let dag = CustomDag::new(4, 4).with_mask(|i, j| i <= j);
        assert!(dag.contains(1, 2));
        assert!(!dag.contains(2, 1));
        assert_eq!(dag.vertex_count(), 10);
    }

    #[test]
    fn name_is_reported() {
        assert_eq!(grid2_as_custom(2, 2).name(), "custom-grid2");
    }
}

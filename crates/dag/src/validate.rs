//! Pattern validation against the [`DagPattern`] contract.
//!
//! Custom patterns are the framework's main extension point (paper §V-A),
//! and a wrong `getAntiDependency` silently deadlocks or corrupts a run.
//! [`validate_pattern`] exhaustively checks a pattern at its configured
//! size; tests call it on small instances of every shipped pattern, and
//! the engines call it in debug builds.

use std::collections::HashSet;
use std::fmt;

use crate::topo::{for_each_vertex, topological_order};
use crate::{DagPattern, VertexId};

/// A violation of the [`DagPattern`] contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// A query returned a vertex outside the pattern.
    OutOfPattern {
        /// Vertex whose query misbehaved.
        at: VertexId,
        /// The out-of-pattern id that was returned.
        returned: VertexId,
        /// Which query returned it.
        query: QueryKind,
    },
    /// `d ∈ dependencies(v)` but `v ∉ anti_dependencies(d)`.
    MissingAntiDependency {
        /// The dependent vertex `v`.
        vertex: VertexId,
        /// The dependency `d` that fails to list `v` back.
        dependency: VertexId,
    },
    /// `v ∈ anti_dependencies(d)` but `d ∉ dependencies(v)`.
    SpuriousAntiDependency {
        /// The vertex `d` whose anti-dependency list is wrong.
        vertex: VertexId,
        /// The listed dependent `v` that does not declare `d`.
        dependent: VertexId,
    },
    /// A query returned the same id twice for one vertex.
    DuplicateEdge {
        /// Vertex whose query misbehaved.
        at: VertexId,
        /// The duplicated id.
        returned: VertexId,
        /// Which query returned it.
        query: QueryKind,
    },
    /// A vertex listed itself as its own dependency.
    SelfLoop {
        /// The offending vertex.
        at: VertexId,
    },
    /// The edge relation contains a cycle (or an unreachable vertex).
    Cyclic,
    /// `indegree(i, j)` disagrees with `dependencies(i, j).len()`.
    IndegreeMismatch {
        /// The offending vertex.
        at: VertexId,
        /// Value reported by `indegree`.
        reported: u32,
        /// Number of ids actually returned by `dependencies`.
        actual: u32,
    },
}

/// Which pattern query produced an invalid answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// `dependencies()`.
    Dependencies,
    /// `anti_dependencies()`.
    AntiDependencies,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::OutOfPattern {
                at,
                returned,
                query,
            } => write!(
                f,
                "{query:?} of {at} returned {returned}, which is outside the pattern"
            ),
            ValidationError::MissingAntiDependency { vertex, dependency } => write!(
                f,
                "{vertex} depends on {dependency}, but {dependency} does not list it back"
            ),
            ValidationError::SpuriousAntiDependency { vertex, dependent } => write!(
                f,
                "{vertex} lists dependent {dependent}, which does not depend on it"
            ),
            ValidationError::DuplicateEdge {
                at,
                returned,
                query,
            } => {
                write!(f, "{query:?} of {at} returned {returned} twice")
            }
            ValidationError::SelfLoop { at } => write!(f, "{at} depends on itself"),
            ValidationError::Cyclic => write!(f, "the pattern contains a dependency cycle"),
            ValidationError::IndegreeMismatch {
                at,
                reported,
                actual,
            } => write!(
                f,
                "indegree({at}) reports {reported} but dependencies() returns {actual} ids"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Exhaustively validates `pattern` (O(V + E) time, O(V) space).
///
/// Checks containment, duplicate-freedom, self-loops, the
/// dependency/anti-dependency inversion property, `indegree` consistency
/// and acyclicity. Returns the first violation found.
pub fn validate_pattern<P: DagPattern + ?Sized>(pattern: &P) -> Result<(), ValidationError> {
    let mut deps = Vec::new();
    let mut anti = Vec::new();
    let mut result = Ok(());

    // Edge set gathered from `dependencies`, used to cross-check `anti`.
    let mut dep_edges: HashSet<(u64, u64)> = HashSet::new();

    for_each_vertex(pattern, |v| {
        if result.is_err() {
            return;
        }
        deps.clear();
        pattern.dependencies(v.i, v.j, &mut deps);

        if pattern.indegree(v.i, v.j) != deps.len() as u32 {
            result = Err(ValidationError::IndegreeMismatch {
                at: v,
                reported: pattern.indegree(v.i, v.j),
                actual: deps.len() as u32,
            });
            return;
        }
        let mut seen = HashSet::with_capacity(deps.len());
        for &d in &deps {
            if d == v {
                result = Err(ValidationError::SelfLoop { at: v });
                return;
            }
            if !pattern.contains(d.i, d.j) {
                result = Err(ValidationError::OutOfPattern {
                    at: v,
                    returned: d,
                    query: QueryKind::Dependencies,
                });
                return;
            }
            if !seen.insert(d) {
                result = Err(ValidationError::DuplicateEdge {
                    at: v,
                    returned: d,
                    query: QueryKind::Dependencies,
                });
                return;
            }
            dep_edges.insert((d.pack(), v.pack()));
        }
    });
    result?;

    let mut result = Ok(());
    let mut anti_count = 0u64;
    for_each_vertex(pattern, |d| {
        if result.is_err() {
            return;
        }
        anti.clear();
        pattern.anti_dependencies(d.i, d.j, &mut anti);
        let mut seen = HashSet::with_capacity(anti.len());
        for &v in &anti {
            if !pattern.contains(v.i, v.j) {
                result = Err(ValidationError::OutOfPattern {
                    at: d,
                    returned: v,
                    query: QueryKind::AntiDependencies,
                });
                return;
            }
            if !seen.insert(v) {
                result = Err(ValidationError::DuplicateEdge {
                    at: d,
                    returned: v,
                    query: QueryKind::AntiDependencies,
                });
                return;
            }
            if !dep_edges.contains(&(d.pack(), v.pack())) {
                result = Err(ValidationError::SpuriousAntiDependency {
                    vertex: d,
                    dependent: v,
                });
                return;
            }
            anti_count += 1;
        }
    });
    result?;

    // Every dep edge must have been confirmed from the anti side.
    if anti_count != dep_edges.len() as u64 {
        // Find a witness for the error report.
        let mut witness = None;
        let mut anti = Vec::new();
        for &(d_raw, v_raw) in &dep_edges {
            let (d, v) = (VertexId::unpack(d_raw), VertexId::unpack(v_raw));
            anti.clear();
            pattern.anti_dependencies(d.i, d.j, &mut anti);
            if !anti.contains(&v) {
                witness = Some((v, d));
                break;
            }
        }
        let (vertex, dependency) = witness.expect("count mismatch implies a witness");
        return Err(ValidationError::MissingAntiDependency { vertex, dependency });
    }

    if topological_order(pattern).is_none() {
        return Err(ValidationError::Cyclic);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuiltinKind, CustomDag, KnapsackDag};

    #[test]
    fn all_builtins_validate() {
        for kind in BuiltinKind::ALL {
            let p = kind.instantiate(9, 7);
            validate_pattern(&p).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    #[test]
    fn knapsack_validates() {
        let p = KnapsackDag::new(vec![3, 1, 4, 1, 5], 12);
        validate_pattern(&p).unwrap();
    }

    #[test]
    fn missing_anti_dependency_detected() {
        let p = CustomDag::new(1, 3).with_dependencies(|_i, j, out| {
            if j > 0 {
                out.push(VertexId::new(0, j - 1));
            }
        });
        // anti closure left empty -> inversion violated.
        let err = validate_pattern(&p).unwrap_err();
        assert!(
            matches!(err, ValidationError::MissingAntiDependency { .. }),
            "{err}"
        );
    }

    #[test]
    fn spurious_anti_dependency_detected() {
        let p = CustomDag::new(1, 3).with_anti_dependencies(|_i, j, out, (_h, w)| {
            if j + 1 < w {
                out.push(VertexId::new(0, j + 1));
            }
        });
        let err = validate_pattern(&p).unwrap_err();
        assert!(
            matches!(err, ValidationError::SpuriousAntiDependency { .. }),
            "{err}"
        );
    }

    #[test]
    fn self_loop_detected() {
        let p = CustomDag::new(2, 2).with_dependencies(|i, j, out| out.push(VertexId::new(i, j)));
        assert_eq!(
            validate_pattern(&p).unwrap_err(),
            ValidationError::SelfLoop {
                at: VertexId::new(0, 0)
            }
        );
    }

    #[test]
    fn out_of_pattern_detected() {
        let p = CustomDag::new(2, 2).with_dependencies(|_i, _j, out| out.push(VertexId::new(9, 9)));
        assert!(matches!(
            validate_pattern(&p).unwrap_err(),
            ValidationError::OutOfPattern { .. }
        ));
    }

    #[test]
    fn duplicate_edge_detected() {
        let p = CustomDag::new(1, 2)
            .with_dependencies(|_i, j, out| {
                if j == 1 {
                    out.push(VertexId::new(0, 0));
                    out.push(VertexId::new(0, 0));
                }
            })
            .with_anti_dependencies(|_i, j, out, _| {
                if j == 0 {
                    out.push(VertexId::new(0, 1));
                }
            });
        assert!(matches!(
            validate_pattern(&p).unwrap_err(),
            ValidationError::DuplicateEdge { .. }
        ));
    }

    #[test]
    fn cycle_detected() {
        // (0,0) <-> (0,1): each depends on the other, anti lists kept
        // consistent so only the acyclicity check can catch it.
        let p = CustomDag::new(1, 2)
            .with_dependencies(|_i, j, out| {
                out.push(VertexId::new(0, 1 - j));
            })
            .with_anti_dependencies(|_i, j, out, _| {
                out.push(VertexId::new(0, 1 - j));
            });
        assert_eq!(validate_pattern(&p).unwrap_err(), ValidationError::Cyclic);
    }

    #[test]
    fn indegree_mismatch_detected() {
        struct Lying;
        impl DagPattern for Lying {
            fn height(&self) -> u32 {
                1
            }
            fn width(&self) -> u32 {
                2
            }
            fn dependencies(&self, _i: u32, j: u32, out: &mut Vec<VertexId>) {
                if j == 1 {
                    out.push(VertexId::new(0, 0));
                }
            }
            fn anti_dependencies(&self, _i: u32, j: u32, out: &mut Vec<VertexId>) {
                if j == 0 {
                    out.push(VertexId::new(0, 1));
                }
            }
            fn indegree(&self, _i: u32, _j: u32) -> u32 {
                7 // wrong on purpose
            }
        }
        assert!(matches!(
            validate_pattern(&Lying).unwrap_err(),
            ValidationError::IndegreeMismatch { reported: 7, .. }
        ));
    }

    #[test]
    fn errors_display() {
        let e = ValidationError::SelfLoop {
            at: VertexId::new(1, 1),
        };
        assert!(e.to_string().contains("(1, 1)"));
    }
}

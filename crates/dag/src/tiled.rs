//! Tiled (blocked) DAG patterns.
//!
//! Per-vertex scheduling costs the framework a constant per cell
//! (quantified by Fig. 12 and the `micro` benches); the classic remedy —
//! used by EasyPDP's block DAGs and by hand-tuned wavefront codes — is
//! to group a `t × t` block of cells into one macro-vertex. [`TiledDag`]
//! derives the tile-level DAG from *any* underlying [`DagPattern`]
//! automatically, so every pattern in the library (and any custom one)
//! can be run blocked without re-deriving its dependency structure. The
//! matching application adapter lives in `dpx10_core::tiled`.

use std::collections::BTreeSet;
use std::fmt;

use crate::{DagPattern, VertexId};

/// Rectangular blocking of this pattern at the given tile size induces
/// a cycle between tiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TilingCycle {
    /// The offending tile size.
    pub tile: u32,
}

impl fmt::Display for TilingCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rectangular {0}x{0} tiling induces a cycle between tiles",
            self.tile
        )
    }
}

impl std::error::Error for TilingCycle {}

/// A tile-level view of an underlying pattern: tile `(I, J)` covers the
/// cells `i ∈ [I·t, min((I+1)·t, h))`, `j ∈ [J·t, min((J+1)·t, w))`, and
/// exists iff it covers at least one cell of the underlying pattern.
///
/// Tile `(A, B)` is a dependency of tile `(I, J)` iff some covered cell
/// of `(I, J)` depends on some covered cell of `(A, B)` — computed by
/// scanning the covered cells' queries, so the derived pattern inherits
/// the underlying contract (validated in tests for the whole library).
///
/// Not every pattern tiles: if cells of two tiles depend on each other
/// (e.g. the [`crate::builtin::Pyramid`] stencil, whose `(i-1, j-1)`
/// and `(i-1, j+1)` edges point into *both* horizontal neighbours),
/// rectangular blocking creates a tile-level cycle. [`TiledDag::try_new`]
/// detects this and refuses; such patterns need skewed tiles, which is
/// out of scope here.
#[derive(Clone, Debug)]
pub struct TiledDag<P> {
    inner: P,
    tile: u32,
    tiles_high: u32,
    tiles_wide: u32,
}

impl<P: DagPattern> TiledDag<P> {
    /// Wraps `inner` with `tile × tile` blocking.
    ///
    /// # Panics
    ///
    /// Panics if the blocking induces a tile-level cycle; use
    /// [`TiledDag::try_new`] to handle that case.
    pub fn new(inner: P, tile: u32) -> Self {
        TiledDag::try_new(inner, tile).expect("pattern admits rectangular tiling")
    }

    /// Wraps `inner` with `tile × tile` blocking, or reports that the
    /// blocking would be cyclic.
    pub fn try_new(inner: P, tile: u32) -> Result<Self, TilingCycle> {
        assert!(tile > 0, "tile size must be positive");
        let tiles_high = inner.height().div_ceil(tile);
        let tiles_wide = inner.width().div_ceil(tile);
        let tiled = TiledDag {
            inner,
            tile,
            tiles_high,
            tiles_wide,
        };
        if crate::topo::topological_order(&tiled).is_none() {
            return Err(TilingCycle { tile });
        }
        Ok(tiled)
    }

    /// Tile edge length.
    pub fn tile(&self) -> u32 {
        self.tile
    }

    /// The wrapped pattern.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The tile owning cell `(i, j)`.
    #[inline]
    pub fn tile_of(&self, i: u32, j: u32) -> VertexId {
        VertexId::new(i / self.tile, j / self.tile)
    }

    /// The cell ranges covered by tile `(ti, tj)`:
    /// `(i0..i1, j0..j1)` clipped to the underlying matrix.
    pub fn cell_bounds(&self, ti: u32, tj: u32) -> (std::ops::Range<u32>, std::ops::Range<u32>) {
        let i0 = ti * self.tile;
        let j0 = tj * self.tile;
        (
            i0..(i0 + self.tile).min(self.inner.height()),
            j0..(j0 + self.tile).min(self.inner.width()),
        )
    }

    /// Iterates the in-pattern cells covered by tile `(ti, tj)` in
    /// row-major order.
    pub fn cells_of(&self, ti: u32, tj: u32) -> impl Iterator<Item = VertexId> + '_ {
        let (ri, rj) = self.cell_bounds(ti, tj);
        ri.flat_map(move |i| {
            rj.clone()
                .filter(move |&j| self.inner.contains(i, j))
                .map(move |j| VertexId::new(i, j))
        })
    }

    /// Collects the distinct neighbour tiles of `(ti, tj)` through
    /// `query` (dependencies or anti-dependencies of covered cells).
    fn neighbour_tiles(
        &self,
        ti: u32,
        tj: u32,
        query: impl Fn(u32, u32, &mut Vec<VertexId>),
        out: &mut Vec<VertexId>,
    ) {
        let me = VertexId::new(ti, tj);
        let mut set: BTreeSet<u64> = BTreeSet::new();
        let mut buf = Vec::new();
        for cell in self.cells_of(ti, tj) {
            buf.clear();
            query(cell.i, cell.j, &mut buf);
            for d in &buf {
                let t = self.tile_of(d.i, d.j);
                if t != me {
                    set.insert(t.pack());
                }
            }
        }
        out.extend(set.into_iter().map(VertexId::unpack));
    }
}

impl<P: DagPattern> DagPattern for TiledDag<P> {
    fn height(&self) -> u32 {
        self.tiles_high
    }

    fn width(&self) -> u32 {
        self.tiles_wide
    }

    fn contains(&self, ti: u32, tj: u32) -> bool {
        ti < self.tiles_high && tj < self.tiles_wide && self.cells_of(ti, tj).next().is_some()
    }

    fn dependencies(&self, ti: u32, tj: u32, out: &mut Vec<VertexId>) {
        self.neighbour_tiles(ti, tj, |i, j, buf| self.inner.dependencies(i, j, buf), out);
    }

    fn anti_dependencies(&self, ti: u32, tj: u32, out: &mut Vec<VertexId>) {
        self.neighbour_tiles(
            ti,
            tj,
            |i, j, buf| self.inner.anti_dependencies(i, j, buf),
            out,
        );
    }

    fn vertex_count(&self) -> u64 {
        let mut n = 0;
        for ti in 0..self.tiles_high {
            for tj in 0..self.tiles_wide {
                n += self.contains(ti, tj) as u64;
            }
        }
        n
    }

    fn name(&self) -> &str {
        "tiled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::{Grid3, IntervalUpper};
    use crate::{validate_pattern, BuiltinKind, KnapsackDag};

    #[test]
    fn tiled_builtins_validate() {
        for kind in BuiltinKind::ALL {
            for tile in [1u32, 2, 3, 5] {
                match TiledDag::try_new(kind.instantiate(11, 9), tile) {
                    Ok(p) => {
                        validate_pattern(&p).unwrap_or_else(|e| panic!("{kind:?} tile {tile}: {e}"))
                    }
                    Err(_) => assert!(
                        kind == BuiltinKind::Pyramid && tile > 1,
                        "only the pyramid stencil refuses tiling, not {kind:?} at {tile}"
                    ),
                }
            }
        }
    }

    #[test]
    fn pyramid_tiling_rejected_with_clear_error() {
        use crate::builtin::Pyramid;
        let err = TiledDag::try_new(Pyramid::new(8, 8), 2).unwrap_err();
        assert_eq!(err.tile, 2);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn tiled_knapsack_validates() {
        let p = TiledDag::new(KnapsackDag::new(vec![2, 5, 3], 11), 4);
        validate_pattern(&p).unwrap();
    }

    #[test]
    fn tile_of_and_bounds() {
        let p = TiledDag::new(Grid3::new(10, 10), 4);
        assert_eq!(p.height(), 3);
        assert_eq!(p.width(), 3);
        assert_eq!(p.tile_of(0, 0), VertexId::new(0, 0));
        assert_eq!(p.tile_of(9, 4), VertexId::new(2, 1));
        let (ri, rj) = p.cell_bounds(2, 2);
        assert_eq!((ri.start, ri.end), (8, 10));
        assert_eq!((rj.start, rj.end), (8, 10));
    }

    #[test]
    fn grid3_tiles_have_grid3_structure() {
        // Tiling a grid wavefront yields a coarser grid wavefront.
        let p = TiledDag::new(Grid3::new(12, 12), 4);
        let mut deps = Vec::new();
        p.dependencies(1, 1, &mut deps);
        deps.sort();
        assert_eq!(
            deps,
            vec![
                VertexId::new(0, 0),
                VertexId::new(0, 1),
                VertexId::new(1, 0)
            ]
        );
    }

    #[test]
    fn tile_size_one_is_identity() {
        let inner = Grid3::new(5, 7);
        let p = TiledDag::new(Grid3::new(5, 7), 1);
        assert_eq!(p.vertex_count(), inner.vertex_count());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for i in 0..5 {
            for j in 0..7 {
                a.clear();
                b.clear();
                p.dependencies(i, j, &mut a);
                inner.dependencies(i, j, &mut b);
                a.sort();
                b.sort();
                assert_eq!(a, b, "({i},{j})");
            }
        }
    }

    #[test]
    fn masked_pattern_tiles_skip_empty_blocks() {
        // The lower-left tiles of an interval pattern cover no cells.
        let p = TiledDag::new(IntervalUpper::new(12), 4);
        assert!(p.contains(0, 0));
        assert!(p.contains(0, 2));
        assert!(!p.contains(2, 0), "tile fully below the diagonal");
        validate_pattern(&p).unwrap();
    }

    #[test]
    fn huge_tile_collapses_to_single_vertex() {
        let p = TiledDag::new(Grid3::new(6, 6), 100);
        assert_eq!(p.vertex_count(), 1);
        let mut deps = Vec::new();
        p.dependencies(0, 0, &mut deps);
        assert!(deps.is_empty());
    }
}

//! DAG pattern library for the DPX10 reproduction.
//!
//! A dynamic-programming recurrence is described to the framework as a
//! *DAG pattern*: an implicit directed acyclic graph over the cells of a
//! 2-D matrix. Each vertex `(i, j)` is one cell; edges encode the data
//! dependencies of the recurrence (paper §IV–V, Figs. 3, 5 and 8).
//!
//! The framework never materialises the edge set. Instead a pattern answers
//! two queries, mirroring the paper's `getDependency()` /
//! `getAntiDependency()` API:
//!
//! * [`DagPattern::dependencies`] — vertices that must complete **before**
//!   `(i, j)` may run, and
//! * [`DagPattern::anti_dependencies`] — vertices whose indegree must be
//!   decremented **after** `(i, j)` completes.
//!
//! Eight commonly used patterns ship with the library ([`builtin`]), the
//! data-dependent 0/1-Knapsack pattern (paper Fig. 8) lives in
//! [`knapsack`], and arbitrary recurrences can be expressed with
//! [`custom::CustomDag`].
//!
//! # Example
//!
//! ```
//! use dpx10_dag::{DagPattern, VertexId, builtin::Grid3};
//!
//! // The LCS / Smith-Waterman pattern (paper Fig. 5 (b)).
//! let dag = Grid3::new(4, 4);
//! let mut deps = Vec::new();
//! dag.dependencies(2, 2, &mut deps);
//! assert_eq!(deps, vec![
//!     VertexId::new(1, 2),
//!     VertexId::new(2, 1),
//!     VertexId::new(1, 1),
//! ]);
//! // Vertex (0, 0) has no dependencies: it is a DAG source.
//! deps.clear();
//! dag.dependencies(0, 0, &mut deps);
//! assert!(deps.is_empty());
//! ```

#![warn(missing_docs)]

pub mod builtin;
pub mod custom;
pub mod extra;
pub mod knapsack;
pub mod pattern;
pub mod range;
pub mod tiled;
pub mod topo;
pub mod validate;
pub mod vertex;

pub use custom::CustomDag;
pub use extra::{BandedGrid3, IntervalSplits};
pub use knapsack::KnapsackDag;
pub use pattern::{BuiltinKind, DagPattern};
pub use range::{AggSpec, Axis, DepInterval, GapDag, LwsDag, RangeDep, RangedDag, Reduction};
pub use tiled::TiledDag;
pub use topo::{critical_path_len, topological_order, wavefront_profile};
pub use validate::{validate_pattern, ValidationError};
pub use vertex::VertexId;

//! The [`DagPattern`] trait — the reproduction of the paper's abstract
//! `Dag[T]` class (Fig. 3).

use crate::VertexId;

/// A DAG pattern: an implicit dependency graph over the cells of a
/// `height × width` matrix.
///
/// Implementations must be cheap and deterministic: the runtime calls
/// [`dependencies`](DagPattern::dependencies) once per executed vertex and
/// [`anti_dependencies`](DagPattern::anti_dependencies) once per completed
/// vertex, exactly as the paper's worker does (§VI-C).
///
/// # Contract
///
/// For the runtime to terminate and produce correct results, a pattern must
/// satisfy (checked by [`crate::validate_pattern`] and the property tests):
///
/// 1. **Containment** — every id returned by either query satisfies
///    [`contains`](DagPattern::contains).
/// 2. **Inversion** — `d ∈ dependencies(v)` ⇔ `v ∈ anti_dependencies(d)`.
/// 3. **Acyclicity** — the implied edge relation has no cycles.
///
/// Patterns are consulted concurrently from many worker threads, hence the
/// `Send + Sync` bound.
pub trait DagPattern: Send + Sync {
    /// Number of rows; valid `i` lies in `0..height`.
    fn height(&self) -> u32;

    /// Number of columns; valid `j` lies in `0..width`.
    fn width(&self) -> u32;

    /// Whether `(i, j)` is a vertex of this DAG.
    ///
    /// The default accepts the full rectangle; triangular patterns such as
    /// [`crate::builtin::IntervalUpper`] override it.
    #[inline]
    fn contains(&self, i: u32, j: u32) -> bool {
        i < self.height() && j < self.width()
    }

    /// Appends to `out` the ids of vertices that must complete before
    /// `(i, j)` may execute (paper: `getDependency`).
    ///
    /// `out` is an append-buffer so hot callers can reuse one allocation;
    /// implementations must not read or clear existing contents.
    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>);

    /// Appends to `out` the ids of vertices that depend on `(i, j)`
    /// (paper: `getAntiDependency`). Their indegree is decremented when
    /// `(i, j)` finishes.
    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>);

    /// The initial indegree of `(i, j)`.
    ///
    /// The default counts [`dependencies`](DagPattern::dependencies); a
    /// pattern may override it with a closed form to speed up graph
    /// initialisation.
    fn indegree(&self, i: u32, j: u32) -> u32 {
        let mut buf = Vec::with_capacity(4);
        self.dependencies(i, j, &mut buf);
        buf.len() as u32
    }

    /// Total number of vertices.
    ///
    /// The default assumes the full rectangle; sparse patterns override.
    fn vertex_count(&self) -> u64 {
        self.height() as u64 * self.width() as u64
    }

    /// A short human-readable name used in reports and traces.
    fn name(&self) -> &str {
        "custom"
    }

    /// The interval-dependency view of this pattern, if it has one.
    ///
    /// Classic patterns return `None`; [`crate::range::RangedDag`]
    /// returns its wrapped [`crate::range::RangeDep`] so interval-aware
    /// engines can skip edge enumeration and pair interval reads with
    /// prefix aggregation.
    fn as_range(&self) -> Option<&dyn crate::range::RangeDep> {
        None
    }
}

// Blanket impls so engines can take `&P`, `Box<dyn ..>` or `Arc<dyn ..>`
// interchangeably.
macro_rules! forward_pattern {
    ($ty:ty) => {
        impl<P: DagPattern + ?Sized> DagPattern for $ty {
            fn height(&self) -> u32 {
                (**self).height()
            }
            fn width(&self) -> u32 {
                (**self).width()
            }
            fn contains(&self, i: u32, j: u32) -> bool {
                (**self).contains(i, j)
            }
            fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
                (**self).dependencies(i, j, out)
            }
            fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
                (**self).anti_dependencies(i, j, out)
            }
            fn indegree(&self, i: u32, j: u32) -> u32 {
                (**self).indegree(i, j)
            }
            fn vertex_count(&self) -> u64 {
                (**self).vertex_count()
            }
            fn name(&self) -> &str {
                (**self).name()
            }
            fn as_range(&self) -> Option<&dyn crate::range::RangeDep> {
                (**self).as_range()
            }
        }
    };
}

forward_pattern!(&P);
forward_pattern!(Box<P>);
forward_pattern!(std::sync::Arc<P>);

/// Identifiers for the eight built-in patterns (paper Fig. 5 (a)–(h)),
/// convenient for sweeping over the whole library in tests and benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BuiltinKind {
    /// (a) left + top dependencies — Manhattan Tourist shape.
    Grid2,
    /// (b) left + top + diagonal — LCS / Smith-Waterman shape.
    Grid3,
    /// (c) diagonal-only chains.
    Diagonal,
    /// (d) upper-triangular interval DP — Longest Palindromic Subsequence.
    IntervalUpper,
    /// (e) chains along each row.
    RowWave,
    /// (f) chains along each column.
    ColWave,
    /// (g) three-parent pyramid stencil.
    Pyramid,
    /// (h) full previous row + column (a 2D/1D-type recurrence).
    FullPrevRowCol,
}

impl BuiltinKind {
    /// All eight built-ins, in Fig. 5 order.
    pub const ALL: [BuiltinKind; 8] = [
        BuiltinKind::Grid2,
        BuiltinKind::Grid3,
        BuiltinKind::Diagonal,
        BuiltinKind::IntervalUpper,
        BuiltinKind::RowWave,
        BuiltinKind::ColWave,
        BuiltinKind::Pyramid,
        BuiltinKind::FullPrevRowCol,
    ];

    /// Instantiates the pattern at the given size.
    pub fn instantiate(self, height: u32, width: u32) -> Box<dyn DagPattern> {
        use crate::builtin::*;
        match self {
            BuiltinKind::Grid2 => Box::new(Grid2::new(height, width)),
            BuiltinKind::Grid3 => Box::new(Grid3::new(height, width)),
            BuiltinKind::Diagonal => Box::new(Diagonal::new(height, width)),
            BuiltinKind::IntervalUpper => Box::new(IntervalUpper::new(height.max(width))),
            BuiltinKind::RowWave => Box::new(RowWave::new(height, width)),
            BuiltinKind::ColWave => Box::new(ColWave::new(height, width)),
            BuiltinKind::Pyramid => Box::new(Pyramid::new(height, width)),
            BuiltinKind::FullPrevRowCol => Box::new(FullPrevRowCol::new(height, width)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_kinds_instantiate_with_right_names() {
        for kind in BuiltinKind::ALL {
            let pat = kind.instantiate(5, 5);
            assert!(!pat.name().is_empty(), "{kind:?} has a name");
            assert!(pat.vertex_count() > 0);
        }
    }

    #[test]
    fn trait_objects_forward() {
        let pat: Box<dyn DagPattern> = BuiltinKind::Grid2.instantiate(3, 4);
        assert_eq!(pat.height(), 3);
        assert_eq!(pat.width(), 4);
        assert!(pat.contains(2, 3));
        assert!(!pat.contains(3, 0));
        let arc: std::sync::Arc<dyn DagPattern> = std::sync::Arc::from(pat);
        assert_eq!(arc.vertex_count(), 12);
        assert_eq!(arc.indegree(0, 0), 0);
    }
}

//! Property-based tests of the `DagPattern` contract across the whole
//! shipped library, at randomised sizes and parameters.

use std::collections::HashMap;
use std::sync::Arc;

use dpx10_dag::{
    builtin::*, critical_path_len, topological_order, validate_pattern, wavefront_profile,
    BuiltinKind, CustomDag, KnapsackDag, VertexId,
};
use proptest::prelude::*;

/// A random acyclic edge table: every vertex draws up to `max_deg`
/// dependencies uniformly from the row-major-earlier vertices, so the
/// table is acyclic by construction. Returns the forward and inverse
/// adjacency maps — mutual inverses by construction.
type EdgeTable = (
    HashMap<(u32, u32), Vec<VertexId>>,
    HashMap<(u32, u32), Vec<VertexId>>,
);

fn random_edge_table(h: u32, w: u32, seed: u64, max_deg: u64) -> EdgeTable {
    // Small splitmix so the table is a pure function of the inputs.
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut deps: HashMap<(u32, u32), Vec<VertexId>> = HashMap::new();
    let mut anti: HashMap<(u32, u32), Vec<VertexId>> = HashMap::new();
    for i in 0..h {
        for j in 0..w {
            let rank = u64::from(i) * u64::from(w) + u64::from(j);
            let entry = deps.entry((i, j)).or_default();
            if rank == 0 {
                continue;
            }
            for _ in 0..(next() % (max_deg + 1)) {
                let pick = next() % rank;
                let src = VertexId::new((pick / u64::from(w)) as u32, (pick % u64::from(w)) as u32);
                if !entry.contains(&src) {
                    entry.push(src);
                    anti.entry((src.i, src.j))
                        .or_default()
                        .push(VertexId::new(i, j));
                }
            }
        }
    }
    (deps, anti)
}

/// Wraps an edge table in the paper's custom-pattern API.
fn custom_from_table(h: u32, w: u32, table: EdgeTable) -> CustomDag {
    let (deps, anti) = (Arc::new(table.0), Arc::new(table.1));
    CustomDag::new(h, w)
        .with_dependencies(move |i, j, out| {
            if let Some(ds) = deps.get(&(i, j)) {
                out.extend(ds.iter().copied());
            }
        })
        .with_anti_dependencies(move |i, j, out, _hw| {
            if let Some(ans) = anti.get(&(i, j)) {
                out.extend(ans.iter().copied());
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every built-in pattern satisfies the full contract at arbitrary
    /// sizes: containment, inversion, indegree consistency, acyclicity.
    #[test]
    fn builtins_validate(h in 1u32..24, w in 1u32..24, kind_idx in 0usize..8) {
        let kind = BuiltinKind::ALL[kind_idx];
        let pattern = kind.instantiate(h, w);
        prop_assert!(validate_pattern(&pattern).is_ok(), "{kind:?} {h}x{w}");
    }

    /// Knapsack patterns validate for arbitrary weights and capacities —
    /// the data-dependent edges stay mutually inverse.
    #[test]
    fn knapsack_validates(
        weights in proptest::collection::vec(1u32..12, 1..8),
        capacity in 0u32..30,
    ) {
        let pattern = KnapsackDag::new(weights, capacity);
        prop_assert!(validate_pattern(&pattern).is_ok());
    }

    /// The wavefront profile partitions the vertex set: its entries sum to
    /// the vertex count, and its length (critical path) never exceeds it.
    #[test]
    fn wavefront_partitions_vertices(h in 1u32..16, w in 1u32..16, kind_idx in 0usize..8) {
        use dpx10_dag::DagPattern;
        let pattern = BuiltinKind::ALL[kind_idx].instantiate(h, w);
        let profile = wavefront_profile(&pattern);
        prop_assert_eq!(profile.iter().sum::<u64>(), pattern.vertex_count());
        prop_assert!(critical_path_len(&pattern) <= pattern.vertex_count());
        prop_assert!(profile.iter().all(|&n| n > 0));
    }

    /// A topological order visits each vertex exactly once and respects
    /// every dependency edge.
    #[test]
    fn topo_order_sound(h in 1u32..12, w in 1u32..12, kind_idx in 0usize..8) {
        use dpx10_dag::DagPattern;
        let pattern = BuiltinKind::ALL[kind_idx].instantiate(h, w);
        let order = topological_order(&pattern).expect("builtin must be acyclic");
        prop_assert_eq!(order.len() as u64, pattern.vertex_count());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(k, &v)| (v, k)).collect();
        let mut deps = Vec::new();
        for &v in &order {
            deps.clear();
            pattern.dependencies(v.i, v.j, &mut deps);
            for d in &deps {
                prop_assert!(pos[d] < pos[&v]);
            }
        }
    }

    /// Grid3's critical path is exactly h + w - 1 (the anti-diagonal
    /// count): the paper's wavefront intuition in closed form.
    #[test]
    fn grid3_critical_path_closed_form(h in 1u32..20, w in 1u32..20) {
        prop_assert_eq!(critical_path_len(&Grid3::new(h, w)), (h + w - 1) as u64);
    }

    /// Knapsack's critical path is the row count: rows only depend on the
    /// previous row, so all of Fig. 10 (d)'s lost parallelism comes from
    /// communication, not from chain depth.
    #[test]
    fn knapsack_critical_path_is_rows(
        weights in proptest::collection::vec(1u32..6, 1..7),
        capacity in 0u32..20,
    ) {
        let rows = weights.len() as u64 + 1;
        let pattern = KnapsackDag::new(weights, capacity);
        prop_assert_eq!(critical_path_len(&pattern), rows);
    }

    /// Arbitrary random edge tables wrapped in `CustomDag` satisfy the
    /// full pattern contract: containment, deps/anti-deps mutual
    /// inversion, acyclicity — custom patterns a user might write, not
    /// just the shipped library.
    #[test]
    fn random_custom_tables_validate(
        h in 1u32..10,
        w in 1u32..10,
        seed in 0u64..1_000_000,
        max_deg in 0u64..4,
    ) {
        let pattern = custom_from_table(h, w, random_edge_table(h, w, seed, max_deg));
        prop_assert!(validate_pattern(&pattern).is_ok(), "{h}x{w} seed={seed}");
        let order = topological_order(&pattern).expect("acyclic by construction");
        prop_assert_eq!(order.len() as u64, u64::from(h) * u64::from(w));
    }

    /// Breaking the inversion — dropping one anti-dependency edge from
    /// an otherwise-valid table — must be caught by `validate_pattern`:
    /// the validator is only trustworthy if it rejects bad tables.
    #[test]
    fn broken_inversion_is_rejected(
        h in 2u32..8,
        w in 2u32..8,
        seed in 0u64..1_000_000,
    ) {
        let (deps, mut anti) = random_edge_table(h, w, seed, 3);
        let total_edges: usize = deps.values().map(Vec::len).sum();
        if total_edges == 0 {
            return Ok(()); // nothing to break; vacuously fine
        }
        // Drop the first anti edge in deterministic key order.
        let mut keys: Vec<(u32, u32)> = anti
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        let broken = keys[0];
        anti.get_mut(&broken).expect("chosen nonempty").pop();
        let pattern = custom_from_table(h, w, (deps, anti));
        prop_assert!(validate_pattern(&pattern).is_err(), "{h}x{w} seed={seed}");
    }
}

//! Property-based tests of the `DagPattern` contract across the whole
//! shipped library, at randomised sizes and parameters.

use dpx10_dag::{
    builtin::*, critical_path_len, topological_order, validate_pattern, wavefront_profile,
    BuiltinKind, KnapsackDag,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every built-in pattern satisfies the full contract at arbitrary
    /// sizes: containment, inversion, indegree consistency, acyclicity.
    #[test]
    fn builtins_validate(h in 1u32..24, w in 1u32..24, kind_idx in 0usize..8) {
        let kind = BuiltinKind::ALL[kind_idx];
        let pattern = kind.instantiate(h, w);
        prop_assert!(validate_pattern(&pattern).is_ok(), "{kind:?} {h}x{w}");
    }

    /// Knapsack patterns validate for arbitrary weights and capacities —
    /// the data-dependent edges stay mutually inverse.
    #[test]
    fn knapsack_validates(
        weights in proptest::collection::vec(1u32..12, 1..8),
        capacity in 0u32..30,
    ) {
        let pattern = KnapsackDag::new(weights, capacity);
        prop_assert!(validate_pattern(&pattern).is_ok());
    }

    /// The wavefront profile partitions the vertex set: its entries sum to
    /// the vertex count, and its length (critical path) never exceeds it.
    #[test]
    fn wavefront_partitions_vertices(h in 1u32..16, w in 1u32..16, kind_idx in 0usize..8) {
        use dpx10_dag::DagPattern;
        let pattern = BuiltinKind::ALL[kind_idx].instantiate(h, w);
        let profile = wavefront_profile(&pattern);
        prop_assert_eq!(profile.iter().sum::<u64>(), pattern.vertex_count());
        prop_assert!(critical_path_len(&pattern) <= pattern.vertex_count());
        prop_assert!(profile.iter().all(|&n| n > 0));
    }

    /// A topological order visits each vertex exactly once and respects
    /// every dependency edge.
    #[test]
    fn topo_order_sound(h in 1u32..12, w in 1u32..12, kind_idx in 0usize..8) {
        use dpx10_dag::DagPattern;
        let pattern = BuiltinKind::ALL[kind_idx].instantiate(h, w);
        let order = topological_order(&pattern).expect("builtin must be acyclic");
        prop_assert_eq!(order.len() as u64, pattern.vertex_count());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(k, &v)| (v, k)).collect();
        let mut deps = Vec::new();
        for &v in &order {
            deps.clear();
            pattern.dependencies(v.i, v.j, &mut deps);
            for d in &deps {
                prop_assert!(pos[d] < pos[&v]);
            }
        }
    }

    /// Grid3's critical path is exactly h + w - 1 (the anti-diagonal
    /// count): the paper's wavefront intuition in closed form.
    #[test]
    fn grid3_critical_path_closed_form(h in 1u32..20, w in 1u32..20) {
        prop_assert_eq!(critical_path_len(&Grid3::new(h, w)), (h + w - 1) as u64);
    }

    /// Knapsack's critical path is the row count: rows only depend on the
    /// previous row, so all of Fig. 10 (d)'s lost parallelism comes from
    /// communication, not from chain depth.
    #[test]
    fn knapsack_critical_path_is_rows(
        weights in proptest::collection::vec(1u32..6, 1..7),
        capacity in 0u32..20,
    ) {
        let rows = weights.len() as u64 + 1;
        let pattern = KnapsackDag::new(weights, capacity);
        prop_assert_eq!(critical_path_len(&pattern), rows);
    }
}

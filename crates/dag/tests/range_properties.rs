//! Property tests of the interval-dependency (`RangeDep`) contract: the
//! `RangedDag` adapter's enumerated edges and the interval arithmetic
//! must agree exactly, at arbitrary grid shapes including boundary
//! rows/columns and empty intervals.

use std::collections::BTreeSet;

use dpx10_dag::{
    validate_pattern, DagPattern, DepInterval, GapDag, LwsDag, RangeDep, RangedDag, TiledDag,
    VertexId,
};
use proptest::prelude::*;

/// Folds a ranged pattern's dependency view of `(i, j)` into the flat
/// cell set — points plus every interval member.
fn ranged_dep_set(r: &dyn RangeDep, i: u32, j: u32) -> BTreeSet<VertexId> {
    let mut pts = Vec::new();
    r.point_deps(i, j, &mut pts);
    let mut ivs = Vec::new();
    r.dep_intervals(i, j, &mut ivs);
    let mut set: BTreeSet<VertexId> = pts.into_iter().collect();
    for iv in ivs {
        set.extend(iv.iter());
    }
    set
}

fn enumerated_dep_set(p: &dyn DagPattern, i: u32, j: u32) -> BTreeSet<VertexId> {
    let mut buf = Vec::new();
    p.dependencies(i, j, &mut buf);
    buf.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The adapter's closed-form `indegree` equals the enumerated edge
    /// count for every cell of both ranged patterns, at arbitrary shapes
    /// (including the 1-cell boundary cases where every interval is
    /// empty).
    #[test]
    fn interval_indegree_matches_enumeration(h in 1u32..20, w in 1u32..20) {
        let gap = RangedDag::new(GapDag::new(h, w));
        for i in 0..h {
            for j in 0..w {
                let enumerated = enumerated_dep_set(&gap, i, j);
                prop_assert_eq!(
                    gap.indegree(i, j) as usize,
                    enumerated.len(),
                    "gap ({}, {}) of {}x{}", i, j, h, w
                );
            }
        }
        let lws = RangedDag::new(LwsDag::new(w));
        for j in 0..w {
            prop_assert_eq!(lws.indegree(0, j) as usize, enumerated_dep_set(&lws, 0, j).len());
        }
    }

    /// The interval view and the enumerated view describe the same edge
    /// set cell-by-cell: no interval member is missed, duplicated or
    /// invented by the adapter.
    #[test]
    fn interval_and_enumerated_edge_sets_agree(h in 1u32..16, w in 1u32..16) {
        let inner = GapDag::new(h, w);
        let gap = RangedDag::new(inner);
        for i in 0..h {
            for j in 0..w {
                let ranged = ranged_dep_set(&inner, i, j);
                let enumerated = enumerated_dep_set(&gap, i, j);
                prop_assert_eq!(&ranged, &enumerated, "({}, {})", i, j);
                // Dependencies never include the cell itself and stay
                // strictly earlier on their axis.
                prop_assert!(!ranged.contains(&VertexId::new(i, j)));
            }
        }
    }

    /// Both ranged patterns satisfy the full classic contract through
    /// the adapter — containment, deps/anti-deps mutual inversion and
    /// acyclicity — so every enumeration-based engine can run them.
    #[test]
    fn ranged_patterns_validate(h in 1u32..14, w in 1u32..14) {
        prop_assert!(validate_pattern(&RangedDag::new(GapDag::new(h, w))).is_ok());
        prop_assert!(validate_pattern(&RangedDag::new(LwsDag::new(w))).is_ok());
    }

    /// Empty and inverted intervals enumerate to nothing and count zero,
    /// for arbitrary bounds on both axes.
    #[test]
    fn empty_intervals_are_inert(fixed in 0u32..50, lo in 0u32..50, shrink in 0u32..50) {
        let hi = lo.saturating_sub(shrink); // hi <= lo: empty by contract
        for iv in [
            DepInterval::Row { i: fixed, lo, hi },
            DepInterval::Col { j: fixed, lo, hi },
        ] {
            prop_assert_eq!(iv.len(), 0);
            prop_assert!(iv.is_empty());
            let mut out = Vec::new();
            iv.enumerate(&mut out);
            prop_assert!(out.is_empty());
            prop_assert_eq!(iv.iter().count(), 0);
        }
    }

    /// Non-empty intervals enumerate exactly `hi - lo` cells in axis
    /// order, and `iter` matches `enumerate`.
    #[test]
    fn interval_enumeration_is_exact(fixed in 0u32..40, lo in 0u32..40, extra in 1u32..40) {
        let hi = lo + extra;
        let row = DepInterval::Row { i: fixed, lo, hi };
        let mut out = Vec::new();
        row.enumerate(&mut out);
        prop_assert_eq!(out.len() as u32, extra);
        prop_assert!(out.windows(2).all(|p| p[0].i == p[1].i && p[0].j + 1 == p[1].j));
        let via_iter: Vec<VertexId> = row.iter().collect();
        prop_assert_eq!(out, via_iter);
        let col = DepInterval::Col { j: fixed, lo, hi };
        let cells: Vec<VertexId> = col.iter().collect();
        prop_assert_eq!(cells.len() as u32, extra);
        prop_assert!(cells.iter().all(|c| c.j == fixed));
    }

    /// Tiling composes with the adapter: a `TiledDag` over a ranged
    /// pattern still validates, so the tiled runner can consume interval
    /// patterns through the same seam as everything else.
    #[test]
    fn tiled_over_ranged_validates(h in 2u32..12, w in 2u32..12, tile in 1u32..5) {
        let tiled = TiledDag::new(RangedDag::new(GapDag::new(h, w)), tile);
        prop_assert!(validate_pattern(&tiled).is_ok());
    }
}

//! Recovery edge cases the mid-run experiments never hit: several
//! places dying in one pass, and snapshots taken at 0 % and 100 %
//! progress.

use std::sync::Arc;

use dpx10_apgas::{NetworkModel, PlaceId, Topology};
use dpx10_distarray::{
    recover, Dist, DistArray, DistKind, RecoveryCostModel, Region2D, ResilientDistArray,
    RestoreManner,
};

fn dist(places: u16) -> Arc<Dist> {
    Arc::new(Dist::new(
        Region2D::new(6, 6),
        DistKind::BlockRow,
        (0..places).map(PlaceId).collect(),
    ))
}

#[test]
fn two_places_dying_in_one_pass_lose_exactly_their_cells() {
    let d = dist(4);
    let mut array: DistArray<i64> = DistArray::new(d.clone());
    for i in 0..6 {
        for j in 0..6 {
            array.set(i, j, i64::from(i * 10 + j));
        }
    }
    let dead = [PlaceId(1), PlaceId(3)];
    let (fresh, report) = recover(
        &array,
        &dead,
        RestoreManner::RecomputeRemote,
        &Topology::flat(4),
        &NetworkModel::free(),
        &RecoveryCostModel::default(),
    );
    // Every finished cell is accounted for exactly once.
    assert_eq!(report.kept + report.dropped + report.lost, 36);
    // Both dead places' cells are lost in the same pass.
    let expected_lost: u64 = (0..6u32)
        .flat_map(|i| (0..6u32).map(move |j| (i, j)))
        .filter(|&(i, j)| dead.contains(&d.place_of(i, j)))
        .count() as u64;
    assert_eq!(report.lost, expected_lost);
    assert!(report.lost > 0, "both victims owned cells");
    // The survivors' dist no longer contains either victim.
    for p in dead {
        assert!(!fresh.dist().places().contains(&p));
    }
    // Kept cells survive with their values intact.
    assert_eq!(fresh.finished_count(), report.kept + report.migrated);
}

#[test]
fn snapshot_at_zero_progress_is_empty_and_restores_to_nothing() {
    let mut ra: ResilientDistArray<i64> = ResilientDistArray::new(dist(3));
    let (topo, net) = (Topology::flat(3), NetworkModel::free());
    // Failure at 0 % progress: the snapshot happens before any work.
    let snap = ra.snapshot(&topo, &net);
    assert_eq!(snap.values, 0);
    assert_eq!(snap.bytes, 0);
    // Work lands after the snapshot, then a place dies.
    ra.array_mut().set(0, 0, 7);
    ra.array_mut().set(5, 5, 9);
    let restore = ra.restore(&[PlaceId(1)], &topo, &net);
    assert_eq!(restore.values, 0, "post-snapshot work is lost");
    assert_eq!(ra.array().finished_count(), 0);
}

#[test]
fn snapshot_at_full_progress_restores_every_cell_even_with_two_dead() {
    let mut ra: ResilientDistArray<i64> = ResilientDistArray::new(dist(4));
    let (topo, net) = (Topology::flat(4), NetworkModel::free());
    for i in 0..6 {
        for j in 0..6 {
            ra.array_mut().set(i, j, i64::from(i * 10 + j));
        }
    }
    // Failure at 100 % progress: snapshot covers the whole array.
    let snap = ra.snapshot(&topo, &net);
    assert_eq!(snap.values, 36);
    let restore = ra.restore(&[PlaceId(1), PlaceId(2)], &topo, &net);
    assert_eq!(restore.values, 36);
    assert_eq!(ra.array().finished_count(), 36);
    for i in 0..6 {
        for j in 0..6 {
            assert_eq!(
                ra.array().get_finished(i, j),
                Some(&i64::from(i * 10 + j)),
                "({i},{j})"
            );
        }
    }
}

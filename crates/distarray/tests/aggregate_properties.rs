//! Property tests of the prefix-aggregation lanes: a lane read
//! mid-wavefront — after an arbitrary permuted, duplicated subset of
//! deliveries — must equal a recompute-from-scratch fold over the same
//! prefix, for every reduction.

use dpx10_dag::{AggSpec, Axis, DepInterval, Reduction, VertexId};
use dpx10_distarray::{AggTable, PrefixLane};
use proptest::prelude::*;

const REDUCTIONS: [Reduction; 3] = [Reduction::Min, Reduction::Max, Reduction::Sum];

/// The ground truth: fold `keys[0..hi]` left-to-right from the identity.
fn scratch_fold(red: Reduction, keys: &[i64], hi: usize) -> i64 {
    keys[..hi]
        .iter()
        .fold(red.identity(), |a, &k| red.fold(a, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Deliver an arbitrary prefix of the keys in an arbitrary order,
    /// with arbitrary duplicate re-deliveries injected; every answerable
    /// prefix query equals the scratch fold, and queries past the
    /// frontier stay unanswerable rather than wrong.
    #[test]
    fn lane_mid_wavefront_equals_scratch_fold(
        keys in proptest::collection::vec(-1000i64..1000, 1..40),
        order_seed in 0u64..u64::MAX,
        delivered in 0usize..40,
        red_idx in 0usize..3,
        dup_every in 1usize..5,
    ) {
        let red = REDUCTIONS[red_idx];
        let n = keys.len();
        let delivered = delivered.min(n);
        // A seeded permutation of the delivery order.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = order_seed;
        for k in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(k, (s % (k as u64 + 1)) as usize);
        }
        let mut lane = PrefixLane::new(red);
        for (step, &idx) in order[..delivered].iter().enumerate() {
            lane.receive(idx as u32, keys[idx]);
            if step % dup_every == 0 {
                // Re-delivery with a *corrupted* key must be ignored.
                lane.receive(idx as u32, keys[idx] ^ 0x55);
            }
        }
        let frontier = lane.frontier() as usize;
        // The frontier is exactly the longest delivered prefix.
        let expect_frontier = (0..n)
            .take_while(|i| order[..delivered].contains(i))
            .count();
        prop_assert_eq!(frontier, expect_frontier);
        for hi in 0..=n {
            match lane.prefix(hi as u32) {
                Some(got) => {
                    prop_assert!(hi <= frontier);
                    prop_assert_eq!(got, scratch_fold(red, &keys, hi), "hi={}", hi);
                }
                None => prop_assert!(hi > frontier),
            }
        }
        // `missing` names exactly the never-delivered indices below n.
        let mut miss = Vec::new();
        lane.missing(n as u32, &mut miss);
        for idx in &miss {
            prop_assert!(!order[..delivered].contains(&(*idx as usize)));
        }
        // Delivering everything missing completes the lane.
        for idx in miss {
            lane.receive(idx, keys[idx as usize]);
        }
        prop_assert_eq!(lane.prefix(n as u32), Some(scratch_fold(red, &keys, n)));
    }

    /// Table-level invariant over a 2-D grid: fold cells in an arbitrary
    /// wavefront-ish order, then every answerable row/column interval
    /// equals the scratch fold over that axis prefix — with per-axis
    /// keys, as GAP uses.
    #[test]
    fn table_intervals_equal_scratch_folds(
        h in 1u32..8,
        w in 1u32..8,
        order_seed in 0u64..u64::MAX,
        fraction in 0u32..=100,
    ) {
        let spec = AggSpec::both(Reduction::Min);
        let table = AggTable::new(h, w, spec);
        let row_key = |i: u32, j: u32| i64::from(i * 31 + j * 7) - 20;
        let col_key = |i: u32, j: u32| i64::from(i * 13 + j * 3) - 10;
        let mut cells: Vec<(u32, u32)> =
            (0..h).flat_map(|i| (0..w).map(move |j| (i, j))).collect();
        let mut s = order_seed;
        for k in (1..cells.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cells.swap(k, (s % (k as u64 + 1)) as usize);
        }
        let cut = (cells.len() * fraction as usize) / 100;
        let delivered = &cells[..cut];
        for &(i, j) in delivered {
            table.record(VertexId::new(i, j), |axis| match axis {
                Axis::Row => row_key(i, j),
                Axis::Col => col_key(i, j),
            });
        }
        for i in 0..h {
            for hi in 0..=w {
                let iv = DepInterval::Row { i, lo: 0, hi };
                if let Some(got) = table.interval_prefix(iv) {
                    let want = (0..hi)
                        .map(|j| row_key(i, j))
                        .fold(Reduction::Min.identity(), |a, k| a.min(k));
                    prop_assert_eq!(got, want);
                    // Answerable implies every member was delivered.
                    for j in 0..hi {
                        prop_assert!(delivered.contains(&(i, j)));
                    }
                }
            }
        }
        for j in 0..w {
            for hi in 0..=h {
                let iv = DepInterval::Col { j, lo: 0, hi };
                if let Some(got) = table.interval_prefix(iv) {
                    let want = (0..hi)
                        .map(|i| col_key(i, j))
                        .fold(Reduction::Min.identity(), |a, k| a.min(k));
                    prop_assert_eq!(got, want);
                }
            }
        }
    }
}

//! Property tests of the chunk-relocation wire format: `ChunkState`
//! round-trips (cells + ready-counters + cache residents + spill
//! index), codec size contracts, and decoder totality on arbitrary
//! bytes — matching the batch-codec proptest style of the coalescing
//! PR.

use dpx10_apgas::codec::{decode_exact, encode_to_vec, Codec};
use dpx10_distarray::ChunkState;
use proptest::prelude::*;

fn round_trip(s: &ChunkState<u64>) -> Result<(), TestCaseError> {
    let buf = encode_to_vec(s);
    prop_assert_eq!(buf.len(), s.wire_size(), "codec size contract");
    let back: ChunkState<u64> = decode_exact(&buf).expect("well-formed bytes decode");
    prop_assert_eq!(&back, s);
    Ok(())
}

proptest! {
    #[test]
    fn chunk_states_round_trip(
        slot in any::<u16>(),
        finished in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..24),
        indegree in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..24),
        ready in proptest::collection::vec(any::<u32>(), 0..16),
    ) {
        round_trip(&ChunkState {
            slot,
            finished,
            indegree,
            ready,
            cache: vec![],
            spill: vec![],
        })?;
    }

    #[test]
    fn cache_and_spill_round_trip(
        slot in any::<u16>(),
        cache in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..24),
        spill in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..24),
    ) {
        round_trip(&ChunkState {
            slot,
            finished: vec![],
            indegree: vec![],
            ready: vec![],
            cache,
            spill,
        })?;
    }

    /// Arbitrary bytes never panic the decoder, and anything that does
    /// decode re-encodes to exactly the consumed prefix.
    #[test]
    fn chunk_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut src = bytes.as_slice();
        if let Some(s) = ChunkState::<u64>::decode(&mut src) {
            let consumed = bytes.len() - src.len();
            let again = encode_to_vec(&s);
            prop_assert_eq!(again.as_slice(), &bytes[..consumed]);
        }
    }

    /// A hostile length on any of the five vectors is refused before
    /// allocation, wherever it is planted.
    #[test]
    fn hostile_lengths_never_allocate(
        field in 0usize..5,
        claimed in (1u64 << 32)..u64::MAX,
    ) {
        let mut buf = encode_to_vec(&7u16);
        // Encode `field` legitimate empty vectors, then the hostile one.
        for _ in 0..field {
            buf.extend_from_slice(&0u64.to_le_bytes());
        }
        buf.extend_from_slice(&claimed.to_le_bytes());
        buf.push(0);
        let mut src = buf.as_slice();
        prop_assert!(ChunkState::<u64>::decode(&mut src).is_none());
    }
}

//! Property tests of distributions and recovery: every distribution is
//! a dense per-slot bijection at arbitrary shapes, and recovery
//! conserves finished values exactly.

use std::sync::Arc;

use dpx10_apgas::{NetworkModel, PlaceId, Topology};
use dpx10_distarray::{
    recover, Dist, DistArray, DistKind, RecoveryCostModel, Region2D, RestoreManner,
};
use proptest::prelude::*;

fn kind(idx: usize, block: u32) -> DistKind {
    match idx {
        0 => DistKind::BlockRow,
        1 => DistKind::BlockCol,
        2 => DistKind::CyclicRow,
        3 => DistKind::CyclicCol,
        4 => DistKind::BlockCyclicRow { block },
        _ => DistKind::BlockCyclicCol { block },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-slot local indices form a dense bijection: every point maps
    /// to exactly one (slot, local) pair and every local slot is hit.
    #[test]
    fn distributions_are_dense_bijections(
        h in 1u32..20,
        w in 1u32..20,
        places in 1u16..7,
        kind_idx in 0usize..6,
        block in 1u32..4,
    ) {
        let d = Dist::new(
            Region2D::new(h, w),
            kind(kind_idx, block),
            (0..places).map(PlaceId).collect(),
        );
        let mut seen: Vec<Vec<bool>> =
            (0..d.num_slots()).map(|s| vec![false; d.chunk_len(s)]).collect();
        for (i, j) in d.region().points() {
            let s = d.slot_of(i, j);
            let li = d.local_index(i, j);
            prop_assert!(li < seen[s].len(), "({i},{j}) -> slot {s} local {li}");
            prop_assert!(!seen[s][li], "duplicate local index");
            seen[s][li] = true;
        }
        for slots in &seen {
            prop_assert!(slots.iter().all(|&b| b), "hole in a chunk");
        }
        // chunk_len sums to the region size.
        let total: usize = (0..d.num_slots()).map(|s| d.chunk_len(s)).sum();
        prop_assert_eq!(total as u64, d.region().len());
    }

    /// `iter_slot` enumerates exactly the owned points in local order.
    #[test]
    fn iter_slot_consistent(
        h in 1u32..14,
        w in 1u32..14,
        places in 1u16..5,
        kind_idx in 0usize..6,
    ) {
        let d = Dist::new(
            Region2D::new(h, w),
            kind(kind_idx, 2),
            (0..places).map(PlaceId).collect(),
        );
        for s in 0..d.num_slots() {
            let pts: Vec<_> = d.iter_slot(s).collect();
            prop_assert_eq!(pts.len(), d.chunk_len(s));
            for (rank, (i, j)) in pts.iter().enumerate() {
                prop_assert_eq!(d.slot_of(*i, *j), s);
                prop_assert_eq!(d.local_index(*i, *j), rank);
            }
        }
    }

    /// Recovery conservation law: finished = kept + dropped + lost +
    /// migrated, the new array holds exactly kept + migrated finished
    /// values, and each kept value is byte-identical and owner-stable.
    #[test]
    fn recovery_conserves_values(
        h in 2u32..12,
        w in 2u32..12,
        places in 2u16..6,
        kind_idx in 0usize..6,
        dead_off in 1u16..5,
        copy in proptest::bool::ANY,
        fill_mod in 1u32..5,
    ) {
        let d = Arc::new(Dist::new(
            Region2D::new(h, w),
            kind(kind_idx, 2),
            (0..places).map(PlaceId).collect(),
        ));
        let mut arr: DistArray<u64> = DistArray::new(d.clone());
        let mut finished = 0u64;
        for (i, j) in d.region().points() {
            if (i + j) % fill_mod == 0 {
                arr.set(i, j, (i as u64) << 32 | j as u64);
                finished += 1;
            }
        }
        let dead = PlaceId((dead_off % places).max(1));
        let manner = if copy { RestoreManner::CopyRemote } else { RestoreManner::RecomputeRemote };
        let (fresh, rep) = recover(
            &arr,
            &[dead],
            manner,
            &Topology::flat(places),
            &NetworkModel::tianhe_like(),
            &RecoveryCostModel::default(),
        );
        prop_assert_eq!(rep.kept + rep.dropped + rep.lost + rep.migrated, finished);
        prop_assert_eq!(fresh.finished_count(), rep.kept + rep.migrated);
        if copy {
            prop_assert_eq!(rep.dropped, 0);
        } else {
            prop_assert_eq!(rep.migrated, 0);
        }
        // Every surviving value is identical to the original and its
        // owner did not change unless it was migrated.
        for (i, j) in d.region().points() {
            if let Some(v) = fresh.get_finished(i, j) {
                prop_assert_eq!(*v, (i as u64) << 32 | j as u64);
                prop_assert_ne!(fresh.place_of(i, j), dead);
            }
        }
    }
}

//! Live chunk relocation: the serialized state of one distribution slot
//! and the epoch-fenced ownership map every place keeps.
//!
//! The recovery path of the paper (§VI-D) *recomputes* a dead place's
//! cells; an elastic mesh can do better when the departure is graceful.
//! A draining place packages each slot it owns into a [`ChunkState`] —
//! finished cell values, the ready-counters of unfinished cells, the
//! remote-value cache residents, and the spill index — and ships it to
//! the new owner, which resumes the chunk *exactly* where it stopped:
//! relocation, not recompute (Finnerty et al.'s relocatable distributed
//! collections, applied to DPX10's DistArray).
//!
//! Ownership is re-registered through a [`ChunkMap`] guarded by an
//! *epoch fence*: every relocation bumps the map epoch, every message
//! names the epoch it was built under, and a receiver parks messages
//! from the future and drops messages from the past. In-flight pulls
//! addressed to the old owner are parked at the fence and replayed
//! against the new owner once the `ChunkAck` lands.

use dpx10_apgas::codec::Codec;
use dpx10_apgas::PlaceId;

/// The complete movable state of one distribution slot, as serialized
/// onto the wire by `Msg::ChunkData`.
///
/// Cell indices are *local* to the chunk (the slot's iteration order),
/// so the state is independent of which place holds it. Cache and spill
/// entries are keyed by the packed global vertex id they were stored
/// under.
#[derive(Clone, Debug, PartialEq)]
pub struct ChunkState<V> {
    /// The distribution slot this state belongs to.
    pub slot: u16,
    /// `(local cell index, value)` of every finished cell.
    pub finished: Vec<(u32, V)>,
    /// `(local cell index, remaining indegree)` of every unfinished
    /// cell — the ready-counters, so no dependency edge is re-counted.
    pub indegree: Vec<(u32, u32)>,
    /// Local indices whose dependencies are met but which have not run.
    pub ready: Vec<u32>,
    /// Remote-value cache residents `(packed vertex id, value)`, oldest
    /// first, so the new owner rebuilds the FIFO in the same order.
    pub cache: Vec<(u64, V)>,
    /// Spill index `(packed vertex id, value)` in append order.
    pub spill: Vec<(u64, V)>,
}

impl<V> ChunkState<V> {
    /// An empty state for `slot` (nothing computed yet).
    pub fn empty(slot: u16) -> Self {
        ChunkState {
            slot,
            finished: Vec::new(),
            indegree: Vec::new(),
            ready: Vec::new(),
            cache: Vec::new(),
            spill: Vec::new(),
        }
    }

    /// Number of finished cells carried — what relocation saves from
    /// recomputation.
    pub fn cells_moved(&self) -> usize {
        self.finished.len()
    }
}

impl<V: Codec> Codec for ChunkState<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.slot.encode(buf);
        self.finished.encode(buf);
        self.indegree.encode(buf);
        self.ready.encode(buf);
        self.cache.encode(buf);
        self.spill.encode(buf);
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        // Each `Vec` decode carries the hostile-length guard of the
        // base codec: a claimed length exceeding the remaining input is
        // rejected before any allocation grows to meet it.
        Some(ChunkState {
            slot: u16::decode(src)?,
            finished: Vec::decode(src)?,
            indegree: Vec::decode(src)?,
            ready: Vec::decode(src)?,
            cache: Vec::decode(src)?,
            spill: Vec::decode(src)?,
        })
    }

    fn wire_size(&self) -> usize {
        2 + self.finished.wire_size()
            + self.indegree.wire_size()
            + self.ready.wire_size()
            + self.cache.wire_size()
            + self.spill.wire_size()
    }
}

/// One slot's entry in the ownership map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkOwner {
    /// The place currently owning the slot.
    pub place: PlaceId,
    /// The map epoch at which this ownership was registered.
    pub since_epoch: u64,
}

/// The epoch-fenced slot-ownership table every place keeps.
///
/// `epoch` is a logical clock over ownership changes: it starts at 0
/// and bumps once per completed relocation. A message stamped with
/// epoch `e` is *current* when `e == epoch()`, *stale* when `e <
/// epoch()` (built against an owner that has since handed the slot
/// off — drop it; the sender will re-issue), and *future* when `e >
/// epoch()` (the sender saw a relocation we have not — park it and
/// replay once our map catches up).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkMap {
    owners: Vec<ChunkOwner>,
    epoch: u64,
}

/// How a receiver must treat a message stamped with some epoch —
/// the admit rule of the fence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochVerdict {
    /// Same epoch: deliver now.
    Deliver,
    /// Message from a past epoch: drop; the sender replays against the
    /// re-registered owner.
    Stale,
    /// Message from a future epoch: park until the local map catches
    /// up, then replay.
    Park,
}

impl ChunkMap {
    /// A map with the given initial owners (slot `i` owned by
    /// `owners[i]`), at epoch 0.
    pub fn new(owners: Vec<PlaceId>) -> Self {
        ChunkMap {
            owners: owners
                .into_iter()
                .map(|place| ChunkOwner {
                    place,
                    since_epoch: 0,
                })
                .collect(),
            epoch: 0,
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> u16 {
        self.owners.len() as u16
    }

    /// Current fence epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current owner of `slot`, or `None` for an out-of-range slot.
    pub fn owner(&self, slot: u16) -> Option<PlaceId> {
        self.owners.get(slot as usize).map(|o| o.place)
    }

    /// All slots currently owned by `place`, in slot order.
    pub fn slots_owned_by(&self, place: PlaceId) -> Vec<u16> {
        (0..self.owners.len() as u16)
            .filter(|&s| self.owners[s as usize].place == place)
            .collect()
    }

    /// Re-registers `slot` to `to` and advances the fence. Returns the
    /// new epoch — the stamp the `ChunkAck` broadcast carries so every
    /// place fences identically. `None` for an out-of-range slot or a
    /// no-op move (same owner), which must not burn an epoch.
    pub fn relocate(&mut self, slot: u16, to: PlaceId) -> Option<u64> {
        let entry = self.owners.get_mut(slot as usize)?;
        if entry.place == to {
            return None;
        }
        self.epoch += 1;
        *entry = ChunkOwner {
            place: to,
            since_epoch: self.epoch,
        };
        Some(self.epoch)
    }

    /// The fence's admit rule for a message stamped `msg_epoch`.
    pub fn admit(&self, msg_epoch: u64) -> EpochVerdict {
        use std::cmp::Ordering::*;
        match msg_epoch.cmp(&self.epoch) {
            Equal => EpochVerdict::Deliver,
            Less => EpochVerdict::Stale,
            Greater => EpochVerdict::Park,
        }
    }

    /// Applies a relocation observed from an `ChunkAck` broadcast:
    /// adopts the sender's (higher) epoch. Ignores stale broadcasts.
    pub fn observe_relocation(&mut self, slot: u16, to: PlaceId, at_epoch: u64) -> bool {
        if at_epoch <= self.epoch {
            return false;
        }
        let Some(entry) = self.owners.get_mut(slot as usize) else {
            return false;
        };
        *entry = ChunkOwner {
            place: to,
            since_epoch: at_epoch,
        };
        self.epoch = at_epoch;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx10_apgas::codec::{decode_exact, encode_to_vec};

    fn state() -> ChunkState<u64> {
        ChunkState {
            slot: 3,
            finished: vec![(0, 11), (2, 13)],
            indegree: vec![(1, 2), (3, 1)],
            ready: vec![1],
            cache: vec![(99, 7), (42, 8)],
            spill: vec![(7, 70)],
        }
    }

    #[test]
    fn chunk_state_round_trips_with_exact_size() {
        let s = state();
        let buf = encode_to_vec(&s);
        assert_eq!(buf.len(), s.wire_size(), "wire_size contract");
        assert_eq!(decode_exact::<ChunkState<u64>>(&buf), Some(s));
    }

    #[test]
    fn empty_chunk_state_round_trips() {
        let s = ChunkState::<u64>::empty(9);
        let buf = encode_to_vec(&s);
        assert_eq!(buf.len(), s.wire_size());
        assert_eq!(decode_exact::<ChunkState<u64>>(&buf), Some(s));
    }

    #[test]
    fn hostile_lengths_are_rejected_not_allocated() {
        // slot, then a `finished` length claiming 2^59 entries with a
        // 1-byte body: the Vec guard must refuse before allocating.
        let mut buf = encode_to_vec(&3u16);
        buf.extend_from_slice(&(1u64 << 59).to_le_bytes());
        buf.push(0);
        let mut src = buf.as_slice();
        assert_eq!(ChunkState::<u64>::decode(&mut src), None);
        // Truncation anywhere mid-struct is also a clean None.
        let whole = encode_to_vec(&state());
        for cut in 0..whole.len() {
            let mut src = &whole[..cut];
            assert!(
                ChunkState::<u64>::decode(&mut src).is_none(),
                "truncated at {cut} must not decode"
            );
        }
    }

    #[test]
    fn relocate_bumps_epoch_and_reregisters() {
        let mut map = ChunkMap::new(vec![PlaceId(0), PlaceId(1), PlaceId(2)]);
        assert_eq!(map.epoch(), 0);
        assert_eq!(map.owner(1), Some(PlaceId(1)));
        let e = map.relocate(1, PlaceId(2)).unwrap();
        assert_eq!(e, 1);
        assert_eq!(map.owner(1), Some(PlaceId(2)));
        assert_eq!(map.slots_owned_by(PlaceId(2)), vec![1, 2]);
        // Same-owner moves and bad slots burn no epoch.
        assert_eq!(map.relocate(1, PlaceId(2)), None);
        assert_eq!(map.relocate(99, PlaceId(0)), None);
        assert_eq!(map.epoch(), 1);
    }

    #[test]
    fn fence_admit_rule() {
        let mut map = ChunkMap::new(vec![PlaceId(0), PlaceId(1)]);
        map.relocate(0, PlaceId(1)).unwrap();
        assert_eq!(map.admit(1), EpochVerdict::Deliver);
        assert_eq!(map.admit(0), EpochVerdict::Stale);
        assert_eq!(map.admit(2), EpochVerdict::Park);
    }

    #[test]
    fn observed_relocations_adopt_higher_epochs_only() {
        let mut a = ChunkMap::new(vec![PlaceId(0), PlaceId(1)]);
        let mut b = a.clone();
        let e = a.relocate(1, PlaceId(0)).unwrap();
        assert!(b.observe_relocation(1, PlaceId(0), e));
        assert_eq!(a, b, "observer converges to the relocator's map");
        assert!(!b.observe_relocation(1, PlaceId(1), e), "stale broadcast");
        assert!(!b.observe_relocation(9, PlaceId(0), e + 1), "bad slot");
    }
}

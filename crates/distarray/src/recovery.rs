//! The paper's new recovery method for distributed arrays (§VI-D).
//!
//! On a `DeadPlaceException` the program pauses, a **new** distributed
//! array is created over the remaining places, and the results of
//! finished vertices are restored *from the alive places*: a finished
//! value survives only if its owner did not change ("the result of remote
//! vertices will be discarded since it may take less time to recompute
//! them rather than copy them across the network"). The user can flip
//! that default with [`RestoreManner::CopyRemote`] "if the computation is
//! more time-consuming than the communication" (§VI-E, *Restore manner*).
//!
//! Fig. 6's example is reproduced verbatim in this module's tests.

use std::sync::Arc;
use std::time::Duration;

use dpx10_apgas::{Codec, NetworkModel, PlaceId, Topology};

use crate::array::DistArray;
use crate::dist::Dist;

/// What to do with finished vertices whose owner changed (paper §VI-E).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RestoreManner {
    /// Discard and recompute them — the paper's default.
    #[default]
    RecomputeRemote,
    /// Copy them across the network to their new owner.
    CopyRemote,
}

/// Cost model of the recovery pass itself (used for the simulated
/// recovery-time metric of Fig. 13 (a)).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryCostModel {
    /// Re-initialising one vertex of the new array (allocation + indegree
    /// reset).
    pub per_vertex_init: Duration,
    /// Memory bandwidth for copying kept values within a place.
    pub local_copy_bytes_per_sec: f64,
}

impl Default for RecoveryCostModel {
    fn default() -> Self {
        RecoveryCostModel {
            per_vertex_init: Duration::from_nanos(4),
            local_copy_bytes_per_sec: 10.0e9,
        }
    }
}

/// Outcome of a recovery pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Finished values kept because their owner did not change.
    pub kept: u64,
    /// Finished values copied to a new owner (only under
    /// [`RestoreManner::CopyRemote`]).
    pub migrated: u64,
    /// Finished values discarded for recomputation.
    pub dropped: u64,
    /// Finished values lost with the dead place's memory.
    pub lost: u64,
    /// Bytes moved across the network by migration.
    pub bytes_migrated: u64,
    /// Simulated recovery time: the slowest place's share of the pass,
    /// since "the recovery process is executed in parallel on all alive
    /// places" (§VI-D).
    pub sim_time: Duration,
}

/// Runs the paper's recovery over `old`, whose places `dead` have failed.
///
/// Returns the new array (distributed over the surviving places with the
/// same scheme) plus a [`RecoveryReport`]. The caller — the engine — then
/// resets the indegrees of unfinished vertices and resumes.
pub fn recover<T>(
    old: &DistArray<T>,
    dead: &[PlaceId],
    manner: RestoreManner,
    topo: &Topology,
    net: &NetworkModel,
    costs: &RecoveryCostModel,
) -> (DistArray<T>, RecoveryReport)
where
    T: Default + Clone + Codec,
{
    let old_dist = old.dist();
    let alive: Vec<PlaceId> = old_dist
        .places()
        .iter()
        .copied()
        .filter(|p| !dead.contains(p))
        .collect();
    assert!(!alive.is_empty(), "no places left to recover onto");
    assert!(
        alive.contains(&PlaceId::ZERO) || !old_dist.places().contains(&PlaceId::ZERO),
        "place 0 cannot be among the dead"
    );

    let new_dist = Arc::new(Dist::new(
        old_dist.region(),
        old_dist.kind().clone(),
        alive.clone(),
    ));
    let mut fresh: DistArray<T> = DistArray::new(new_dist.clone());

    let mut report = RecoveryReport::default();
    // Per-new-slot simulated work, maxed at the end (parallel recovery).
    let mut slot_work = vec![Duration::ZERO; new_dist.num_slots()];
    // Migrations are batched: one bulk transfer per (source, destination)
    // place pair, so the per-message latency is paid once per pair, not
    // once per vertex.
    let mut migrate_bytes: std::collections::BTreeMap<(PlaceId, PlaceId, usize), usize> =
        std::collections::BTreeMap::new();

    // Re-initialisation cost: every vertex of the new array is touched
    // once (allocation, indegree reset).
    for (s, work) in slot_work.iter_mut().enumerate() {
        *work += costs.per_vertex_init * new_dist.chunk_len(s) as u32;
    }

    for old_slot in 0..old_dist.num_slots() {
        let old_place = old_dist.places()[old_slot];
        let chunk = old.chunk(old_slot);
        for (li, (i, j)) in old_dist.iter_slot(old_slot).enumerate() {
            if !chunk.finished[li] {
                continue;
            }
            if dead.contains(&old_place) {
                report.lost += 1;
                continue;
            }
            let new_slot = new_dist.slot_of(i, j);
            let new_place = new_dist.places()[new_slot];
            if new_place == old_place {
                let value = chunk.values[li].clone();
                let bytes = value.wire_size();
                fresh.set(i, j, value);
                report.kept += 1;
                slot_work[new_slot] +=
                    Duration::from_secs_f64(bytes as f64 / costs.local_copy_bytes_per_sec);
            } else if manner == RestoreManner::CopyRemote {
                let value = chunk.values[li].clone();
                let bytes = value.wire_size();
                fresh.set(i, j, value);
                report.migrated += 1;
                report.bytes_migrated += bytes as u64;
                migrate_bytes
                    .entry((old_place, new_place, new_slot))
                    .and_modify(|b| *b += bytes)
                    .or_insert(bytes);
            } else {
                report.dropped += 1;
            }
        }
    }

    for ((src, dst, new_slot), bytes) in migrate_bytes {
        slot_work[new_slot] += net.transfer_time(topo, src, dst, bytes);
    }

    report.sim_time = slot_work.into_iter().max().unwrap_or(Duration::ZERO);
    (fresh, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistKind;
    use crate::region::Region2D;

    fn places(n: u16) -> Vec<PlaceId> {
        (0..n).map(PlaceId).collect()
    }

    /// The paper's Fig. 6 walk-through: 12 vertices (3 rows × 4 cols)
    /// divided by row over 3 places; finished = {(1,1),(1,2),(2,2),(2,3)}
    /// in the paper's 1-based indexing. Place 3 (our PlaceId(2)) dies;
    /// rows are re-blocked over the two survivors. (1,1),(1,2) stay on
    /// place 1 and (2,3)'s row stays on place 2, so they are kept; (2,2)
    /// is dropped "because it was stored on the remote place".
    #[test]
    fn paper_fig6_walkthrough() {
        let dist = Arc::new(Dist::new(
            Region2D::new(3, 4),
            DistKind::BlockRow,
            places(3),
        ));
        let mut a: DistArray<i32> = DistArray::new(dist);
        // 0-based: paper (1,1) -> (0,0); (1,2) -> (0,1); (2,2) -> (1,1);
        // (2,3) -> (1,2).
        a.set(0, 0, 11);
        a.set(0, 1, 12);
        a.set(1, 1, 22);
        a.set(1, 2, 23);

        let topo = Topology::flat(3);
        let (fresh, report) = recover(
            &a,
            &[PlaceId(2)],
            RestoreManner::RecomputeRemote,
            &topo,
            &NetworkModel::tianhe_like(),
            &RecoveryCostModel::default(),
        );

        // New blocking of 3 rows over 2 places: place 0 gets rows {0, 1},
        // place 1 gets row {2}.
        assert_eq!(fresh.place_of(0, 0), PlaceId(0));
        assert_eq!(fresh.place_of(1, 1), PlaceId(0));
        assert_eq!(fresh.place_of(2, 0), PlaceId(1));

        // Row 0 stayed on place 0: kept.
        assert_eq!(fresh.get_finished(0, 0), Some(&11));
        assert_eq!(fresh.get_finished(0, 1), Some(&12));
        // Row 1 moved from place 1 to place 0: dropped by default.
        assert_eq!(fresh.get_finished(1, 1), None);
        assert_eq!(fresh.get_finished(1, 2), None);

        assert_eq!(report.kept, 2);
        assert_eq!(report.dropped, 2);
        assert_eq!(report.lost, 0);
        assert_eq!(report.migrated, 0);
    }

    #[test]
    fn copy_remote_migrates_instead_of_dropping() {
        let dist = Arc::new(Dist::new(
            Region2D::new(3, 4),
            DistKind::BlockRow,
            places(3),
        ));
        let mut a: DistArray<i32> = DistArray::new(dist);
        a.set(1, 1, 22);
        a.set(1, 2, 23);

        let topo = Topology::flat(3);
        let (fresh, report) = recover(
            &a,
            &[PlaceId(2)],
            RestoreManner::CopyRemote,
            &topo,
            &NetworkModel::tianhe_like(),
            &RecoveryCostModel::default(),
        );
        assert_eq!(fresh.get_finished(1, 1), Some(&22));
        assert_eq!(fresh.get_finished(1, 2), Some(&23));
        assert_eq!(report.migrated, 2);
        assert_eq!(report.bytes_migrated, 8);
        assert!(report.sim_time > Duration::ZERO);
    }

    #[test]
    fn dead_place_values_are_lost() {
        let dist = Arc::new(Dist::new(
            Region2D::new(3, 3),
            DistKind::BlockRow,
            places(3),
        ));
        let mut a: DistArray<i32> = DistArray::new(dist);
        a.set(2, 0, 99); // row 2 lives on place 2
        let topo = Topology::flat(3);
        let (fresh, report) = recover(
            &a,
            &[PlaceId(2)],
            RestoreManner::CopyRemote,
            &topo,
            &NetworkModel::tianhe_like(),
            &RecoveryCostModel::default(),
        );
        assert_eq!(report.lost, 1);
        assert_eq!(fresh.get_finished(2, 0), None);
    }

    #[test]
    fn recovery_time_scales_down_with_more_places() {
        // Fig. 13 (a): recovery on 8 nodes is about half of 4 nodes.
        let region = Region2D::new(64, 64);
        let run = |nplaces: u16| {
            let dist = Arc::new(Dist::new(region, DistKind::BlockRow, places(nplaces)));
            let mut a: DistArray<i64> = DistArray::new(dist);
            for i in 0..32 {
                for j in 0..64 {
                    a.set(i, j, (i + j) as i64);
                }
            }
            let topo = Topology::flat(nplaces);
            let dead = PlaceId(nplaces - 1);
            let (_, report) = recover(
                &a,
                &[dead],
                RestoreManner::RecomputeRemote,
                &topo,
                &NetworkModel::tianhe_like(),
                &RecoveryCostModel::default(),
            );
            report.sim_time
        };
        let t4 = run(4);
        let t8 = run(8);
        let ratio = t4.as_secs_f64() / t8.as_secs_f64();
        assert!(
            (1.5..=2.8).contains(&ratio),
            "expected ~2x speedup, got {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "place 0")]
    fn killing_place_zero_rejected() {
        let dist = Arc::new(Dist::new(
            Region2D::new(2, 2),
            DistKind::BlockRow,
            places(2),
        ));
        let a: DistArray<i32> = DistArray::new(dist);
        let topo = Topology::flat(2);
        let _ = recover(
            &a,
            &[PlaceId(0)],
            RestoreManner::RecomputeRemote,
            &topo,
            &NetworkModel::tianhe_like(),
            &RecoveryCostModel::default(),
        );
    }
}

//! The distributed array proper.

use std::sync::Arc;

use dpx10_apgas::PlaceId;

use crate::dist::Dist;

/// A 2-D array of `T` partitioned over places by a [`Dist`].
///
/// Each slot's points live in a dense *chunk*; alongside every value the
/// array keeps the per-vertex *finished* flag the paper's recovery method
/// relies on ("a finish flag is kept for each vertex to identify its
/// status and to help recover the result after a failure happens",
/// §VI-B).
///
/// Places are threads in this reproduction, so all chunks live in one
/// address space — but the API only exposes placement-respecting access,
/// and the engines route every cross-place read through mailboxes so that
/// communication stays observable and priceable.
#[derive(Clone, Debug)]
pub struct DistArray<T> {
    dist: Arc<Dist>,
    chunks: Vec<Chunk<T>>,
}

/// One slot's storage.
#[derive(Clone, Debug)]
pub(crate) struct Chunk<T> {
    pub(crate) values: Vec<T>,
    pub(crate) finished: Vec<bool>,
}

impl<T: Default + Clone> DistArray<T> {
    /// Allocates the array with default values, all unfinished (the
    /// paper's initial stage 1: "distributes and initializes all vertices
    /// of the input DAG across available places").
    pub fn new(dist: Arc<Dist>) -> Self {
        let chunks = (0..dist.num_slots())
            .map(|s| {
                let len = dist.chunk_len(s);
                Chunk {
                    values: vec![T::default(); len],
                    finished: vec![false; len],
                }
            })
            .collect();
        DistArray { dist, chunks }
    }
}

impl<T> DistArray<T> {
    /// The distribution.
    pub fn dist(&self) -> &Arc<Dist> {
        &self.dist
    }

    /// The place owning `(i, j)`.
    pub fn place_of(&self, i: u32, j: u32) -> PlaceId {
        self.dist.place_of(i, j)
    }

    /// Reads the value at `(i, j)` together with its finished flag.
    pub fn get(&self, i: u32, j: u32) -> (&T, bool) {
        let s = self.dist.slot_of(i, j);
        let li = self.dist.local_index(i, j);
        let chunk = &self.chunks[s];
        (&chunk.values[li], chunk.finished[li])
    }

    /// The value at `(i, j)` if it has been marked finished.
    pub fn get_finished(&self, i: u32, j: u32) -> Option<&T> {
        let (v, done) = self.get(i, j);
        done.then_some(v)
    }

    /// Writes `(i, j)` and marks it finished.
    pub fn set(&mut self, i: u32, j: u32, value: T) {
        let s = self.dist.slot_of(i, j);
        let li = self.dist.local_index(i, j);
        let chunk = &mut self.chunks[s];
        chunk.values[li] = value;
        chunk.finished[li] = true;
    }

    /// Clears the finished flag of `(i, j)` (recovery: "All unfinished
    /// vertices in the new array will be initialized").
    pub fn reset(&mut self, i: u32, j: u32)
    where
        T: Default,
    {
        let s = self.dist.slot_of(i, j);
        let li = self.dist.local_index(i, j);
        let chunk = &mut self.chunks[s];
        chunk.values[li] = T::default();
        chunk.finished[li] = false;
    }

    /// Number of finished points.
    pub fn finished_count(&self) -> u64 {
        self.chunks
            .iter()
            .map(|c| c.finished.iter().filter(|&&b| b).count() as u64)
            .sum()
    }

    /// Total number of points.
    pub fn len(&self) -> u64 {
        self.dist.region().len()
    }

    /// Whether the array has zero points (never true: regions are
    /// non-empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates `(i, j, value, finished)` over one slot, local order.
    pub fn iter_slot(&self, s: usize) -> impl Iterator<Item = (u32, u32, &T, bool)> + '_ {
        let chunk = &self.chunks[s];
        self.dist
            .iter_slot(s)
            .enumerate()
            .map(move |(li, (i, j))| (i, j, &chunk.values[li], chunk.finished[li]))
    }

    /// Direct chunk access for the recovery machinery.
    pub(crate) fn chunk(&self, s: usize) -> &Chunk<T> {
        &self.chunks[s]
    }

    /// Materialises the whole array as a dense row-major matrix of
    /// `(value, finished)` — a small-scale debugging/verification helper.
    pub fn to_dense(&self) -> Vec<Vec<(T, bool)>>
    where
        T: Clone,
    {
        let r = self.dist.region();
        let mut out =
            vec![vec![(self.get(0, 0).0.clone(), false); r.width as usize]; r.height as usize];
        for (i, j) in r.points() {
            let (v, done) = self.get(i, j);
            out[i as usize][j as usize] = (v.clone(), done);
        }
        out
    }

    /// Drops the data of `slot`, as a place failure would.
    ///
    /// The values are replaced by defaults and all finished flags cleared;
    /// used by fault-injection tests and the recovery path to model the
    /// loss of a dead place's memory.
    pub fn poison_slot(&mut self, s: usize)
    where
        T: Default,
    {
        let chunk = &mut self.chunks[s];
        for v in &mut chunk.values {
            *v = T::default();
        }
        for f in &mut chunk.finished {
            *f = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistKind;
    use crate::region::Region2D;

    fn array(h: u32, w: u32, places: u16) -> DistArray<i64> {
        let dist = Dist::new(
            Region2D::new(h, w),
            DistKind::BlockCol,
            (0..places).map(PlaceId).collect(),
        );
        DistArray::new(Arc::new(dist))
    }

    #[test]
    fn starts_unfinished_and_default() {
        let a = array(3, 4, 2);
        assert_eq!(a.finished_count(), 0);
        assert_eq!(a.get(2, 3), (&0, false));
        assert_eq!(a.get_finished(2, 3), None);
    }

    #[test]
    fn set_then_get() {
        let mut a = array(3, 4, 2);
        a.set(1, 2, 42);
        assert_eq!(a.get(1, 2), (&42, true));
        assert_eq!(a.get_finished(1, 2), Some(&42));
        assert_eq!(a.finished_count(), 1);
    }

    #[test]
    fn reset_clears() {
        let mut a = array(2, 2, 1);
        a.set(0, 0, 7);
        a.reset(0, 0);
        assert_eq!(a.get(0, 0), (&0, false));
        assert_eq!(a.finished_count(), 0);
    }

    #[test]
    fn values_land_in_owner_slot() {
        let mut a = array(2, 4, 2);
        a.set(0, 3, 9); // column 3 -> slot 1
        let slot1: Vec<_> = a
            .iter_slot(1)
            .filter(|&(_, _, _, done)| done)
            .map(|(i, j, &v, _)| (i, j, v))
            .collect();
        assert_eq!(slot1, vec![(0, 3, 9)]);
        assert!(a.iter_slot(0).all(|(_, _, _, done)| !done));
    }

    #[test]
    fn to_dense_matches_get() {
        let mut a = array(2, 3, 2);
        a.set(1, 2, 7);
        let dense = a.to_dense();
        assert_eq!(dense[1][2], (7, true));
        assert_eq!(dense[0][0], (0, false));
        assert_eq!(dense.len(), 2);
        assert_eq!(dense[0].len(), 3);
    }

    #[test]
    fn poison_slot_loses_data() {
        let mut a = array(2, 4, 2);
        a.set(0, 0, 1);
        a.set(0, 3, 2);
        a.poison_slot(1);
        assert_eq!(a.get_finished(0, 0), Some(&1));
        assert_eq!(a.get_finished(0, 3), None);
    }
}

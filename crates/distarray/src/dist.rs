//! Distributions: how a region's points map onto places.

use std::sync::Arc;

use dpx10_apgas::PlaceId;

use crate::region::Region2D;

/// The partitioning scheme of a [`Dist`].
#[derive(Clone)]
pub enum DistKind {
    /// Contiguous row blocks, one per place ("divided by the row",
    /// paper Fig. 6).
    BlockRow,
    /// Contiguous column blocks, one per place — the paper's default
    /// ("by default vertices are spliced and distributed along with
    /// column", §VI-B).
    BlockCol,
    /// Rows dealt round-robin across places.
    CyclicRow,
    /// Columns dealt round-robin across places.
    CyclicCol,
    /// Row blocks of the given size dealt round-robin.
    BlockCyclicRow {
        /// Rows per block.
        block: u32,
    },
    /// Column blocks of the given size dealt round-robin.
    BlockCyclicCol {
        /// Columns per block.
        block: u32,
    },
    /// Arbitrary user mapping from `(i, j)` to a *slot* (index into the
    /// distribution's place list) — the §VI-E custom-distribution hook.
    Custom(Arc<dyn Fn(u32, u32) -> usize + Send + Sync>),
}

impl std::fmt::Debug for DistKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistKind::BlockRow => write!(f, "BlockRow"),
            DistKind::BlockCol => write!(f, "BlockCol"),
            DistKind::CyclicRow => write!(f, "CyclicRow"),
            DistKind::CyclicCol => write!(f, "CyclicCol"),
            DistKind::BlockCyclicRow { block } => write!(f, "BlockCyclicRow({block})"),
            DistKind::BlockCyclicCol { block } => write!(f, "BlockCyclicCol({block})"),
            DistKind::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// A distribution of a [`Region2D`] over an ordered list of places.
///
/// Places are addressed through *slots*: slot `s` is `places()[s]`. Using
/// slots (not raw place ids) lets recovery re-target the same scheme onto
/// the surviving places (paper §VI-D: "create a new distributed array
/// among the remaining places").
#[derive(Clone, Debug)]
pub struct Dist {
    region: Region2D,
    kind: DistKind,
    places: Arc<[PlaceId]>,
}

impl Dist {
    /// Distributes `region` over `places` with the given `kind`.
    pub fn new(region: Region2D, kind: DistKind, places: Vec<PlaceId>) -> Self {
        assert!(
            !places.is_empty(),
            "a distribution needs at least one place"
        );
        if let DistKind::BlockCyclicRow { block } | DistKind::BlockCyclicCol { block } = kind {
            assert!(block > 0, "block size must be positive");
        }
        Dist {
            region,
            kind,
            places: places.into(),
        }
    }

    /// The paper-default distribution: block by column over `places`.
    pub fn default_block_col(region: Region2D, places: Vec<PlaceId>) -> Self {
        Dist::new(region, DistKind::BlockCol, places)
    }

    /// The distributed region.
    pub fn region(&self) -> Region2D {
        self.region
    }

    /// The partitioning scheme.
    pub fn kind(&self) -> &DistKind {
        &self.kind
    }

    /// The ordered target places.
    pub fn places(&self) -> &[PlaceId] {
        &self.places
    }

    /// Number of slots.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.places.len()
    }

    /// Start of the `s`-th balanced block when dividing `total` items
    /// into `n` blocks (first `total % n` blocks get one extra item).
    #[inline]
    fn block_start(total: u32, n: u32, s: u32) -> u32 {
        let base = total / n;
        let rem = total % n;
        s * base + s.min(rem)
    }

    /// The block index owning `x` under balanced blocking.
    #[inline]
    fn block_of(total: u32, n: u32, x: u32) -> u32 {
        let base = total / n;
        let rem = total % n;
        let split = rem * (base + 1); // items before this point sit in big blocks
        if base == 0 {
            // More places than items: item x sits in block x.
            return x;
        }
        if x < split {
            x / (base + 1)
        } else {
            rem + (x - split) / base
        }
    }

    /// The slot owning `(i, j)`.
    #[inline]
    pub fn slot_of(&self, i: u32, j: u32) -> usize {
        debug_assert!(self.region.contains(i, j));
        let n = self.num_slots() as u32;
        (match &self.kind {
            DistKind::BlockRow => Self::block_of(self.region.height, n, i),
            DistKind::BlockCol => Self::block_of(self.region.width, n, j),
            DistKind::CyclicRow => i % n,
            DistKind::CyclicCol => j % n,
            DistKind::BlockCyclicRow { block } => (i / block) % n,
            DistKind::BlockCyclicCol { block } => (j / block) % n,
            DistKind::Custom(f) => {
                let s = f(i, j) as u32;
                assert!(s < n, "custom distribution returned slot {s} of {n}");
                s
            }
        }) as usize
    }

    /// The place owning `(i, j)`.
    #[inline]
    pub fn place_of(&self, i: u32, j: u32) -> PlaceId {
        self.places[self.slot_of(i, j)]
    }

    /// Offset of `(i, j)` inside its owner's chunk.
    ///
    /// Offsets are dense per slot: `0..chunk_len(slot)`. For the block
    /// kinds this is a closed form; cyclic and custom kinds use a rank
    /// computation over the owning slot's points.
    #[inline]
    pub fn local_index(&self, i: u32, j: u32) -> usize {
        debug_assert!(self.region.contains(i, j));
        let n = self.num_slots() as u32;
        let w = self.region.width as usize;
        match &self.kind {
            DistKind::BlockRow => {
                let s = Self::block_of(self.region.height, n, i);
                let r0 = Self::block_start(self.region.height, n, s);
                (i - r0) as usize * w + j as usize
            }
            DistKind::BlockCol => {
                let s = Self::block_of(self.region.width, n, j);
                let c0 = Self::block_start(self.region.width, n, s);
                let local_w = Self::block_start(self.region.width, n, s + 1) - c0;
                i as usize * local_w as usize + (j - c0) as usize
            }
            DistKind::CyclicRow => {
                let local_row = (i / n) as usize;
                local_row * w + j as usize
            }
            DistKind::CyclicCol => {
                let s = j % n;
                let local_w = (self.region.width - s).div_ceil(n) as usize;
                i as usize * local_w + (j / n) as usize
            }
            DistKind::BlockCyclicRow { block } => {
                let local_row = ((i / (block * n)) * block + i % block) as usize;
                local_row * w + j as usize
            }
            DistKind::BlockCyclicCol { block } => {
                // Rank of column j within the owning slot's column set.
                let s = (j / block) % n;
                let full_rounds = j / (block * n);
                let local_col = (full_rounds * block + j % block) as usize;
                let local_w = self.local_width_block_cyclic(*block, s) as usize;
                i as usize * local_w + local_col
            }
            DistKind::Custom(f) => {
                // Rank of (i, j) among same-slot points in row-major order.
                // O(len) — custom distributions trade speed for flexibility;
                // engines precompute mappings when they matter.
                let slot = f(i, j);
                let mut rank = 0usize;
                for ii in 0..self.region.height {
                    for jj in 0..self.region.width {
                        if ii == i && jj == j {
                            return rank;
                        }
                        if f(ii, jj) == slot {
                            rank += 1;
                        }
                    }
                }
                unreachable!("({i},{j}) inside region");
            }
        }
    }

    /// Columns owned by slot `s` under block-cyclic-by-column.
    fn local_width_block_cyclic(&self, block: u32, s: u32) -> u32 {
        let n = self.num_slots() as u32;
        let w = self.region.width;
        let per_round = block * n;
        let full = (w / per_round) * block;
        let tail = w % per_round;
        let tail_cols = tail.saturating_sub(s * block).min(block);
        full + tail_cols
    }

    /// Number of points owned by slot `s`.
    pub fn chunk_len(&self, s: usize) -> usize {
        let n = self.num_slots() as u32;
        let s32 = s as u32;
        let h = self.region.height;
        let w = self.region.width;
        match &self.kind {
            DistKind::BlockRow => {
                let rows = Self::block_start(h, n, s32 + 1) - Self::block_start(h, n, s32);
                rows as usize * w as usize
            }
            DistKind::BlockCol => {
                let cols = Self::block_start(w, n, s32 + 1) - Self::block_start(w, n, s32);
                cols as usize * h as usize
            }
            DistKind::CyclicRow => {
                let rows = (h - s32.min(h)).div_ceil(n);
                rows as usize * w as usize
            }
            DistKind::CyclicCol => {
                let cols = if s32 < w { (w - s32).div_ceil(n) } else { 0 };
                cols as usize * h as usize
            }
            DistKind::BlockCyclicRow { block } => {
                let per_round = block * n;
                let full = (h / per_round) * block;
                let tail = h % per_round;
                let rows = full + tail.saturating_sub(s32 * block).min(*block);
                rows as usize * w as usize
            }
            DistKind::BlockCyclicCol { block } => {
                self.local_width_block_cyclic(*block, s32) as usize * h as usize
            }
            DistKind::Custom(f) => {
                let mut count = 0;
                for (i, j) in self.region.points() {
                    if f(i, j) == s {
                        count += 1;
                    }
                }
                count
            }
        }
    }

    /// Iterates the global points owned by slot `s`, in local-index order.
    pub fn iter_slot(&self, s: usize) -> Box<dyn Iterator<Item = (u32, u32)> + '_> {
        // Correctness over speed: filter the whole region and order by
        // local index. Block kinds get fast paths.
        let n = self.num_slots() as u32;
        let s32 = s as u32;
        match &self.kind {
            DistKind::BlockRow => {
                let r0 = Self::block_start(self.region.height, n, s32);
                let r1 = Self::block_start(self.region.height, n, s32 + 1);
                let w = self.region.width;
                Box::new((r0..r1).flat_map(move |i| (0..w).map(move |j| (i, j))))
            }
            DistKind::BlockCol => {
                let c0 = Self::block_start(self.region.width, n, s32);
                let c1 = Self::block_start(self.region.width, n, s32 + 1);
                let h = self.region.height;
                Box::new((0..h).flat_map(move |i| (c0..c1).map(move |j| (i, j))))
            }
            _ => {
                let mut pts: Vec<(u32, u32)> = self
                    .region
                    .points()
                    .filter(|&(i, j)| self.slot_of(i, j) == s)
                    .collect();
                pts.sort_by_key(|&(i, j)| self.local_index(i, j));
                Box::new(pts.into_iter())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn places(n: u16) -> Vec<PlaceId> {
        (0..n).map(PlaceId).collect()
    }

    /// Exhaustive consistency check: local indices are a dense bijection
    /// per slot, chunk_len matches, iter_slot enumerates in order.
    fn check_dist(d: &Dist) {
        let n = d.num_slots();
        let mut seen: Vec<Vec<bool>> = (0..n).map(|s| vec![false; d.chunk_len(s)]).collect();
        for (i, j) in d.region().points() {
            let s = d.slot_of(i, j);
            assert_eq!(d.place_of(i, j), d.places()[s]);
            let li = d.local_index(i, j);
            assert!(
                li < seen[s].len(),
                "local index {li} out of range for slot {s} ({} points) at ({i},{j}) [{:?}]",
                seen[s].len(),
                d.kind()
            );
            assert!(!seen[s][li], "duplicate local index {li} in slot {s}");
            seen[s][li] = true;
        }
        for (s, slots) in seen.iter().enumerate() {
            assert!(
                slots.iter().all(|&b| b),
                "slot {s} has holes under {:?}",
                d.kind()
            );
            let pts: Vec<_> = d.iter_slot(s).collect();
            assert_eq!(pts.len(), d.chunk_len(s));
            for (rank, (i, j)) in pts.iter().enumerate() {
                assert_eq!(d.local_index(*i, *j), rank, "iter_slot order for slot {s}");
                assert_eq!(d.slot_of(*i, *j), s);
            }
        }
    }

    #[test]
    fn block_row_and_col_bijective() {
        for &(h, w, p) in &[
            (7u32, 5u32, 3u16),
            (5, 7, 3),
            (4, 4, 4),
            (3, 10, 4),
            (2, 3, 5),
        ] {
            let r = Region2D::new(h, w);
            check_dist(&Dist::new(r, DistKind::BlockRow, places(p)));
            check_dist(&Dist::new(r, DistKind::BlockCol, places(p)));
        }
    }

    #[test]
    fn cyclic_bijective() {
        for &(h, w, p) in &[(7u32, 5u32, 3u16), (5, 7, 2), (4, 9, 4), (9, 4, 4)] {
            let r = Region2D::new(h, w);
            check_dist(&Dist::new(r, DistKind::CyclicRow, places(p)));
            check_dist(&Dist::new(r, DistKind::CyclicCol, places(p)));
        }
    }

    #[test]
    fn block_cyclic_bijective() {
        for &(h, w, p, b) in &[
            (8u32, 6u32, 2u16, 2u32),
            (9, 9, 3, 2),
            (10, 7, 2, 3),
            (5, 11, 3, 4),
        ] {
            let r = Region2D::new(h, w);
            check_dist(&Dist::new(
                r,
                DistKind::BlockCyclicRow { block: b },
                places(p),
            ));
            check_dist(&Dist::new(
                r,
                DistKind::BlockCyclicCol { block: b },
                places(p),
            ));
        }
    }

    #[test]
    fn custom_bijective() {
        let r = Region2D::new(6, 6);
        let d = Dist::new(
            r,
            DistKind::Custom(Arc::new(|i, j| ((i / 3) * 2 + j / 3) as usize)),
            places(4),
        );
        check_dist(&d);
    }

    #[test]
    fn block_row_matches_paper_fig6() {
        // Fig. 6 (a): 3 rows × 4 cols over 3 places, divided by row —
        // row r goes to place r.
        let d = Dist::new(Region2D::new(3, 4), DistKind::BlockRow, places(3));
        for j in 0..4 {
            assert_eq!(d.place_of(0, j), PlaceId(0));
            assert_eq!(d.place_of(1, j), PlaceId(1));
            assert_eq!(d.place_of(2, j), PlaceId(2));
        }
    }

    #[test]
    fn default_is_block_col() {
        let d = Dist::default_block_col(Region2D::new(4, 8), places(2));
        assert_eq!(d.place_of(3, 0), PlaceId(0));
        assert_eq!(d.place_of(0, 7), PlaceId(1));
    }

    #[test]
    fn more_places_than_rows() {
        let d = Dist::new(Region2D::new(2, 3), DistKind::BlockRow, places(5));
        check_dist(&d);
        // Slots beyond the rows are empty.
        assert_eq!(d.chunk_len(4), 0);
    }

    #[test]
    fn retarget_onto_surviving_places() {
        // The recovery path builds the same scheme over fewer places.
        let r = Region2D::new(6, 6);
        let before = Dist::new(r, DistKind::BlockRow, places(3));
        let after = Dist::new(r, DistKind::BlockRow, vec![PlaceId(0), PlaceId(2)]);
        check_dist(&after);
        assert_eq!(before.num_slots(), 3);
        assert_eq!(after.num_slots(), 2);
        assert_eq!(after.place_of(5, 0), PlaceId(2));
    }
}

//! The periodic-snapshot baseline: X10's `ResilientDistArray`.
//!
//! Resilient X10 offers snapshot/restore as its stock fault-tolerance for
//! distributed arrays (paper §VI-D, method (c)). The paper rejects it for
//! DP because "a large volume of intermediate results may be produced in
//! the progress of computing" — every snapshot ships the whole live state
//! to stable storage. This module implements that mechanism anyway, so
//! the recovery experiments can quantify the comparison the paper makes
//! qualitatively (ablation bench `fig13`-snapshot).

use std::sync::Arc;
use std::time::Duration;

use dpx10_apgas::{Codec, NetworkModel, PlaceId, Topology};

use crate::array::DistArray;
use crate::dist::Dist;

/// Cost accounting for one snapshot or restore pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Finished values captured/restored.
    pub values: u64,
    /// Bytes shipped to/from the resilient store.
    pub bytes: u64,
    /// Simulated time of the pass (parallel over places; the slowest
    /// place's transfer bounds it).
    pub sim_time: Duration,
}

/// A [`DistArray`] with X10-style snapshot/restore fault tolerance.
pub struct ResilientDistArray<T> {
    array: DistArray<T>,
    /// Finished values at the last snapshot: `(i, j, value)`.
    snapshot: Vec<(u32, u32, T)>,
    snapshots_taken: u64,
}

impl<T> ResilientDistArray<T>
where
    T: Default + Clone + Codec,
{
    /// Wraps a fresh array.
    pub fn new(dist: Arc<Dist>) -> Self {
        ResilientDistArray {
            array: DistArray::new(dist),
            snapshot: Vec::new(),
            snapshots_taken: 0,
        }
    }

    /// The live array.
    pub fn array(&self) -> &DistArray<T> {
        &self.array
    }

    /// Mutable access to the live array.
    pub fn array_mut(&mut self) -> &mut DistArray<T> {
        &mut self.array
    }

    /// Number of snapshots taken so far.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// Captures the current finished state to the (modelled) resilient
    /// store. Cost: every place ships its finished values over the
    /// inter-node link; the pass completes when the slowest place does.
    pub fn snapshot(&mut self, _topo: &Topology, net: &NetworkModel) -> SnapshotReport {
        let dist = self.array.dist().clone();
        let mut report = SnapshotReport::default();
        let mut captured = Vec::new();
        let mut slowest = Duration::ZERO;
        for s in 0..dist.num_slots() {
            let mut place_bytes = 0usize;
            for (i, j, v, done) in self.array.iter_slot(s) {
                if done {
                    place_bytes += v.wire_size() + 8; // value + coordinates
                    captured.push((i, j, v.clone()));
                }
            }
            report.bytes += place_bytes as u64;
            // Stable storage is modelled as "some other node": worst-case
            // inter-node link from this place.
            let t = net.inter_node.transfer_time(place_bytes);
            slowest = slowest.max(t);
        }
        report.values = captured.len() as u64;
        report.sim_time = slowest;
        self.snapshot = captured;
        self.snapshots_taken += 1;
        report
    }

    /// Rebuilds the array over the surviving places from the last
    /// snapshot (X10's restore). Everything finished *after* the snapshot
    /// is lost — the gap the paper's method closes.
    pub fn restore(
        &mut self,
        dead: &[PlaceId],
        _topo: &Topology,
        net: &NetworkModel,
    ) -> SnapshotReport {
        let old_dist = self.array.dist().clone();
        let alive: Vec<PlaceId> = old_dist
            .places()
            .iter()
            .copied()
            .filter(|p| !dead.contains(p))
            .collect();
        assert!(!alive.is_empty(), "no places left to restore onto");
        let new_dist = Arc::new(Dist::new(old_dist.region(), old_dist.kind().clone(), alive));
        let mut fresh: DistArray<T> = DistArray::new(new_dist.clone());

        let mut report = SnapshotReport::default();
        let mut per_slot_bytes = vec![0usize; new_dist.num_slots()];
        for (i, j, v) in &self.snapshot {
            let s = new_dist.slot_of(*i, *j);
            per_slot_bytes[s] += v.wire_size() + 8;
            fresh.set(*i, *j, v.clone());
            report.values += 1;
        }
        report.bytes = per_slot_bytes.iter().map(|&b| b as u64).sum();
        report.sim_time = per_slot_bytes
            .into_iter()
            .map(|b| net.inter_node.transfer_time(b))
            .max()
            .unwrap_or(Duration::ZERO);
        self.array = fresh;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DistKind;
    use crate::region::Region2D;

    fn setup(places: u16) -> (ResilientDistArray<i64>, Topology, NetworkModel) {
        let dist = Arc::new(Dist::new(
            Region2D::new(4, 4),
            DistKind::BlockRow,
            (0..places).map(PlaceId).collect(),
        ));
        (
            ResilientDistArray::new(dist),
            Topology::flat(places),
            NetworkModel::tianhe_like(),
        )
    }

    #[test]
    fn restore_recovers_snapshotted_state_only() {
        let (mut ra, topo, net) = setup(4);
        ra.array_mut().set(0, 0, 1);
        ra.array_mut().set(1, 0, 2);
        let snap = ra.snapshot(&topo, &net);
        assert_eq!(snap.values, 2);

        // Progress after the snapshot...
        ra.array_mut().set(2, 0, 3);
        ra.array_mut().set(3, 0, 4);

        // ...is lost on restore.
        let rep = ra.restore(&[PlaceId(3)], &topo, &net);
        assert_eq!(rep.values, 2);
        assert_eq!(ra.array().get_finished(0, 0), Some(&1));
        assert_eq!(ra.array().get_finished(1, 0), Some(&2));
        assert_eq!(ra.array().get_finished(2, 0), None);
        assert_eq!(ra.array().get_finished(3, 0), None);
        // The new array spans only the survivors.
        assert_eq!(ra.array().dist().num_slots(), 3);
    }

    #[test]
    fn snapshot_cost_grows_with_state() {
        let (mut ra, topo, net) = setup(2);
        let empty = ra.snapshot(&topo, &net);
        for i in 0..4 {
            for j in 0..4 {
                ra.array_mut().set(i, j, 7);
            }
        }
        let full = ra.snapshot(&topo, &net);
        assert_eq!(ra.snapshots_taken(), 2);
        assert_eq!(empty.values, 0);
        assert_eq!(full.values, 16);
        assert!(full.bytes > empty.bytes);
        assert!(full.sim_time >= empty.sim_time);
    }

    #[test]
    fn restore_without_snapshot_is_empty() {
        let (mut ra, topo, net) = setup(2);
        ra.array_mut().set(0, 0, 5);
        let rep = ra.restore(&[PlaceId(1)], &topo, &net);
        assert_eq!(rep.values, 0);
        assert_eq!(ra.array().finished_count(), 0);
    }
}

//! Distributed 2-D arrays — the reproduction of X10's `DistArray`,
//! `Dist` and `ResilientDistArray` (paper §VI-B, §VI-D).
//!
//! DPX10 stores every vertex of the DAG in a distributed array partitioned
//! over places by a *distribution* ([`Dist`]). The distribution is a user-
//! visible refinement point ("the user can define the partition and
//! distribution of the DAG using a `Dist` structure to realize a better
//! locality", §VI-E); block-by-column is the framework default.
//!
//! Two recovery strategies are implemented:
//!
//! * [`resilient::ResilientDistArray`] — the periodic-snapshot mechanism
//!   X10 itself offers, kept as the baseline the paper argues is
//!   infeasible for DP's large intermediate state;
//! * [`recovery::recover`] — the paper's new method: build a fresh array
//!   over the surviving places, keep finished values whose owner did not
//!   change, recompute (or optionally migrate) the rest.

#![warn(missing_docs)]

pub mod aggregate;
pub mod array;
pub mod chunk;
pub mod dist;
pub mod recovery;
pub mod region;
pub mod resilient;

pub use aggregate::{AggTable, PrefixLane};
pub use array::DistArray;
pub use chunk::{ChunkMap, ChunkOwner, ChunkState, EpochVerdict};
pub use dist::{Dist, DistKind};
pub use recovery::{recover, RecoveryCostModel, RecoveryReport, RestoreManner};
pub use region::Region2D;
pub use resilient::ResilientDistArray;

//! Prefix-aggregation residents — the nested-dataflow companion to the
//! remote-value cache.
//!
//! An interval dependency (`row i, columns 0..j`) would cost O(j) value
//! reads per vertex if gathered like point dependencies. Instead each
//! place keeps a [`PrefixLane`] per row and/or column: a running
//! reduction (min/max/sum) over the *aggregation keys* of the cells
//! received so far, in index order. Every value-delivery path of the
//! engine (local publish, `Done`, `PushVal`, `PullVal`) folds the cell's
//! key into the lane; by the time a consumer's indegree reaches zero the
//! lane's contiguous frontier covers its interval, so the O(n) read
//! collapses to an O(1) prefix lookup.
//!
//! Unlike the FIFO cache, lanes are *residents*: folding is lossy in the
//! right direction (the raw value can be evicted, the running reduction
//! persists), so a cache-starved run does no extra pull round-trips for
//! interval reads. Lanes are rebuilt from the restored array after a
//! recovery, with per-cell pulls as the fallback for cells whose values
//! landed on another place's subtree (see `DESIGN.md`).

use std::collections::BTreeMap;
use std::sync::Mutex;

use dpx10_dag::{AggSpec, Axis, DepInterval, Reduction, VertexId};

/// One row's (or column's) running prefix reduction.
///
/// Keys arrive in any order and possibly more than once (`Done`, push,
/// pull and reseed paths can all deliver the same cell); the lane is
/// idempotent per index. `pre[k]` is the fold of keys `0..k`, defined up
/// to the contiguous frontier; later arrivals park in `pending` until
/// the gap before them fills.
#[derive(Debug)]
pub struct PrefixLane {
    red: Reduction,
    /// `pre[k]` = fold of keys `0..k`; `pre[0]` is the identity, and
    /// `pre.len() - 1` is the contiguous frontier.
    pre: Vec<i64>,
    /// Out-of-order arrivals: index -> key, waiting for contiguity.
    pending: BTreeMap<u32, i64>,
}

impl PrefixLane {
    /// An empty lane for the given reduction.
    pub fn new(red: Reduction) -> Self {
        PrefixLane {
            red,
            pre: vec![red.identity()],
            pending: BTreeMap::new(),
        }
    }

    /// Number of contiguous indices folded so far: keys `0..frontier()`
    /// are all in.
    #[inline]
    pub fn frontier(&self) -> u32 {
        (self.pre.len() - 1) as u32
    }

    /// Records `key` for lane index `idx`. Idempotent: re-deliveries of
    /// an already-known index are ignored. Returns `true` if the
    /// contiguous frontier advanced.
    pub fn receive(&mut self, idx: u32, key: i64) -> bool {
        if idx < self.frontier() || self.pending.contains_key(&idx) {
            return false;
        }
        self.pending.insert(idx, key);
        let mut advanced = false;
        while let Some(k) = self.pending.remove(&self.frontier()) {
            let folded = self.red.fold(*self.pre.last().expect("nonempty"), k);
            self.pre.push(folded);
            advanced = true;
        }
        advanced
    }

    /// The fold of keys `0..hi`, if every one of them has arrived.
    #[inline]
    pub fn prefix(&self, hi: u32) -> Option<i64> {
        self.pre.get(hi as usize).copied()
    }

    /// Appends to `out` the lane indices `< hi` that have not been
    /// received at all (neither folded nor parked out-of-order). These
    /// are the cells a consumer must pull before `prefix(hi)` can
    /// answer.
    pub fn missing(&self, hi: u32, out: &mut Vec<u32>) {
        for idx in self.frontier()..hi {
            if !self.pending.contains_key(&idx) {
                out.push(idx);
            }
        }
    }
}

/// The per-place aggregation table: one [`PrefixLane`] per row and/or
/// column, as requested by the application's [`AggSpec`].
///
/// All methods take `&self`; each lane has its own lock, so concurrent
/// folds on different rows/columns never contend.
pub struct AggTable {
    spec: AggSpec,
    rows: Vec<Mutex<PrefixLane>>,
    cols: Vec<Mutex<PrefixLane>>,
}

impl AggTable {
    /// Builds the table for a `height × width` grid.
    pub fn new(height: u32, width: u32, spec: AggSpec) -> Self {
        let rows = match spec.rows {
            Some(red) => (0..height)
                .map(|_| Mutex::new(PrefixLane::new(red)))
                .collect(),
            None => Vec::new(),
        };
        let cols = match spec.cols {
            Some(red) => (0..width)
                .map(|_| Mutex::new(PrefixLane::new(red)))
                .collect(),
            None => Vec::new(),
        };
        AggTable { spec, rows, cols }
    }

    /// The spec the table was built with.
    pub fn spec(&self) -> AggSpec {
        self.spec
    }

    /// Folds cell `id`'s keys into its row and/or column lane. `key` is
    /// consulted once per active axis, so axis-dependent keys (GAP's
    /// row and column weights differ) cost nothing extra. Idempotent per
    /// cell and axis.
    pub fn record(&self, id: VertexId, mut key: impl FnMut(Axis) -> i64) {
        if self.spec.rows.is_some() {
            let k = key(Axis::Row);
            self.rows[id.i as usize]
                .lock()
                .expect("lane lock")
                .receive(id.j, k);
        }
        if self.spec.cols.is_some() {
            let k = key(Axis::Col);
            self.cols[id.j as usize]
                .lock()
                .expect("lane lock")
                .receive(id.i, k);
        }
    }

    /// The fold of row `i`'s keys over columns `0..hi`, if complete.
    pub fn row_prefix(&self, i: u32, hi: u32) -> Option<i64> {
        self.rows
            .get(i as usize)?
            .lock()
            .expect("lane lock")
            .prefix(hi)
    }

    /// The fold of column `j`'s keys over rows `0..hi`, if complete.
    pub fn col_prefix(&self, j: u32, hi: u32) -> Option<i64> {
        self.cols
            .get(j as usize)?
            .lock()
            .expect("lane lock")
            .prefix(hi)
    }

    /// The fold over a prefix interval (`lo == 0`), if complete.
    ///
    /// Returns `None` when keys are still missing *or* the interval is
    /// not a prefix — running reductions cannot subtract, so only
    /// `lo == 0` intervals are aggregable (both shipped ranged patterns
    /// use prefix intervals exclusively).
    pub fn interval_prefix(&self, iv: DepInterval) -> Option<i64> {
        match iv {
            DepInterval::Row { i, lo: 0, hi } => self.row_prefix(i, hi),
            DepInterval::Col { j, lo: 0, hi } => self.col_prefix(j, hi),
            _ => None,
        }
    }

    /// Appends the cell ids inside `iv` whose keys have not been
    /// received on this place — the pulls needed before
    /// [`interval_prefix`](AggTable::interval_prefix) can answer.
    pub fn interval_missing(&self, iv: DepInterval, out: &mut Vec<VertexId>) {
        let mut idxs = Vec::new();
        match iv {
            DepInterval::Row { i, lo, hi } => {
                debug_assert_eq!(lo, 0, "aggregation requires prefix intervals");
                if let Some(lane) = self.rows.get(i as usize) {
                    lane.lock().expect("lane lock").missing(hi, &mut idxs);
                }
                out.extend(idxs.into_iter().map(|j| VertexId::new(i, j)));
            }
            DepInterval::Col { j, lo, hi } => {
                debug_assert_eq!(lo, 0, "aggregation requires prefix intervals");
                if let Some(lane) = self.cols.get(j as usize) {
                    lane.lock().expect("lane lock").missing(hi, &mut idxs);
                }
                out.extend(idxs.into_iter().map(|i| VertexId::new(i, j)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_folds_in_order() {
        let mut lane = PrefixLane::new(Reduction::Min);
        assert_eq!(lane.prefix(0), Some(i64::MAX));
        assert!(lane.receive(0, 5));
        assert!(lane.receive(1, 3));
        assert!(lane.receive(2, 9));
        assert_eq!(lane.frontier(), 3);
        assert_eq!(lane.prefix(1), Some(5));
        assert_eq!(lane.prefix(2), Some(3));
        assert_eq!(lane.prefix(3), Some(3));
        assert_eq!(lane.prefix(4), None);
    }

    #[test]
    fn lane_parks_out_of_order_arrivals() {
        let mut lane = PrefixLane::new(Reduction::Sum);
        assert!(!lane.receive(2, 30), "gap at 0..2: no advance");
        assert!(!lane.receive(1, 20));
        assert_eq!(lane.frontier(), 0);
        let mut miss = Vec::new();
        lane.missing(3, &mut miss);
        assert_eq!(miss, vec![0], "1 and 2 are parked, only 0 is absent");
        assert!(lane.receive(0, 10), "filling the gap drains the parked run");
        assert_eq!(lane.frontier(), 3);
        assert_eq!(lane.prefix(3), Some(60));
    }

    #[test]
    fn lane_is_idempotent_per_index() {
        let mut lane = PrefixLane::new(Reduction::Min);
        lane.receive(0, 4);
        assert!(!lane.receive(0, 1), "duplicate delivery ignored");
        assert_eq!(lane.prefix(1), Some(4));
        lane.receive(2, 7);
        assert!(!lane.receive(2, 1), "parked duplicates ignored too");
        lane.receive(1, 6);
        assert_eq!(lane.prefix(3), Some(4));
    }

    #[test]
    fn table_records_per_axis_keys() {
        let table = AggTable::new(3, 4, AggSpec::both(Reduction::Min));
        // Cell (1, 2): row key 10, col key 20.
        table.record(VertexId::new(1, 2), |axis| match axis {
            Axis::Row => 10,
            Axis::Col => 20,
        });
        table.record(VertexId::new(1, 0), |_| 7);
        table.record(VertexId::new(1, 1), |_| 9);
        assert_eq!(table.row_prefix(1, 3), Some(7));
        assert_eq!(table.row_prefix(1, 4), None, "column 3 not yet received");
        assert_eq!(table.col_prefix(2, 1), None, "row 0 of column 2 missing");
        table.record(VertexId::new(0, 2), |_| 1);
        assert_eq!(table.col_prefix(2, 2), Some(1).map(|v| v.min(20)));
    }

    #[test]
    fn interval_queries_require_prefixes() {
        let table = AggTable::new(2, 5, AggSpec::rows(Reduction::Max));
        for j in 0..4 {
            table.record(VertexId::new(0, j), |_| i64::from(j));
        }
        assert_eq!(
            table.interval_prefix(DepInterval::Row { i: 0, lo: 0, hi: 4 }),
            Some(3)
        );
        assert_eq!(
            table.interval_prefix(DepInterval::Row { i: 0, lo: 1, hi: 4 }),
            None,
            "non-prefix intervals are not aggregable"
        );
        let mut miss = Vec::new();
        table.interval_missing(DepInterval::Row { i: 1, lo: 0, hi: 2 }, &mut miss);
        assert_eq!(miss, vec![VertexId::new(1, 0), VertexId::new(1, 1)]);
    }
}

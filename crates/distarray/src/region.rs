//! Dense rectangular index regions.

/// A dense `height × width` rectangle of `(i, j)` points — the index space
/// of a distributed array (X10's `Region` restricted to the 2-D dense case
/// DPX10 uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region2D {
    /// Number of rows.
    pub height: u32,
    /// Number of columns.
    pub width: u32,
}

impl Region2D {
    /// Creates a non-empty region.
    pub fn new(height: u32, width: u32) -> Self {
        assert!(height > 0 && width > 0, "region must be non-empty");
        Region2D { height, width }
    }

    /// Total number of points.
    #[inline]
    pub fn len(&self) -> u64 {
        self.height as u64 * self.width as u64
    }

    /// Always false (regions are non-empty by construction); present for
    /// API symmetry with collections.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `(i, j)` lies in the region.
    #[inline]
    pub fn contains(&self, i: u32, j: u32) -> bool {
        i < self.height && j < self.width
    }

    /// Row-major linear index of `(i, j)`.
    #[inline]
    pub fn linear(&self, i: u32, j: u32) -> usize {
        debug_assert!(self.contains(i, j));
        i as usize * self.width as usize + j as usize
    }

    /// Inverse of [`linear`](Self::linear).
    #[inline]
    pub fn point(&self, linear: usize) -> (u32, u32) {
        debug_assert!((linear as u64) < self.len());
        (
            (linear / self.width as usize) as u32,
            (linear % self.width as usize) as u32,
        )
    }

    /// Iterates all points in row-major order.
    pub fn points(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.height).flat_map(move |i| (0..self.width).map(move |j| (i, j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_round_trips() {
        let r = Region2D::new(3, 5);
        for (i, j) in r.points() {
            assert_eq!(r.point(r.linear(i, j)), (i, j));
        }
    }

    #[test]
    fn len_and_contains() {
        let r = Region2D::new(4, 4);
        assert_eq!(r.len(), 16);
        assert!(r.contains(3, 3));
        assert!(!r.contains(4, 0));
        assert!(!r.contains(0, 4));
    }

    #[test]
    fn points_row_major() {
        let r = Region2D::new(2, 2);
        let pts: Vec<_> = r.points().collect();
        assert_eq!(pts, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_region_rejected() {
        let _ = Region2D::new(3, 0);
    }
}

//! Pins the socket engine's work-stealing downgrade: the distributed
//! backend has no shared ready-lists to steal from, so a `WorkStealing`
//! request is served as `Local` — but it must say so in the
//! [`RunReport`](dpx10_core::RunReport) instead of silently swapping
//! the schedule (the historical behaviour this test exists to prevent).

use std::net::TcpListener;

use dpx10_apgas::SocketConfig;
use dpx10_core::{
    DagResult, DepView, DpApp, EngineConfig, PlaceId, ScheduleStrategy, SocketEngine,
};
use dpx10_dag::{builtin::Grid2, VertexId};

struct MixApp;

impl DpApp for MixApp {
    type Value = u64;
    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        let mut acc = 0x9E37_79B9_u64.wrapping_mul(id.pack() | 1).rotate_left(7);
        for (did, v) in deps.iter() {
            acc = acc
                .wrapping_add(v.rotate_left((did.i % 31) + 1))
                .wrapping_mul(0x100_0000_01B3);
        }
        acc
    }
}

fn run_mesh(places: u16, config: EngineConfig) -> DagResult<u64> {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let mut workers = Vec::new();
    for p in 1..places {
        let addr = addr.clone();
        let config = config.clone();
        workers.push(std::thread::spawn(move || {
            SocketEngine::new(MixApp, Grid2::new(9, 9), config).run(SocketConfig::worker(
                PlaceId(p),
                places,
                addr,
            ))
        }));
    }
    let result = SocketEngine::new(MixApp, Grid2::new(9, 9), config)
        .run(SocketConfig::coordinator(listener, places))
        .expect("coordinator completes")
        .expect("coordinator returns the result");
    for w in workers {
        assert!(matches!(w.join().expect("worker exits"), Ok(None)));
    }
    result
}

#[test]
fn work_stealing_request_is_downgraded_and_recorded() {
    let config = EngineConfig::flat(2).with_schedule(ScheduleStrategy::WorkStealing);
    let result = run_mesh(2, config);
    let downgrade = result
        .report()
        .schedule_downgrade
        .as_ref()
        .expect("the silent WorkStealing→Local swap must be reported");
    assert_eq!(downgrade.requested, ScheduleStrategy::WorkStealing);
    assert_eq!(downgrade.effective, ScheduleStrategy::Local);
    assert!(!downgrade.reason.is_empty());
}

#[test]
fn native_local_schedule_reports_no_downgrade() {
    let config = EngineConfig::flat(2).with_schedule(ScheduleStrategy::Local);
    let result = run_mesh(2, config);
    assert_eq!(result.report().schedule_downgrade, None);
}

//! Property tests of the coalesced batch wire variants
//! (`DoneBatch`/`PullBatch`/`PullValBatch`): round-trips at every size
//! from empty to the flush-policy entry cap, codec size contracts, and
//! decoder totality on arbitrary bytes — mirroring the frame-fuzz tests
//! of the base protocol in `dpx10-apgas`.

use dpx10_apgas::codec::{decode_exact, encode_to_vec};
use dpx10_apgas::{CoalesceConfig, Codec};
use dpx10_core::msg::Msg;
use dpx10_dag::VertexId;
use proptest::prelude::*;

/// Round-trips one message: exact codec size, decodes, and the decoded
/// value re-encodes to identical bytes (`Msg` has no `PartialEq`, so
/// byte equality is the comparison).
fn round_trip(msg: &Msg<u64>) -> Result<(), TestCaseError> {
    let buf = encode_to_vec(msg);
    prop_assert_eq!(buf.len(), Codec::wire_size(msg), "codec size contract");
    let back: Msg<u64> = decode_exact(&buf).expect("well-formed bytes decode");
    prop_assert_eq!(encode_to_vec(&back), buf, "decode/encode is stable");
    Ok(())
}

fn vids(coords: &[(u32, u32)]) -> Vec<VertexId> {
    coords.iter().map(|&(i, j)| VertexId::new(i, j)).collect()
}

proptest! {
    #[test]
    fn done_batches_round_trip(
        entries in proptest::collection::vec(
            ((any::<u32>(), any::<u32>()), any::<u64>()), 0..24),
        targets in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..6),
    ) {
        let targets = vids(&targets);
        let entries: Vec<(VertexId, u64, Vec<VertexId>)> = entries
            .into_iter()
            .map(|((i, j), v)| (VertexId::new(i, j), v, targets.clone()))
            .collect();
        round_trip(&Msg::DoneBatch { entries })?;
    }

    #[test]
    fn pull_batches_round_trip(
        ids in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..64),
    ) {
        round_trip(&Msg::PullBatch { ids: vids(&ids) })?;
    }

    #[test]
    fn pull_val_batches_round_trip(
        entries in proptest::collection::vec(
            ((any::<u32>(), any::<u32>()), any::<u64>()), 0..64),
    ) {
        let entries: Vec<(VertexId, u64)> = entries
            .into_iter()
            .map(|((i, j), v)| (VertexId::new(i, j), v))
            .collect();
        round_trip(&Msg::PullValBatch { entries })?;
    }

    /// Arbitrary bytes never panic the protocol decoder, and anything
    /// that does decode re-encodes to exactly the consumed prefix.
    #[test]
    fn batch_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let mut src = bytes.as_slice();
        if let Some(msg) = Msg::<u64>::decode(&mut src) {
            let consumed = bytes.len() - src.len();
            let again = encode_to_vec(&msg);
            prop_assert_eq!(again.as_slice(), &bytes[..consumed]);
        }
    }
}

/// Boundary sizes the flush policy actually produces: the empty batch
/// (legal on the wire even though the coalescer never sends one) and a
/// batch at exactly `CoalesceConfig::MAX_ENTRIES`, the entry-cap
/// trigger.
#[test]
fn empty_and_entry_cap_boundaries_round_trip() {
    let empty_ok = |m: &Msg<u64>| {
        let buf = encode_to_vec(m);
        assert_eq!(buf.len(), Codec::wire_size(m));
        let back: Msg<u64> = decode_exact(&buf).expect("decodes");
        assert_eq!(encode_to_vec(&back), buf);
    };
    empty_ok(&Msg::DoneBatch { entries: vec![] });
    empty_ok(&Msg::PullBatch { ids: vec![] });
    empty_ok(&Msg::PullValBatch { entries: vec![] });

    let cap = CoalesceConfig::MAX_ENTRIES;
    empty_ok(&Msg::DoneBatch {
        entries: (0..cap as u32)
            .map(|k| {
                (
                    VertexId::new(k, k + 1),
                    u64::from(k) << 17,
                    vec![VertexId::new(k + 1, k)],
                )
            })
            .collect(),
    });
    empty_ok(&Msg::PullBatch {
        ids: (0..cap as u32).map(|k| VertexId::new(k, !k)).collect(),
    });
    empty_ok(&Msg::PullValBatch {
        entries: (0..cap as u32)
            .map(|k| (VertexId::new(!k, k), u64::MAX - u64::from(k)))
            .collect(),
    });
}

//! Differential property tests of the tiled execution path: for every
//! builtin pattern, `run_tiled_threaded` under proptest-drawn grid and
//! tile sizes must produce exactly the serial oracle's cell values —
//! same cells, same values, same digest. Tile sizes cover the two
//! degenerate boundaries explicitly: `t = 1` (tiling is the identity)
//! and `t ≥` the grid dimension (the whole DAG is one tile); both must
//! always tile. In between, a pattern whose tile-level graph develops a
//! cycle (Pyramid's leftward diagonal) may legitimately refuse with
//! `Untileable` — refusing is correct, computing wrong values is not.

use std::collections::HashMap;

use dpx10_core::tiled::run_tiled_threaded;
use dpx10_core::{DepView, DpApp, EngineConfig, EngineError};
use dpx10_dag::builtin::{
    ColWave, Diagonal, FullPrevRowCol, Grid2, Grid3, IntervalUpper, Pyramid, RowWave,
};
use dpx10_dag::{topological_order, DagPattern, VertexId};
use proptest::prelude::*;

/// Differential app: any misrouted boundary cell or broken intra-tile
/// order changes everything downstream.
struct MixApp;

impl DpApp for MixApp {
    type Value = u64;
    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        let mut acc = 0x9E37_79B9_u64.wrapping_mul(id.pack() | 1).rotate_left(7);
        for (did, v) in deps.iter() {
            acc = acc
                .wrapping_add(v.rotate_left((did.i % 31) + 1))
                .wrapping_mul(0x100_0000_01B3);
        }
        acc
    }
}

fn oracle(pattern: &dyn DagPattern) -> HashMap<VertexId, u64> {
    let order = topological_order(pattern).expect("acyclic");
    let mut out = HashMap::new();
    let mut deps = Vec::new();
    for id in order {
        deps.clear();
        pattern.dependencies(id.i, id.j, &mut deps);
        let vals: Vec<u64> = deps.iter().map(|d| out[d]).collect();
        out.insert(id, MixApp.compute(id, &DepView::new(&deps, &vals)));
    }
    out
}

/// FNV-1a over canonically-ordered `(packed id, value)` pairs — the
/// same digest shape as `DagResult::fingerprint`, computed at cell
/// level so tiled and untiled runs are comparable.
fn digest(mut cells: Vec<(u64, u64)>) -> u64 {
    cells.sort_unstable();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (k, v) in cells {
        for b in k.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Runs `pattern` tiled and compares it cell-by-cell and digest-wise
/// against the serial oracle. `must_tile` asserts the tiling cannot be
/// refused (the `t = 1` and one-big-tile boundaries).
fn check<P: DagPattern + Clone + 'static>(
    pattern: P,
    tile: u32,
    must_tile: bool,
) -> Result<(), TestCaseError> {
    let expect = oracle(&pattern);
    let run = match run_tiled_threaded(MixApp, pattern, tile, EngineConfig::flat(2)) {
        Err(EngineError::Untileable(e)) => {
            prop_assert!(!must_tile, "tile {tile} must be accepted, got: {e}");
            return Ok(());
        }
        Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        Ok(run) => run,
    };
    let mut tiled_cells = Vec::with_capacity(expect.len());
    for (id, v) in &expect {
        let got = run.try_get(id.i, id.j);
        prop_assert_eq!(got, Some(*v), "cell {} diverged at tile size {}", id, tile);
        tiled_cells.push((id.pack(), got.unwrap()));
    }
    let oracle_cells: Vec<(u64, u64)> = expect.iter().map(|(id, v)| (id.pack(), *v)).collect();
    prop_assert_eq!(digest(tiled_cells), digest(oracle_cells), "digest mismatch");
    Ok(())
}

fn check_builtin(
    pat: usize,
    h: u32,
    w: u32,
    tile: u32,
    must_tile: bool,
) -> Result<(), TestCaseError> {
    match pat {
        0 => check(ColWave::new(h, w), tile, must_tile),
        1 => check(Diagonal::new(h, w), tile, must_tile),
        2 => check(FullPrevRowCol::new(h, w), tile, must_tile),
        3 => check(Grid2::new(h, w), tile, must_tile),
        4 => check(Grid3::new(h, w), tile, must_tile),
        5 => check(IntervalUpper::new(h), tile, must_tile),
        6 => check(Pyramid::new(h, w), tile, must_tile),
        _ => check(RowWave::new(h, w), tile, must_tile),
    }
}

proptest! {
    #[test]
    fn tiled_matches_serial_oracle_across_builtins(
        pat in 0usize..8,
        h in 3u32..11,
        w in 3u32..11,
        tile in 1u32..14,
    ) {
        check_builtin(pat, h, w, tile, tile == 1)?;
    }
}

#[test]
fn tile_size_one_is_the_identity_for_every_builtin() {
    for pat in 0..8 {
        check_builtin(pat, 7, 5, 1, true).unwrap();
    }
}

#[test]
fn one_big_tile_swallows_every_builtin() {
    // t ≥ both grid dimensions: the whole DAG is a single tile, which
    // can never cycle, so even Pyramid must accept it.
    for pat in 0..8 {
        check_builtin(pat, 6, 6, 6, true).unwrap();
        check_builtin(pat, 6, 6, 16, true).unwrap();
    }
}

//! In-process end-to-end tests of the multi-job scheduler: every place
//! is a thread with its own `SocketNode`, and one `JobServer` per place
//! serves several concurrent DP jobs over the shared mesh. The oracle
//! for every job is its solo single-place threaded run — vertex values
//! are a pure function of the DAG, so any cross-job frame leakage or
//! scheduling corruption changes a fingerprint.

use std::net::TcpListener;
use std::sync::Arc;

use dpx10_apgas::SocketConfig;
use dpx10_core::{
    DepView, DpApp, EngineConfig, JobServer, JobSpec, PlaceId, ScheduleStrategy, ServeReport,
    ThreadedEngine,
};
use dpx10_dag::{builtin, DagPattern, VertexId};

/// Differential app: any misrouted or stale dependency value changes
/// everything downstream.
struct MixApp;

impl DpApp for MixApp {
    type Value = u64;
    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        let mut acc = 0x9E37_79B9_u64.wrapping_mul(id.pack() | 1).rotate_left(7);
        for (did, v) in deps.iter() {
            acc = acc
                .wrapping_add(v.rotate_left((did.i % 31) + 1))
                .wrapping_mul(0x100_0000_01B3);
        }
        acc
    }
}

fn solo_fingerprint(pattern: impl DagPattern + Clone + 'static) -> u64 {
    ThreadedEngine::new(MixApp, pattern, EngineConfig::flat(1))
        .run()
        .expect("solo run")
        .fingerprint()
}

/// Runs `places` serve participants as threads in this process and
/// returns place 0's report. `build` must produce the same server on
/// every call — the serve contract.
fn serve_mesh(
    places: u16,
    build: impl Fn() -> JobServer<MixApp> + Send + Sync + 'static,
) -> ServeReport<u64> {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let build = Arc::new(build);
    let mut workers = Vec::new();
    for p in 1..places {
        let addr = addr.clone();
        let build = build.clone();
        workers.push(std::thread::spawn(move || {
            build().serve(SocketConfig::worker(PlaceId(p), places, addr))
        }));
    }
    let report = build()
        .serve(SocketConfig::coordinator(listener, places))
        .expect("coordinator serves")
        .expect("coordinator returns the report");
    for w in workers {
        let worker_report = w.join().expect("worker thread exits");
        assert!(matches!(worker_report, Ok(None)), "workers return Ok(None)");
    }
    report
}

#[test]
fn four_concurrent_jobs_match_their_solo_fingerprints() {
    let report = serve_mesh(3, || {
        let mut server = JobServer::new().with_max_in_flight(4);
        server
            .submit(JobSpec::new(
                "grid2",
                MixApp,
                builtin::Grid2::new(14, 14),
                EngineConfig::flat(3),
            ))
            .unwrap();
        server
            .submit(JobSpec::new(
                "grid3",
                MixApp,
                builtin::Grid3::new(12, 12),
                EngineConfig::flat(3),
            ))
            .unwrap();
        server
            .submit(JobSpec::new(
                "rowwave",
                MixApp,
                builtin::RowWave::new(10, 16),
                EngineConfig::flat(3),
            ))
            .unwrap();
        server
            .submit(JobSpec::new(
                "diagonal",
                MixApp,
                builtin::Diagonal::new(12, 12),
                EngineConfig::flat(3),
            ))
            .unwrap();
        server
    });

    assert_eq!(report.jobs.len(), 4);
    assert_eq!(report.succeeded(), 4);
    // All four were admitted together (cap 4, one mesh).
    assert_eq!(report.peak_in_flight, 4);
    let solos = [
        solo_fingerprint(builtin::Grid2::new(14, 14)),
        solo_fingerprint(builtin::Grid3::new(12, 12)),
        solo_fingerprint(builtin::RowWave::new(10, 16)),
        solo_fingerprint(builtin::Diagonal::new(12, 12)),
    ];
    for (job, solo) in report.jobs.iter().zip(solos) {
        let result = job.result.as_ref().expect("job succeeded");
        assert_eq!(
            result.fingerprint(),
            solo,
            "job {} diverged from its solo run",
            job.name
        );
        assert_eq!(result.report().epochs, 1, "no faults => one epoch");
        assert!(result.report().recoveries.is_empty());
    }
}

#[test]
fn pinned_job_runs_on_its_subset_with_the_same_answer() {
    let report = serve_mesh(3, || {
        let mut server = JobServer::new();
        server
            .submit(JobSpec::new(
                "wide",
                MixApp,
                builtin::Grid3::new(10, 10),
                EngineConfig::flat(3),
            ))
            .unwrap();
        server
            .submit(
                JobSpec::new(
                    "pinned",
                    MixApp,
                    builtin::Grid2::new(10, 10),
                    EngineConfig::flat(2),
                )
                .pinned_to(vec![PlaceId(0), PlaceId(1)]),
            )
            .unwrap();
        server
    });

    assert_eq!(report.succeeded(), 2);
    assert_eq!(
        report.jobs[0].result.as_ref().unwrap().fingerprint(),
        solo_fingerprint(builtin::Grid3::new(10, 10)),
    );
    assert_eq!(
        report.jobs[1].result.as_ref().unwrap().fingerprint(),
        solo_fingerprint(builtin::Grid2::new(10, 10)),
    );
}

#[test]
fn priority_and_cap_order_admission() {
    let report = serve_mesh(2, || {
        let mut server = JobServer::new().with_max_in_flight(1);
        server
            .submit(
                JobSpec::new(
                    "background",
                    MixApp,
                    builtin::RowWave::new(8, 8),
                    EngineConfig::flat(2),
                )
                .with_priority(0),
            )
            .unwrap();
        server
            .submit(
                JobSpec::new(
                    "urgent",
                    MixApp,
                    builtin::RowWave::new(8, 8),
                    EngineConfig::flat(2),
                )
                .with_priority(9),
            )
            .unwrap();
        server
    });

    assert_eq!(report.succeeded(), 2);
    assert_eq!(report.peak_in_flight, 1, "cap of one is respected");
    // The urgent job was admitted first despite being submitted second:
    // the background job waited at least as long.
    assert!(report.jobs[0].wait >= report.jobs[1].wait);
}

#[test]
fn served_jobs_record_the_work_stealing_downgrade() {
    let report = serve_mesh(2, || {
        let mut server = JobServer::new();
        server
            .submit(JobSpec::new(
                "steal",
                MixApp,
                builtin::RowWave::new(6, 6),
                EngineConfig::flat(2).with_schedule(ScheduleStrategy::WorkStealing),
            ))
            .unwrap();
        server
    });
    let result = report.jobs[0].result.as_ref().expect("job succeeded");
    let downgrade = result
        .report()
        .schedule_downgrade
        .as_ref()
        .expect("downgrade recorded");
    assert_eq!(downgrade.requested, ScheduleStrategy::WorkStealing);
    assert_eq!(downgrade.effective, ScheduleStrategy::Local);
}

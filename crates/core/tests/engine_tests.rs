//! End-to-end tests of the threaded engine: every scheduler, several
//! distributions, fault injection, pull-fallback stress — all checked
//! against a serial oracle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dpx10_core::{
    DagResult, DepView, DistKind, DpApp, EngineConfig, FaultPlan, PlaceId, RestoreManner,
    ScheduleStrategy, ThreadedEngine,
};
use dpx10_dag::{builtin::*, topological_order, DagPattern, KnapsackDag, VertexId};

/// A value-mixing app: each vertex hashes its coordinates with its
/// dependencies' results, so any misrouted, stale or missing dependency
/// changes downstream values — a strong differential signal.
struct MixApp;

impl DpApp for MixApp {
    type Value = u64;
    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        let mut acc = 0x9E37_79B9_u64.wrapping_mul(id.pack() | 1).rotate_left(7);
        for (did, v) in deps.iter() {
            acc = acc
                .wrapping_add(v.rotate_left((did.i % 31) + 1))
                .wrapping_mul(0x100_0000_01B3);
        }
        acc
    }
}

/// Serial oracle: evaluate the same app in topological order.
fn oracle<P: DagPattern>(pattern: &P, app: &MixApp) -> std::collections::HashMap<VertexId, u64> {
    let order = topological_order(pattern).expect("acyclic");
    let mut out = std::collections::HashMap::new();
    let mut deps = Vec::new();
    for id in order {
        deps.clear();
        pattern.dependencies(id.i, id.j, &mut deps);
        let vals: Vec<u64> = deps.iter().map(|d| out[d]).collect();
        let view = DepView::new(&deps, &vals);
        out.insert(id, app.compute(id, &view));
    }
    out
}

fn check_against_oracle<P: DagPattern + Clone + 'static>(pattern: P, config: EngineConfig) {
    let expect = oracle(&pattern, &MixApp);
    let engine = ThreadedEngine::new(MixApp, pattern, config);
    let result = engine.run().expect("engine completes");
    for (id, v) in &expect {
        assert_eq!(
            result.try_get(id.i, id.j).as_ref(),
            Some(v),
            "vertex {id} diverged from oracle"
        );
    }
}

#[test]
fn grid3_matches_oracle_across_distributions() {
    for kind in [
        DistKind::BlockRow,
        DistKind::BlockCol,
        DistKind::CyclicRow,
        DistKind::CyclicCol,
        DistKind::BlockCyclicRow { block: 2 },
        DistKind::BlockCyclicCol { block: 3 },
    ] {
        check_against_oracle(
            Grid3::new(13, 17),
            EngineConfig::flat(3).with_dist(kind.clone()),
        );
    }
}

#[test]
fn all_builtins_match_oracle() {
    use dpx10_dag::BuiltinKind;
    for kind in BuiltinKind::ALL {
        let expect_pattern = kind.instantiate(9, 9);
        let expect = oracle(&expect_pattern, &MixApp);
        let engine = ThreadedEngine::new(MixApp, kind.instantiate(9, 9), EngineConfig::flat(2));
        let result = engine.run().expect("completes");
        for (id, v) in &expect {
            assert_eq!(
                result.try_get(id.i, id.j).as_ref(),
                Some(v),
                "{kind:?} {id}"
            );
        }
    }
}

#[test]
fn knapsack_pattern_matches_oracle() {
    let weights = vec![3, 1, 4, 1, 5, 2];
    check_against_oracle(
        KnapsackDag::new(weights, 17),
        EngineConfig::flat(3).with_dist(DistKind::BlockRow),
    );
}

#[test]
fn all_schedulers_match_oracle() {
    for strat in ScheduleStrategy::ALL {
        check_against_oracle(
            Grid3::new(11, 11),
            EngineConfig::flat(3).with_schedule(strat),
        );
    }
}

#[test]
fn zero_cache_forces_pull_path_and_still_correct() {
    // With no cache, every remote dependency value pushed by `Done` is
    // lost immediately and must be pulled: the park/fill path runs for
    // nearly every boundary vertex.
    check_against_oracle(
        Grid3::new(12, 12),
        EngineConfig::flat(4)
            .with_cache(0)
            .with_dist(DistKind::CyclicCol),
    );
}

#[test]
fn tiny_cache_mixes_hits_and_pulls() {
    check_against_oracle(
        Grid3::new(16, 16),
        EngineConfig::flat(4)
            .with_cache(2)
            .with_dist(DistKind::CyclicRow),
    );
}

#[test]
fn multithreaded_places_match_oracle() {
    let mut config = EngineConfig::flat(2);
    config.topology.threads_per_place = 3;
    check_against_oracle(Grid3::new(14, 14), config);
}

#[test]
fn single_place_degenerates_to_serial() {
    check_against_oracle(Grid2::new(10, 10), EngineConfig::flat(1));
}

#[test]
fn fault_mid_run_recovers_and_matches_oracle() {
    let pattern = Grid3::new(12, 12);
    let expect = oracle(&pattern, &MixApp);
    let config = EngineConfig::flat(3)
        .with_dist(DistKind::BlockRow)
        .with_fault(FaultPlan::mid_run(PlaceId(2)));
    let engine = ThreadedEngine::new(MixApp, pattern, config);
    let result = engine.run().expect("survives the fault");
    let report = result.report();
    assert!(report.epochs >= 2, "a fault forces at least two epochs");
    assert_eq!(report.recoveries.len(), 1);
    assert!(
        report.vertices_computed >= report.vertices_total,
        "recomputation can only add work"
    );
    for (id, v) in &expect {
        assert_eq!(result.try_get(id.i, id.j).as_ref(), Some(v), "{id}");
    }
}

#[test]
fn fault_with_copy_remote_restore_matches_oracle() {
    let pattern = Grid3::new(12, 12);
    let expect = oracle(&pattern, &MixApp);
    let config = EngineConfig::flat(4)
        .with_dist(DistKind::BlockCol)
        .with_restore(RestoreManner::CopyRemote)
        .with_fault(FaultPlan {
            place: PlaceId(1),
            after_fraction: 0.3,
        });
    let engine = ThreadedEngine::new(MixApp, pattern, config);
    let result = engine.run().expect("survives the fault");
    let rec = &result.report().recoveries[0];
    assert_eq!(rec.dropped, 0, "copy-remote never drops finished work");
    for (id, v) in &expect {
        assert_eq!(result.try_get(id.i, id.j).as_ref(), Some(v), "{id}");
    }
}

#[test]
fn fault_plan_on_place_zero_rejected() {
    let engine = ThreadedEngine::new(
        MixApp,
        Grid2::new(4, 4),
        EngineConfig::flat(2).with_fault(FaultPlan::mid_run(PlaceId(0))),
    );
    assert!(engine.run().is_err());
}

#[test]
fn init_override_prefinished_cells_are_respected() {
    // Pre-finish the whole first row and column with zeros; compute only
    // checks interior cells, matching the §VI-E "set the unneeded
    // vertices as finished" idiom.
    struct BorderApp;
    impl DpApp for BorderApp {
        type Value = u64;
        fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
            assert!(id.i > 0 && id.j > 0, "border cells must never compute");
            deps.values().iter().sum::<u64>() + 1
        }
    }
    let init: dpx10_core::InitOverride<u64> = Arc::new(|i, j| (i == 0 || j == 0).then_some(0));
    let engine =
        ThreadedEngine::new(BorderApp, Grid3::new(6, 6), EngineConfig::flat(2)).with_init(init);
    let result = engine.run().unwrap();
    assert_eq!(result.get(0, 3), 0);
    assert_eq!(result.get(1, 1), 1);
    // Interior values grow along the wavefront.
    assert!(result.get(5, 5) > result.get(1, 1));
    // The report only counts computed (non-prefinished) work.
    assert_eq!(result.report().vertices_computed, 25);
}

#[test]
fn app_finished_hook_runs_once_with_full_results() {
    struct HookApp {
        calls: Arc<AtomicU64>,
    }
    impl DpApp for HookApp {
        type Value = u64;
        fn compute(&self, _id: VertexId, deps: &DepView<'_, u64>) -> u64 {
            deps.values().iter().sum::<u64>() + 1
        }
        fn app_finished(&self, result: &DagResult<u64>) {
            self.calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!(result.array().finished_count(), 16);
        }
    }
    let calls = Arc::new(AtomicU64::new(0));
    let engine = ThreadedEngine::new(
        HookApp {
            calls: calls.clone(),
        },
        Grid2::new(4, 4),
        EngineConfig::flat(2),
    );
    engine.run().unwrap();
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

#[test]
fn report_counts_communication() {
    let engine = ThreadedEngine::new(
        MixApp,
        Grid3::new(10, 10),
        EngineConfig::flat(2).with_dist(DistKind::BlockCol),
    );
    let result = engine.run().unwrap();
    let comm = result.report().comm;
    // The column boundary forces messages between the two places.
    assert!(comm.messages_sent > 0);
    assert!(comm.bytes_sent > 0);
    assert_eq!(result.report().epochs, 1);
}

#[test]
fn interval_pattern_triangular_cells_absent() {
    let engine = ThreadedEngine::new(MixApp, IntervalUpper::new(8), EngineConfig::flat(2));
    let result = engine.run().unwrap();
    assert!(result.try_get(3, 5).is_some());
    assert!(
        result.try_get(5, 3).is_none(),
        "lower triangle is not part of the DAG"
    );
}

#[test]
fn broken_custom_pattern_is_detected_as_stall() {
    // A vertex whose dependency never notifies it: (0,1) depends on
    // (0,0) but (0,0) lists no dependents. Validation would catch this;
    // with validation off, the stall watchdog must end the run with an
    // error instead of hanging.
    use dpx10_dag::CustomDag;
    let broken = CustomDag::new(1, 2).with_dependencies(|_i, j, out| {
        if j == 1 {
            out.push(VertexId::new(0, 0));
        }
    });
    let mut config = EngineConfig::flat(1);
    config.validate_pattern = false;
    config.stall_limit = std::time::Duration::from_millis(200);
    let err = match ThreadedEngine::new(MixApp, broken, config).run() {
        Err(e) => e,
        Ok(_) => panic!("broken pattern must not complete"),
    };
    match err {
        dpx10_core::EngineError::Stalled { finished, total } => {
            assert_eq!((finished, total), (1, 2));
        }
        other => panic!("expected stall, got {other}"),
    }
}

#[test]
fn validation_catches_the_same_broken_pattern_up_front() {
    use dpx10_dag::CustomDag;
    let broken = CustomDag::new(1, 2).with_dependencies(|_i, j, out| {
        if j == 1 {
            out.push(VertexId::new(0, 0));
        }
    });
    let mut config = EngineConfig::flat(1);
    config.validate_pattern = true;
    let err = match ThreadedEngine::new(MixApp, broken, config).run() {
        Err(e) => e,
        Ok(_) => panic!("broken pattern must not validate"),
    };
    assert!(matches!(err, dpx10_core::EngineError::InvalidPattern(_)));
}

#[test]
fn checkpointed_run_resumes_without_recomputation() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("dpx10-engine-ckpt-{}", std::process::id()));
    let pattern = Grid3::new(10, 10);
    let expect = oracle(&pattern, &MixApp);

    // First run: checkpoint everything to disk.
    let mut config = EngineConfig::flat(2);
    config.checkpoint = Some(dpx10_core::CheckpointConfig::new(&dir));
    let result = ThreadedEngine::new(MixApp, Grid3::new(10, 10), config)
        .run()
        .unwrap();
    assert_eq!(result.report().vertices_computed, 100);

    // Second run: resume from the checkpoint — nothing recomputes and
    // every value matches the oracle.
    let init = dpx10_core::load_checkpoint::<u64>(&dir, 2).unwrap();
    let resumed = ThreadedEngine::new(MixApp, Grid3::new(10, 10), EngineConfig::flat(2))
        .with_init(init)
        .run()
        .unwrap();
    assert_eq!(resumed.report().vertices_computed, 0);
    for (id, v) in &expect {
        assert_eq!(resumed.try_get(id.i, id.j).as_ref(), Some(v), "{id}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_run_survives_fault_and_resumes() {
    let mut dir = std::env::temp_dir();
    dir.push(format!("dpx10-engine-ckpt-fault-{}", std::process::id()));
    let pattern = Grid3::new(12, 12);
    let expect = oracle(&pattern, &MixApp);

    let mut config = EngineConfig::flat(3)
        .with_dist(DistKind::BlockRow)
        .with_fault(FaultPlan::mid_run(PlaceId(2)));
    config.checkpoint = Some(dpx10_core::CheckpointConfig::new(&dir));
    let result = ThreadedEngine::new(MixApp, Grid3::new(12, 12), config)
        .run()
        .unwrap();
    assert!(result.report().epochs >= 2);

    let init = dpx10_core::load_checkpoint::<u64>(&dir, 3).unwrap();
    let resumed = ThreadedEngine::new(MixApp, Grid3::new(12, 12), EngineConfig::flat(2))
        .with_init(init)
        .run()
        .unwrap();
    assert_eq!(
        resumed.report().vertices_computed,
        0,
        "checkpoint covers all publishes"
    );
    for (id, v) in &expect {
        assert_eq!(resumed.try_get(id.i, id.j).as_ref(), Some(v), "{id}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_pulls_of_one_vertex_fold_into_a_single_request() {
    // A "hub" DAG: place 1 owns 40 vertices that all depend on the one
    // cell (0, 0) owned by place 0. With a zero-capacity cache the
    // pushed `Done` value is evicted instantly, so each dependent's
    // gather misses and wants a pull — but `gather` folds waiters on
    // the same remote cell into one in-flight `Pull` (the waiter list
    // in `pending.waiters`), and `cache_misses` counts only the pulls
    // actually issued. Without dedup this run would issue ~40 pulls.
    use dpx10_dag::CustomDag;
    let w = 40u32;
    let pattern = CustomDag::new(2, w)
        .with_dependencies(|i, _j, out| {
            if i == 1 {
                out.push(VertexId::new(0, 0));
            }
        })
        .with_anti_dependencies(move |i, j, out, (_h, w)| {
            if i == 0 && j == 0 {
                out.extend((0..w).map(|k| VertexId::new(1, k)));
            }
        });
    let expect = oracle(&pattern, &MixApp);
    let config = EngineConfig::flat(2)
        .with_dist(DistKind::BlockRow)
        .with_cache(0);
    let pattern = CustomDag::new(2, w)
        .with_dependencies(|i, _j, out| {
            if i == 1 {
                out.push(VertexId::new(0, 0));
            }
        })
        .with_anti_dependencies(move |i, j, out, (_h, w)| {
            if i == 0 && j == 0 {
                out.extend((0..w).map(|k| VertexId::new(1, k)));
            }
        });
    let result = ThreadedEngine::new(MixApp, pattern, config)
        .run()
        .expect("engine completes");
    for (id, v) in &expect {
        assert_eq!(result.try_get(id.i, id.j).as_ref(), Some(v), "{id}");
    }
    let misses = result.report().comm.cache_misses;
    assert!(misses >= 1, "the pull path must have run");
    assert!(
        misses < u64::from(w) / 2,
        "{misses} pulls for {w} dependents of one cell — dedup is not folding"
    );
    // The round-trip accounting must agree with the hub: every one of
    // the 40 first gathers either issued the in-flight pull or joined
    // it as a deduped waiter — never both, never neither.
    let pulls = result.report().comm.pulls_sent;
    let deduped = result.report().comm.pulls_deduped;
    assert_eq!(
        pulls + deduped,
        u64::from(w),
        "{pulls} pulls + {deduped} deduped waiters for {w} dependents"
    );
    assert!(
        deduped >= u64::from(w) / 2,
        "only {deduped} of {w} waiters were folded into the hub"
    );
}

//! Model-based property tests of [`FifoCache`]: the cache is driven
//! with proptest-drawn insert/lookup churn over a deliberately small
//! key space (so reinserts, evictions, and ring wraparound all happen
//! constantly) and compared after every step against a trivially
//! correct reference model — a `HashMap` for contents plus a `VecDeque`
//! for FIFO insertion order. The paper's §VI-E cache is FIFO, not LRU:
//! a reinsert refreshes the value but must *not* move the entry's
//! eviction slot, and capacity 0 disables the cache entirely.

use std::collections::{HashMap, VecDeque};

use dpx10_core::FifoCache;
use proptest::prelude::*;

/// The reference model: contents + FIFO order, evicting the oldest
/// insertion when a new key arrives at capacity.
struct Model {
    capacity: usize,
    map: HashMap<u64, u64>,
    order: VecDeque<u64>,
}

impl Model {
    fn new(capacity: usize) -> Model {
        Model {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn insert(&mut self, key: u64, value: u64) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key, value).is_some() {
            // FIFO, not LRU: a refresh keeps the slot.
            return;
        }
        if self.order.len() == self.capacity {
            let evicted = self.order.pop_front().expect("full ring has a head");
            self.map.remove(&evicted);
        }
        self.order.push_back(key);
    }

    fn get(&self, key: u64) -> Option<&u64> {
        self.map.get(&key)
    }
}

/// One churn step; lookups of absent keys are as important as hits.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u64, u64),
    Lookup(u64),
}

fn run_churn(capacity: usize, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut cache: FifoCache<u64> = FifoCache::new(capacity);
    let mut model = Model::new(capacity);
    prop_assert_eq!(cache.capacity(), capacity);
    for op in ops {
        match *op {
            Op::Insert(key, value) => {
                cache.insert(key, value);
                model.insert(key, value);
            }
            Op::Lookup(key) => {
                prop_assert_eq!(cache.get(key), model.get(key), "lookup of {} diverged", key);
            }
        }
        // Index/ring consistency invariants after every mutation.
        prop_assert_eq!(cache.len(), model.map.len());
        prop_assert!(cache.len() <= capacity);
        prop_assert_eq!(cache.is_empty(), model.map.is_empty());
        for (k, v) in &model.map {
            prop_assert_eq!(cache.get(*k), Some(v), "model key {} missing from cache", k);
        }
    }
    Ok(())
}

/// Decodes raw draws into ops: two thirds inserts, one third lookups.
/// Keys in 0..12 against capacities up to 6 give a heavy collision and
/// eviction rate.
fn decode_ops(raw: &[(u8, u64, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(tag, key, value)| {
            if tag % 3 < 2 {
                Op::Insert(key % 12, value)
            } else {
                Op::Lookup(key % 16)
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn cache_matches_fifo_model_under_churn(
        capacity in 0usize..7,
        raw in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..64),
    ) {
        run_churn(capacity, &decode_ops(&raw))?;
    }

    #[test]
    fn zero_capacity_never_stores_anything(
        raw in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..32),
    ) {
        let mut cache: FifoCache<u64> = FifoCache::new(0);
        for op in decode_ops(&raw) {
            if let Op::Insert(k, v) = op {
                cache.insert(k, v);
            }
            prop_assert!(cache.is_empty());
            prop_assert_eq!(cache.len(), 0);
        }
        for k in 0..16 {
            prop_assert_eq!(cache.get(k), None);
        }
    }
}

#[test]
fn eviction_at_the_ring_boundary_is_fifo() {
    // Fill a capacity-3 ring, then push one more: the *oldest* entry
    // falls out, even though it was read most recently (FIFO ≠ LRU).
    let mut cache: FifoCache<u64> = FifoCache::new(3);
    cache.insert(1, 100);
    cache.insert(2, 200);
    cache.insert(3, 300);
    assert_eq!(cache.get(1), Some(&100)); // "use" the oldest
    cache.insert(4, 400);
    assert_eq!(cache.get(1), None, "oldest insertion evicted");
    assert_eq!(cache.get(2), Some(&200));
    assert_eq!(cache.get(3), Some(&300));
    assert_eq!(cache.get(4), Some(&400));
    assert_eq!(cache.len(), 3);
}

#[test]
fn reinsert_refreshes_value_without_moving_the_slot() {
    let mut cache: FifoCache<u64> = FifoCache::new(2);
    cache.insert(1, 10);
    cache.insert(2, 20);
    cache.insert(1, 11); // refresh, still the oldest slot
    assert_eq!(cache.get(1), Some(&11));
    cache.insert(3, 30); // evicts key 1, not key 2
    assert_eq!(cache.get(1), None);
    assert_eq!(cache.get(2), Some(&20));
    assert_eq!(cache.get(3), Some(&30));
}

#[test]
fn clear_resets_ring_and_index_together() {
    let mut cache: FifoCache<u64> = FifoCache::new(4);
    for k in 0..6 {
        cache.insert(k, k * 7);
    }
    cache.clear();
    assert!(cache.is_empty());
    assert_eq!(cache.len(), 0);
    for k in 0..6 {
        assert_eq!(cache.get(k), None);
    }
    // Still fully usable after a clear.
    cache.insert(9, 99);
    assert_eq!(cache.get(9), Some(&99));
    assert_eq!(cache.len(), 1);
}

//! In-process end-to-end tests of the socket engine: every place is a
//! thread with its own `SocketNode`, so the whole TCP mesh, the wire
//! protocol and the termination/recovery control plane run for real —
//! only process boundaries are missing (the CLI integration tests cover
//! those, including SIGKILL fault injection).

use std::net::TcpListener;
use std::sync::Arc;

use dpx10_apgas::SocketConfig;
use dpx10_core::{
    DepView, DistKind, DpApp, EngineConfig, PlaceId, ScheduleStrategy, SocketEngine, ThreadedEngine,
};
use dpx10_dag::{builtin::Grid3, topological_order, DagPattern, VertexId};

/// Same differential app as the threaded engine tests: any misrouted or
/// stale dependency value changes everything downstream.
struct MixApp;

impl DpApp for MixApp {
    type Value = u64;
    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        let mut acc = 0x9E37_79B9_u64.wrapping_mul(id.pack() | 1).rotate_left(7);
        for (did, v) in deps.iter() {
            acc = acc
                .wrapping_add(v.rotate_left((did.i % 31) + 1))
                .wrapping_mul(0x100_0000_01B3);
        }
        acc
    }
}

fn oracle<P: DagPattern>(pattern: &P) -> std::collections::HashMap<VertexId, u64> {
    let order = topological_order(pattern).expect("acyclic");
    let mut out = std::collections::HashMap::new();
    let mut deps = Vec::new();
    for id in order {
        deps.clear();
        pattern.dependencies(id.i, id.j, &mut deps);
        let vals: Vec<u64> = deps.iter().map(|d| out[d]).collect();
        out.insert(id, MixApp.compute(id, &DepView::new(&deps, &vals)));
    }
    out
}

/// Runs `places` socket places as threads in this process and returns
/// the coordinator's result.
fn run_mesh<P: DagPattern + Clone + 'static>(
    places: u16,
    pattern: P,
    config: EngineConfig,
    init: Option<dpx10_core::InitOverride<u64>>,
) -> dpx10_core::DagResult<u64> {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let mut workers = Vec::new();
    for p in 1..places {
        let addr = addr.clone();
        let pattern = pattern.clone();
        let config = config.clone();
        let init = init.clone();
        workers.push(std::thread::spawn(move || {
            let mut engine = SocketEngine::new(MixApp, pattern, config);
            if let Some(init) = init {
                engine = engine.with_init(init);
            }
            engine.run(SocketConfig::worker(PlaceId(p), places, addr))
        }));
    }
    let mut engine = SocketEngine::new(MixApp, pattern, config);
    if let Some(init) = init {
        engine = engine.with_init(init);
    }
    let result = engine
        .run(SocketConfig::coordinator(listener, places))
        .expect("coordinator completes")
        .expect("coordinator returns the result");
    for w in workers {
        let worker_result = w.join().expect("worker thread exits");
        assert!(
            matches!(worker_result, Ok(None)),
            "workers yield no result: {:?}",
            worker_result.map(|r| r.is_some())
        );
    }
    result
}

#[test]
fn four_places_match_oracle_and_threaded_engine_bit_for_bit() {
    let pattern = Grid3::new(13, 11);
    let expect = oracle(&pattern);
    let threaded = ThreadedEngine::new(MixApp, pattern, EngineConfig::flat(4))
        .run()
        .expect("threaded run");
    let socket = run_mesh(4, pattern, EngineConfig::flat(4), None);
    for (id, v) in &expect {
        assert_eq!(
            socket.try_get(id.i, id.j).as_ref(),
            Some(v),
            "{id} vs oracle"
        );
        assert_eq!(
            socket.try_get(id.i, id.j),
            threaded.try_get(id.i, id.j),
            "{id} vs threaded engine"
        );
    }
    assert_eq!(socket.report().epochs, 1);
}

#[test]
fn socket_stats_count_real_framed_bytes_with_no_network_model() {
    let result = run_mesh(
        3,
        Grid3::new(10, 10),
        EngineConfig::flat(3).with_dist(DistKind::BlockCol),
        None,
    );
    let comm = result.report().comm;
    assert!(comm.messages_sent > 0, "places must have talked");
    assert!(
        comm.bytes_sent > comm.messages_sent * 5,
        "every framed message costs at least its header"
    );
    assert_eq!(
        comm.net_time,
        std::time::Duration::ZERO,
        "the socket backend must not price transfers through the model"
    );
}

#[test]
fn pull_path_over_sockets_matches_oracle() {
    // No cache: every pushed remote value is evicted immediately and
    // must be pulled back over the wire.
    let pattern = Grid3::new(12, 12);
    let expect = oracle(&pattern);
    let result = run_mesh(
        4,
        pattern,
        EngineConfig::flat(4)
            .with_cache(0)
            .with_dist(DistKind::CyclicCol),
        None,
    );
    for (id, v) in &expect {
        assert_eq!(result.try_get(id.i, id.j).as_ref(), Some(v), "{id}");
    }
    assert!(result.report().comm.cache_misses > 0);
}

#[test]
fn random_scheduling_ships_exec_over_the_wire() {
    let pattern = Grid3::new(11, 11);
    let expect = oracle(&pattern);
    let result = run_mesh(
        3,
        pattern,
        EngineConfig::flat(3).with_schedule(ScheduleStrategy::Random),
        None,
    );
    for (id, v) in &expect {
        assert_eq!(result.try_get(id.i, id.j).as_ref(), Some(v), "{id}");
    }
}

#[test]
fn fully_prefinished_dag_short_circuits_on_every_place() {
    let init: dpx10_core::InitOverride<u64> = Arc::new(|i, j| Some(u64::from(i * 100 + j)));
    let result = run_mesh(3, Grid3::new(8, 8), EngineConfig::flat(3), Some(init));
    assert_eq!(result.report().vertices_computed, 0);
    assert_eq!(result.get(7, 7), 707);
}

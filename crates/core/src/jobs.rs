//! The multi-job scheduler: serve many independent DP jobs over one
//! shared socket mesh.
//!
//! The one-shot engines tear the world down after a single DAG. A
//! service cannot: the ROADMAP's "heavy traffic" north-star needs many
//! jobs admitted, scheduled and recovered concurrently over a mesh that
//! outlives all of them. [`JobServer`] provides that layer:
//!
//! * **Namespacing** — every frame of a served job travels wrapped in
//!   [`Wire::Job`]`(job_id, …)`, so one demux thread per place routes
//!   traffic to per-job channels and one job's abort or park can never
//!   destroy another job's frames. Bare (unwrapped) legacy frames are
//!   treated as job 0, keeping a serve demux tolerant of pre-job peers.
//! * **Admission** — jobs run in a deterministic (priority descending,
//!   submission order ascending) sequence with at most
//!   [`JobServer::with_max_in_flight`] drivers live per place, and
//!   [`JobServer::submit`] applies backpressure once the queue holds
//!   [`JobServer::with_max_queue`] jobs. Every place computes the same
//!   order from the same specs, so no cross-place negotiation is needed:
//!   the globally least unfinished job is admitted at every participant,
//!   which makes the cap deadlock-free.
//! * **Shared worker pool** — one small pool of threads per place
//!   services *all* admitted jobs round-robin via
//!   [`crate::engine`]'s budgeted `worker_rounds`, so a wide job cannot
//!   starve a narrow one of compute threads.
//! * **Fault isolation** — liveness is mesh-level, recovery is per-job:
//!   a place death triggers the §VI-D recovery protocol only for jobs
//!   whose placement contains the dead place; everything else keeps
//!   running undisturbed on its own epoch chain.
//!
//! Place 0 coordinates every job (placements must include it) and is
//! the only place that returns a [`ServeReport`].

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpx10_apgas::codec::{decode_exact, encode_to_vec};
use dpx10_apgas::mailbox::Envelope;
use dpx10_apgas::{
    ChaosRng, CoalesceConfig, CoalescingTransport, DeadPlaceError, PlaceId, SocketConfig,
    SocketNode, Transport,
};
use dpx10_dag::{validate_pattern, DagPattern, VertexId};
use dpx10_distarray::{recover, Dist, DistArray, RecoveryCostModel, Region2D};
use dpx10_obs::{EventKind, Recorder, RUNTIME_WORKER};
use dpx10_sync::channel::{unbounded, Receiver, Sender};

use crate::app::{DagResult, DpApp, VertexValue};
use crate::config::EngineConfig;
use crate::engine::{worker_rounds, Shared, WorkerBufs};
use crate::error::EngineError;
use crate::msg::Msg;
use crate::socket_engine::{downgrade_schedule, AppPlane, Wire};
use crate::state::{build_shards, collect_array};
use crate::stats::{RunReport, ScheduleDowngrade};

/// A job's control-frame receiver: `(src, unwrapped frame)`.
type CtlReceiver<V> = Receiver<(PlaceId, Wire<V>)>;

/// What a job's driver thread hands back: `Ok(Some)` only on place 0.
type JobResult<V> = Result<Option<DagResult<V>>, EngineError>;

/// How long a worker place waits for its per-job release after sending a
/// snapshot (mirrors the single-job engine's deadline).
const SNAPSHOT_DEADLINE: Duration = Duration::from_secs(60);

/// How often a worker place re-sends unchanged per-job progress.
const PROGRESS_INTERVAL: Duration = Duration::from_millis(50);

/// One job of a serve: a DP application over a pattern, with its own
/// engine configuration, an admission priority and an optional placement
/// restricted to a subset of the mesh.
pub struct JobSpec<A: DpApp> {
    /// Human-readable label, echoed in the [`ServeReport`].
    pub name: String,
    /// The application computing each vertex.
    pub app: Arc<A>,
    /// The dependency pattern the job solves.
    pub pattern: Arc<dyn DagPattern>,
    /// Per-job engine configuration. Its topology must have exactly as
    /// many places as the job's placement; checkpointing and fault plans
    /// are serve-level concerns and get cleared at admission.
    pub config: EngineConfig,
    /// Admission priority: higher runs earlier. Ties break by
    /// submission order.
    pub priority: u8,
    /// `Some` pins the job to a subset of the mesh (must include place
    /// 0, the per-job coordinator); `None` uses every place.
    pub places: Option<Vec<PlaceId>>,
}

impl<A: DpApp> JobSpec<A> {
    /// A job named `name` running `app` over `pattern` with `config`,
    /// at priority 0, on every place of the mesh.
    pub fn new(
        name: impl Into<String>,
        app: A,
        pattern: impl DagPattern + 'static,
        config: EngineConfig,
    ) -> Self {
        JobSpec {
            name: name.into(),
            app: Arc::new(app),
            pattern: Arc::new(pattern),
            config,
            priority: 0,
            places: None,
        }
    }

    /// Sets the admission priority (higher runs earlier).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Pins the job to `places` (must include place 0).
    pub fn pinned_to(mut self, places: Vec<PlaceId>) -> Self {
        self.places = Some(places);
        self
    }
}

/// A serve-level planned fault: the victim place crashes once it has
/// published `after_vertices` vertices across *all* jobs it hosts —
/// chaos for the multi-job recovery path, analogous to the single-job
/// [`crate::config::FaultPlan`].
#[derive(Clone, Copy, Debug)]
pub struct ServeKill {
    /// The place that dies (never place 0).
    pub place: PlaceId,
    /// Vertices the victim publishes (summed over jobs) before dying.
    pub after_vertices: u64,
}

/// One job's fate in a finished serve.
pub struct JobOutcome<V: VertexValue> {
    /// The job's id (its submission index).
    pub job_id: u32,
    /// The spec's name.
    pub name: String,
    /// The spec's priority.
    pub priority: u8,
    /// Time the job spent queued between serve start and admission.
    pub wait: Duration,
    /// The job's result, exactly as a solo run would report it (per-job
    /// epochs and recoveries included). Communication counters are
    /// mesh-level and not attributed per job, so `report().comm` stays
    /// at its default here.
    pub result: Result<DagResult<V>, EngineError>,
}

/// What [`JobServer::serve`] returns on place 0: every job's outcome in
/// submission order, plus scheduler-level counters.
pub struct ServeReport<V: VertexValue> {
    /// Per-job outcomes, indexed by job id.
    pub jobs: Vec<JobOutcome<V>>,
    /// The largest number of jobs that were in flight at once on
    /// place 0 (which participates in every job).
    pub peak_in_flight: usize,
}

impl<V: VertexValue> ServeReport<V> {
    /// Number of jobs that finished with a result.
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.result.is_ok()).count()
    }
}

/// Serves a batch of DP jobs over one socket mesh. Construct and submit
/// identically on every place process, then call
/// [`serve`](JobServer::serve) with that process's [`SocketConfig`] —
/// the same calling convention as [`crate::SocketEngine::run`].
pub struct JobServer<A: DpApp> {
    jobs: Vec<JobSpec<A>>,
    max_in_flight: usize,
    max_queue: usize,
    pool_threads: Option<usize>,
    soft_die: bool,
    kill: Option<ServeKill>,
    recorder: Recorder,
}

impl<A: DpApp + 'static> Default for JobServer<A> {
    fn default() -> Self {
        JobServer::new()
    }
}

impl<A: DpApp + 'static> JobServer<A> {
    /// An empty server: up to 4 jobs in flight, a 64-job queue.
    pub fn new() -> Self {
        JobServer {
            jobs: Vec::new(),
            max_in_flight: 4,
            max_queue: 64,
            pool_threads: None,
            soft_die: false,
            kill: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Caps how many jobs run concurrently on each place (min 1).
    pub fn with_max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// Caps the admission queue; [`submit`](JobServer::submit) rejects
    /// past it (backpressure).
    pub fn with_max_queue(mut self, n: usize) -> Self {
        self.max_queue = n.max(1);
        self
    }

    /// Overrides the shared worker-pool size per place (default: the
    /// largest `threads_per_place` among the submitted jobs' topologies).
    pub fn with_pool_threads(mut self, n: usize) -> Self {
        self.pool_threads = Some(n.max(1));
        self
    }

    /// Makes a planned kill crash the victim's *sockets* instead of the
    /// process — required when places are threads of one test process
    /// (see [`crate::SocketEngine::with_soft_die`]).
    pub fn with_soft_die(mut self) -> Self {
        self.soft_die = true;
        self
    }

    /// Arms a serve-level planned fault (see [`ServeKill`]).
    pub fn with_kill(mut self, kill: ServeKill) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Attaches a flight recorder; admissions, completions and every
    /// job's engine events land in this place's ring, with each job's
    /// pool work on its own track.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Queues a job and returns its id (the submission index), or
    /// rejects it when the queue is full — the submitter must retry
    /// later rather than pile up unbounded work.
    pub fn submit(&mut self, spec: JobSpec<A>) -> Result<u32, EngineError> {
        if self.jobs.len() >= self.max_queue {
            return Err(EngineError::Job(format!(
                "admission queue is full ({} jobs); retry after a serve",
                self.jobs.len()
            )));
        }
        self.jobs.push(spec);
        Ok((self.jobs.len() - 1) as u32)
    }

    /// Joins the mesh and serves every queued job to completion.
    ///
    /// Returns `Ok(Some(report))` on place 0 and `Ok(None)` elsewhere.
    /// Every place must call `serve` with an identically-built server
    /// (same jobs, same order) — admission order is derived
    /// deterministically from the specs on each place independently.
    pub fn serve(
        &self,
        socket: SocketConfig,
    ) -> Result<Option<ServeReport<A::Value>>, EngineError> {
        if self.jobs.is_empty() {
            return Err(EngineError::Job("no jobs submitted".into()));
        }
        let recorder = self.recorder.clone();
        let mut socket = socket;
        if !socket.recorder.enabled() {
            socket.recorder = recorder.clone();
        }
        let node = Arc::new(
            SocketNode::connect(socket)
                .map_err(|e| EngineError::Socket(format!("mesh formation failed: {e}")))?,
        );
        let me = node.me();
        let places = node.places();
        // Every place validates the same specs the same way; an invalid
        // serve fails identically everywhere, tearing the mesh down
        // symmetrically. Validation runs against the live roster, not
        // the founding count — slots drained out of an elastic mesh are
        // not schedulable.
        let members = node.roster().members();
        let placements = match self.resolve_placements(&members) {
            Ok(p) => p,
            Err(e) => {
                node.shutdown();
                return Err(e);
            }
        };
        if let Some(kill) = self.kill {
            if kill.place == PlaceId::ZERO || kill.place.index() >= places as usize {
                node.shutdown();
                return Err(EngineError::BadFaultPlan(format!(
                    "{} is not a killable place",
                    kill.place
                )));
            }
        }

        // Per-job channels and planes exist before any job is admitted,
        // so traffic from a place that admitted a job earlier than us
        // buffers in the job's own channel instead of being lost (or
        // worse, read by another job).
        let njobs = self.jobs.len();
        let mut app_txs = Vec::with_capacity(njobs);
        let mut ctl_txs = Vec::with_capacity(njobs);
        let mut planes = Vec::with_capacity(njobs);
        let mut ctl_rxs: Vec<Option<CtlReceiver<A::Value>>> = Vec::with_capacity(njobs);
        for j in 0..njobs {
            let (app_tx, app_rx) = unbounded();
            let (ctl_tx, ctl_rx) = unbounded();
            app_txs.push(app_tx);
            ctl_txs.push(ctl_tx);
            planes.push(Arc::new(AppPlane::new(
                node.clone(),
                app_rx,
                Some(j as u32),
            )));
            ctl_rxs.push(Some(ctl_rx));
        }

        let stop = Arc::new(AtomicBool::new(false));
        let dying = Arc::new(AtomicBool::new(false));
        let served_done = Arc::new(AtomicBool::new(false));
        let demux = {
            let node = node.clone();
            let routes = JobRoutes {
                app: app_txs,
                ctl: ctl_txs,
            };
            let (stop, dying, served_done) = (stop.clone(), dying.clone(), served_done.clone());
            let soft_die = self.soft_die;
            std::thread::Builder::new()
                .name(format!("dpx10-serve-demux{}", me.index()))
                .spawn(move || serve_demux(node, routes, stop, dying, served_done, soft_die))
                .map_err(|e| EngineError::Socket(format!("spawn demux: {e}")))?
        };

        let pool = Arc::new(JobPool::new(njobs));
        let threads = self
            .pool_threads
            .unwrap_or_else(|| {
                self.jobs
                    .iter()
                    .map(|s| s.config.topology.threads_per_place as usize)
                    .max()
                    .unwrap_or(1)
            })
            .max(1);
        let mut pool_handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let (pool, dying) = (pool.clone(), dying.clone());
            // A thread-spawn failure past this point would strand peers
            // mid-protocol; dying loudly lets the mesh detect us.
            let handle = std::thread::Builder::new()
                .name(format!("dpx10-pool-p{}w{t}", me.index()))
                .spawn(move || pool_loop(pool, me, t, dying))
                .expect("spawn pool worker");
            pool_handles.push(handle);
        }

        let watchdog = self.kill.filter(|k| k.place == me).map(|kill| {
            let (pool, node, dying, stop) =
                (pool.clone(), node.clone(), dying.clone(), stop.clone());
            let (soft_die, recorder) = (self.soft_die, recorder.clone());
            std::thread::Builder::new()
                .name(format!("dpx10-kill-p{}", me.index()))
                .spawn(move || {
                    kill_watchdog(
                        pool,
                        node,
                        dying,
                        stop,
                        kill.after_vertices,
                        soft_die,
                        recorder,
                    )
                })
                .expect("spawn kill watchdog")
        });

        // Deterministic admission order: priority descending, submission
        // id ascending — identical on every place by construction.
        let mut order: Vec<usize> = (0..njobs).collect();
        order.sort_by_key(|&j| (std::cmp::Reverse(self.jobs[j].priority), j));
        let my_jobs: Vec<usize> = order
            .into_iter()
            .filter(|&j| placements[j].contains(&me))
            .collect();

        let serve_start = Instant::now();
        let (done_tx, done_rx) = unbounded();
        let mut next = 0usize;
        let mut running = 0usize;
        let mut peak = 0usize;
        let mut waits: Vec<Duration> = vec![Duration::ZERO; njobs];
        let mut results: Vec<Option<JobResult<A::Value>>> = (0..njobs).map(|_| None).collect();
        let mut driver_handles = Vec::with_capacity(my_jobs.len());

        while next < my_jobs.len() || running > 0 {
            while next < my_jobs.len() && running < self.max_in_flight {
                let j = my_jobs[next];
                next += 1;
                waits[j] = serve_start.elapsed();
                recorder.instant_now(me.0, RUNTIME_WORKER, EventKind::JobAdmit, j as u64);
                let spec = &self.jobs[j];
                let mut config = spec.config.clone();
                let downgrade = downgrade_schedule(&mut config);
                // Serve-level concerns: checkpoint writers assume one
                // process owns all places' files, and faults are injected
                // by `ServeKill`, not per job.
                config.checkpoint = None;
                config.fault = None;
                config.chaos = None;
                let runner = JobRunner {
                    job_id: j as u32,
                    app: spec.app.clone(),
                    pattern: spec.pattern.clone(),
                    config,
                    placement: placements[j].clone(),
                    node: node.clone(),
                    plane: planes[j].clone(),
                    ctl_rx: ctl_rxs[j].take().expect("each job is admitted once"),
                    me,
                    pool: pool.clone(),
                    dying: dying.clone(),
                    recorder: recorder.clone(),
                    downgrade,
                };
                let tx = done_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("dpx10-job{j}p{}", me.index()))
                    .spawn(move || {
                        let result = runner.run();
                        runner.release();
                        let _ = tx.send((runner.job_id, result));
                    })
                    .expect("spawn job driver");
                driver_handles.push(handle);
                running += 1;
                peak = peak.max(running);
            }
            if let Ok((jid, result)) = done_rx.recv_timeout(Duration::from_millis(5)) {
                running -= 1;
                recorder.instant_now(me.0, RUNTIME_WORKER, EventKind::JobDone, u64::from(jid));
                results[jid as usize] = Some(result);
            }
        }

        if me == PlaceId::ZERO {
            // Place 0 coordinates every job, so all jobs are over: the
            // serve-level goodbye releases the worker places — the live
            // roster, not `1..places`, which would address drained slots.
            for p in node.roster().members() {
                if p != me {
                    let _ = node.send_bytes(p, encode_to_vec(&Wire::<A::Value>::Done));
                }
            }
        } else {
            // Other places' connections must outlive the jobs they are
            // *not* in: tearing down early would read as a crash to any
            // peer still mid-epoch. Wait for the goodbye — with an
            // orphan deadline, because a place the coordinator falsely
            // wrote off can no longer be addressed and would wait
            // forever (same escape as the single-job snapshot wait).
            let orphan_deadline = Instant::now() + SNAPSHOT_DEADLINE;
            while !served_done.load(Ordering::Acquire)
                && !dying.load(Ordering::Acquire)
                && node.liveness().is_alive(PlaceId::ZERO)
                && Instant::now() < orphan_deadline
            {
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        stop.store(true, Ordering::Release);
        pool.shutdown.store(true, Ordering::Release);
        for h in driver_handles {
            let _ = h.join();
        }
        for h in pool_handles {
            let _ = h.join();
        }
        node.shutdown();
        let _ = demux.join();
        if let Some(w) = watchdog {
            let _ = w.join();
        }

        if me != PlaceId::ZERO {
            return Ok(None);
        }
        let jobs = results
            .into_iter()
            .enumerate()
            .map(|(j, r)| JobOutcome {
                job_id: j as u32,
                name: self.jobs[j].name.clone(),
                priority: self.jobs[j].priority,
                wait: waits[j],
                result: match r {
                    Some(Ok(Some(result))) => Ok(result),
                    Some(Ok(None)) => Err(EngineError::Job("job ended without a result".into())),
                    Some(Err(e)) => Err(e),
                    None => Err(EngineError::Job("job was never admitted".into())),
                },
            })
            .collect();
        Ok(Some(ServeReport {
            jobs,
            peak_in_flight: peak,
        }))
    }

    /// Resolves, sorts and checks every job's placement against the
    /// mesh's *live roster* — an elastic mesh may have drained or dead
    /// slots below its capacity, and a pin to one of those must be
    /// rejected, not discovered as a hang.
    fn resolve_placements(&self, members: &[PlaceId]) -> Result<Vec<Vec<PlaceId>>, EngineError> {
        let mut placements = Vec::with_capacity(self.jobs.len());
        for (j, spec) in self.jobs.iter().enumerate() {
            let mut placement = spec.places.clone().unwrap_or_else(|| members.to_vec());
            placement.sort_unstable();
            placement.dedup();
            if placement.first() != Some(&PlaceId::ZERO) {
                return Err(EngineError::Job(format!(
                    "job {j} ({}) must include place 0, its coordinator",
                    spec.name
                )));
            }
            if let Some(p) = placement.iter().find(|p| !members.contains(p)) {
                return Err(EngineError::Job(format!(
                    "job {j} ({}) is pinned to {p}, not a live member of the mesh",
                    spec.name
                )));
            }
            if spec.config.topology.num_places() as usize != placement.len() {
                return Err(EngineError::Job(format!(
                    "job {j} ({}): topology has {} places but the placement has {}",
                    spec.name,
                    spec.config.topology.num_places(),
                    placement.len()
                )));
            }
            let total = spec.pattern.vertex_count();
            if spec.config.validate_pattern && total <= spec.config.validate_limit {
                validate_pattern(spec.pattern.as_ref())?;
            }
            placements.push(placement);
        }
        Ok(placements)
    }
}

/// Per-job routing table of the serve demux.
struct JobRoutes<V> {
    app: Vec<Sender<(u32, Envelope<Msg<V>>)>>,
    ctl: Vec<Sender<(PlaceId, Wire<V>)>>,
}

/// Reads raw frames off the mesh and routes them to the owning job's
/// channels. Bare `Die`/`Done` frames are mesh-level (planned fault /
/// serve shutdown); any other bare frame is legacy single-job traffic
/// and lands on job 0. Unknown job ids and undecodable payloads follow
/// the single-job policy: the former are dropped, the latter mark the
/// sender dead.
fn serve_demux<V: VertexValue>(
    node: Arc<SocketNode>,
    routes: JobRoutes<V>,
    stop: Arc<AtomicBool>,
    dying: Arc<AtomicBool>,
    served_done: Arc<AtomicBool>,
    soft_die: bool,
) {
    while !stop.load(Ordering::Acquire) {
        let Some((src, bytes)) = node.recv_bytes_timeout(Duration::from_millis(5)) else {
            continue;
        };
        let routed = match decode_exact::<Wire<V>>(&bytes) {
            Some(Wire::Job(job, inner)) => Some((job as usize, *inner)),
            Some(Wire::Die) => {
                dying.store(true, Ordering::Release);
                if soft_die {
                    node.crash();
                } else {
                    std::process::abort();
                }
                None
            }
            Some(Wire::Done) => {
                served_done.store(true, Ordering::Release);
                None
            }
            Some(legacy) => Some((0, legacy)),
            None => {
                node.liveness().mark_dead(src);
                None
            }
        };
        let Some((job, wire)) = routed else { continue };
        if job >= routes.app.len() {
            continue;
        }
        match wire {
            Wire::App(epoch, msg) => {
                let _ = routes.app[job].send((epoch, Envelope { src, msg }));
            }
            other => {
                let _ = routes.ctl[job].send((src, other));
            }
        }
    }
}

/// The shared worker pool of one place: one slot per job, each holding
/// the job's current epoch state while an epoch is live. Pool threads
/// sweep the slots round-robin so every live job advances.
struct JobPool<A: DpApp> {
    slots: Vec<PoolSlot<A>>,
    /// Vertices this place published in *finished* epochs, all jobs
    /// (live epochs add their `computed` on top; see
    /// [`published`](JobPool::published)).
    published_base: AtomicU64,
    shutdown: AtomicBool,
}

struct PoolSlot<A: DpApp> {
    work: dpx10_sync::Mutex<Option<(Arc<Shared<A>>, usize)>>,
    /// Pool threads currently inside this slot's `worker_rounds`; the
    /// detach barrier spins on it reaching zero.
    busy: AtomicUsize,
}

impl<A: DpApp> JobPool<A> {
    fn new(jobs: usize) -> Self {
        JobPool {
            slots: (0..jobs)
                .map(|_| PoolSlot {
                    work: dpx10_sync::Mutex::new(None),
                    busy: AtomicUsize::new(0),
                })
                .collect(),
            published_base: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Hands an epoch's shared state to the pool.
    fn attach(&self, job: u32, shared: Arc<Shared<A>>, slot: usize) {
        *self.slots[job as usize].work.lock() = Some((shared, slot));
    }

    /// Withdraws a job's epoch from the pool and waits until no pool
    /// thread still works on it — the quiescence barrier that replaces
    /// the single-job engine's thread join between epochs.
    fn detach(&self, job: u32) {
        let slot = &self.slots[job as usize];
        *slot.work.lock() = None;
        while slot.busy.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Vertices this place has published across all jobs so far.
    fn published(&self) -> u64 {
        let mut sum = self.published_base.load(Ordering::Relaxed);
        for slot in &self.slots {
            if let Some((shared, _)) = &*slot.work.lock() {
                sum += shared.computed.load(Ordering::Relaxed);
            }
        }
        sum
    }
}

/// The trace track a pool thread records a job's vertex events onto:
/// high-numbered and keyed by `(job, thread)`, so each job's compute
/// shows up as its own track and never collides with the single-job
/// engines' sequential worker ids.
fn job_track(job: usize, tid: usize) -> u16 {
    0x4A00 | (((job as u16) & 0x3F) << 3) | ((tid as u16) & 0x7)
}

/// One pool thread: sweep every job slot, run one budgeted
/// `worker_rounds` per live slot, idle briefly when nothing anywhere
/// made progress. Per-slot idle counters drive the coalescing layer's
/// idle flush exactly as the single-job worker loop does.
fn pool_loop<A: DpApp>(pool: Arc<JobPool<A>>, me: PlaceId, tid: usize, dying: Arc<AtomicBool>) {
    let mut bufs = WorkerBufs::default();
    let mut no_shake: Option<ChaosRng> = None;
    let mut idle: Vec<u32> = vec![0; pool.slots.len()];
    while !pool.shutdown.load(Ordering::Acquire) && !dying.load(Ordering::Acquire) {
        let mut any = false;
        for (j, slot) in pool.slots.iter().enumerate() {
            // Lease under the lock *and* bump `busy` before releasing it,
            // so the detach barrier can never observe zero while a clone
            // of the epoch state is about to be worked on.
            let leased = {
                let guard = slot.work.lock();
                match &*guard {
                    Some((shared, s)) => {
                        slot.busy.fetch_add(1, Ordering::AcqRel);
                        Some((shared.clone(), *s))
                    }
                    None => None,
                }
            };
            let Some((shared, s)) = leased else {
                idle[j] = 0;
                continue;
            };
            let mut progress = false;
            if !shared.should_stop() {
                progress = worker_rounds(&shared, s, job_track(j, tid), &mut bufs, &mut no_shake);
            }
            if progress {
                any = true;
                idle[j] = 0;
            } else {
                idle[j] = idle[j].saturating_add(1);
                if idle[j] == 1 || idle[j] % 8 == 0 {
                    shared.transport.flush(me);
                }
            }
            slot.busy.fetch_sub(1, Ordering::AcqRel);
        }
        if !any {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// The victim place's self-inflicted planned fault: once this place has
/// published the armed number of vertices across all jobs, crash —
/// peers *detect* the death (heartbeats), exactly like a SIGKILL.
#[allow(clippy::too_many_arguments)]
fn kill_watchdog<A: DpApp>(
    pool: Arc<JobPool<A>>,
    node: Arc<SocketNode>,
    dying: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    after_vertices: u64,
    soft_die: bool,
    recorder: Recorder,
) {
    while !stop.load(Ordering::Acquire) && !dying.load(Ordering::Acquire) {
        if pool.published() >= after_vertices {
            recorder.instant_now(
                node.me().0,
                RUNTIME_WORKER,
                EventKind::CtlDie,
                after_vertices,
            );
            dying.store(true, Ordering::Release);
            if soft_die {
                node.crash();
            } else {
                std::process::abort();
            }
            return;
        }
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// What a per-job control loop decided the epoch's fate is — the
/// multi-job twin of the socket engine's flow states.
enum JobFlow<V> {
    Finished,
    Fault,
    Stalled {
        finished: u64,
    },
    WorkerExit,
    WorkerResume {
        alive: Vec<u16>,
        cells: Vec<(u64, V)>,
    },
    Died,
}

/// Drives one job on one place: the per-job epoch loop, isomorphic to
/// the single-job socket engine's driver but with every control frame
/// wrapped in [`Wire::Job`] and the compute delegated to the shared
/// pool instead of private worker threads.
struct JobRunner<A: DpApp> {
    job_id: u32,
    app: Arc<A>,
    pattern: Arc<dyn DagPattern>,
    config: EngineConfig,
    placement: Vec<PlaceId>,
    node: Arc<SocketNode>,
    plane: Arc<AppPlane<A::Value>>,
    ctl_rx: Receiver<(PlaceId, Wire<A::Value>)>,
    me: PlaceId,
    pool: Arc<JobPool<A>>,
    dying: Arc<AtomicBool>,
    recorder: Recorder,
    downgrade: Option<ScheduleDowngrade>,
}

impl<A: DpApp + 'static> JobRunner<A> {
    /// Sends a job-wrapped control frame.
    fn send_ctl(&self, dst: PlaceId, wire: Wire<A::Value>) -> Result<(), DeadPlaceError> {
        let framed = Wire::Job(self.job_id, Box::new(wire));
        self.node
            .send_bytes(dst, encode_to_vec(&framed))
            .map(|_| ())
    }

    /// Place 0: releases this job's surviving workers, whatever the
    /// outcome was — mirrors the single-job engine's
    /// release-before-goodbye.
    fn release(&self) {
        if self.me != PlaceId::ZERO {
            return;
        }
        for p in self
            .placement
            .iter()
            .filter(|p| **p != self.me && self.node.liveness().is_alive(**p))
        {
            let _ = self.send_ctl(*p, Wire::Done);
        }
    }

    fn run(&self) -> Result<Option<DagResult<A::Value>>, EngineError> {
        if self.dying.load(Ordering::Acquire) {
            return Ok(None);
        }
        let total = self.pattern.vertex_count();
        let region = Region2D::new(self.pattern.height(), self.pattern.width());
        let started = Instant::now();
        let mut report = RunReport {
            vertices_total: total,
            schedule_downgrade: self.downgrade.clone(),
            ..RunReport::default()
        };
        let mut alive: Vec<PlaceId> = self.placement.clone();
        let mut prior: Option<DistArray<A::Value>> = None;
        let mut pending_cells: Option<Vec<(u64, A::Value)>> = None;
        let mut epoch: u32 = 0;

        let final_array = loop {
            report.epochs += 1;
            self.plane.set_epoch(epoch);
            let dist = Arc::new(Dist::new(
                region,
                self.config.dist_kind.clone(),
                alive.clone(),
            ));
            if let Some(cells) = pending_cells.take() {
                let mut arr = DistArray::new(dist.clone());
                for (packed, v) in cells {
                    let id = VertexId::unpack(packed);
                    arr.set(id.i, id.j, v);
                }
                prior = Some(arr);
            }
            let Some(my_slot) = alive.iter().position(|p| *p == self.me) else {
                // The coordinator counted us among this job's dead.
                return Ok(None);
            };
            let agg =
                crate::engine::agg_mode(&self.config, self.app.as_ref(), self.pattern.as_ref());
            let (shards, prefinished) = build_shards(
                self.pattern.as_ref(),
                &dist,
                prior.as_ref(),
                None,
                None,
                self.config.cache_capacity,
                agg,
            );
            if agg.is_some() {
                crate::engine::seed_aggs(self.app.as_ref(), &shards);
            }
            self.recorder.instant_now(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::EpochStart,
                u64::from(epoch),
            );
            if prefinished == total {
                // Deterministic on every participant: all exit silently.
                break collect_array(&shards, &dist);
            }

            let shared = Arc::new(Shared {
                app: self.app.clone(),
                stall_limit: self.config.stall_limit,
                pattern: self.pattern.clone(),
                dist: dist.clone(),
                shards,
                transport: {
                    let base = self.plane.clone() as Arc<dyn Transport<Msg<A::Value>>>;
                    match self.config.coalesce {
                        // A per-job, per-epoch wrapper: coalescing lanes
                        // are keyed by job for free, and an abandoned
                        // epoch's buffered traffic dies with its wrapper.
                        Some(bytes) => Arc::new(CoalescingTransport::new(
                            base,
                            CoalesceConfig::bytes(bytes),
                            self.node.stats().clone(),
                            self.recorder.clone(),
                        )),
                        None => base,
                    }
                },
                topo: self.config.topology,
                net: self.config.network,
                schedule: self.config.schedule,
                liveness: self.node.liveness().clone(),
                stats: self.node.stats().clone(),
                total,
                finished_global: AtomicU64::new(prefinished),
                computed: AtomicU64::new(0),
                done: AtomicBool::new(false),
                fault: AtomicBool::new(false),
                stalled: AtomicBool::new(false),
                // Serve-level faults go through `ServeKill`, never here.
                fault_plan: Vec::new(),
                time_kills: Vec::new(),
                run_started: started,
                shake: None,
                worker_seq: AtomicU64::new(0),
                checkpoint: None,
                recorder: self.recorder.clone(),
                comms: self.config.comms,
                agg,
            });
            self.pool.attach(self.job_id, shared.clone(), my_slot);

            let outcome = if self.me == PlaceId::ZERO {
                self.coordinate(&shared, epoch, &alive, my_slot, total)
            } else {
                self.follow(&shared, epoch, my_slot)
            };
            shared.done.store(true, Ordering::Release); // belt and braces
            self.pool.detach(self.job_id);
            let computed = shared.computed.load(Ordering::Relaxed);
            report.vertices_computed += computed;
            self.pool
                .published_base
                .fetch_add(computed, Ordering::Relaxed);

            match outcome? {
                JobFlow::Finished => {
                    let survivors = self.survivors(&alive);
                    for p in &survivors {
                        let _ = self.send_ctl(*p, Wire::Stop { epoch });
                    }
                    let mut arr = collect_array(&shared.shards, &dist);
                    let lost = self.collect_snapshots(epoch, &alive, &mut arr, &mut report);
                    if lost.is_empty() {
                        break arr;
                    }
                    // A place died between the last vertex and its
                    // snapshot: recover and re-run.
                    let restored = self.recover_from(&arr, &lost, &mut report);
                    self.resume_epoch(epoch, &mut alive, &restored);
                    prior = Some(restored);
                    epoch += 1;
                }
                JobFlow::Fault => {
                    let dead: Vec<PlaceId> = alive
                        .iter()
                        .copied()
                        .filter(|p| !self.node.liveness().is_alive(*p))
                        .collect();
                    let dead_u16: Vec<u16> = dead.iter().map(|p| p.0).collect();
                    for p in self.survivors(&alive) {
                        let _ = self.send_ctl(
                            p,
                            Wire::Abort {
                                epoch,
                                dead: dead_u16.clone(),
                            },
                        );
                    }
                    let mut arr = collect_array(&shared.shards, &dist);
                    let lost = self.collect_snapshots(epoch, &alive, &mut arr, &mut report);
                    let mut all_dead = dead;
                    all_dead.extend(lost);
                    all_dead.sort_unstable();
                    all_dead.dedup();
                    let restored = self.recover_from(&arr, &all_dead, &mut report);
                    self.resume_epoch(epoch, &mut alive, &restored);
                    prior = Some(restored);
                    epoch += 1;
                }
                JobFlow::Stalled { finished } => {
                    return Err(EngineError::Stalled { finished, total });
                }
                JobFlow::WorkerExit => return Ok(None),
                JobFlow::Died => return Ok(None),
                JobFlow::WorkerResume {
                    alive: new_alive,
                    cells,
                } => {
                    alive = new_alive.into_iter().map(PlaceId).collect();
                    pending_cells = Some(cells);
                    prior = None;
                    epoch += 1;
                }
            }
        };

        if self.me != PlaceId::ZERO {
            // Worker that left through the all-prefinished short-circuit.
            return Ok(None);
        }
        report.wall_time = started.elapsed();
        let result = DagResult::new(final_array, report);
        self.app.app_finished(&result);
        Ok(Some(result))
    }

    /// Alive peers of this job other than this place.
    fn survivors(&self, alive: &[PlaceId]) -> Vec<PlaceId> {
        alive
            .iter()
            .copied()
            .filter(|p| *p != self.me && self.node.liveness().is_alive(*p))
            .collect()
    }

    /// Place 0's per-job mid-epoch loop: fold progress into the finished
    /// table and decide the epoch's fate. Liveness is consulted only for
    /// this job's places — the fault-isolation pivot: a death elsewhere
    /// in the mesh is not this job's problem.
    fn coordinate(
        &self,
        shared: &Arc<Shared<A>>,
        epoch: u32,
        alive: &[PlaceId],
        my_slot: usize,
        total: u64,
    ) -> Result<JobFlow<A::Value>, EngineError> {
        let mut table: Vec<u64> = (0..alive.len())
            .map(|s| shared.shards[s].finished_local.load(Ordering::Relaxed))
            .collect();
        let mut last_sum = u64::MAX;
        let mut last_change = Instant::now();
        loop {
            match self.ctl_rx.recv_timeout(Duration::from_millis(2)) {
                Ok((src, Wire::Progress { epoch: e, finished })) if e == epoch => {
                    if let Some(s) = alive.iter().position(|p| *p == src) {
                        table[s] = table[s].max(finished);
                    }
                }
                Ok(_) | Err(_) => {} // stale traffic / timeout tick
            }
            table[my_slot] = shared.shards[my_slot]
                .finished_local
                .load(Ordering::Relaxed);
            let sum: u64 = table.iter().sum();

            let someone_died = alive.iter().any(|p| !self.node.liveness().is_alive(*p));
            if someone_died || shared.fault.load(Ordering::Acquire) {
                shared.fault.store(true, Ordering::Release);
                self.recorder.instant_now(
                    self.me.0,
                    RUNTIME_WORKER,
                    EventKind::Fault,
                    u64::from(epoch),
                );
                return Ok(JobFlow::Fault);
            }
            if sum >= total {
                shared.done.store(true, Ordering::Release);
                self.recorder.instant_now(
                    self.me.0,
                    RUNTIME_WORKER,
                    EventKind::CtlStop,
                    u64::from(epoch),
                );
                return Ok(JobFlow::Finished);
            }

            if sum != last_sum {
                last_sum = sum;
                last_change = Instant::now();
            } else if last_change.elapsed() > shared.stall_limit {
                self.recorder
                    .instant_now(self.me.0, RUNTIME_WORKER, EventKind::Stalled, sum);
                shared.stalled.store(true, Ordering::Release);
                shared.done.store(true, Ordering::Release);
                return Ok(JobFlow::Stalled { finished: sum });
            }
        }
    }

    /// A worker place's per-job mid-epoch loop: stream progress to the
    /// job's coordinator and obey its wrapped control frames. Unlike the
    /// single-job engine there is no `Die` arm — planned deaths are
    /// mesh-level (handled by the demux and the kill watchdog) and show
    /// up here as the `dying` flag.
    fn follow(
        &self,
        shared: &Arc<Shared<A>>,
        epoch: u32,
        my_slot: usize,
    ) -> Result<JobFlow<A::Value>, EngineError> {
        let mut last_reported = u64::MAX;
        let mut last_progress = Instant::now();
        let mut awaiting_release: Option<Instant> = None;
        loop {
            if self.dying.load(Ordering::Acquire) {
                shared.fault.store(true, Ordering::Release);
                return Ok(JobFlow::Died);
            }
            if !self.node.liveness().is_alive(PlaceId::ZERO) {
                return Err(EngineError::Socket(
                    "place 0 was lost; a job cannot continue without its coordinator".into(),
                ));
            }
            if let Some(since) = awaiting_release {
                if since.elapsed() > SNAPSHOT_DEADLINE {
                    return Err(EngineError::Socket(
                        "no release from the coordinator after snapshot".into(),
                    ));
                }
            }

            match self.ctl_rx.recv_timeout(Duration::from_millis(5)) {
                Ok((_, Wire::Stop { epoch: e })) if e == epoch => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlStop,
                        u64::from(epoch),
                    );
                    shared.done.store(true, Ordering::Release);
                    self.send_snapshot(shared, epoch, my_slot)?;
                    awaiting_release = Some(Instant::now());
                }
                Ok((_, Wire::Abort { epoch: e, dead })) if e == epoch => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlAbort,
                        u64::from(epoch),
                    );
                    for d in dead {
                        self.node.liveness().mark_dead(PlaceId(d));
                    }
                    shared.fault.store(true, Ordering::Release);
                    self.send_snapshot(shared, epoch, my_slot)?;
                    awaiting_release = Some(Instant::now());
                }
                Ok((
                    _,
                    Wire::Resume {
                        epoch: e,
                        alive,
                        cells,
                        // The job server broadcasts full-set Resumes;
                        // the metadata rider is only used by the
                        // single-job socket engine's scatter.
                        meta: _,
                    },
                )) if e == epoch + 1 => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlResume,
                        u64::from(epoch + 1),
                    );
                    return Ok(JobFlow::WorkerResume { alive, cells });
                }
                Ok((_, Wire::Done)) => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlDone,
                        u64::from(epoch),
                    );
                    return Ok(JobFlow::WorkerExit);
                }
                Ok(_) | Err(_) => {}
            }

            let finished = shared.shards[my_slot]
                .finished_local
                .load(Ordering::Relaxed);
            if finished != last_reported || last_progress.elapsed() > PROGRESS_INTERVAL {
                last_reported = finished;
                last_progress = Instant::now();
                let _ = self.send_ctl(PlaceId::ZERO, Wire::Progress { epoch, finished });
            }
        }
    }

    /// Sends this place's per-job slot snapshot to the coordinator.
    /// Counter stats stay empty: the substrate's counters are mesh-level
    /// and already live in the node's stats board; repeating them per
    /// job would double-count them.
    fn send_snapshot(
        &self,
        shared: &Arc<Shared<A>>,
        epoch: u32,
        my_slot: usize,
    ) -> Result<(), EngineError> {
        // Flush-before-snapshot: this job's buffered coalesced traffic
        // hits the wire (or dies with a dead lane) before the epoch's
        // cells are reported.
        shared.transport.flush(self.me);
        let rec_start = self.recorder.enabled().then(|| self.recorder.now_ns());
        let shard = &shared.shards[my_slot];
        let mut cells = Vec::new();
        for (li, &(i, j)) in shard.points.iter().enumerate() {
            if shard.in_pattern[li] && shard.finished[li].load(Ordering::Acquire) {
                let v = shard.values[li].get().expect("finished => set").clone();
                cells.push((VertexId::new(i, j).pack(), v));
            }
        }
        let sent = cells.len() as u64;
        let result = self
            .send_ctl(
                PlaceId::ZERO,
                Wire::Snapshot {
                    epoch,
                    cells,
                    computed: shared.computed.load(Ordering::Relaxed),
                    stats: Vec::new(),
                },
            )
            .map_err(|e| EngineError::Socket(format!("snapshot delivery failed: {e}")));
        if let Some(start) = rec_start {
            self.recorder.span(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::Snapshot,
                start,
                self.recorder.now_ns(),
                sent,
            );
        }
        result
    }

    /// Place 0: waits for every live participant's snapshot of this
    /// job, folding cells into `arr`; peers that never answer are marked
    /// dead and returned.
    fn collect_snapshots(
        &self,
        epoch: u32,
        alive: &[PlaceId],
        arr: &mut DistArray<A::Value>,
        report: &mut RunReport,
    ) -> Vec<PlaceId> {
        let rec_start = self.recorder.enabled().then(|| self.recorder.now_ns());
        let mut pending: Vec<PlaceId> = alive.iter().copied().filter(|p| *p != self.me).collect();
        let mut lost = Vec::new();
        let deadline = Instant::now() + SNAPSHOT_DEADLINE;
        loop {
            pending.retain(|p| {
                if self.node.liveness().is_alive(*p) {
                    true
                } else {
                    lost.push(*p);
                    false
                }
            });
            if pending.is_empty() {
                break;
            }
            if Instant::now() > deadline {
                for p in pending.drain(..) {
                    self.node.liveness().mark_dead(p);
                    lost.push(p);
                }
                break;
            }
            let Ok((src, wire)) = self.ctl_rx.recv_timeout(Duration::from_millis(10)) else {
                continue;
            };
            if let Wire::Snapshot {
                epoch: e,
                cells,
                computed,
                ..
            } = wire
            {
                if e != epoch {
                    continue;
                }
                let Some(k) = pending.iter().position(|p| *p == src) else {
                    continue;
                };
                pending.swap_remove(k);
                for (packed, v) in cells {
                    let id = VertexId::unpack(packed);
                    arr.set(id.i, id.j, v);
                }
                report.vertices_computed += computed;
            }
        }
        if let Some(start) = rec_start {
            self.recorder.span(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::Snapshot,
                start,
                self.recorder.now_ns(),
                lost.len() as u64,
            );
        }
        lost
    }

    /// Place 0: runs the paper's recovery over this job's snapshot.
    fn recover_from(
        &self,
        snapshot: &DistArray<A::Value>,
        dead: &[PlaceId],
        report: &mut RunReport,
    ) -> DistArray<A::Value> {
        let rec_start = self.recorder.enabled().then(|| self.recorder.now_ns());
        let (restored, rec) = recover(
            snapshot,
            dead,
            self.config.restore_manner,
            &self.config.topology,
            &self.config.network,
            &RecoveryCostModel::default(),
        );
        report.recovery_time += rec.sim_time;
        report.recoveries.push(rec);
        if let Some(start) = rec_start {
            self.recorder.span(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::Recovery,
                start,
                self.recorder.now_ns(),
                u64::from(report.epochs),
            );
        }
        restored
    }

    /// Place 0: prunes this job's `alive` list to the survivors and
    /// sends each of them the restored state for the next epoch.
    fn resume_epoch(&self, epoch: u32, alive: &mut Vec<PlaceId>, restored: &DistArray<A::Value>) {
        alive.retain(|p| self.node.liveness().is_alive(*p));
        self.recorder.instant_now(
            self.me.0,
            RUNTIME_WORKER,
            EventKind::CtlResume,
            u64::from(epoch + 1),
        );
        let mut cells = Vec::new();
        let rdist = restored.dist();
        for s in 0..rdist.num_slots() {
            for (i, j, v, finished) in restored.iter_slot(s) {
                if finished {
                    cells.push((VertexId::new(i, j).pack(), v.clone()));
                }
            }
        }
        let alive_u16: Vec<u16> = alive.iter().map(|p| p.0).collect();
        for p in alive.iter().filter(|p| **p != self.me) {
            let _ = self.send_ctl(
                *p,
                Wire::Resume {
                    epoch: epoch + 1,
                    alive: alive_u16.clone(),
                    cells: cells.clone(),
                    // Full-set broadcast: every survivor gets every
                    // cell, so no metadata rider is needed.
                    meta: Vec::new(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::DepView;

    struct Nop;
    impl DpApp for Nop {
        type Value = u64;
        fn compute(&self, _id: VertexId, _deps: &DepView<'_, u64>) -> u64 {
            0
        }
    }

    #[test]
    fn submit_applies_backpressure() {
        let mut server: JobServer<Nop> = JobServer::new().with_max_queue(2);
        let spec = || {
            JobSpec::new(
                "j",
                Nop,
                dpx10_dag::builtin::RowWave::new(2, 2),
                EngineConfig::flat(1),
            )
        };
        assert_eq!(server.submit(spec()).unwrap(), 0);
        assert_eq!(server.submit(spec()).unwrap(), 1);
        let err = server.submit(spec()).unwrap_err();
        assert!(matches!(err, EngineError::Job(_)), "{err}");
    }

    #[test]
    fn job_tracks_are_distinct_per_job_and_thread() {
        let mut seen = std::collections::HashSet::new();
        for job in 0..16 {
            for tid in 0..4 {
                assert!(seen.insert(job_track(job, tid)));
            }
        }
        // And they never collide with the runtime track.
        assert!(!seen.contains(&RUNTIME_WORKER));
    }

    #[test]
    fn placement_must_include_place_zero() {
        let mut server: JobServer<Nop> = JobServer::new();
        server
            .submit(
                JobSpec::new(
                    "pinned-wrong",
                    Nop,
                    dpx10_dag::builtin::RowWave::new(2, 2),
                    EngineConfig::flat(1),
                )
                .pinned_to(vec![PlaceId(1)]),
            )
            .unwrap();
        let err = server
            .resolve_placements(&[PlaceId(0), PlaceId(1)])
            .unwrap_err();
        assert!(err.to_string().contains("place 0"), "{err}");
    }

    #[test]
    fn placement_must_match_topology() {
        let mut server: JobServer<Nop> = JobServer::new();
        server
            .submit(JobSpec::new(
                "too-wide",
                Nop,
                dpx10_dag::builtin::RowWave::new(2, 2),
                EngineConfig::flat(3),
            ))
            .unwrap();
        let err = server
            .resolve_placements(&[PlaceId(0), PlaceId(1)])
            .unwrap_err();
        assert!(matches!(err, EngineError::Job(_)), "{err}");
    }

    #[test]
    fn placement_must_name_live_members_only() {
        let mut server: JobServer<Nop> = JobServer::new();
        server
            .submit(
                JobSpec::new(
                    "pinned-to-drained",
                    Nop,
                    dpx10_dag::builtin::RowWave::new(2, 2),
                    EngineConfig::flat(2),
                )
                .pinned_to(vec![PlaceId(0), PlaceId(1)]),
            )
            .unwrap();
        // A 4-capacity mesh where slot 1 drained out: members are 0, 2.
        let err = server
            .resolve_placements(&[PlaceId(0), PlaceId(2)])
            .unwrap_err();
        assert!(err.to_string().contains("not a live member"), "{err}");
        // The same pin is fine while slot 1 is a member.
        assert!(server
            .resolve_placements(&[PlaceId(0), PlaceId(1), PlaceId(2)])
            .is_ok());
    }
}

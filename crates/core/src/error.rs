//! Engine errors.

use std::fmt;

use dpx10_dag::ValidationError;

/// Failure modes of an engine run.
#[derive(Debug)]
pub enum EngineError {
    /// The DAG pattern violates its contract (see
    /// [`dpx10_dag::validate_pattern`]).
    InvalidPattern(ValidationError),
    /// The run stopped making progress — a bug in a custom pattern
    /// (e.g. an unreachable vertex) or in the engine itself.
    Stalled {
        /// Vertices finished before the stall.
        finished: u64,
        /// Vertices in the DAG.
        total: u64,
    },
    /// A planned fault targets a place that does not exist or is place 0.
    BadFaultPlan(String),
    /// Rectangular tiling of the pattern would create a tile-level cycle
    /// (see [`dpx10_dag::tiled::TilingCycle`]).
    Untileable(dpx10_dag::tiled::TilingCycle),
    /// The socket backend failed outside the fault-tolerance protocol —
    /// mesh formation, an unrecoverable peer loss (place 0), or an I/O
    /// error on the coordinator itself.
    Socket(String),
    /// The multi-job server rejected a submission or a serve
    /// configuration — a full admission queue (backpressure), a job
    /// pinned to places outside the mesh, or a placement missing the
    /// coordinator place 0.
    Job(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidPattern(e) => write!(f, "invalid DAG pattern: {e}"),
            EngineError::Stalled { finished, total } => {
                write!(f, "engine stalled at {finished}/{total} vertices")
            }
            EngineError::BadFaultPlan(msg) => write!(f, "bad fault plan: {msg}"),
            EngineError::Untileable(e) => write!(f, "{e}"),
            EngineError::Socket(msg) => write!(f, "socket backend: {msg}"),
            EngineError::Job(msg) => write!(f, "job server: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::InvalidPattern(e) => Some(e),
            EngineError::Untileable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for EngineError {
    fn from(e: ValidationError) -> Self {
        EngineError::InvalidPattern(e)
    }
}

impl From<dpx10_dag::tiled::TilingCycle> for EngineError {
    fn from(e: dpx10_dag::tiled::TilingCycle) -> Self {
        EngineError::Untileable(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = EngineError::Stalled {
            finished: 3,
            total: 10,
        };
        assert_eq!(e.to_string(), "engine stalled at 3/10 vertices");
    }
}

//! Engine configuration — the paper's launch parameters and §VI-E
//! refinement knobs in one struct.

use std::sync::Arc;

use dpx10_apgas::{ChaosPlan, NetworkModel, PlaceId, Topology};
use dpx10_distarray::{DistKind, RestoreManner};

use crate::schedule::ScheduleStrategy;

/// When to inject a place failure during a run (the experiments trigger
/// the failure "manually in the middle of the execution", §VIII-C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// The place to kill (never place 0).
    pub place: PlaceId,
    /// Kill once this fraction of vertices has finished (0.5 = the
    /// paper's mid-run failure).
    pub after_fraction: f64,
}

impl FaultPlan {
    /// The paper's experiment: kill `place` at 50 % progress.
    pub fn mid_run(place: PlaceId) -> Self {
        FaultPlan {
            place,
            after_fraction: 0.5,
        }
    }
}

/// How remote dependency values travel between places (§VI-C and the
/// collectives-plane push refinement).
///
/// Under [`CommsMode::Pull`] a consumer that misses its FIFO cache asks
/// the owner with a `Pull`/`PullVal` round-trip. Under
/// [`CommsMode::Push`] the producer eagerly ships the finished value to
/// every consumer place alongside the indegree decrements (`PushVal`),
/// pinning it for the parked consumer so the round-trip never happens;
/// pulls stay armed as the fallback (races, post-recovery restored
/// cells), so the two modes are answer- and fingerprint-equivalent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommsMode {
    /// Cache-miss pull round-trips only (the paper's §VI-C protocol).
    #[default]
    Pull,
    /// Eager producer-side value delivery with pull fallback.
    Push,
}

impl CommsMode {
    /// The CLI spelling (`--comms pull|push`).
    pub fn name(self) -> &'static str {
        match self {
            CommsMode::Pull => "pull",
            CommsMode::Push => "push",
        }
    }
}

/// Full engine configuration.
///
/// Defaults reproduce the framework's documented defaults: block-by-column
/// distribution (§VI-B), local scheduling (§VI-C), a modest FIFO cache,
/// recompute-remote restore manner (§VI-D), and the paper's topology of 2
/// places × 6 threads per node.
#[derive(Clone)]
pub struct EngineConfig {
    /// Cluster shape.
    pub topology: Topology,
    /// Interconnect cost model.
    pub network: NetworkModel,
    /// How the DAG's vertices are partitioned over places.
    pub dist_kind: DistKind,
    /// Where ready vertices execute.
    pub schedule: ScheduleStrategy,
    /// Remote-value cache entries per place (0 disables, §VI-E).
    pub cache_capacity: usize,
    /// What recovery does with finished vertices whose owner changed.
    pub restore_manner: RestoreManner,
    /// Optional injected failure.
    pub fault: Option<FaultPlan>,
    /// Validate the pattern before running (skipped above
    /// `validate_limit` vertices).
    pub validate_pattern: bool,
    /// Vertex-count ceiling for validation.
    pub validate_limit: u64,
    /// How long the watchdog tolerates zero progress before declaring
    /// the run stalled (a stall means a broken custom pattern or an
    /// engine bug; see [`crate::EngineError::Stalled`]).
    pub stall_limit: std::time::Duration,
    /// Optional spill-to-disk checkpointing (§X future work; see
    /// [`crate::checkpoint`]).
    pub checkpoint: Option<crate::checkpoint::CheckpointConfig>,
    /// Optional seeded chaos plan: extra kills (possibly several per
    /// run), transport perturbation and worker-schedule shaking, all
    /// derived from the plan's seed. Composes with [`fault`]: both kinds
    /// of kill can be armed at once.
    ///
    /// [`fault`]: EngineConfig::fault
    pub chaos: Option<ChaosPlan>,
    /// Message coalescing: `Some(bytes)` wraps the transport in a
    /// [`dpx10_apgas::CoalescingTransport`] flushing per-destination
    /// buffers at that byte budget (plus entry-count and idle-drain
    /// triggers); `None` ships one message per protocol event, the
    /// paper's §VI-C behaviour.
    pub coalesce: Option<usize>,
    /// How remote dependency values travel (pull round-trips or eager
    /// producer push).
    pub comms: CommsMode,
    /// Whether interval dependencies execute through the prefix-
    /// aggregation lanes (`true`, the default) or fall back to classic
    /// enumerated gathering. Only consulted when the app declares an
    /// [`dpx10_dag::AggSpec`] *and* the pattern exposes an interval view;
    /// turning it off is the differential harness's way of comparing the
    /// O(1)-lookup path against the O(n)-gather path.
    pub aggregation: bool,
}

impl EngineConfig {
    /// Defaults on `nodes` paper-shaped nodes.
    pub fn paper(nodes: u16) -> Self {
        EngineConfig {
            topology: Topology::paper(nodes),
            network: NetworkModel::tianhe_like(),
            dist_kind: DistKind::BlockCol,
            schedule: ScheduleStrategy::Local,
            cache_capacity: 4096,
            restore_manner: RestoreManner::RecomputeRemote,
            fault: None,
            validate_pattern: cfg!(debug_assertions),
            validate_limit: 10_000,
            stall_limit: std::time::Duration::from_secs(30),
            checkpoint: None,
            chaos: None,
            coalesce: None,
            comms: CommsMode::Pull,
            aggregation: true,
        }
    }

    /// Small flat topology for tests: `places` places, 1 thread each.
    pub fn flat(places: u16) -> Self {
        EngineConfig {
            topology: Topology::flat(places),
            ..EngineConfig::paper(1)
        }
    }

    /// Sets the distribution.
    pub fn with_dist(mut self, kind: DistKind) -> Self {
        self.dist_kind = kind;
        self
    }

    /// Sets the scheduling strategy.
    pub fn with_schedule(mut self, schedule: ScheduleStrategy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the per-place cache capacity.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the restore manner.
    pub fn with_restore(mut self, manner: RestoreManner) -> Self {
        self.restore_manner = manner;
        self
    }

    /// Plans a fault injection.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Arms a seeded chaos plan.
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Sets the coalescing byte budget (`None` disables coalescing).
    pub fn with_coalesce(mut self, bytes: Option<usize>) -> Self {
        self.coalesce = bytes;
        self
    }

    /// Sets the remote-value delivery mode.
    pub fn with_comms(mut self, comms: CommsMode) -> Self {
        self.comms = comms;
        self
    }

    /// Enables or disables the prefix-aggregation execution path.
    pub fn with_aggregation(mut self, on: bool) -> Self {
        self.aggregation = on;
        self
    }
}

/// Optional per-vertex initialisation override (§VI-E, *Initialization of
/// DAG*): returning `Some(v)` marks `(i, j)` as already finished with
/// value `v`, so it is never scheduled — "such as set the unneeded
/// vertices as finished".
pub type InitOverride<V> = Arc<dyn Fn(u32, u32) -> Option<V> + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = EngineConfig::paper(4);
        assert_eq!(c.topology.num_places(), 8);
        assert!(matches!(c.dist_kind, DistKind::BlockCol));
        assert!(matches!(c.schedule, ScheduleStrategy::Local));
        assert_eq!(c.restore_manner, RestoreManner::RecomputeRemote);
        assert!(c.fault.is_none());
    }

    #[test]
    fn builder_chain() {
        let c = EngineConfig::flat(2)
            .with_dist(DistKind::BlockRow)
            .with_cache(7)
            .with_restore(RestoreManner::CopyRemote)
            .with_fault(FaultPlan::mid_run(PlaceId(1)));
        assert!(matches!(c.dist_kind, DistKind::BlockRow));
        assert_eq!(c.cache_capacity, 7);
        assert_eq!(c.restore_manner, RestoreManner::CopyRemote);
        assert_eq!(c.fault.unwrap().after_fraction, 0.5);
    }
}

//! The per-worker remote-value cache (paper §VI-C).
//!
//! "To reduce the overhead of data transmission, the worker maintains a
//! cache list that caches recently transmitted vertices. For efficiency,
//! the cache list is implemented using a static array and its size can be
//! specified by the user. We adopt a simple FIFO replacement mechanism."
//!
//! [`FifoCache`] reproduces that design literally: a fixed-capacity ring
//! of `(packed id, value)` entries with FIFO eviction, plus a hash index
//! for O(1) lookup (the paper's linear scan over a static array is
//! semantically identical; the index only changes the constant factor).

use std::collections::HashMap;

/// Fixed-capacity FIFO cache keyed by packed [`dpx10_dag::VertexId`]s.
#[derive(Debug)]
pub struct FifoCache<V> {
    capacity: usize,
    /// Ring buffer of slots in insertion order.
    ring: Vec<Option<(u64, V)>>,
    /// Next slot to overwrite.
    head: usize,
    /// key -> ring slot.
    index: HashMap<u64, usize>,
}

impl<V> FifoCache<V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of
    /// zero disables caching (every lookup misses), which is how the
    /// overhead experiment runs ("the cache list was not used", §VIII-B).
    pub fn new(capacity: usize) -> Self {
        FifoCache {
            capacity,
            ring: (0..capacity).map(|_| None).collect(),
            head: 0,
            index: HashMap::with_capacity(capacity),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        let &slot = self.index.get(&key)?;
        self.ring[slot].as_ref().map(|(_, v)| v)
    }

    /// Inserts `key -> value`, evicting the oldest entry when full.
    /// Re-inserting an existing key refreshes its value in place (it
    /// keeps its original eviction slot: pure FIFO, not LRU).
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.index.get(&key) {
            self.ring[slot] = Some((key, value));
            return;
        }
        if let Some((old_key, _)) = self.ring[self.head].take() {
            self.index.remove(&old_key);
        }
        self.ring[self.head] = Some((key, value));
        self.index.insert(key, self.head);
        self.head = (self.head + 1) % self.capacity;
    }

    /// Drops all entries (recovery clears caches: stale values from the
    /// pre-fault epoch must not leak into the new one).
    pub fn clear(&mut self) {
        for slot in &mut self.ring {
            *slot = None;
        }
        self.index.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut c = FifoCache::new(2);
        c.insert(1, "a");
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.get(2), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut c = FifoCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30); // evicts 1 (oldest), not 2
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(&20));
        assert_eq!(c.get(3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_is_not_lru() {
        let mut c = FifoCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh value, keep FIFO position
        c.insert(3, 30); // still evicts 1: FIFO, not LRU
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(&20));
        assert_eq!(c.get(3), Some(&30));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = FifoCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut c = FifoCache::new(4);
        for k in 0..4 {
            c.insert(k, k);
        }
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(0), None);
        // Usable after clear.
        c.insert(9, 9);
        assert_eq!(c.get(9), Some(&9));
    }

    #[test]
    fn wraparound_many_inserts() {
        let mut c = FifoCache::new(3);
        for k in 0..100u64 {
            c.insert(k, k);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(99), Some(&99));
        assert_eq!(c.get(98), Some(&98));
        assert_eq!(c.get(97), Some(&97));
        assert_eq!(c.get(96), None);
    }
}

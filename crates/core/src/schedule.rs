//! Scheduling strategies (paper §VI-C, §VI-E).
//!
//! "The scheduling strategy can be specified by the user. By default, we
//! use a local scheduling strategy which execute the vertex on the local
//! place. We also provided another two methods: random scheduling and
//! minimum communication scheduling."
//!
//! The work-stealing strategy is this reproduction's implementation of
//! the paper's future-work note ("more scheduling methods will be
//! developed", citing the X10 work-stealing literature \[24\]\[25\]).

use dpx10_apgas::{NetworkModel, PlaceId, Topology};
use dpx10_dag::VertexId;

/// Where a ready vertex executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleStrategy {
    /// On the place that owns it (default).
    Local,
    /// On a uniformly random live place.
    Random,
    /// On the place minimising the bytes that must move: dependency
    /// values not already resident there, plus the result's trip home.
    /// "This strategy introduces some extra overhead and should be used
    /// in appropriate scenarios" (§VI-C).
    MinComm,
    /// Owner-local execution, but idle places steal ready vertices from
    /// the most loaded place (extension; see module docs).
    WorkStealing,
}

impl ScheduleStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [ScheduleStrategy; 4] = [
        ScheduleStrategy::Local,
        ScheduleStrategy::Random,
        ScheduleStrategy::MinComm,
        ScheduleStrategy::WorkStealing,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleStrategy::Local => "local",
            ScheduleStrategy::Random => "random",
            ScheduleStrategy::MinComm => "min-comm",
            ScheduleStrategy::WorkStealing => "work-stealing",
        }
    }
}

/// Picks the execution place for a ready vertex under the min-comm
/// strategy: for every candidate place, sums the network cost of shipping
/// each dependency value that is not local to the candidate, plus the
/// result's return to the owner, and returns the cheapest candidate
/// (owner wins ties, so min-comm degrades gracefully to local).
///
/// `dep_homes`/`dep_bytes` give each dependency's owning place and wire
/// size; `result_bytes` prices the result's trip home.
pub fn min_comm_choice(
    owner: PlaceId,
    candidates: &[PlaceId],
    dep_homes: &[PlaceId],
    dep_bytes: &[usize],
    result_bytes: usize,
    topo: &Topology,
    net: &NetworkModel,
) -> PlaceId {
    debug_assert_eq!(dep_homes.len(), dep_bytes.len());
    let mut best = owner;
    let mut best_cost = f64::INFINITY;
    for &cand in candidates {
        let mut cost = 0.0;
        for (&home, &bytes) in dep_homes.iter().zip(dep_bytes) {
            if home != cand {
                cost += net.transfer_time(topo, home, cand, bytes).as_secs_f64();
            }
        }
        if cand != owner {
            cost += net
                .transfer_time(topo, cand, owner, result_bytes)
                .as_secs_f64();
        }
        // Strict `<` keeps the earliest minimum; seeding `best = owner`
        // with INFINITY means the owner wins exact ties only if it is the
        // first candidate to reach the minimum — so make ties explicit:
        if cost < best_cost || (cost == best_cost && cand == owner) {
            best_cost = cost;
            best = cand;
        }
    }
    best
}

/// A deterministic per-vertex "random" place choice: hash of the vertex
/// id over the candidates. Deterministic randomness keeps the threaded
/// and simulated engines agreeing on placement, which the differential
/// tests rely on.
pub fn random_choice(id: VertexId, candidates: &[PlaceId]) -> PlaceId {
    debug_assert!(!candidates.is_empty());
    // SplitMix64 finaliser over the packed id: cheap, well mixed.
    let mut x = id.pack().wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    candidates[(x % candidates.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn candidates(n: u16) -> Vec<PlaceId> {
        (0..n).map(PlaceId).collect()
    }

    #[test]
    fn min_comm_prefers_dependency_home() {
        let topo = Topology::flat(3);
        let net = NetworkModel::uniform(Duration::from_micros(5), 1e9);
        // Owner 0, but both (large) deps live on place 2 and the result is
        // tiny: executing on 2 moves fewer bytes.
        let chosen = min_comm_choice(
            PlaceId(0),
            &candidates(3),
            &[PlaceId(2), PlaceId(2)],
            &[1_000_000, 1_000_000],
            8,
            &topo,
            &net,
        );
        assert_eq!(chosen, PlaceId(2));
    }

    #[test]
    fn min_comm_prefers_owner_when_deps_local() {
        let topo = Topology::flat(3);
        let net = NetworkModel::uniform(Duration::from_micros(5), 1e9);
        let chosen = min_comm_choice(
            PlaceId(1),
            &candidates(3),
            &[PlaceId(1), PlaceId(1)],
            &[64, 64],
            8,
            &topo,
            &net,
        );
        assert_eq!(chosen, PlaceId(1));
    }

    #[test]
    fn min_comm_owner_wins_ties() {
        let topo = Topology::flat(2);
        let net = NetworkModel::free(); // all costs zero -> everything ties
        let chosen = min_comm_choice(
            PlaceId(1),
            &candidates(2),
            &[PlaceId(0)],
            &[64],
            8,
            &topo,
            &net,
        );
        assert_eq!(chosen, PlaceId(1));
    }

    #[test]
    fn random_choice_deterministic_and_spread() {
        let cands = candidates(4);
        let a = random_choice(VertexId::new(3, 5), &cands);
        let b = random_choice(VertexId::new(3, 5), &cands);
        assert_eq!(a, b, "same vertex, same choice");
        // Over many vertices every place gets picked.
        let mut hit = [false; 4];
        for i in 0..32 {
            for j in 0..32 {
                hit[random_choice(VertexId::new(i, j), &cands).index()] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "all places reachable: {hit:?}");
    }

    #[test]
    fn strategy_names() {
        for s in ScheduleStrategy::ALL {
            assert!(!s.name().is_empty());
        }
    }
}

//! Per-place runtime state of the threaded engine.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use dpx10_sync::Mutex;
use dpx10_sync::SegQueue;

use dpx10_dag::{AggSpec, DagPattern, VertexId};
use dpx10_distarray::{AggTable, Dist, DistArray};

use crate::app::VertexValue;
use crate::cache::FifoCache;
use crate::config::InitOverride;

/// One dependency slot of a [`Parked`] vertex.
#[derive(Debug)]
pub enum Fill<V> {
    /// No value yet; a pull round-trip is (or is about to be) in flight.
    Missing,
    /// Filled by a `PullVal` reply (or read straight from the cache on a
    /// re-gather).
    Pulled(V),
    /// Filled by a producer-side `PushVal` before the consumer ever
    /// asked — consuming it on re-gather counts as an avoided pull
    /// round-trip.
    Pushed(V),
}

impl<V> Fill<V> {
    /// The slot's value, if any mode delivered one.
    pub fn value(&self) -> Option<&V> {
        match self {
            Fill::Missing => None,
            Fill::Pulled(v) | Fill::Pushed(v) => Some(v),
        }
    }
}

/// A vertex parked because some remote dependency values were missing
/// from the cache; pull replies (or eager pushes) fill the slots and
/// re-ready the vertex.
#[derive(Debug)]
pub struct Parked<V> {
    /// Missing dependency (packed id) -> its fill slot.
    pub fills: HashMap<u64, Fill<V>>,
    /// Number of still-[`Fill::Missing`] entries.
    pub remaining: usize,
}

/// Pull bookkeeping of one place; a single lock guards both maps so the
/// fill/park transitions are atomic.
#[derive(Debug)]
pub struct Pending<V> {
    /// Parked vertices by local index.
    pub parked: HashMap<u32, Parked<V>>,
    /// Outstanding pulls: packed dep id -> parked local indices waiting.
    pub waiters: HashMap<u64, Vec<u32>>,
}

impl<V> Default for Pending<V> {
    fn default() -> Self {
        Pending {
            parked: HashMap::new(),
            waiters: HashMap::new(),
        }
    }
}

/// The runtime state of one place (one distribution slot) during an
/// epoch: the paper's per-place vertex partition, ready list and cache
/// (§VI-C).
pub struct Shard<V> {
    /// Local index -> global coordinates, in chunk order.
    pub points: Vec<(u32, u32)>,
    /// Whether the cell is a DAG vertex (masked patterns leave holes).
    pub in_pattern: Vec<bool>,
    /// Unfinished-dependency counters.
    pub indegree: Vec<AtomicU32>,
    /// Completion flags ("a finish flag is kept for each vertex").
    pub finished: Vec<AtomicBool>,
    /// Results, published once.
    pub values: Vec<OnceLock<V>>,
    /// Ready list: "contains the schedulable and uncompleted vertices".
    pub ready: SegQueue<u32>,
    /// Remote-value FIFO cache.
    pub cache: Mutex<FifoCache<V>>,
    /// Parked vertices and outstanding pulls.
    pub pending: Mutex<Pending<V>>,
    /// Local finished counter ("a finished vertices counter is used to
    /// determine the termination of the worker").
    pub finished_local: AtomicU64,
    /// Number of DAG vertices owned by this shard.
    pub total_local: u64,
    /// Nanoseconds this shard's workers spent inside `compute` (summed
    /// across threads); feeds `RunReport::place_busy` on the real
    /// backends.
    pub busy_ns: AtomicU64,
    /// Prefix-aggregation lanes for interval dependencies (`Some` only
    /// on nested-dataflow runs). Lanes are residents, not cache entries:
    /// the FIFO cache may evict the raw values whose keys they folded.
    pub aggs: Option<AggTable>,
}

impl<V: VertexValue> Shard<V> {
    /// Reads the published value of a finished local vertex.
    #[inline]
    pub fn value(&self, li: u32) -> &V {
        self.values[li as usize]
            .get()
            .expect("value read before publication")
    }
}

/// Builds the shards of an epoch.
///
/// A cell starts *finished* when `prior` (the recovered array of the
/// previous epoch) has it, or when the user's init override pre-finishes
/// it (§VI-E). Indegrees count only unfinished dependencies, and
/// zero-indegree unfinished vertices seed the ready lists — stage 1 of
/// the execution overview (§VI-A).
///
/// `prior_meta` supports the socket engine's Resume *scatter*: a place
/// that received only its own subtree's restored values still needs the
/// global finished-set to compute indegrees deterministically, so the
/// scatter frame carries every finished cell's packed id as metadata.
/// Cells in `prior_meta` that `prior`/`init` have no value for are
/// marked finished *without* a value — legal only for cells this place
/// never serves (pulls go to the owner, which always holds its own
/// chunk's values). In-process engines pass `None`: they always hold the
/// full prior array.
pub fn build_shards<V: VertexValue>(
    pattern: &dyn DagPattern,
    dist: &Arc<Dist>,
    prior: Option<&DistArray<V>>,
    prior_meta: Option<&HashSet<u64>>,
    init: Option<&InitOverride<V>>,
    cache_capacity: usize,
    agg: Option<AggSpec>,
) -> (Vec<Shard<V>>, u64) {
    // A dependency is pre-finished iff the same predicate that marks local
    // cells finished holds for it; this keeps cross-shard indegree
    // computation local and deterministic.
    let is_prefinished = |i: u32, j: u32| -> Option<V> {
        if let Some(arr) = prior {
            if let Some(v) = arr.get_finished(i, j) {
                return Some(v.clone());
            }
        }
        if let Some(f) = init {
            return f(i, j);
        }
        None
    };
    let meta_finished = |i: u32, j: u32| -> bool {
        prior_meta.is_some_and(|m| m.contains(&VertexId::new(i, j).pack()))
    };

    // A fresh build (nothing prefinished anywhere) can take the
    // pattern's closed-form indegree instead of enumerating edges —
    // O(1) per cell where an interval pattern's edge list is O(n).
    let fresh = prior.is_none() && prior_meta.is_none() && init.is_none();

    let mut prefinished_total = 0u64;
    let mut deps_buf = Vec::new();
    let shards = (0..dist.num_slots())
        .map(|slot| {
            let len = dist.chunk_len(slot);
            let mut shard = Shard {
                points: Vec::with_capacity(len),
                in_pattern: vec![false; len],
                indegree: (0..len).map(|_| AtomicU32::new(0)).collect(),
                finished: (0..len).map(|_| AtomicBool::new(false)).collect(),
                values: (0..len).map(|_| OnceLock::new()).collect(),
                ready: SegQueue::new(),
                cache: Mutex::new(FifoCache::new(cache_capacity)),
                pending: Mutex::new(Pending::default()),
                finished_local: AtomicU64::new(0),
                total_local: 0,
                busy_ns: AtomicU64::new(0),
                aggs: agg.map(|spec| AggTable::new(pattern.height(), pattern.width(), spec)),
            };
            for (li, (i, j)) in dist.iter_slot(slot).enumerate() {
                shard.points.push((i, j));
                if !pattern.contains(i, j) {
                    continue;
                }
                shard.in_pattern[li] = true;
                shard.total_local += 1;
                if let Some(v) = is_prefinished(i, j) {
                    shard.values[li].set(v).ok();
                    shard.finished[li].store(true, Ordering::Relaxed);
                    shard.finished_local.fetch_add(1, Ordering::Relaxed);
                    prefinished_total += 1;
                    continue;
                }
                if meta_finished(i, j) {
                    // Finished elsewhere; the value lives with the owner.
                    shard.finished[li].store(true, Ordering::Relaxed);
                    shard.finished_local.fetch_add(1, Ordering::Relaxed);
                    prefinished_total += 1;
                    continue;
                }
                let open = if fresh {
                    pattern.indegree(i, j)
                } else {
                    deps_buf.clear();
                    pattern.dependencies(i, j, &mut deps_buf);
                    deps_buf
                        .iter()
                        .filter(|d| is_prefinished(d.i, d.j).is_none() && !meta_finished(d.i, d.j))
                        .count() as u32
                };
                shard.indegree[li].store(open, Ordering::Relaxed);
                if open == 0 {
                    shard.ready.push(li as u32);
                }
            }
            shard
        })
        .collect();
    (shards, prefinished_total)
}

/// Collects the current engine state into a [`DistArray`] (used on fault
/// to hand the paper's recovery routine the surviving finished values).
pub fn collect_array<V: VertexValue>(shards: &[Shard<V>], dist: &Arc<Dist>) -> DistArray<V> {
    let mut arr: DistArray<V> = DistArray::new(dist.clone());
    for (slot, shard) in shards.iter().enumerate() {
        for (li, &(i, j)) in shard.points.iter().enumerate() {
            if shard.in_pattern[li] && shard.finished[li].load(Ordering::Acquire) {
                arr.set(
                    i,
                    j,
                    shard.values[li].get().expect("finished => set").clone(),
                );
            }
        }
        debug_assert_eq!(dist.chunk_len(slot), shard.points.len());
    }
    arr
}

/// Looks up the local index of `id` inside its owning shard.
#[inline]
pub fn local_index(dist: &Dist, id: VertexId) -> u32 {
    dist.local_index(id.i, id.j) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx10_apgas::PlaceId;
    use dpx10_dag::builtin::Grid2;
    use dpx10_distarray::{DistKind, Region2D};

    fn dist(h: u32, w: u32, places: u16) -> Arc<Dist> {
        Arc::new(Dist::new(
            Region2D::new(h, w),
            DistKind::BlockCol,
            (0..places).map(PlaceId).collect(),
        ))
    }

    #[test]
    fn fresh_shards_seed_sources() {
        let pattern = Grid2::new(3, 4);
        let d = dist(3, 4, 2);
        let (shards, pre) = build_shards::<i64>(&pattern, &d, None, None, None, 16, None);
        assert_eq!(pre, 0);
        // Grid2 has a single source (0,0), owned by slot 0.
        assert_eq!(shards[0].ready.len(), 1);
        assert_eq!(shards[1].ready.len(), 0);
        assert_eq!(shards.iter().map(|s| s.total_local).sum::<u64>(), 12);
    }

    #[test]
    fn init_override_prefinishes_and_unblocks() {
        let pattern = Grid2::new(2, 2);
        let d = dist(2, 2, 1);
        // Pre-finish the whole first row.
        let init: InitOverride<i64> = Arc::new(|i, _j| (i == 0).then_some(0));
        let (shards, pre) = build_shards::<i64>(&pattern, &d, None, None, Some(&init), 16, None);
        assert_eq!(pre, 2);
        // (1,0) now has zero open deps; (1,1) depends on unfinished (1,0).
        let ready: Vec<u32> = std::iter::from_fn(|| shards[0].ready.pop()).collect();
        let pts: Vec<_> = ready
            .iter()
            .map(|&li| shards[0].points[li as usize])
            .collect();
        assert_eq!(pts, vec![(1, 0)]);
    }

    #[test]
    fn prior_array_restores_progress() {
        let pattern = Grid2::new(2, 2);
        let d = dist(2, 2, 1);
        let mut prior: DistArray<i64> = DistArray::new(d.clone());
        prior.set(0, 0, 5);
        let (shards, pre) = build_shards::<i64>(&pattern, &d, Some(&prior), None, None, 16, None);
        assert_eq!(pre, 1);
        let li = d.local_index(0, 0) as u32;
        assert_eq!(shards[0].value(li), &5);
        // (0,1) and (1,0) are unblocked.
        assert_eq!(shards[0].ready.len(), 2);
    }

    #[test]
    fn meta_finished_cells_unblock_without_values() {
        // A worker after a Resume scatter: it holds values only for its
        // own chunk, but the finished-set metadata covers everything.
        let pattern = Grid2::new(2, 2);
        let d = dist(2, 2, 2); // BlockCol: slot 0 owns column 0
        let mut prior: DistArray<i64> = DistArray::new(d.clone());
        prior.set(0, 0, 5); // own chunk value
        let meta: HashSet<u64> = [VertexId::new(0, 0).pack(), VertexId::new(0, 1).pack()]
            .into_iter()
            .collect();
        let (shards, pre) = build_shards(&pattern, &d, Some(&prior), Some(&meta), None, 16, None);
        assert_eq!(pre, 2, "value-backed and meta-only cells both count");
        let li01 = d.local_index(0, 1) as u32;
        assert!(shards[1].finished[li01 as usize].load(Ordering::Relaxed));
        assert!(
            shards[1].values[li01 as usize].get().is_none(),
            "meta-only cells carry no value; pulls go to the owner"
        );
        // (1,0) depends only on the finished (0,0): ready. (1,1) depends
        // on the meta-finished (0,1) plus the unfinished (1,0): parked.
        assert_eq!(shards[0].ready.len(), 1);
        assert_eq!(shards[1].ready.len(), 0);
        let li11 = d.local_index(1, 1) as u32;
        assert_eq!(shards[1].indegree[li11 as usize].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn collect_round_trips() {
        let pattern = Grid2::new(2, 3);
        let d = dist(2, 3, 2);
        let mut prior: DistArray<i64> = DistArray::new(d.clone());
        prior.set(0, 0, 1);
        prior.set(1, 2, 9);
        let (shards, _) = build_shards::<i64>(&pattern, &d, Some(&prior), None, None, 16, None);
        let collected = collect_array(&shards, &d);
        assert_eq!(collected.get_finished(0, 0), Some(&1));
        assert_eq!(collected.get_finished(1, 2), Some(&9));
        assert_eq!(collected.finished_count(), 2);
    }
}

//! The multi-process socket engine.
//!
//! Runs the same vertex-execution protocol as [`crate::ThreadedEngine`],
//! but with one OS process per place connected by the TCP mesh of
//! [`dpx10_apgas::socket`] — the closest this reproduction gets to the
//! paper's real X10 deployment (§VII ran 2 place processes per node).
//!
//! Every process executes [`SocketEngine::run`] with the same
//! application, pattern and configuration; the mesh handshake assigns
//! place ids. All processes build the full shard table deterministically
//! (cheap: it is metadata plus prefinished values), then each place runs
//! workers only for its own slot and exchanges [`Msg`]s over the wire.
//!
//! # The control protocol
//!
//! Vertex traffic alone cannot terminate a distributed run — no process
//! sees the global finished counter — so a thin coordination layer rides
//! on the same connections, multiplexed by [`Wire`] and tagged with an
//! *epoch* (recovery round) so stragglers from a failed epoch are
//! discarded:
//!
//! * workers fold their slot's finished count with everything their
//!   subtree reported and stream it up the binomial tree as a `Reduce`
//!   (the epoch barrier — per-place entries are max-merged, so arrival
//!   order, re-sends and re-routed hops cannot corrupt the table);
//! * place 0 declares success when the counts sum to the DAG size,
//!   tree-broadcasts `Stop` (each receiver relays to its schedule
//!   children), gathers a `Snapshot` of every slot's values, and
//!   releases everyone with `Done`;
//! * a detected failure (connection loss / missed heartbeats feeding the
//!   shared liveness board, or a planned `Die`) makes place 0 tree-
//!   broadcast `Abort`, gather the survivors' snapshots, run the paper's
//!   recovery (§VI-D), and restart everyone with a `Resume` *scatter* —
//!   each tree hop carries the restored values of the receiver's
//!   subtree plus the packed ids of every finished cell (the metadata
//!   that unblocks cross-subtree dependencies without shipping every
//!   value to every place) — a fresh epoch.
//!
//! The tree edges come from [`CollectiveSchedule`] over the epoch's
//! live roster; a hop whose carrier died is repaired by adopting the
//! dead child's subtree, and place 0 re-sends the bare frame directly
//! to any peer it has not heard from (insurance against a relay dying
//! *after* accepting a hop). `Snapshot` stays a direct gather on
//! purpose: it is the payload-heavy, loss-sensitive leg, and folding
//! values through intermediate places would multiply the recovery work
//! whenever a mid-tree place dies after absorbing its children's cells.
//!
//! Communication statistics on this backend are the bytes *actually
//! framed* onto the sockets (vertex and control traffic alike); the
//! [`dpx10_apgas::NetworkModel`] prices nothing here.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpx10_apgas::codec::{decode_exact, encode_to_vec};
use dpx10_apgas::mailbox::Envelope;
use dpx10_apgas::{
    fold_counts, ChaosRng, CoalesceConfig, CoalescingTransport, Codec, CollectiveSchedule,
    DeadPlaceError, KillTrigger, LivenessBoard, PlaceId, SocketConfig, SocketNode, Transport,
};
use dpx10_dag::{validate_pattern, DagPattern, VertexId};
use dpx10_distarray::{recover, Dist, DistArray, RecoveryCostModel, Region2D};
use dpx10_obs::{EventKind, Recorder, RUNTIME_WORKER};
use dpx10_sync::channel::{unbounded, Receiver, Sender};

use crate::app::{DagResult, DpApp, VertexValue};
use crate::config::{EngineConfig, InitOverride};
use crate::engine::{worker_loop, Shared};
use crate::error::EngineError;
use crate::msg::Msg;
use crate::schedule::ScheduleStrategy;
use crate::state::{build_shards, collect_array};
use crate::stats::{RunReport, ScheduleDowngrade};

/// Applies the socket backend's scheduling restrictions to `config` and
/// returns a record of what changed (shared with the multi-job server,
/// whose per-job engines run under the same restriction).
pub(crate) fn downgrade_schedule(config: &mut EngineConfig) -> Option<ScheduleDowngrade> {
    if config.schedule == ScheduleStrategy::WorkStealing {
        config.schedule = ScheduleStrategy::Local;
        return Some(ScheduleDowngrade {
            requested: ScheduleStrategy::WorkStealing,
            effective: ScheduleStrategy::Local,
            reason: "work stealing needs shared-memory ready lists, \
                     which do not exist across socket places",
        });
    }
    None
}

/// How long place 0 waits for a survivor's snapshot before writing the
/// place off as dead (generous: the transport's own heartbeat timeout
/// fires much earlier for real failures).
const SNAPSHOT_DEADLINE: Duration = Duration::from_secs(60);

/// How often a worker place re-sends its progress even when the count has
/// not moved (keeps the coordinator's view fresh without flooding).
const PROGRESS_INTERVAL: Duration = Duration::from_millis(50);

/// How often place 0 re-sends the bare concluding `Stop`/`Abort` frame
/// directly to peers whose snapshot has not arrived — insurance for a
/// broadcast relay dying after accepting its hop (receivers ignore the
/// duplicates).
const CONCLUDE_RESEND: Duration = Duration::from_millis(500);

/// How often place 0 re-sends a `Resume` bundle to a survivor that has
/// not reported any progress in the resumed epoch — insurance for a
/// scatter relay dying with its subtree's hop in hand.
const RESUME_RESEND: Duration = Duration::from_millis(250);

/// Everything that crosses a socket during a run: vertex traffic
/// ([`Wire::App`]) and the control protocol, all epoch-tagged.
///
/// `pub(crate)` because the multi-job server ([`crate::jobs`]) speaks
/// the same protocol, namespaced per job by the [`Wire::Job`] wrapper.
pub(crate) enum Wire<V> {
    /// A vertex-protocol message of the given epoch.
    App(u32, Msg<V>),
    /// Worker → place 0: my slot has `finished` vertices done.
    Progress {
        /// Epoch the count belongs to.
        epoch: u32,
        /// Finished vertices of the sender's slot (monotone).
        finished: u64,
    },
    /// Place 0 → workers: every vertex is finished; snapshot your slot.
    Stop {
        /// Epoch being concluded.
        epoch: u32,
    },
    /// Place 0 → survivors: these places died; snapshot for recovery.
    Abort {
        /// Epoch being aborted.
        epoch: u32,
        /// The places detected dead.
        dead: Vec<u16>,
    },
    /// Worker → place 0: my slot's finished cells plus local counters.
    Snapshot {
        /// Epoch the snapshot concludes.
        epoch: u32,
        /// `(packed vertex id, value)` for every finished owned cell.
        cells: Vec<(u64, V)>,
        /// Vertices this place computed during the epoch.
        computed: u64,
        /// Cumulative place counters: `[tasks, msgs, bytes, net_ns,
        /// cache_hits, cache_misses, busy_ns, batches_sent,
        /// batched_msgs, pulls_sent, pulls_deduped, pushes_sent,
        /// pull_roundtrips_avoided]`. Decoders accept any shorter
        /// prefix (older peers) and leave the missing tail at zero.
        stats: Vec<u64>,
    },
    /// Place 0 → survivors (scattered down the tree): recovery done,
    /// start the next epoch.
    Resume {
        /// The new epoch (old + 1).
        epoch: u32,
        /// Surviving places, in slot order.
        alive: Vec<u16>,
        /// The restored finished cells of the *receiver's subtree* —
        /// each relay splits its bundle among its schedule children by
        /// the new distribution's ownership.
        cells: Vec<(u64, V)>,
        /// Packed ids of *every* restored finished cell — the global
        /// metadata that unblocks dependencies on cells whose values
        /// were scattered to another subtree (pulls still go to the
        /// owner, which holds the value). Decode tolerates its absence
        /// (legacy frames), meaning `cells` is the full set.
        meta: Vec<u64>,
    },
    /// Place 0 → a worker: abort the process immediately (planned fault
    /// injection — dies without a goodbye so peers *detect* the death).
    Die,
    /// Place 0 → workers: the run is over, exit cleanly.
    Done,
    /// A frame belonging to one job of a multi-job serve: the `job_id`
    /// namespace joins the epoch already carried by the inner frame.
    /// Decode is tolerant in both directions: old single-job peers never
    /// emit tag 8 and ignore nothing, while a serve demux treats a bare
    /// (unwrapped) legacy frame as belonging to job 0.
    Job(u32, Box<Wire<V>>),
    /// One hop of a tree broadcast ([`CollectiveSchedule`]): the
    /// receiver handles the inner frame as if it had arrived directly,
    /// then relays the same hop to its own schedule children (adopting
    /// dead children's subtrees — tree repair).
    Bcast(Box<Wire<V>>),
    /// Worker → its tree parent: folded per-place finished counts of
    /// the sender and its whole subtree. Entries are max-merged on
    /// receipt ([`fold_counts`]), so duplicated or re-routed hops are
    /// harmless; any entry for a place proves that place entered the
    /// epoch (counts originate only at their own place).
    Reduce {
        /// Epoch the counts belong to.
        epoch: u32,
        /// `(place id, finished count)` per place of the subtree.
        counts: Vec<(u16, u64)>,
    },
}

impl<V: Codec> Codec for Wire<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Wire::App(epoch, msg) => {
                buf.push(0);
                epoch.encode(buf);
                msg.encode(buf);
            }
            Wire::Progress { epoch, finished } => {
                buf.push(1);
                epoch.encode(buf);
                finished.encode(buf);
            }
            Wire::Stop { epoch } => {
                buf.push(2);
                epoch.encode(buf);
            }
            Wire::Abort { epoch, dead } => {
                buf.push(3);
                epoch.encode(buf);
                dead.encode(buf);
            }
            Wire::Snapshot {
                epoch,
                cells,
                computed,
                stats,
            } => {
                buf.push(4);
                epoch.encode(buf);
                cells.encode(buf);
                computed.encode(buf);
                stats.encode(buf);
            }
            Wire::Resume {
                epoch,
                alive,
                cells,
                meta,
            } => {
                buf.push(5);
                epoch.encode(buf);
                alive.encode(buf);
                cells.encode(buf);
                meta.encode(buf);
            }
            Wire::Die => buf.push(6),
            Wire::Done => buf.push(7),
            Wire::Job(job, inner) => {
                buf.push(8);
                job.encode(buf);
                inner.encode(buf);
            }
            Wire::Bcast(inner) => {
                buf.push(9);
                inner.encode(buf);
            }
            Wire::Reduce { epoch, counts } => {
                buf.push(10);
                epoch.encode(buf);
                counts.encode(buf);
            }
        }
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        match u8::decode(src)? {
            0 => Some(Wire::App(u32::decode(src)?, Msg::decode(src)?)),
            1 => Some(Wire::Progress {
                epoch: u32::decode(src)?,
                finished: u64::decode(src)?,
            }),
            2 => Some(Wire::Stop {
                epoch: u32::decode(src)?,
            }),
            3 => Some(Wire::Abort {
                epoch: u32::decode(src)?,
                dead: Vec::decode(src)?,
            }),
            4 => Some(Wire::Snapshot {
                epoch: u32::decode(src)?,
                cells: Vec::decode(src)?,
                computed: u64::decode(src)?,
                stats: Vec::decode(src)?,
            }),
            5 => Some(Wire::Resume {
                epoch: u32::decode(src)?,
                alive: Vec::decode(src)?,
                cells: Vec::decode(src)?,
                // Tolerant tail: a legacy peer's frame ends here, which
                // means "cells is the full restored set".
                meta: if src.is_empty() {
                    Vec::new()
                } else {
                    Vec::decode(src)?
                },
            }),
            6 => Some(Wire::Die),
            7 => Some(Wire::Done),
            8 => Some(Wire::Job(u32::decode(src)?, Box::new(Wire::decode(src)?))),
            9 => Some(Wire::Bcast(Box::new(Wire::decode(src)?))),
            10 => Some(Wire::Reduce {
                epoch: u32::decode(src)?,
                counts: Vec::decode(src)?,
            }),
            _ => None,
        }
    }

    fn wire_size(&self) -> usize {
        1 + match self {
            Wire::App(epoch, msg) => epoch.wire_size() + Codec::wire_size(msg),
            Wire::Progress { epoch, finished } => epoch.wire_size() + finished.wire_size(),
            Wire::Stop { epoch } => epoch.wire_size(),
            Wire::Abort { epoch, dead } => epoch.wire_size() + dead.wire_size(),
            Wire::Snapshot {
                epoch,
                cells,
                computed,
                stats,
            } => epoch.wire_size() + cells.wire_size() + computed.wire_size() + stats.wire_size(),
            Wire::Resume {
                epoch,
                alive,
                cells,
                meta,
            } => epoch.wire_size() + alive.wire_size() + cells.wire_size() + meta.wire_size(),
            Wire::Die | Wire::Done => 0,
            Wire::Job(job, inner) => job.wire_size() + Codec::wire_size(inner.as_ref()),
            Wire::Bcast(inner) => Codec::wire_size(inner.as_ref()),
            Wire::Reduce { epoch, counts } => epoch.wire_size() + counts.wire_size(),
        }
    }
}

/// The vertex-traffic half of the demultiplexed socket: implements
/// [`Transport`] for the worker loop, filtering out messages from *past*
/// epochs at consumption time (so a message that raced past an epoch
/// change in the demux thread is still discarded). Messages from a
/// *future* epoch are parked, not dropped: after a recovery the places
/// enter the new epoch at different moments, and a fast peer's vertex
/// traffic can arrive while this place is still resuming — discarding it
/// would starve this place's share of the DAG and stall the run.
pub(crate) struct AppPlane<V> {
    node: Arc<SocketNode>,
    epoch: AtomicU32,
    app_rx: Receiver<(u32, Envelope<Msg<V>>)>,
    early: dpx10_sync::Mutex<Vec<(u32, Envelope<Msg<V>>)>>,
    liveness: LivenessBoard,
    /// `Some(job_id)` when this plane carries one job of a multi-job
    /// serve: outbound frames get wrapped in [`Wire::Job`] so the remote
    /// demux can route them to the right job's channels. `None` is the
    /// classic single-job engine (bare frames, fully wire-compatible
    /// with pre-job peers).
    job: Option<u32>,
}

impl<V: VertexValue> AppPlane<V> {
    /// Builds the plane over `node`, consuming the demux's app frames
    /// from `app_rx`. `job` namespaces outbound frames (see the field).
    pub(crate) fn new(
        node: Arc<SocketNode>,
        app_rx: Receiver<(u32, Envelope<Msg<V>>)>,
        job: Option<u32>,
    ) -> Self {
        AppPlane {
            liveness: node.liveness().clone(),
            node,
            epoch: AtomicU32::new(0),
            app_rx,
            early: dpx10_sync::Mutex::new(Vec::new()),
            job,
        }
    }

    /// Advances the plane to `epoch` (done between epochs, with the
    /// workers quiesced).
    pub(crate) fn set_epoch(&self, epoch: u32) {
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Classifies one demuxed frame against `current`: deliver, park for
    /// a later epoch, or drop as stale.
    fn admit(&self, epoch: u32, env: Envelope<Msg<V>>, current: u32) -> Option<Envelope<Msg<V>>> {
        use std::cmp::Ordering as O;
        match epoch.cmp(&current) {
            O::Equal => Some(env),
            O::Greater => {
                self.early.lock().push((epoch, env));
                None
            }
            O::Less => None, // stale epoch: state was recovered, drop
        }
    }

    /// Pops one parked message of the current epoch, pruning any that
    /// went stale since they were parked.
    fn pop_early(&self, current: u32) -> Option<Envelope<Msg<V>>> {
        let mut early = self.early.lock();
        early.retain(|(e, _)| *e >= current);
        let k = early.iter().position(|(e, _)| *e == current)?;
        Some(early.swap_remove(k).1)
    }
}

impl<V: VertexValue> Transport<Msg<V>> for AppPlane<V> {
    fn num_places(&self) -> u16 {
        self.node.places()
    }

    fn liveness(&self) -> &LivenessBoard {
        &self.liveness
    }

    fn send(
        &self,
        src: PlaceId,
        dst: PlaceId,
        msg: Msg<V>,
        _wire_bytes: usize,
    ) -> Result<(), DeadPlaceError> {
        debug_assert_eq!(src, self.node.me(), "socket places only send as themselves");
        let wire = Wire::App(self.epoch.load(Ordering::Acquire), msg);
        let bytes = match self.job {
            Some(job) => encode_to_vec(&Wire::Job(job, Box::new(wire))),
            None => encode_to_vec(&wire),
        };
        self.node.send_bytes(dst, bytes).map(|_| ())
    }

    fn try_recv(&self, _at: PlaceId) -> Option<Envelope<Msg<V>>> {
        let current = self.epoch.load(Ordering::Acquire);
        if let Some(env) = self.pop_early(current) {
            return Some(env);
        }
        loop {
            match self.app_rx.try_recv() {
                Ok((epoch, env)) => {
                    if let Some(env) = self.admit(epoch, env, current) {
                        return Some(env);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    fn recv_timeout(&self, at: PlaceId, timeout: Duration) -> Option<Envelope<Msg<V>>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(env) = self.try_recv(at) {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Wait for anything to arrive, then re-filter.
            let (epoch, env) = self.app_rx.recv_timeout(deadline - now).ok()?;
            let current = self.epoch.load(Ordering::Acquire);
            if let Some(env) = self.admit(epoch, env, current) {
                return Some(env);
            }
        }
    }
}

/// Reads raw frames off the mesh and splits them: vertex traffic to the
/// [`AppPlane`]'s channel, control messages to the control channel. A
/// payload that fails to decode marks its sender dead — same policy as
/// the typed transport.
fn demux_loop<V: VertexValue>(
    node: Arc<SocketNode>,
    app_tx: Sender<(u32, Envelope<Msg<V>>)>,
    ctl_tx: Sender<(PlaceId, Wire<V>)>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        let Some((src, bytes)) = node.recv_bytes_timeout(Duration::from_millis(5)) else {
            continue;
        };
        match decode_exact::<Wire<V>>(&bytes) {
            Some(Wire::App(epoch, msg)) => {
                let _ = app_tx.send((epoch, Envelope { src, msg }));
            }
            Some(wire) => {
                let _ = ctl_tx.send((src, wire));
            }
            None => {
                node.liveness().mark_dead(src);
            }
        }
    }
}

/// What a control loop decided the epoch's fate is.
enum Flow<V> {
    /// Place 0: every vertex finished.
    Finished,
    /// Place 0: a place died (or a planned fault fired); recover.
    Fault,
    /// Place 0: global progress froze.
    Stalled {
        /// Vertices finished when the watchdog gave up.
        finished: u64,
    },
    /// Worker: the run is over.
    WorkerExit,
    /// Worker: recovery finished, start the next epoch.
    WorkerResume {
        /// Surviving places in slot order.
        alive: Vec<u16>,
        /// The restored finished cells scattered to this place's
        /// subtree (already relayed onwards before this flow returned).
        cells: Vec<(u64, V)>,
        /// Packed ids of every restored finished cell (empty on a
        /// legacy full-broadcast frame).
        meta: Vec<u64>,
    },
    /// Worker: a planned `Die` arrived in soft-die mode; the node has
    /// already crashed its sockets.
    Died,
}

/// Place 0's record of one `Resume` scatter: everything needed to
/// rebuild a survivor's bundle if the tree hop carrying it died with a
/// relay (the coordinator re-sends directly to peers it has not heard
/// from in the resumed epoch).
struct ResumeState<V> {
    /// The epoch being resumed *into* (old + 1).
    epoch: u32,
    /// Surviving places of the scatter, in slot order.
    alive: Vec<u16>,
    /// Packed ids of every restored finished cell.
    meta: Vec<u64>,
    /// Every restored finished cell (re-bucketed per subtree on
    /// demand — re-sends are rare).
    cells: Vec<(u64, V)>,
}

/// The multi-process engine. Construct identically in every place
/// process, then call [`run`](SocketEngine::run) with that process's
/// [`SocketConfig`].
pub struct SocketEngine<A: DpApp> {
    app: Arc<A>,
    pattern: Arc<dyn DagPattern>,
    config: EngineConfig,
    init: Option<InitOverride<A::Value>>,
    soft_die: bool,
    recorder: Recorder,
    downgrade: Option<ScheduleDowngrade>,
}

impl<A: DpApp + 'static> SocketEngine<A> {
    /// Creates an engine for `app` over `pattern` with `config`.
    ///
    /// Work stealing degrades to local scheduling here: stealing pops
    /// from another slot's ready list through shared memory, which only
    /// exists inside one process. The swap is recorded in the run
    /// report's [`RunReport::schedule_downgrade`] rather than applied
    /// silently.
    pub fn new(app: A, pattern: impl DagPattern + 'static, mut config: EngineConfig) -> Self {
        let downgrade = downgrade_schedule(&mut config);
        // Checkpoint writers assume one process owns all places' files.
        config.checkpoint = None;
        SocketEngine {
            app: Arc::new(app),
            pattern: Arc::new(pattern),
            config,
            init: None,
            soft_die: false,
            recorder: Recorder::disabled(),
            downgrade,
        }
    }

    /// Attaches a flight recorder; this place's epoch, control-protocol,
    /// snapshot and vertex events land in its per-place ring.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Installs a §VI-E initialisation override (pre-finish cells).
    pub fn with_init(mut self, init: InitOverride<A::Value>) -> Self {
        self.init = Some(init);
        self
    }

    /// Makes a planned `Die` crash the *sockets* instead of the whole
    /// process: every connection closes without a goodbye (peers detect
    /// the death exactly as after a SIGKILL) and `run` returns
    /// `Ok(None)`. Required when places are threads of one process — the
    /// chaos harness — where `std::process::abort` would take the whole
    /// differential run down with the victim.
    pub fn with_soft_die(mut self) -> Self {
        self.soft_die = true;
        self
    }

    /// Joins the mesh as `socket` describes and runs the computation.
    ///
    /// Returns `Ok(Some(result))` on place 0 and `Ok(None)` on every
    /// other place (the result lives with the coordinator; workers just
    /// exit).
    pub fn run(&self, socket: SocketConfig) -> Result<Option<DagResult<A::Value>>, EngineError> {
        let total = self.pattern.vertex_count();
        if self.config.validate_pattern && total <= self.config.validate_limit {
            validate_pattern(self.pattern.as_ref())?;
        }

        // `DPX10_SOCKET_TRACE=1` is an alias for "record and echo every
        // event to stderr" — the recorder's echo subscriber replaces the
        // old ad-hoc eprintln tracing.
        let mut recorder = self.recorder.clone();
        if std::env::var_os("DPX10_SOCKET_TRACE").is_some() {
            if !recorder.enabled() {
                recorder =
                    Recorder::with_capacity(self.config.topology.num_places() as usize, 1 << 12);
            }
            recorder.set_echo(true);
        }
        let mut socket = socket;
        if !socket.recorder.enabled() {
            socket.recorder = recorder.clone();
        }

        let node = Arc::new(
            SocketNode::connect(socket)
                .map_err(|e| EngineError::Socket(format!("mesh formation failed: {e}")))?,
        );
        let me = node.me();
        let places = node.places();
        if self.config.topology.num_places() != places {
            return Err(EngineError::Socket(format!(
                "topology has {} places but the mesh has {places}",
                self.config.topology.num_places()
            )));
        }
        for victim in self.config.fault.iter().map(|p| p.place).chain(
            self.config
                .chaos
                .iter()
                .flat_map(|p| p.kills.iter().map(|k| k.place)),
        ) {
            if victim == PlaceId::ZERO || victim.index() >= places as usize {
                return Err(EngineError::BadFaultPlan(format!(
                    "{victim} is not a killable place"
                )));
            }
        }

        let (app_tx, app_rx) = unbounded();
        let (ctl_tx, ctl_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let demux = {
            let node = node.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name(format!("dpx10-demux{}", me.index()))
                .spawn(move || demux_loop(node, app_tx, ctl_tx, stop))
                .map_err(|e| EngineError::Socket(format!("spawn demux: {e}")))?
        };
        let plane = Arc::new(AppPlane::new(node.clone(), app_rx, None));

        let driver = Driver {
            engine: self,
            node: node.clone(),
            plane,
            ctl_rx,
            me,
            places,
            recorder,
        };
        let result = driver.drive(total);

        // Whatever happened — success, stall, error — release the
        // workers before the goodbye, or a coordinator error would
        // strand them waiting on a control message that never comes.
        if me == PlaceId::ZERO {
            // Release live members only; drained slots have no outbox.
            for p in node.roster().members() {
                if p != me {
                    let _ = node.send_bytes(p, encode_to_vec(&Wire::<A::Value>::Done));
                }
            }
        }
        stop.store(true, Ordering::Release);
        node.shutdown();
        let _ = demux.join();
        result
    }
}

/// Per-run state shared by the epoch loop and the control loops.
struct Driver<'a, A: DpApp> {
    engine: &'a SocketEngine<A>,
    node: Arc<SocketNode>,
    plane: Arc<AppPlane<A::Value>>,
    ctl_rx: Receiver<(PlaceId, Wire<A::Value>)>,
    me: PlaceId,
    places: u16,
    recorder: Recorder,
}

impl<A: DpApp + 'static> Driver<'_, A> {
    fn send_ctl(&self, dst: PlaceId, wire: &Wire<A::Value>) -> Result<(), DeadPlaceError> {
        self.node.send_bytes(dst, encode_to_vec(wire)).map(|_| ())
    }

    fn drive(&self, total: u64) -> Result<Option<DagResult<A::Value>>, EngineError> {
        let cfg = &self.engine.config;
        let pattern = &self.engine.pattern;
        let region = Region2D::new(pattern.height(), pattern.width());
        let started = Instant::now();
        let mut report = RunReport {
            vertices_total: total,
            schedule_downgrade: self.engine.downgrade.clone(),
            ..RunReport::default()
        };
        // Seed the epoch roster from the mesh's *live membership*, not
        // `0..places`: on an elastic mesh the slot space has holes where
        // places drained out, and pinning them back in would make the
        // snapshot collector wait on peers that will never answer.
        let mut alive: Vec<PlaceId> = self.node.roster().members();
        let mut prior: Option<DistArray<A::Value>> = None;
        // A `Resume` scatter's restored cells + finished-set metadata,
        // parked until the next epoch's restore step consumes them.
        #[allow(clippy::type_complexity)]
        let mut pending_cells: Option<(Vec<(u64, A::Value)>, Vec<u64>)> = None;
        let mut peer_stats: Vec<[u64; 13]> = vec![[0; 13]; self.places as usize];
        // Place 0's record of the last `Resume` scatter, kept so the
        // next epoch's coordinator loop can re-send a survivor's bundle
        // if a relay hop died with its carrier.
        let mut resume: Option<ResumeState<A::Value>> = None;
        // This place's compute time, summed across epochs (the shards —
        // and their busy counters — are rebuilt every epoch).
        let mut busy_total: u64 = 0;
        // Victims whose planned `Die` has been sent — one-shot per run.
        let mut kills_fired: Vec<PlaceId> = Vec::new();
        let mut epoch: u32 = 0;

        let final_array = loop {
            report.epochs += 1;
            self.plane.epoch.store(epoch, Ordering::Release);
            let dist = Arc::new(Dist::new(region, cfg.dist_kind.clone(), alive.clone()));
            let mut scatter_meta: Option<HashSet<u64>> = None;
            if let Some((cells, meta)) = pending_cells.take() {
                // Rebuild our subtree's slice of the restored array the
                // `Resume` scatter delivered; the metadata names every
                // finished cell globally, so cells whose values went to
                // another subtree still unblock their dependents here
                // (their values are pulled from the owner on demand).
                let mut arr = DistArray::new(dist.clone());
                for (packed, v) in cells {
                    let id = VertexId::unpack(packed);
                    arr.set(id.i, id.j, v);
                }
                prior = Some(arr);
                if !meta.is_empty() {
                    scatter_meta = Some(meta.into_iter().collect());
                }
            }
            let Some(my_slot) = alive.iter().position(|p| *p == self.me) else {
                // The coordinator counted us among the dead (e.g. a
                // false-positive timeout); nothing left to contribute.
                return Ok(None);
            };
            let agg = crate::engine::agg_mode(cfg, self.engine.app.as_ref(), pattern.as_ref());
            let (shards, prefinished) = build_shards(
                pattern.as_ref(),
                &dist,
                prior.as_ref(),
                scatter_meta.as_ref(),
                self.engine.init.as_ref(),
                cfg.cache_capacity,
                agg,
            );
            if agg.is_some() {
                // Reseed lanes from whatever restored values this place
                // holds (its own subtree after a Resume scatter).
                // Meta-only finished cells stay gaps; the ranged execute
                // path pulls them from their owner on demand.
                crate::engine::seed_aggs(self.engine.app.as_ref(), &shards);
            }
            self.recorder.instant_now(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::EpochStart,
                u64::from(epoch),
            );
            if prefinished == total {
                if self.me != PlaceId::ZERO {
                    // A scattered prior covers this place's subtree
                    // only, so its shards may hold finished flags
                    // without values — only place 0, which keeps the
                    // full restored array, can collect the result.
                    return Ok(None);
                }
                break collect_array(&shards, &dist);
            }

            let shared = Arc::new(Shared {
                app: self.engine.app.clone(),
                stall_limit: cfg.stall_limit,
                pattern: pattern.clone(),
                dist: dist.clone(),
                shards,
                transport: {
                    let base = self.plane.clone() as Arc<dyn Transport<Msg<A::Value>>>;
                    match cfg.coalesce {
                        // A fresh wrapper each epoch: buffered traffic of
                        // an abandoned epoch dies with it, and flushes
                        // always carry the current epoch tag (workers are
                        // joined before `plane.epoch` advances).
                        Some(bytes) => Arc::new(CoalescingTransport::new(
                            base,
                            CoalesceConfig::bytes(bytes),
                            self.node.stats().clone(),
                            self.recorder.clone(),
                        )),
                        None => base,
                    }
                },
                topo: cfg.topology,
                net: cfg.network,
                schedule: cfg.schedule,
                comms: cfg.comms,
                liveness: self.node.liveness().clone(),
                stats: self.node.stats().clone(),
                total,
                finished_global: AtomicU64::new(prefinished),
                computed: AtomicU64::new(0),
                done: AtomicBool::new(false),
                fault: AtomicBool::new(false),
                stalled: AtomicBool::new(false),
                // Planned faults go through `Wire::Die` from place 0.
                fault_plan: Vec::new(),
                time_kills: Vec::new(),
                run_started: started,
                // The schedule shaker works on this backend too; each
                // place derives its own substream so its workers don't
                // mirror another place's decisions.
                shake: cfg.chaos.as_ref().filter(|p| p.shake).map(|p| {
                    let mut rng = ChaosRng::new(p.seed).fork(u64::from(self.me.0));
                    rng.next_u64()
                }),
                worker_seq: AtomicU64::new(0),
                checkpoint: None,
                recorder: self.recorder.clone(),
                agg,
            });

            let mut handles = Vec::new();
            for t in 0..cfg.topology.threads_per_place {
                let sh = shared.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("dpx10-p{}w{t}", self.me.index()))
                    .spawn(move || worker_loop(sh, my_slot))
                    .map_err(|e| EngineError::Socket(format!("spawn worker: {e}")))?;
                handles.push(handle);
            }

            let outcome = if self.me == PlaceId::ZERO {
                self.coordinate(
                    &shared,
                    epoch,
                    &alive,
                    my_slot,
                    total,
                    started,
                    &mut kills_fired,
                    resume.as_ref().filter(|st| st.epoch == epoch),
                )
            } else {
                self.follow(&shared, epoch, &alive, my_slot, busy_total)
            };
            shared.done.store(true, Ordering::Release); // belt and braces
            for h in handles {
                let _ = h.join();
            }
            report.vertices_computed += shared.computed.load(Ordering::Relaxed);
            busy_total += shared.shards[my_slot].busy_ns.load(Ordering::Relaxed);

            match outcome? {
                Flow::Finished => {
                    self.bcast_ctl(&alive, Wire::Stop { epoch });
                    let mut arr = collect_array(&shared.shards, &dist);
                    let lost = self.collect_snapshots(
                        epoch,
                        &alive,
                        &Wire::Stop { epoch },
                        &mut arr,
                        &mut peer_stats,
                        &mut report,
                    );
                    if lost.is_empty() {
                        break arr;
                    }
                    // A place died between the last vertex and its
                    // snapshot: its values are gone, recover and re-run.
                    let restored = self.recover_from(&arr, &lost, &mut report);
                    resume = Some(self.resume_epoch(epoch, &mut alive, &restored)?);
                    prior = Some(restored);
                    epoch += 1;
                }
                Flow::Fault => {
                    let dead: Vec<PlaceId> = alive
                        .iter()
                        .copied()
                        .filter(|p| !self.node.liveness().is_alive(*p))
                        .collect();
                    let dead_u16: Vec<u16> = dead.iter().map(|p| p.0).collect();
                    self.bcast_ctl(
                        &alive,
                        Wire::Abort {
                            epoch,
                            dead: dead_u16.clone(),
                        },
                    );
                    let mut arr = collect_array(&shared.shards, &dist);
                    let lost = self.collect_snapshots(
                        epoch,
                        &alive,
                        &Wire::Abort {
                            epoch,
                            dead: dead_u16,
                        },
                        &mut arr,
                        &mut peer_stats,
                        &mut report,
                    );
                    let mut all_dead = dead;
                    all_dead.extend(lost);
                    all_dead.sort_unstable();
                    all_dead.dedup();
                    let restored = self.recover_from(&arr, &all_dead, &mut report);
                    resume = Some(self.resume_epoch(epoch, &mut alive, &restored)?);
                    prior = Some(restored);
                    epoch += 1;
                }
                Flow::Stalled { finished } => {
                    return Err(EngineError::Stalled { finished, total });
                }
                Flow::WorkerExit => return Ok(None),
                Flow::Died => return Ok(None),
                Flow::WorkerResume {
                    alive: new_alive,
                    cells,
                    meta,
                } => {
                    alive = new_alive.into_iter().map(PlaceId).collect();
                    pending_cells = Some((cells, meta));
                    prior = None; // rebuilt from `pending_cells` above
                    epoch += 1;
                }
            }
        };

        if self.me != PlaceId::ZERO {
            // Worker that left through the all-prefinished short-circuit.
            return Ok(None);
        }

        report.wall_time = started.elapsed();
        let mut comm = self.node.stats().snapshot();
        for stats in peer_stats.iter().skip(1) {
            comm.tasks_run += stats[0];
            comm.messages_sent += stats[1];
            comm.bytes_sent += stats[2];
            comm.net_time += Duration::from_nanos(stats[3]);
            comm.cache_hits += stats[4];
            comm.cache_misses += stats[5];
            comm.batches_sent += stats[7];
            comm.batched_msgs += stats[8];
            comm.pulls_sent += stats[9];
            comm.pulls_deduped += stats[10];
            comm.pushes_sent += stats[11];
            comm.pull_roundtrips_avoided += stats[12];
        }
        report.comm = comm;
        // In the final epoch's slot order (matching the simulator): our
        // own accumulator for place 0, the last snapshot's busy counter
        // for every peer.
        report.place_busy = alive
            .iter()
            .map(|p| {
                if *p == self.me {
                    Duration::from_nanos(busy_total)
                } else {
                    Duration::from_nanos(peer_stats[p.index()][6])
                }
            })
            .collect();
        let result = DagResult::new(final_array, report);
        self.engine.app.app_finished(&result);
        Ok(Some(result))
    }

    /// The epoch's tree schedule over `alive`, rooted at place 0's rank
    /// (ranks index `alive`, whose order is exactly the slot order).
    fn schedule(&self, alive: &[PlaceId]) -> CollectiveSchedule {
        let root = alive.iter().position(|p| *p == PlaceId::ZERO).unwrap_or(0);
        CollectiveSchedule::new(alive.len(), root)
    }

    /// Forwards a broadcast hop to `me_rank`'s schedule children; a
    /// child that is dead or unreachable is replaced by its own
    /// children, so the frame still reaches every live subtree.
    fn relay_hops(&self, alive: &[PlaceId], me_rank: usize, hop: &Wire<A::Value>) {
        let sched = self.schedule(alive);
        let mut work = sched.children(me_rank);
        while let Some(c) = work.pop() {
            let p = alive[c];
            if !self.node.liveness().is_alive(p) || self.send_ctl(p, hop).is_err() {
                work.extend(sched.children(c));
            }
        }
    }

    /// Place 0: launches a tree broadcast of `frame` — one [`Wire::Bcast`]
    /// hop per schedule child; the receivers relay onwards.
    fn bcast_ctl(&self, alive: &[PlaceId], frame: Wire<A::Value>) {
        let me_rank = self.schedule(alive).root();
        self.relay_hops(alive, me_rank, &Wire::Bcast(Box::new(frame)));
    }

    /// Sends the `Resume` scatter hops from `me_rank` in the new
    /// epoch's schedule: each child receives the restored cells of its
    /// whole subtree plus the global finished-set metadata; a dead
    /// child's subtree is adopted. Cells are bucketed by the *new*
    /// distribution, whose slot order is `alive`'s order.
    fn scatter_resume(
        &self,
        alive: &[PlaceId],
        me_rank: usize,
        new_epoch: u32,
        alive_u16: &[u16],
        meta: &[u64],
        cells: &[(u64, A::Value)],
    ) {
        let sched = self.schedule(alive);
        if sched.children(me_rank).is_empty() {
            return;
        }
        let region = Region2D::new(self.engine.pattern.height(), self.engine.pattern.width());
        let ndist = Dist::new(region, self.engine.config.dist_kind.clone(), alive.to_vec());
        let mut by_rank: Vec<Vec<(u64, A::Value)>> = vec![Vec::new(); alive.len()];
        for (packed, v) in cells {
            let id = VertexId::unpack(*packed);
            by_rank[ndist.slot_of(id.i, id.j)].push((*packed, v.clone()));
        }
        let mut work = sched.children(me_rank);
        while let Some(c) = work.pop() {
            let bundle: Vec<(u64, A::Value)> = sched
                .subtree(c)
                .into_iter()
                .flat_map(|r| by_rank[r].iter().cloned())
                .collect();
            let frame = Wire::Resume {
                epoch: new_epoch,
                alive: alive_u16.to_vec(),
                cells: bundle,
                meta: meta.to_vec(),
            };
            let p = alive[c];
            if !self.node.liveness().is_alive(p) || self.send_ctl(p, &frame).is_err() {
                work.extend(sched.children(c));
            }
        }
    }

    /// Rebuilds the `Resume` frame rank `rank` should have received
    /// from the scatter: its subtree's restored cells plus the global
    /// metadata (used by the re-send insurance, so a survivor stranded
    /// by a dead relay still enters the epoch).
    fn resume_frame_for(&self, st: &ResumeState<A::Value>, rank: usize) -> Wire<A::Value> {
        let places: Vec<PlaceId> = st.alive.iter().copied().map(PlaceId).collect();
        let sched = self.schedule(&places);
        let sub = sched.subtree(rank);
        let region = Region2D::new(self.engine.pattern.height(), self.engine.pattern.width());
        let ndist = Dist::new(region, self.engine.config.dist_kind.clone(), places);
        let cells = st
            .cells
            .iter()
            .filter(|(packed, _)| {
                let id = VertexId::unpack(*packed);
                sub.contains(&ndist.slot_of(id.i, id.j))
            })
            .cloned()
            .collect();
        Wire::Resume {
            epoch: st.epoch,
            alive: st.alive.clone(),
            cells,
            meta: st.meta.clone(),
        }
    }

    /// Place 0's mid-epoch loop: fold the tree-reduced progress reports
    /// into the finished table, fire any planned kills, re-send `Resume`
    /// bundles to survivors a dead relay may have stranded, and decide
    /// the epoch's fate.
    #[allow(clippy::too_many_arguments)]
    fn coordinate(
        &self,
        shared: &Arc<Shared<A>>,
        epoch: u32,
        alive: &[PlaceId],
        my_slot: usize,
        total: u64,
        started: Instant,
        kills_fired: &mut Vec<PlaceId>,
        resume: Option<&ResumeState<A::Value>>,
    ) -> Result<Flow<A::Value>, EngineError> {
        // Seeded from our own deterministic copy of every shard, so the
        // table starts at each slot's prefinished count.
        let mut table: Vec<u64> = (0..alive.len())
            .map(|s| shared.shards[s].finished_local.load(Ordering::Relaxed))
            .collect();
        // Every planned kill, as (victim, progress threshold) or
        // (victim, wall-clock delay): the legacy single fault plus the
        // chaos plan's kills. All fire as `Wire::Die` to the victim.
        let to_threshold = |frac: f64| ((frac * total as f64).ceil() as u64).clamp(1, total);
        let cfg = &self.engine.config;
        let mut progress_kills: Vec<(PlaceId, u64)> = cfg
            .fault
            .iter()
            .map(|p| (p.place, to_threshold(p.after_fraction)))
            .collect();
        let mut time_kills: Vec<(PlaceId, Duration)> = Vec::new();
        for k in cfg.chaos.iter().flat_map(|p| p.kills.iter()) {
            match k.trigger {
                KillTrigger::Progress(f) => progress_kills.push((k.place, to_threshold(f))),
                KillTrigger::After(t) => time_kills.push((k.place, t)),
            }
        }
        let mut last_sum = u64::MAX;
        let mut last_change = Instant::now();
        // Which places have reported anything this epoch: a `Reduce`
        // entry for a place can only originate at that place, so it
        // doubles as proof the place entered the epoch (used by the
        // resume re-send insurance below).
        let mut heard = vec![false; alive.len()];
        heard[my_slot] = true;
        let mut next_nudge = Instant::now() + RESUME_RESEND;

        loop {
            match self.ctl_rx.recv_timeout(Duration::from_millis(2)) {
                Ok((src, Wire::Progress { epoch: e, finished })) if e == epoch => {
                    // Legacy direct form; current peers send `Reduce`.
                    if let Some(s) = alive.iter().position(|p| *p == src) {
                        table[s] = table[s].max(finished);
                        heard[s] = true;
                    }
                }
                Ok((src, Wire::Reduce { epoch: e, counts })) if e == epoch => {
                    if let Some(s) = alive.iter().position(|p| *p == src) {
                        heard[s] = true;
                    }
                    for (pid, n) in counts {
                        if let Some(s) = alive.iter().position(|p| p.0 == pid) {
                            table[s] = table[s].max(n);
                            heard[s] = true;
                        }
                    }
                }
                Ok(_) | Err(_) => {} // stale traffic / timeout tick
            }
            if let Some(st) = resume {
                if Instant::now() >= next_nudge {
                    next_nudge = Instant::now() + RESUME_RESEND;
                    for (s, p) in alive.iter().enumerate() {
                        if !heard[s] && *p != self.me && self.node.liveness().is_alive(*p) {
                            let _ = self.send_ctl(*p, &self.resume_frame_for(st, s));
                        }
                    }
                }
            }
            table[my_slot] = shared.shards[my_slot]
                .finished_local
                .load(Ordering::Relaxed);
            let sum: u64 = table.iter().sum();

            for &(victim, threshold) in &progress_kills {
                if sum >= threshold
                    && !kills_fired.contains(&victim)
                    && self.node.liveness().is_alive(victim)
                {
                    kills_fired.push(victim);
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlDie,
                        u64::from(victim.0),
                    );
                    let _ = self.send_ctl(victim, &Wire::Die);
                }
            }
            for &(victim, after) in &time_kills {
                if started.elapsed() >= after
                    && !kills_fired.contains(&victim)
                    && self.node.liveness().is_alive(victim)
                {
                    kills_fired.push(victim);
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlDie,
                        u64::from(victim.0),
                    );
                    let _ = self.send_ctl(victim, &Wire::Die);
                }
            }

            let someone_died = alive.iter().any(|p| !self.node.liveness().is_alive(*p));
            if someone_died || shared.fault.load(Ordering::Acquire) {
                shared.fault.store(true, Ordering::Release);
                self.recorder.instant_now(
                    self.me.0,
                    RUNTIME_WORKER,
                    EventKind::Fault,
                    u64::from(epoch),
                );
                return Ok(Flow::Fault);
            }
            if sum >= total {
                shared.done.store(true, Ordering::Release);
                self.recorder.instant_now(
                    self.me.0,
                    RUNTIME_WORKER,
                    EventKind::CtlStop,
                    u64::from(epoch),
                );
                return Ok(Flow::Finished);
            }

            if sum != last_sum {
                last_sum = sum;
                last_change = Instant::now();
            } else if last_change.elapsed() > shared.stall_limit {
                self.recorder
                    .instant_now(self.me.0, RUNTIME_WORKER, EventKind::Stalled, sum);
                shared.stalled.store(true, Ordering::Release);
                shared.done.store(true, Ordering::Release);
                return Ok(Flow::Stalled { finished: sum });
            }
        }
    }

    /// A worker place's mid-epoch loop: fold subtree progress up the
    /// tree to place 0 and obey (and relay) its control messages.
    fn follow(
        &self,
        shared: &Arc<Shared<A>>,
        epoch: u32,
        alive: &[PlaceId],
        my_slot: usize,
        busy_before: u64,
    ) -> Result<Flow<A::Value>, EngineError> {
        let sched = self.schedule(alive);
        let mut last_reported = u64::MAX;
        let mut last_progress = Instant::now();
        // Finished counts our subtree reported, folded into every
        // Reduce hop we send up (max-merged: duplicates are harmless).
        let mut child_counts: HashMap<u16, u64> = HashMap::new();
        // Set once a concluding Stop/Abort has been handled; dedups the
        // tree hop against the coordinator's direct re-send insurance
        // (and stops us re-relaying duplicates).
        let mut concluded = false;
        // Set once we have snapshotted and are owed a Resume/Done; if
        // the coordinator wrote *us* off it cannot even address us, so
        // an orphaned wait must time out rather than hang.
        let mut awaiting_release: Option<Instant> = None;

        loop {
            if !self.node.liveness().is_alive(PlaceId::ZERO) {
                return Err(EngineError::Socket(
                    "place 0 was lost; a worker cannot continue without the coordinator".into(),
                ));
            }
            if let Some(since) = awaiting_release {
                if since.elapsed() > SNAPSHOT_DEADLINE {
                    return Err(EngineError::Socket(
                        "no release from the coordinator after snapshot".into(),
                    ));
                }
            }

            let received = match self.ctl_rx.recv_timeout(Duration::from_millis(5)) {
                Ok((src, Wire::Bcast(inner))) => {
                    // A tree hop: relay to our schedule children first
                    // (adopting dead subtrees), then handle the inner
                    // frame as if it had arrived directly. A duplicate
                    // hop after we concluded is not re-relayed — the
                    // first relay already covered the subtree.
                    let hop = Wire::Bcast(inner);
                    if !concluded {
                        self.relay_hops(alive, my_slot, &hop);
                    }
                    let Wire::Bcast(inner) = hop else {
                        unreachable!()
                    };
                    Ok((src, *inner))
                }
                other => other,
            };
            match received {
                Ok((_, Wire::Stop { epoch: e })) if e == epoch && !concluded => {
                    concluded = true;
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlStop,
                        u64::from(epoch),
                    );
                    shared.done.store(true, Ordering::Release);
                    self.send_snapshot(shared, epoch, my_slot, busy_before)?;
                    awaiting_release = Some(Instant::now());
                }
                Ok((_, Wire::Abort { epoch: e, dead })) if e == epoch && !concluded => {
                    concluded = true;
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlAbort,
                        u64::from(epoch),
                    );
                    for d in dead {
                        self.node.liveness().mark_dead(PlaceId(d));
                    }
                    shared.fault.store(true, Ordering::Release);
                    self.send_snapshot(shared, epoch, my_slot, busy_before)?;
                    awaiting_release = Some(Instant::now());
                }
                Ok((
                    _,
                    Wire::Resume {
                        epoch: e,
                        alive: new_alive,
                        cells,
                        meta,
                    },
                )) if e == epoch + 1 => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlResume,
                        u64::from(epoch + 1),
                    );
                    // Relay the scatter onwards: each of our schedule
                    // children in the *new* epoch's tree receives its
                    // subtree's share of the bundle. (Stragglers this
                    // relay duplicates are dropped by the receivers'
                    // own epoch guards; stranded places the relay never
                    // reaches get direct insurance re-sends from the
                    // coordinator.)
                    let new_places: Vec<PlaceId> = new_alive.iter().copied().map(PlaceId).collect();
                    if let Some(r) = new_places.iter().position(|p| *p == self.me) {
                        self.scatter_resume(&new_places, r, e, &new_alive, &meta, &cells);
                    }
                    return Ok(Flow::WorkerResume {
                        alive: new_alive,
                        cells,
                        meta,
                    });
                }
                Ok((_, Wire::Reduce { epoch: e, counts })) if e == epoch => {
                    // A child's subtree counts; folded into our next hop.
                    fold_counts(&mut child_counts, &counts);
                }
                Ok((_, Wire::Die)) => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlDie,
                        u64::from(epoch),
                    );
                    // Planned fault: die the way a crashed process dies —
                    // no goodbye frame, so the peers must *detect* it. In
                    // soft-die mode only the sockets die (the place is a
                    // thread of a test process that must survive).
                    if self.engine.soft_die {
                        self.node.crash();
                        shared.fault.store(true, Ordering::Release);
                        return Ok(Flow::Died);
                    }
                    std::process::abort();
                }
                Ok((_, Wire::Done)) => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlDone,
                        u64::from(epoch),
                    );
                    return Ok(Flow::WorkerExit);
                }
                Ok(_) | Err(_) => {}
            }

            let finished = shared.shards[my_slot]
                .finished_local
                .load(Ordering::Relaxed);
            if finished != last_reported || last_progress.elapsed() > PROGRESS_INTERVAL {
                last_reported = finished;
                last_progress = Instant::now();
                // One Reduce hop up the tree: our own count folded with
                // everything our subtree reported, addressed to the
                // nearest live ancestor (the root directly if the whole
                // chain died). The interval re-send also forwards child
                // updates that arrived while our own count sat still.
                // Failure to report is not fatal by itself; the liveness
                // check at the top of the loop is the judge of that.
                let mut counts: Vec<(u16, u64)> = vec![(self.me.0, finished)];
                counts.extend(child_counts.iter().map(|(&p, &n)| (p, n)));
                let parent = sched
                    .live_parent(my_slot, |r| !self.node.liveness().is_alive(alive[r]))
                    .unwrap_or(sched.root());
                let _ = self.send_ctl(alive[parent], &Wire::Reduce { epoch, counts });
            }
        }
    }

    /// Sends this place's slot snapshot to place 0.
    fn send_snapshot(
        &self,
        shared: &Arc<Shared<A>>,
        epoch: u32,
        my_slot: usize,
        busy_before: u64,
    ) -> Result<(), EngineError> {
        // Flush-before-snapshot barrier: anything still buffered in the
        // coalescing layer goes to the wire (or dies with a dead lane)
        // before this epoch's counters and cells are reported, so the
        // snapshot never precedes traffic it already counted.
        shared.transport.flush(self.me);
        let rec_start = self.recorder.enabled().then(|| self.recorder.now_ns());
        let shard = &shared.shards[my_slot];
        let mut cells = Vec::new();
        for (li, &(i, j)) in shard.points.iter().enumerate() {
            if shard.in_pattern[li] && shard.finished[li].load(Ordering::Acquire) {
                let v = shard.values[li].get().expect("finished => set").clone();
                cells.push((VertexId::new(i, j).pack(), v));
            }
        }
        let mine = self.node.stats().place(self.me);
        let stats = vec![
            mine.tasks_run.load(Ordering::Relaxed),
            mine.messages_sent.load(Ordering::Relaxed),
            mine.bytes_sent.load(Ordering::Relaxed),
            mine.net_time_ns.load(Ordering::Relaxed),
            mine.cache_hits.load(Ordering::Relaxed),
            mine.cache_misses.load(Ordering::Relaxed),
            busy_before + shard.busy_ns.load(Ordering::Relaxed),
            mine.batches_sent.load(Ordering::Relaxed),
            mine.batched_msgs.load(Ordering::Relaxed),
            mine.pulls_sent.load(Ordering::Relaxed),
            mine.pulls_deduped.load(Ordering::Relaxed),
            mine.pushes_sent.load(Ordering::Relaxed),
            mine.pull_roundtrips_avoided.load(Ordering::Relaxed),
        ];
        let sent = cells.len() as u64;
        let result = self
            .send_ctl(
                PlaceId::ZERO,
                &Wire::Snapshot {
                    epoch,
                    cells,
                    computed: shared.computed.load(Ordering::Relaxed),
                    stats,
                },
            )
            .map_err(|e| EngineError::Socket(format!("snapshot delivery failed: {e}")));
        if let Some(start) = rec_start {
            self.recorder.span(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::Snapshot,
                start,
                self.recorder.now_ns(),
                sent,
            );
        }
        result
    }

    /// Place 0: waits for every live peer's snapshot, folding cells into
    /// `arr` and counters into `peer_stats`; peers that never answer are
    /// marked dead and returned.
    fn collect_snapshots(
        &self,
        epoch: u32,
        alive: &[PlaceId],
        conclude: &Wire<A::Value>,
        arr: &mut DistArray<A::Value>,
        peer_stats: &mut [[u64; 13]],
        report: &mut RunReport,
    ) -> Vec<PlaceId> {
        let rec_start = self.recorder.enabled().then(|| self.recorder.now_ns());
        // Start from every peer of the epoch, not just the currently
        // live ones: a place whose death was already detected (e.g. a
        // kill landing right at the end of the epoch, before its
        // snapshot) must still be reported as lost so its values get
        // recovered rather than silently dropped.
        let mut pending: Vec<PlaceId> = alive.iter().copied().filter(|p| *p != self.me).collect();
        let mut lost = Vec::new();
        let deadline = Instant::now() + SNAPSHOT_DEADLINE;
        let mut next_nudge = Instant::now() + CONCLUDE_RESEND;
        loop {
            pending.retain(|p| {
                if self.node.liveness().is_alive(*p) {
                    true
                } else {
                    lost.push(*p);
                    false
                }
            });
            if pending.is_empty() {
                break;
            }
            if Instant::now() > deadline {
                for p in pending.drain(..) {
                    self.node.liveness().mark_dead(p);
                    lost.push(p);
                }
                break;
            }
            if Instant::now() >= next_nudge {
                next_nudge = Instant::now() + CONCLUDE_RESEND;
                // Broadcast insurance: a relay that died after taking
                // its hop may have stranded its subtree; re-send the
                // bare concluding frame (not a `Bcast`, so nobody
                // re-relays it) directly to the peers still owed a
                // snapshot. Receivers that got the tree hop already
                // ignore the duplicate.
                for p in &pending {
                    let _ = self.send_ctl(*p, conclude);
                }
            }
            let Ok((src, wire)) = self.ctl_rx.recv_timeout(Duration::from_millis(10)) else {
                continue;
            };
            if let Wire::Snapshot {
                epoch: e,
                cells,
                computed,
                stats,
            } = wire
            {
                if e != epoch {
                    continue;
                }
                let Some(k) = pending.iter().position(|p| *p == src) else {
                    continue;
                };
                pending.swap_remove(k);
                for (packed, v) in cells {
                    let id = VertexId::unpack(packed);
                    arr.set(id.i, id.j, v);
                }
                report.vertices_computed += computed;
                if stats.len() >= 6 {
                    let row = &mut peer_stats[src.index()];
                    for (dst, s) in row.iter_mut().zip(stats) {
                        *dst = s;
                    }
                }
            }
        }
        if let Some(start) = rec_start {
            self.recorder.span(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::Snapshot,
                start,
                self.recorder.now_ns(),
                lost.len() as u64,
            );
        }
        lost
    }

    /// Place 0: runs the paper's recovery over the collected snapshot.
    fn recover_from(
        &self,
        snapshot: &DistArray<A::Value>,
        dead: &[PlaceId],
        report: &mut RunReport,
    ) -> DistArray<A::Value> {
        let rec_start = self.recorder.enabled().then(|| self.recorder.now_ns());
        let (restored, rec) = recover(
            snapshot,
            dead,
            self.engine.config.restore_manner,
            &self.engine.config.topology,
            &self.engine.config.network,
            &RecoveryCostModel::default(),
        );
        report.recovery_time += rec.sim_time;
        report.recoveries.push(rec);
        if let Some(start) = rec_start {
            self.recorder.span(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::Recovery,
                start,
                self.recorder.now_ns(),
                u64::from(report.epochs),
            );
        }
        restored
    }

    /// Place 0: prunes `alive` to the survivors and scatters the
    /// restored state down the new epoch's tree — each schedule child
    /// receives its subtree's finished values plus the packed ids of
    /// *every* finished cell. Returns the scatter record so the next
    /// epoch's coordinator loop can re-send a survivor's bundle if a
    /// relay hop died with its carrier.
    fn resume_epoch(
        &self,
        epoch: u32,
        alive: &mut Vec<PlaceId>,
        restored: &DistArray<A::Value>,
    ) -> Result<ResumeState<A::Value>, EngineError> {
        alive.retain(|p| self.node.liveness().is_alive(*p));
        self.recorder.instant_now(
            self.me.0,
            RUNTIME_WORKER,
            EventKind::CtlResume,
            u64::from(epoch + 1),
        );
        let mut cells = Vec::new();
        let rdist = restored.dist();
        for s in 0..rdist.num_slots() {
            for (i, j, v, finished) in restored.iter_slot(s) {
                if finished {
                    cells.push((VertexId::new(i, j).pack(), v.clone()));
                }
            }
        }
        let meta: Vec<u64> = cells.iter().map(|(packed, _)| *packed).collect();
        let alive_u16: Vec<u16> = alive.iter().map(|p| p.0).collect();
        let me_rank = alive
            .iter()
            .position(|p| *p == self.me)
            .unwrap_or_else(|| self.schedule(alive).root());
        // A hop failure here means the peer died *after* recovery; the
        // adoption inside the scatter plus the next epoch's liveness
        // check and re-send insurance catch it.
        self.scatter_resume(alive, me_rank, epoch + 1, &alive_u16, &meta, &cells);
        Ok(ResumeState {
            epoch: epoch + 1,
            alive: alive_u16,
            meta,
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips() {
        let wires: Vec<Wire<i64>> = vec![
            Wire::App(
                3,
                Msg::PullVal {
                    id: VertexId::new(1, 2),
                    value: -7,
                },
            ),
            Wire::Progress {
                epoch: 1,
                finished: 42,
            },
            Wire::Stop { epoch: 0 },
            Wire::Abort {
                epoch: 2,
                dead: vec![1, 3],
            },
            Wire::Snapshot {
                epoch: 1,
                cells: vec![(VertexId::new(0, 0).pack(), 9)],
                computed: 5,
                stats: vec![1, 2, 3, 4, 5, 6, 7],
            },
            Wire::Resume {
                epoch: 2,
                alive: vec![0, 2],
                cells: vec![(VertexId::new(1, 1).pack(), -1)],
                meta: vec![VertexId::new(1, 1).pack(), VertexId::new(0, 3).pack()],
            },
            Wire::Die,
            Wire::Done,
            Wire::Job(
                7,
                Box::new(Wire::App(
                    2,
                    Msg::Pull {
                        id: VertexId::new(4, 4),
                    },
                )),
            ),
            Wire::Job(0, Box::new(Wire::Stop { epoch: 3 })),
            Wire::Bcast(Box::new(Wire::Stop { epoch: 4 })),
            Wire::Bcast(Box::new(Wire::Abort {
                epoch: 4,
                dead: vec![2],
            })),
            Wire::Reduce {
                epoch: 5,
                counts: vec![(1, 40), (3, 7)],
            },
        ];
        for wire in wires {
            let buf = encode_to_vec(&wire);
            assert_eq!(buf.len(), Codec::wire_size(&wire));
            let back: Wire<i64> = decode_exact(&buf).expect("decodes");
            // Structural comparison through re-encoding (no PartialEq on
            // purpose: Wire is an internal protocol type).
            assert_eq!(encode_to_vec(&back), buf);
        }
    }

    #[test]
    fn wire_rejects_unknown_tag() {
        assert!(decode_exact::<Wire<i64>>(&[99]).is_none());
    }

    #[test]
    fn resume_decode_tolerates_missing_meta() {
        // A legacy peer's Resume ends after `cells`; the decoder must
        // treat the absent metadata as "cells is the full set" — both
        // bare and wrapped in the serve protocol's Job envelope.
        let mut legacy = vec![5u8];
        3u32.encode(&mut legacy);
        vec![0u16, 1].encode(&mut legacy);
        vec![(VertexId::new(2, 2).pack(), 11i64)].encode(&mut legacy);
        let Some(Wire::Resume {
            epoch,
            alive,
            cells,
            meta,
        }) = decode_exact::<Wire<i64>>(&legacy)
        else {
            panic!("legacy Resume did not decode");
        };
        assert_eq!((epoch, alive.len(), cells.len()), (3, 2, 1));
        assert!(meta.is_empty());

        let mut wrapped = vec![8u8];
        9u32.encode(&mut wrapped);
        wrapped.extend_from_slice(&legacy);
        let Some(Wire::Job(9, inner)) = decode_exact::<Wire<i64>>(&wrapped) else {
            panic!("wrapped legacy Resume did not decode");
        };
        assert!(matches!(*inner, Wire::Resume { ref meta, .. } if meta.is_empty()));
    }

    #[test]
    fn reduce_decode_guards_hostile_count_length() {
        // A Reduce frame whose vec length claims more entries than the
        // buffer holds must fail cleanly, not allocate.
        let mut buf = vec![10u8];
        1u32.encode(&mut buf);
        u64::MAX.encode(&mut buf); // vec length prefix
        assert!(decode_exact::<Wire<i64>>(&buf).is_none());
    }
}

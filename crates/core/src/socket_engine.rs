//! The multi-process socket engine.
//!
//! Runs the same vertex-execution protocol as [`crate::ThreadedEngine`],
//! but with one OS process per place connected by the TCP mesh of
//! [`dpx10_apgas::socket`] — the closest this reproduction gets to the
//! paper's real X10 deployment (§VII ran 2 place processes per node).
//!
//! Every process executes [`SocketEngine::run`] with the same
//! application, pattern and configuration; the mesh handshake assigns
//! place ids. All processes build the full shard table deterministically
//! (cheap: it is metadata plus prefinished values), then each place runs
//! workers only for its own slot and exchanges [`Msg`]s over the wire.
//!
//! # The control protocol
//!
//! Vertex traffic alone cannot terminate a distributed run — no process
//! sees the global finished counter — so a thin coordination layer rides
//! on the same connections, multiplexed by [`Wire`] and tagged with an
//! *epoch* (recovery round) so stragglers from a failed epoch are
//! discarded:
//!
//! * workers stream `Progress` (their slot's finished count) to place 0;
//! * place 0 declares success when the counts sum to the DAG size, sends
//!   `Stop`, gathers a `Snapshot` of every slot's values, and releases
//!   everyone with `Done`;
//! * a detected failure (connection loss / missed heartbeats feeding the
//!   shared liveness board, or a planned `Die`) makes place 0 broadcast
//!   `Abort`, gather the survivors' snapshots, run the paper's recovery
//!   (§VI-D), and restart everyone with `Resume` carrying the restored
//!   cells and the surviving place list — a fresh epoch.
//!
//! Communication statistics on this backend are the bytes *actually
//! framed* onto the sockets (vertex and control traffic alike); the
//! [`dpx10_apgas::NetworkModel`] prices nothing here.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpx10_apgas::codec::{decode_exact, encode_to_vec};
use dpx10_apgas::mailbox::Envelope;
use dpx10_apgas::{
    ChaosRng, CoalesceConfig, CoalescingTransport, Codec, DeadPlaceError, KillTrigger,
    LivenessBoard, PlaceId, SocketConfig, SocketNode, Transport,
};
use dpx10_dag::{validate_pattern, DagPattern, VertexId};
use dpx10_distarray::{recover, Dist, DistArray, RecoveryCostModel, Region2D};
use dpx10_obs::{EventKind, Recorder, RUNTIME_WORKER};
use dpx10_sync::channel::{unbounded, Receiver, Sender};

use crate::app::{DagResult, DpApp, VertexValue};
use crate::config::{EngineConfig, InitOverride};
use crate::engine::{worker_loop, Shared};
use crate::error::EngineError;
use crate::msg::Msg;
use crate::schedule::ScheduleStrategy;
use crate::state::{build_shards, collect_array};
use crate::stats::{RunReport, ScheduleDowngrade};

/// Applies the socket backend's scheduling restrictions to `config` and
/// returns a record of what changed (shared with the multi-job server,
/// whose per-job engines run under the same restriction).
pub(crate) fn downgrade_schedule(config: &mut EngineConfig) -> Option<ScheduleDowngrade> {
    if config.schedule == ScheduleStrategy::WorkStealing {
        config.schedule = ScheduleStrategy::Local;
        return Some(ScheduleDowngrade {
            requested: ScheduleStrategy::WorkStealing,
            effective: ScheduleStrategy::Local,
            reason: "work stealing needs shared-memory ready lists, \
                     which do not exist across socket places",
        });
    }
    None
}

/// How long place 0 waits for a survivor's snapshot before writing the
/// place off as dead (generous: the transport's own heartbeat timeout
/// fires much earlier for real failures).
const SNAPSHOT_DEADLINE: Duration = Duration::from_secs(60);

/// How often a worker place re-sends its progress even when the count has
/// not moved (keeps the coordinator's view fresh without flooding).
const PROGRESS_INTERVAL: Duration = Duration::from_millis(50);

/// Everything that crosses a socket during a run: vertex traffic
/// ([`Wire::App`]) and the control protocol, all epoch-tagged.
///
/// `pub(crate)` because the multi-job server ([`crate::jobs`]) speaks
/// the same protocol, namespaced per job by the [`Wire::Job`] wrapper.
pub(crate) enum Wire<V> {
    /// A vertex-protocol message of the given epoch.
    App(u32, Msg<V>),
    /// Worker → place 0: my slot has `finished` vertices done.
    Progress {
        /// Epoch the count belongs to.
        epoch: u32,
        /// Finished vertices of the sender's slot (monotone).
        finished: u64,
    },
    /// Place 0 → workers: every vertex is finished; snapshot your slot.
    Stop {
        /// Epoch being concluded.
        epoch: u32,
    },
    /// Place 0 → survivors: these places died; snapshot for recovery.
    Abort {
        /// Epoch being aborted.
        epoch: u32,
        /// The places detected dead.
        dead: Vec<u16>,
    },
    /// Worker → place 0: my slot's finished cells plus local counters.
    Snapshot {
        /// Epoch the snapshot concludes.
        epoch: u32,
        /// `(packed vertex id, value)` for every finished owned cell.
        cells: Vec<(u64, V)>,
        /// Vertices this place computed during the epoch.
        computed: u64,
        /// Cumulative place counters: `[tasks, msgs, bytes, net_ns,
        /// cache_hits, cache_misses, busy_ns, batches_sent,
        /// batched_msgs]`. Decoders accept the older six- and
        /// seven-counter forms and leave the missing tail at zero.
        stats: Vec<u64>,
    },
    /// Place 0 → survivors: recovery done, start the next epoch.
    Resume {
        /// The new epoch (old + 1).
        epoch: u32,
        /// Surviving places, in slot order.
        alive: Vec<u16>,
        /// The restored array's finished cells.
        cells: Vec<(u64, V)>,
    },
    /// Place 0 → a worker: abort the process immediately (planned fault
    /// injection — dies without a goodbye so peers *detect* the death).
    Die,
    /// Place 0 → workers: the run is over, exit cleanly.
    Done,
    /// A frame belonging to one job of a multi-job serve: the `job_id`
    /// namespace joins the epoch already carried by the inner frame.
    /// Decode is tolerant in both directions: old single-job peers never
    /// emit tag 8 and ignore nothing, while a serve demux treats a bare
    /// (unwrapped) legacy frame as belonging to job 0.
    Job(u32, Box<Wire<V>>),
}

impl<V: Codec> Codec for Wire<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Wire::App(epoch, msg) => {
                buf.push(0);
                epoch.encode(buf);
                msg.encode(buf);
            }
            Wire::Progress { epoch, finished } => {
                buf.push(1);
                epoch.encode(buf);
                finished.encode(buf);
            }
            Wire::Stop { epoch } => {
                buf.push(2);
                epoch.encode(buf);
            }
            Wire::Abort { epoch, dead } => {
                buf.push(3);
                epoch.encode(buf);
                dead.encode(buf);
            }
            Wire::Snapshot {
                epoch,
                cells,
                computed,
                stats,
            } => {
                buf.push(4);
                epoch.encode(buf);
                cells.encode(buf);
                computed.encode(buf);
                stats.encode(buf);
            }
            Wire::Resume {
                epoch,
                alive,
                cells,
            } => {
                buf.push(5);
                epoch.encode(buf);
                alive.encode(buf);
                cells.encode(buf);
            }
            Wire::Die => buf.push(6),
            Wire::Done => buf.push(7),
            Wire::Job(job, inner) => {
                buf.push(8);
                job.encode(buf);
                inner.encode(buf);
            }
        }
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        match u8::decode(src)? {
            0 => Some(Wire::App(u32::decode(src)?, Msg::decode(src)?)),
            1 => Some(Wire::Progress {
                epoch: u32::decode(src)?,
                finished: u64::decode(src)?,
            }),
            2 => Some(Wire::Stop {
                epoch: u32::decode(src)?,
            }),
            3 => Some(Wire::Abort {
                epoch: u32::decode(src)?,
                dead: Vec::decode(src)?,
            }),
            4 => Some(Wire::Snapshot {
                epoch: u32::decode(src)?,
                cells: Vec::decode(src)?,
                computed: u64::decode(src)?,
                stats: Vec::decode(src)?,
            }),
            5 => Some(Wire::Resume {
                epoch: u32::decode(src)?,
                alive: Vec::decode(src)?,
                cells: Vec::decode(src)?,
            }),
            6 => Some(Wire::Die),
            7 => Some(Wire::Done),
            8 => Some(Wire::Job(u32::decode(src)?, Box::new(Wire::decode(src)?))),
            _ => None,
        }
    }

    fn wire_size(&self) -> usize {
        1 + match self {
            Wire::App(epoch, msg) => epoch.wire_size() + Codec::wire_size(msg),
            Wire::Progress { epoch, finished } => epoch.wire_size() + finished.wire_size(),
            Wire::Stop { epoch } => epoch.wire_size(),
            Wire::Abort { epoch, dead } => epoch.wire_size() + dead.wire_size(),
            Wire::Snapshot {
                epoch,
                cells,
                computed,
                stats,
            } => epoch.wire_size() + cells.wire_size() + computed.wire_size() + stats.wire_size(),
            Wire::Resume {
                epoch,
                alive,
                cells,
            } => epoch.wire_size() + alive.wire_size() + cells.wire_size(),
            Wire::Die | Wire::Done => 0,
            Wire::Job(job, inner) => job.wire_size() + Codec::wire_size(inner.as_ref()),
        }
    }
}

/// The vertex-traffic half of the demultiplexed socket: implements
/// [`Transport`] for the worker loop, filtering out messages from *past*
/// epochs at consumption time (so a message that raced past an epoch
/// change in the demux thread is still discarded). Messages from a
/// *future* epoch are parked, not dropped: after a recovery the places
/// enter the new epoch at different moments, and a fast peer's vertex
/// traffic can arrive while this place is still resuming — discarding it
/// would starve this place's share of the DAG and stall the run.
pub(crate) struct AppPlane<V> {
    node: Arc<SocketNode>,
    epoch: AtomicU32,
    app_rx: Receiver<(u32, Envelope<Msg<V>>)>,
    early: dpx10_sync::Mutex<Vec<(u32, Envelope<Msg<V>>)>>,
    liveness: LivenessBoard,
    /// `Some(job_id)` when this plane carries one job of a multi-job
    /// serve: outbound frames get wrapped in [`Wire::Job`] so the remote
    /// demux can route them to the right job's channels. `None` is the
    /// classic single-job engine (bare frames, fully wire-compatible
    /// with pre-job peers).
    job: Option<u32>,
}

impl<V: VertexValue> AppPlane<V> {
    /// Builds the plane over `node`, consuming the demux's app frames
    /// from `app_rx`. `job` namespaces outbound frames (see the field).
    pub(crate) fn new(
        node: Arc<SocketNode>,
        app_rx: Receiver<(u32, Envelope<Msg<V>>)>,
        job: Option<u32>,
    ) -> Self {
        AppPlane {
            liveness: node.liveness().clone(),
            node,
            epoch: AtomicU32::new(0),
            app_rx,
            early: dpx10_sync::Mutex::new(Vec::new()),
            job,
        }
    }

    /// Advances the plane to `epoch` (done between epochs, with the
    /// workers quiesced).
    pub(crate) fn set_epoch(&self, epoch: u32) {
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Classifies one demuxed frame against `current`: deliver, park for
    /// a later epoch, or drop as stale.
    fn admit(&self, epoch: u32, env: Envelope<Msg<V>>, current: u32) -> Option<Envelope<Msg<V>>> {
        use std::cmp::Ordering as O;
        match epoch.cmp(&current) {
            O::Equal => Some(env),
            O::Greater => {
                self.early.lock().push((epoch, env));
                None
            }
            O::Less => None, // stale epoch: state was recovered, drop
        }
    }

    /// Pops one parked message of the current epoch, pruning any that
    /// went stale since they were parked.
    fn pop_early(&self, current: u32) -> Option<Envelope<Msg<V>>> {
        let mut early = self.early.lock();
        early.retain(|(e, _)| *e >= current);
        let k = early.iter().position(|(e, _)| *e == current)?;
        Some(early.swap_remove(k).1)
    }
}

impl<V: VertexValue> Transport<Msg<V>> for AppPlane<V> {
    fn num_places(&self) -> u16 {
        self.node.places()
    }

    fn liveness(&self) -> &LivenessBoard {
        &self.liveness
    }

    fn send(
        &self,
        src: PlaceId,
        dst: PlaceId,
        msg: Msg<V>,
        _wire_bytes: usize,
    ) -> Result<(), DeadPlaceError> {
        debug_assert_eq!(src, self.node.me(), "socket places only send as themselves");
        let wire = Wire::App(self.epoch.load(Ordering::Acquire), msg);
        let bytes = match self.job {
            Some(job) => encode_to_vec(&Wire::Job(job, Box::new(wire))),
            None => encode_to_vec(&wire),
        };
        self.node.send_bytes(dst, bytes).map(|_| ())
    }

    fn try_recv(&self, _at: PlaceId) -> Option<Envelope<Msg<V>>> {
        let current = self.epoch.load(Ordering::Acquire);
        if let Some(env) = self.pop_early(current) {
            return Some(env);
        }
        loop {
            match self.app_rx.try_recv() {
                Ok((epoch, env)) => {
                    if let Some(env) = self.admit(epoch, env, current) {
                        return Some(env);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    fn recv_timeout(&self, at: PlaceId, timeout: Duration) -> Option<Envelope<Msg<V>>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(env) = self.try_recv(at) {
                return Some(env);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Wait for anything to arrive, then re-filter.
            let (epoch, env) = self.app_rx.recv_timeout(deadline - now).ok()?;
            let current = self.epoch.load(Ordering::Acquire);
            if let Some(env) = self.admit(epoch, env, current) {
                return Some(env);
            }
        }
    }
}

/// Reads raw frames off the mesh and splits them: vertex traffic to the
/// [`AppPlane`]'s channel, control messages to the control channel. A
/// payload that fails to decode marks its sender dead — same policy as
/// the typed transport.
fn demux_loop<V: VertexValue>(
    node: Arc<SocketNode>,
    app_tx: Sender<(u32, Envelope<Msg<V>>)>,
    ctl_tx: Sender<(PlaceId, Wire<V>)>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Acquire) {
        let Some((src, bytes)) = node.recv_bytes_timeout(Duration::from_millis(5)) else {
            continue;
        };
        match decode_exact::<Wire<V>>(&bytes) {
            Some(Wire::App(epoch, msg)) => {
                let _ = app_tx.send((epoch, Envelope { src, msg }));
            }
            Some(wire) => {
                let _ = ctl_tx.send((src, wire));
            }
            None => {
                node.liveness().mark_dead(src);
            }
        }
    }
}

/// What a control loop decided the epoch's fate is.
enum Flow<V> {
    /// Place 0: every vertex finished.
    Finished,
    /// Place 0: a place died (or a planned fault fired); recover.
    Fault,
    /// Place 0: global progress froze.
    Stalled {
        /// Vertices finished when the watchdog gave up.
        finished: u64,
    },
    /// Worker: the run is over.
    WorkerExit,
    /// Worker: recovery finished, start the next epoch.
    WorkerResume {
        /// Surviving places in slot order.
        alive: Vec<u16>,
        /// The restored array's finished cells.
        cells: Vec<(u64, V)>,
    },
    /// Worker: a planned `Die` arrived in soft-die mode; the node has
    /// already crashed its sockets.
    Died,
}

/// The multi-process engine. Construct identically in every place
/// process, then call [`run`](SocketEngine::run) with that process's
/// [`SocketConfig`].
pub struct SocketEngine<A: DpApp> {
    app: Arc<A>,
    pattern: Arc<dyn DagPattern>,
    config: EngineConfig,
    init: Option<InitOverride<A::Value>>,
    soft_die: bool,
    recorder: Recorder,
    downgrade: Option<ScheduleDowngrade>,
}

impl<A: DpApp + 'static> SocketEngine<A> {
    /// Creates an engine for `app` over `pattern` with `config`.
    ///
    /// Work stealing degrades to local scheduling here: stealing pops
    /// from another slot's ready list through shared memory, which only
    /// exists inside one process. The swap is recorded in the run
    /// report's [`RunReport::schedule_downgrade`] rather than applied
    /// silently.
    pub fn new(app: A, pattern: impl DagPattern + 'static, mut config: EngineConfig) -> Self {
        let downgrade = downgrade_schedule(&mut config);
        // Checkpoint writers assume one process owns all places' files.
        config.checkpoint = None;
        SocketEngine {
            app: Arc::new(app),
            pattern: Arc::new(pattern),
            config,
            init: None,
            soft_die: false,
            recorder: Recorder::disabled(),
            downgrade,
        }
    }

    /// Attaches a flight recorder; this place's epoch, control-protocol,
    /// snapshot and vertex events land in its per-place ring.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Installs a §VI-E initialisation override (pre-finish cells).
    pub fn with_init(mut self, init: InitOverride<A::Value>) -> Self {
        self.init = Some(init);
        self
    }

    /// Makes a planned `Die` crash the *sockets* instead of the whole
    /// process: every connection closes without a goodbye (peers detect
    /// the death exactly as after a SIGKILL) and `run` returns
    /// `Ok(None)`. Required when places are threads of one process — the
    /// chaos harness — where `std::process::abort` would take the whole
    /// differential run down with the victim.
    pub fn with_soft_die(mut self) -> Self {
        self.soft_die = true;
        self
    }

    /// Joins the mesh as `socket` describes and runs the computation.
    ///
    /// Returns `Ok(Some(result))` on place 0 and `Ok(None)` on every
    /// other place (the result lives with the coordinator; workers just
    /// exit).
    pub fn run(&self, socket: SocketConfig) -> Result<Option<DagResult<A::Value>>, EngineError> {
        let total = self.pattern.vertex_count();
        if self.config.validate_pattern && total <= self.config.validate_limit {
            validate_pattern(self.pattern.as_ref())?;
        }

        // `DPX10_SOCKET_TRACE=1` is an alias for "record and echo every
        // event to stderr" — the recorder's echo subscriber replaces the
        // old ad-hoc eprintln tracing.
        let mut recorder = self.recorder.clone();
        if std::env::var_os("DPX10_SOCKET_TRACE").is_some() {
            if !recorder.enabled() {
                recorder =
                    Recorder::with_capacity(self.config.topology.num_places() as usize, 1 << 12);
            }
            recorder.set_echo(true);
        }
        let mut socket = socket;
        if !socket.recorder.enabled() {
            socket.recorder = recorder.clone();
        }

        let node = Arc::new(
            SocketNode::connect(socket)
                .map_err(|e| EngineError::Socket(format!("mesh formation failed: {e}")))?,
        );
        let me = node.me();
        let places = node.places();
        if self.config.topology.num_places() != places {
            return Err(EngineError::Socket(format!(
                "topology has {} places but the mesh has {places}",
                self.config.topology.num_places()
            )));
        }
        for victim in self.config.fault.iter().map(|p| p.place).chain(
            self.config
                .chaos
                .iter()
                .flat_map(|p| p.kills.iter().map(|k| k.place)),
        ) {
            if victim == PlaceId::ZERO || victim.index() >= places as usize {
                return Err(EngineError::BadFaultPlan(format!(
                    "{victim} is not a killable place"
                )));
            }
        }

        let (app_tx, app_rx) = unbounded();
        let (ctl_tx, ctl_rx) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let demux = {
            let node = node.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name(format!("dpx10-demux{}", me.index()))
                .spawn(move || demux_loop(node, app_tx, ctl_tx, stop))
                .map_err(|e| EngineError::Socket(format!("spawn demux: {e}")))?
        };
        let plane = Arc::new(AppPlane::new(node.clone(), app_rx, None));

        let driver = Driver {
            engine: self,
            node: node.clone(),
            plane,
            ctl_rx,
            me,
            places,
            recorder,
        };
        let result = driver.drive(total);

        // Whatever happened — success, stall, error — release the
        // workers before the goodbye, or a coordinator error would
        // strand them waiting on a control message that never comes.
        if me == PlaceId::ZERO {
            // Release live members only; drained slots have no outbox.
            for p in node.roster().members() {
                if p != me {
                    let _ = node.send_bytes(p, encode_to_vec(&Wire::<A::Value>::Done));
                }
            }
        }
        stop.store(true, Ordering::Release);
        node.shutdown();
        let _ = demux.join();
        result
    }
}

/// Per-run state shared by the epoch loop and the control loops.
struct Driver<'a, A: DpApp> {
    engine: &'a SocketEngine<A>,
    node: Arc<SocketNode>,
    plane: Arc<AppPlane<A::Value>>,
    ctl_rx: Receiver<(PlaceId, Wire<A::Value>)>,
    me: PlaceId,
    places: u16,
    recorder: Recorder,
}

impl<A: DpApp + 'static> Driver<'_, A> {
    fn send_ctl(&self, dst: PlaceId, wire: &Wire<A::Value>) -> Result<(), DeadPlaceError> {
        self.node.send_bytes(dst, encode_to_vec(wire)).map(|_| ())
    }

    fn drive(&self, total: u64) -> Result<Option<DagResult<A::Value>>, EngineError> {
        let cfg = &self.engine.config;
        let pattern = &self.engine.pattern;
        let region = Region2D::new(pattern.height(), pattern.width());
        let started = Instant::now();
        let mut report = RunReport {
            vertices_total: total,
            schedule_downgrade: self.engine.downgrade.clone(),
            ..RunReport::default()
        };
        // Seed the epoch roster from the mesh's *live membership*, not
        // `0..places`: on an elastic mesh the slot space has holes where
        // places drained out, and pinning them back in would make the
        // snapshot collector wait on peers that will never answer.
        let mut alive: Vec<PlaceId> = self.node.roster().members();
        let mut prior: Option<DistArray<A::Value>> = None;
        let mut pending_cells: Option<Vec<(u64, A::Value)>> = None;
        let mut peer_stats: Vec<[u64; 9]> = vec![[0; 9]; self.places as usize];
        // This place's compute time, summed across epochs (the shards —
        // and their busy counters — are rebuilt every epoch).
        let mut busy_total: u64 = 0;
        // Victims whose planned `Die` has been sent — one-shot per run.
        let mut kills_fired: Vec<PlaceId> = Vec::new();
        let mut epoch: u32 = 0;

        let final_array = loop {
            report.epochs += 1;
            self.plane.epoch.store(epoch, Ordering::Release);
            let dist = Arc::new(Dist::new(region, cfg.dist_kind.clone(), alive.clone()));
            if let Some(cells) = pending_cells.take() {
                // Rebuild the restored array place 0 sent with `Resume`.
                let mut arr = DistArray::new(dist.clone());
                for (packed, v) in cells {
                    let id = VertexId::unpack(packed);
                    arr.set(id.i, id.j, v);
                }
                prior = Some(arr);
            }
            let Some(my_slot) = alive.iter().position(|p| *p == self.me) else {
                // The coordinator counted us among the dead (e.g. a
                // false-positive timeout); nothing left to contribute.
                return Ok(None);
            };
            let (shards, prefinished) = build_shards(
                pattern.as_ref(),
                &dist,
                prior.as_ref(),
                self.engine.init.as_ref(),
                cfg.cache_capacity,
            );
            self.recorder.instant_now(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::EpochStart,
                u64::from(epoch),
            );
            if prefinished == total {
                // Deterministic on every place: all exit without a word.
                break collect_array(&shards, &dist);
            }

            let shared = Arc::new(Shared {
                app: self.engine.app.clone(),
                stall_limit: cfg.stall_limit,
                pattern: pattern.clone(),
                dist: dist.clone(),
                shards,
                transport: {
                    let base = self.plane.clone() as Arc<dyn Transport<Msg<A::Value>>>;
                    match cfg.coalesce {
                        // A fresh wrapper each epoch: buffered traffic of
                        // an abandoned epoch dies with it, and flushes
                        // always carry the current epoch tag (workers are
                        // joined before `plane.epoch` advances).
                        Some(bytes) => Arc::new(CoalescingTransport::new(
                            base,
                            CoalesceConfig::bytes(bytes),
                            self.node.stats().clone(),
                            self.recorder.clone(),
                        )),
                        None => base,
                    }
                },
                topo: cfg.topology,
                net: cfg.network,
                schedule: cfg.schedule,
                liveness: self.node.liveness().clone(),
                stats: self.node.stats().clone(),
                total,
                finished_global: AtomicU64::new(prefinished),
                computed: AtomicU64::new(0),
                done: AtomicBool::new(false),
                fault: AtomicBool::new(false),
                stalled: AtomicBool::new(false),
                // Planned faults go through `Wire::Die` from place 0.
                fault_plan: Vec::new(),
                time_kills: Vec::new(),
                run_started: started,
                // The schedule shaker works on this backend too; each
                // place derives its own substream so its workers don't
                // mirror another place's decisions.
                shake: cfg.chaos.as_ref().filter(|p| p.shake).map(|p| {
                    let mut rng = ChaosRng::new(p.seed).fork(u64::from(self.me.0));
                    rng.next_u64()
                }),
                worker_seq: AtomicU64::new(0),
                checkpoint: None,
                recorder: self.recorder.clone(),
            });

            let mut handles = Vec::new();
            for t in 0..cfg.topology.threads_per_place {
                let sh = shared.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("dpx10-p{}w{t}", self.me.index()))
                    .spawn(move || worker_loop(sh, my_slot))
                    .map_err(|e| EngineError::Socket(format!("spawn worker: {e}")))?;
                handles.push(handle);
            }

            let outcome = if self.me == PlaceId::ZERO {
                self.coordinate(
                    &shared,
                    epoch,
                    &alive,
                    my_slot,
                    total,
                    started,
                    &mut kills_fired,
                )
            } else {
                self.follow(&shared, epoch, my_slot, busy_total)
            };
            shared.done.store(true, Ordering::Release); // belt and braces
            for h in handles {
                let _ = h.join();
            }
            report.vertices_computed += shared.computed.load(Ordering::Relaxed);
            busy_total += shared.shards[my_slot].busy_ns.load(Ordering::Relaxed);

            match outcome? {
                Flow::Finished => {
                    let survivors: Vec<PlaceId> = self.survivors(&alive);
                    for p in &survivors {
                        let _ = self.send_ctl(*p, &Wire::Stop { epoch });
                    }
                    let mut arr = collect_array(&shared.shards, &dist);
                    let lost = self.collect_snapshots(
                        epoch,
                        &alive,
                        &mut arr,
                        &mut peer_stats,
                        &mut report,
                    );
                    if lost.is_empty() {
                        break arr;
                    }
                    // A place died between the last vertex and its
                    // snapshot: its values are gone, recover and re-run.
                    let restored = self.recover_from(&arr, &lost, &mut report);
                    self.resume_epoch(epoch, &mut alive, &restored)?;
                    prior = Some(restored);
                    epoch += 1;
                }
                Flow::Fault => {
                    let dead: Vec<PlaceId> = alive
                        .iter()
                        .copied()
                        .filter(|p| !self.node.liveness().is_alive(*p))
                        .collect();
                    let dead_u16: Vec<u16> = dead.iter().map(|p| p.0).collect();
                    for p in self.survivors(&alive) {
                        let _ = self.send_ctl(
                            p,
                            &Wire::Abort {
                                epoch,
                                dead: dead_u16.clone(),
                            },
                        );
                    }
                    let mut arr = collect_array(&shared.shards, &dist);
                    let lost = self.collect_snapshots(
                        epoch,
                        &alive,
                        &mut arr,
                        &mut peer_stats,
                        &mut report,
                    );
                    let mut all_dead = dead;
                    all_dead.extend(lost);
                    all_dead.sort_unstable();
                    all_dead.dedup();
                    let restored = self.recover_from(&arr, &all_dead, &mut report);
                    self.resume_epoch(epoch, &mut alive, &restored)?;
                    prior = Some(restored);
                    epoch += 1;
                }
                Flow::Stalled { finished } => {
                    return Err(EngineError::Stalled { finished, total });
                }
                Flow::WorkerExit => return Ok(None),
                Flow::Died => return Ok(None),
                Flow::WorkerResume {
                    alive: new_alive,
                    cells,
                } => {
                    alive = new_alive.into_iter().map(PlaceId).collect();
                    pending_cells = Some(cells);
                    prior = None; // rebuilt from `pending_cells` above
                    epoch += 1;
                }
            }
        };

        if self.me != PlaceId::ZERO {
            // Worker that left through the all-prefinished short-circuit.
            return Ok(None);
        }

        report.wall_time = started.elapsed();
        let mut comm = self.node.stats().snapshot();
        for stats in peer_stats.iter().skip(1) {
            comm.tasks_run += stats[0];
            comm.messages_sent += stats[1];
            comm.bytes_sent += stats[2];
            comm.net_time += Duration::from_nanos(stats[3]);
            comm.cache_hits += stats[4];
            comm.cache_misses += stats[5];
            comm.batches_sent += stats[7];
            comm.batched_msgs += stats[8];
        }
        report.comm = comm;
        // In the final epoch's slot order (matching the simulator): our
        // own accumulator for place 0, the last snapshot's busy counter
        // for every peer.
        report.place_busy = alive
            .iter()
            .map(|p| {
                if *p == self.me {
                    Duration::from_nanos(busy_total)
                } else {
                    Duration::from_nanos(peer_stats[p.index()][6])
                }
            })
            .collect();
        let result = DagResult::new(final_array, report);
        self.engine.app.app_finished(&result);
        Ok(Some(result))
    }

    /// Alive peers other than this place, per the liveness board.
    fn survivors(&self, alive: &[PlaceId]) -> Vec<PlaceId> {
        alive
            .iter()
            .copied()
            .filter(|p| *p != self.me && self.node.liveness().is_alive(*p))
            .collect()
    }

    /// Place 0's mid-epoch loop: fold progress reports into the finished
    /// table, fire any planned kills, and decide the epoch's fate.
    #[allow(clippy::too_many_arguments)]
    fn coordinate(
        &self,
        shared: &Arc<Shared<A>>,
        epoch: u32,
        alive: &[PlaceId],
        my_slot: usize,
        total: u64,
        started: Instant,
        kills_fired: &mut Vec<PlaceId>,
    ) -> Result<Flow<A::Value>, EngineError> {
        // Seeded from our own deterministic copy of every shard, so the
        // table starts at each slot's prefinished count.
        let mut table: Vec<u64> = (0..alive.len())
            .map(|s| shared.shards[s].finished_local.load(Ordering::Relaxed))
            .collect();
        // Every planned kill, as (victim, progress threshold) or
        // (victim, wall-clock delay): the legacy single fault plus the
        // chaos plan's kills. All fire as `Wire::Die` to the victim.
        let to_threshold = |frac: f64| ((frac * total as f64).ceil() as u64).clamp(1, total);
        let cfg = &self.engine.config;
        let mut progress_kills: Vec<(PlaceId, u64)> = cfg
            .fault
            .iter()
            .map(|p| (p.place, to_threshold(p.after_fraction)))
            .collect();
        let mut time_kills: Vec<(PlaceId, Duration)> = Vec::new();
        for k in cfg.chaos.iter().flat_map(|p| p.kills.iter()) {
            match k.trigger {
                KillTrigger::Progress(f) => progress_kills.push((k.place, to_threshold(f))),
                KillTrigger::After(t) => time_kills.push((k.place, t)),
            }
        }
        let mut last_sum = u64::MAX;
        let mut last_change = Instant::now();

        loop {
            match self.ctl_rx.recv_timeout(Duration::from_millis(2)) {
                Ok((src, Wire::Progress { epoch: e, finished })) if e == epoch => {
                    if let Some(s) = alive.iter().position(|p| *p == src) {
                        table[s] = table[s].max(finished);
                    }
                }
                Ok(_) | Err(_) => {} // stale traffic / timeout tick
            }
            table[my_slot] = shared.shards[my_slot]
                .finished_local
                .load(Ordering::Relaxed);
            let sum: u64 = table.iter().sum();

            for &(victim, threshold) in &progress_kills {
                if sum >= threshold
                    && !kills_fired.contains(&victim)
                    && self.node.liveness().is_alive(victim)
                {
                    kills_fired.push(victim);
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlDie,
                        u64::from(victim.0),
                    );
                    let _ = self.send_ctl(victim, &Wire::Die);
                }
            }
            for &(victim, after) in &time_kills {
                if started.elapsed() >= after
                    && !kills_fired.contains(&victim)
                    && self.node.liveness().is_alive(victim)
                {
                    kills_fired.push(victim);
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlDie,
                        u64::from(victim.0),
                    );
                    let _ = self.send_ctl(victim, &Wire::Die);
                }
            }

            let someone_died = alive.iter().any(|p| !self.node.liveness().is_alive(*p));
            if someone_died || shared.fault.load(Ordering::Acquire) {
                shared.fault.store(true, Ordering::Release);
                self.recorder.instant_now(
                    self.me.0,
                    RUNTIME_WORKER,
                    EventKind::Fault,
                    u64::from(epoch),
                );
                return Ok(Flow::Fault);
            }
            if sum >= total {
                shared.done.store(true, Ordering::Release);
                self.recorder.instant_now(
                    self.me.0,
                    RUNTIME_WORKER,
                    EventKind::CtlStop,
                    u64::from(epoch),
                );
                return Ok(Flow::Finished);
            }

            if sum != last_sum {
                last_sum = sum;
                last_change = Instant::now();
            } else if last_change.elapsed() > shared.stall_limit {
                self.recorder
                    .instant_now(self.me.0, RUNTIME_WORKER, EventKind::Stalled, sum);
                shared.stalled.store(true, Ordering::Release);
                shared.done.store(true, Ordering::Release);
                return Ok(Flow::Stalled { finished: sum });
            }
        }
    }

    /// A worker place's mid-epoch loop: stream progress to place 0 and
    /// obey its control messages.
    fn follow(
        &self,
        shared: &Arc<Shared<A>>,
        epoch: u32,
        my_slot: usize,
        busy_before: u64,
    ) -> Result<Flow<A::Value>, EngineError> {
        let mut last_reported = u64::MAX;
        let mut last_progress = Instant::now();
        // Set once we have snapshotted and are owed a Resume/Done; if
        // the coordinator wrote *us* off it cannot even address us, so
        // an orphaned wait must time out rather than hang.
        let mut awaiting_release: Option<Instant> = None;

        loop {
            if !self.node.liveness().is_alive(PlaceId::ZERO) {
                return Err(EngineError::Socket(
                    "place 0 was lost; a worker cannot continue without the coordinator".into(),
                ));
            }
            if let Some(since) = awaiting_release {
                if since.elapsed() > SNAPSHOT_DEADLINE {
                    return Err(EngineError::Socket(
                        "no release from the coordinator after snapshot".into(),
                    ));
                }
            }

            match self.ctl_rx.recv_timeout(Duration::from_millis(5)) {
                Ok((_, Wire::Stop { epoch: e })) if e == epoch => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlStop,
                        u64::from(epoch),
                    );
                    shared.done.store(true, Ordering::Release);
                    self.send_snapshot(shared, epoch, my_slot, busy_before)?;
                    awaiting_release = Some(Instant::now());
                }
                Ok((_, Wire::Abort { epoch: e, dead })) if e == epoch => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlAbort,
                        u64::from(epoch),
                    );
                    for d in dead {
                        self.node.liveness().mark_dead(PlaceId(d));
                    }
                    shared.fault.store(true, Ordering::Release);
                    self.send_snapshot(shared, epoch, my_slot, busy_before)?;
                    awaiting_release = Some(Instant::now());
                }
                Ok((
                    _,
                    Wire::Resume {
                        epoch: e,
                        alive,
                        cells,
                    },
                )) if e == epoch + 1 => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlResume,
                        u64::from(epoch + 1),
                    );
                    return Ok(Flow::WorkerResume { alive, cells });
                }
                Ok((_, Wire::Die)) => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlDie,
                        u64::from(epoch),
                    );
                    // Planned fault: die the way a crashed process dies —
                    // no goodbye frame, so the peers must *detect* it. In
                    // soft-die mode only the sockets die (the place is a
                    // thread of a test process that must survive).
                    if self.engine.soft_die {
                        self.node.crash();
                        shared.fault.store(true, Ordering::Release);
                        return Ok(Flow::Died);
                    }
                    std::process::abort();
                }
                Ok((_, Wire::Done)) => {
                    self.recorder.instant_now(
                        self.me.0,
                        RUNTIME_WORKER,
                        EventKind::CtlDone,
                        u64::from(epoch),
                    );
                    return Ok(Flow::WorkerExit);
                }
                Ok(_) | Err(_) => {}
            }

            let finished = shared.shards[my_slot]
                .finished_local
                .load(Ordering::Relaxed);
            if finished != last_reported || last_progress.elapsed() > PROGRESS_INTERVAL {
                last_reported = finished;
                last_progress = Instant::now();
                // Failure to report is not fatal by itself; the liveness
                // check at the top of the loop is the judge of that.
                let _ = self.send_ctl(PlaceId::ZERO, &Wire::Progress { epoch, finished });
            }
        }
    }

    /// Sends this place's slot snapshot to place 0.
    fn send_snapshot(
        &self,
        shared: &Arc<Shared<A>>,
        epoch: u32,
        my_slot: usize,
        busy_before: u64,
    ) -> Result<(), EngineError> {
        // Flush-before-snapshot barrier: anything still buffered in the
        // coalescing layer goes to the wire (or dies with a dead lane)
        // before this epoch's counters and cells are reported, so the
        // snapshot never precedes traffic it already counted.
        shared.transport.flush(self.me);
        let rec_start = self.recorder.enabled().then(|| self.recorder.now_ns());
        let shard = &shared.shards[my_slot];
        let mut cells = Vec::new();
        for (li, &(i, j)) in shard.points.iter().enumerate() {
            if shard.in_pattern[li] && shard.finished[li].load(Ordering::Acquire) {
                let v = shard.values[li].get().expect("finished => set").clone();
                cells.push((VertexId::new(i, j).pack(), v));
            }
        }
        let mine = self.node.stats().place(self.me);
        let stats = vec![
            mine.tasks_run.load(Ordering::Relaxed),
            mine.messages_sent.load(Ordering::Relaxed),
            mine.bytes_sent.load(Ordering::Relaxed),
            mine.net_time_ns.load(Ordering::Relaxed),
            mine.cache_hits.load(Ordering::Relaxed),
            mine.cache_misses.load(Ordering::Relaxed),
            busy_before + shard.busy_ns.load(Ordering::Relaxed),
            mine.batches_sent.load(Ordering::Relaxed),
            mine.batched_msgs.load(Ordering::Relaxed),
        ];
        let sent = cells.len() as u64;
        let result = self
            .send_ctl(
                PlaceId::ZERO,
                &Wire::Snapshot {
                    epoch,
                    cells,
                    computed: shared.computed.load(Ordering::Relaxed),
                    stats,
                },
            )
            .map_err(|e| EngineError::Socket(format!("snapshot delivery failed: {e}")));
        if let Some(start) = rec_start {
            self.recorder.span(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::Snapshot,
                start,
                self.recorder.now_ns(),
                sent,
            );
        }
        result
    }

    /// Place 0: waits for every live peer's snapshot, folding cells into
    /// `arr` and counters into `peer_stats`; peers that never answer are
    /// marked dead and returned.
    fn collect_snapshots(
        &self,
        epoch: u32,
        alive: &[PlaceId],
        arr: &mut DistArray<A::Value>,
        peer_stats: &mut [[u64; 9]],
        report: &mut RunReport,
    ) -> Vec<PlaceId> {
        let rec_start = self.recorder.enabled().then(|| self.recorder.now_ns());
        // Start from every peer of the epoch, not just the currently
        // live ones: a place whose death was already detected (e.g. a
        // kill landing right at the end of the epoch, before its
        // snapshot) must still be reported as lost so its values get
        // recovered rather than silently dropped.
        let mut pending: Vec<PlaceId> = alive.iter().copied().filter(|p| *p != self.me).collect();
        let mut lost = Vec::new();
        let deadline = Instant::now() + SNAPSHOT_DEADLINE;
        loop {
            pending.retain(|p| {
                if self.node.liveness().is_alive(*p) {
                    true
                } else {
                    lost.push(*p);
                    false
                }
            });
            if pending.is_empty() {
                break;
            }
            if Instant::now() > deadline {
                for p in pending.drain(..) {
                    self.node.liveness().mark_dead(p);
                    lost.push(p);
                }
                break;
            }
            let Ok((src, wire)) = self.ctl_rx.recv_timeout(Duration::from_millis(10)) else {
                continue;
            };
            if let Wire::Snapshot {
                epoch: e,
                cells,
                computed,
                stats,
            } = wire
            {
                if e != epoch {
                    continue;
                }
                let Some(k) = pending.iter().position(|p| *p == src) else {
                    continue;
                };
                pending.swap_remove(k);
                for (packed, v) in cells {
                    let id = VertexId::unpack(packed);
                    arr.set(id.i, id.j, v);
                }
                report.vertices_computed += computed;
                if stats.len() >= 6 {
                    let row = &mut peer_stats[src.index()];
                    for (dst, s) in row.iter_mut().zip(stats) {
                        *dst = s;
                    }
                }
            }
        }
        if let Some(start) = rec_start {
            self.recorder.span(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::Snapshot,
                start,
                self.recorder.now_ns(),
                lost.len() as u64,
            );
        }
        lost
    }

    /// Place 0: runs the paper's recovery over the collected snapshot.
    fn recover_from(
        &self,
        snapshot: &DistArray<A::Value>,
        dead: &[PlaceId],
        report: &mut RunReport,
    ) -> DistArray<A::Value> {
        let rec_start = self.recorder.enabled().then(|| self.recorder.now_ns());
        let (restored, rec) = recover(
            snapshot,
            dead,
            self.engine.config.restore_manner,
            &self.engine.config.topology,
            &self.engine.config.network,
            &RecoveryCostModel::default(),
        );
        report.recovery_time += rec.sim_time;
        report.recoveries.push(rec);
        if let Some(start) = rec_start {
            self.recorder.span(
                self.me.0,
                RUNTIME_WORKER,
                EventKind::Recovery,
                start,
                self.recorder.now_ns(),
                u64::from(report.epochs),
            );
        }
        restored
    }

    /// Place 0: prunes `alive` to the survivors and sends each of them
    /// the restored state for the next epoch.
    fn resume_epoch(
        &self,
        epoch: u32,
        alive: &mut Vec<PlaceId>,
        restored: &DistArray<A::Value>,
    ) -> Result<(), EngineError> {
        alive.retain(|p| self.node.liveness().is_alive(*p));
        self.recorder.instant_now(
            self.me.0,
            RUNTIME_WORKER,
            EventKind::CtlResume,
            u64::from(epoch + 1),
        );
        let mut cells = Vec::new();
        let rdist = restored.dist();
        for s in 0..rdist.num_slots() {
            for (i, j, v, finished) in restored.iter_slot(s) {
                if finished {
                    cells.push((VertexId::new(i, j).pack(), v.clone()));
                }
            }
        }
        let alive_u16: Vec<u16> = alive.iter().map(|p| p.0).collect();
        for p in alive.iter().filter(|p| **p != self.me) {
            // A send failure here means the peer died *after* recovery;
            // the next epoch's liveness check will catch it.
            let _ = self.send_ctl(
                *p,
                &Wire::Resume {
                    epoch: epoch + 1,
                    alive: alive_u16.clone(),
                    cells: cells.clone(),
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips() {
        let wires: Vec<Wire<i64>> = vec![
            Wire::App(
                3,
                Msg::PullVal {
                    id: VertexId::new(1, 2),
                    value: -7,
                },
            ),
            Wire::Progress {
                epoch: 1,
                finished: 42,
            },
            Wire::Stop { epoch: 0 },
            Wire::Abort {
                epoch: 2,
                dead: vec![1, 3],
            },
            Wire::Snapshot {
                epoch: 1,
                cells: vec![(VertexId::new(0, 0).pack(), 9)],
                computed: 5,
                stats: vec![1, 2, 3, 4, 5, 6, 7],
            },
            Wire::Resume {
                epoch: 2,
                alive: vec![0, 2],
                cells: vec![(VertexId::new(1, 1).pack(), -1)],
            },
            Wire::Die,
            Wire::Done,
            Wire::Job(
                7,
                Box::new(Wire::App(
                    2,
                    Msg::Pull {
                        id: VertexId::new(4, 4),
                    },
                )),
            ),
            Wire::Job(0, Box::new(Wire::Stop { epoch: 3 })),
        ];
        for wire in wires {
            let buf = encode_to_vec(&wire);
            assert_eq!(buf.len(), Codec::wire_size(&wire));
            let back: Wire<i64> = decode_exact(&buf).expect("decodes");
            // Structural comparison through re-encoding (no PartialEq on
            // purpose: Wire is an internal protocol type).
            assert_eq!(encode_to_vec(&back), buf);
        }
    }

    #[test]
    fn wire_rejects_unknown_tag() {
        assert!(decode_exact::<Wire<i64>>(&[99]).is_none());
    }
}

//! The DPX10 framework core — a Rust reproduction of the paper's
//! programming model and runtime (ICPP 2015).
//!
//! A DPX10 program is "specified by a DAG pattern and a compute method
//! for the vertices" (abstract). Users implement [`DpApp`] (the paper's
//! `DPX10App[T]`), pick a pattern from `dpx10_dag`, and hand both to an
//! engine:
//!
//! * [`ThreadedEngine`] — real concurrent execution on the APGAS
//!   substrate (places as worker-thread pools), including live fault
//!   injection and the paper's recovery method;
//! * the simulator engine in `dpx10-sim` — the same semantics under a
//!   deterministic virtual clock, for cluster-scale experiments.
//!
//! The §VI-E refinement knobs (distribution, initialisation override,
//! scheduling strategy, cache size, restore manner) all live in
//! [`EngineConfig`].
//!
//! # Example: LCS in a dozen lines
//!
//! ```
//! use dpx10_core::{DpApp, DepView, EngineConfig, ThreadedEngine};
//! use dpx10_dag::{builtin::Grid3, VertexId};
//!
//! struct Lcs { a: Vec<u8>, b: Vec<u8> }
//!
//! impl DpApp for Lcs {
//!     type Value = u32;
//!     fn compute(&self, id: VertexId, deps: &DepView<'_, u32>) -> u32 {
//!         let (i, j) = (id.i, id.j);
//!         if i == 0 || j == 0 {
//!             return 0;
//!         }
//!         if self.a[(i - 1) as usize] == self.b[(j - 1) as usize] {
//!             deps.get(i - 1, j - 1).unwrap() + 1
//!         } else {
//!             *deps.get(i - 1, j).unwrap().max(deps.get(i, j - 1).unwrap())
//!         }
//!     }
//! }
//!
//! let app = Lcs { a: b"ABC".to_vec(), b: b"DBC".to_vec() };
//! let engine = ThreadedEngine::new(app, Grid3::new(4, 4), EngineConfig::flat(2));
//! let result = engine.run().unwrap();
//! assert_eq!(result.get(3, 3), 2); // "BC"
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod elastic;
pub mod engine;
pub mod error;
pub mod jobs;
pub mod msg;
pub mod schedule;
pub mod socket_engine;
pub mod spill;
#[doc(hidden)]
pub mod state;
pub mod stats;
pub mod tiled;

pub use app::{AggView, DagResult, DepView, DpApp, VertexValue};
pub use cache::FifoCache;
pub use checkpoint::{load_checkpoint, CheckpointConfig};
pub use config::{CommsMode, EngineConfig, FaultPlan, InitOverride};
pub use elastic::{
    ElasticConfig, ElasticEngine, ElasticPolicy, ElasticReport, ElasticRun, ElasticServer,
};
pub use engine::ThreadedEngine;
pub use error::EngineError;
pub use jobs::{JobOutcome, JobServer, JobSpec, ServeKill, ServeReport};
pub use schedule::ScheduleStrategy;
pub use socket_engine::SocketEngine;
pub use stats::{RunReport, ScheduleDowngrade};
pub use tiled::{run_tiled_threaded, TileValue, TiledApp, TiledRun};

// Re-export the pieces applications touch, so `dpx10_core` is
// self-sufficient for most users.
pub use dpx10_apgas::{NetworkModel, PlaceId, Topology};
pub use dpx10_dag::{AggSpec, Axis, Reduction};
pub use dpx10_distarray::{DistKind, RestoreManner};

//! Disk checkpointing: the engine-integrated form of the §X future-work
//! item ("we are working on spilling some data to local disk to enable
//! computations on large scale of DP problems").
//!
//! With a [`CheckpointConfig`], the threaded engine appends every
//! published vertex value to a per-place [`SpillStore`] file. A later
//! run — after a crash, or to continue an interrupted computation —
//! replays the directory into an init override via
//! [`load_checkpoint`], so already-finished vertices are never
//! recomputed (the same §VI-E pre-finish mechanism recovery uses).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dpx10_sync::Mutex;

use dpx10_apgas::PlaceId;
use dpx10_dag::VertexId;

use crate::app::VertexValue;
use crate::config::InitOverride;
use crate::spill::SpillStore;

/// Where and how to checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory holding one `place-<n>.spill` file per place.
    pub dir: PathBuf,
    /// Spill every `every`-th published vertex per place (1 = all).
    pub every: u64,
}

impl CheckpointConfig {
    /// Checkpoint every published vertex into `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every: 1,
        }
    }
}

/// Per-place spill writers used by the engine during a run.
pub(crate) struct CheckpointWriters<V> {
    every: u64,
    stores: Vec<Mutex<(SpillStore<V>, u64)>>,
}

impl<V: VertexValue> CheckpointWriters<V> {
    /// Creates (truncating) one store per place.
    pub(crate) fn create(
        config: &CheckpointConfig,
        places: u16,
    ) -> std::io::Result<CheckpointWriters<V>> {
        std::fs::create_dir_all(&config.dir)?;
        let stores = (0..places)
            .map(|p| {
                SpillStore::create(place_file(&config.dir, PlaceId(p)))
                    .map(|s| Mutex::new((s, 0u64)))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(CheckpointWriters {
            every: config.every.max(1),
            stores,
        })
    }

    /// Records one published vertex on `place` (subsampled by `every`).
    pub(crate) fn on_publish(&self, place: PlaceId, id: VertexId, value: &V) {
        let mut guard = self.stores[place.index()].lock();
        let (store, count) = &mut *guard;
        *count += 1;
        if (*count - 1) % self.every == 0 {
            // Checkpointing is best-effort: an I/O error must not take
            // down the computation (the data still lives in RAM).
            let _ = store.spill(id, value);
        }
    }
}

fn place_file(dir: &Path, place: PlaceId) -> PathBuf {
    dir.join(format!("place-{}.spill", place.0))
}

/// Replays a checkpoint directory into an init override: every vertex
/// found in any place file starts the next run pre-finished with its
/// recorded value. Missing files are fine (that place spilled nothing
/// or its disk died — matching the paper's local-disk semantics).
pub fn load_checkpoint<V: VertexValue>(
    dir: impl AsRef<Path>,
    places: u16,
) -> std::io::Result<InitOverride<V>> {
    let dir = dir.as_ref();
    let mut fills: HashMap<u64, V> = HashMap::new();
    for p in 0..places {
        let path = place_file(dir, PlaceId(p));
        if !path.exists() {
            continue;
        }
        let mut store: SpillStore<V> = SpillStore::open_readonly(&path)?;
        for (id, v) in store.replay()? {
            fills.insert(id.pack(), v);
        }
    }
    Ok(Arc::new(move |i, j| {
        fills.get(&VertexId::new(i, j).pack()).cloned()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dpx10-ckpt-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn writers_then_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let config = CheckpointConfig::new(&dir);
        let writers: CheckpointWriters<u64> = CheckpointWriters::create(&config, 2).unwrap();
        writers.on_publish(PlaceId(0), VertexId::new(0, 0), &10);
        writers.on_publish(PlaceId(1), VertexId::new(1, 1), &11);
        writers.on_publish(PlaceId(1), VertexId::new(2, 2), &12);
        drop(writers);

        let init = load_checkpoint::<u64>(&dir, 2).unwrap();
        assert_eq!(init(0, 0), Some(10));
        assert_eq!(init(1, 1), Some(11));
        assert_eq!(init(2, 2), Some(12));
        assert_eq!(init(3, 3), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subsampling_skips_entries() {
        let dir = temp_dir("subsample");
        let config = CheckpointConfig {
            dir: dir.clone(),
            every: 2,
        };
        let writers: CheckpointWriters<u32> = CheckpointWriters::create(&config, 1).unwrap();
        for k in 0..6u32 {
            writers.on_publish(PlaceId(0), VertexId::new(0, k), &k);
        }
        drop(writers);
        let init = load_checkpoint::<u32>(&dir, 1).unwrap();
        let kept = (0..6).filter(|&k| init(0, k).is_some()).count();
        assert_eq!(kept, 3, "every=2 keeps alternating publishes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_are_tolerated() {
        let dir = temp_dir("missing");
        std::fs::create_dir_all(&dir).unwrap();
        let init = load_checkpoint::<u64>(&dir, 3).unwrap();
        assert_eq!(init(0, 0), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Tiled (blocked) execution: run any [`DpApp`] with `t × t` cells per
//! scheduled vertex.
//!
//! Pairs with [`dpx10_dag::TiledDag`]: the engine schedules *tiles*, and
//! [`TiledApp`] computes each tile's cells serially in an intra-tile
//! topological order, reading boundary cells out of the neighbouring
//! tiles' values. This amortises the framework's per-vertex cost over
//! `t²` cells and turns `t` boundary messages into one — the classic
//! block-wavefront optimisation the paper leaves as future work
//! ("sophisticated scheduling and cache techniques", §X).
//!
//! ```
//! use dpx10_core::tiled::run_tiled_threaded;
//! use dpx10_core::{DepView, DpApp, EngineConfig};
//! use dpx10_dag::{builtin::Grid2, VertexId};
//!
//! struct Sum;
//! impl DpApp for Sum {
//!     type Value = u64;
//!     fn compute(&self, _id: VertexId, deps: &DepView<'_, u64>) -> u64 {
//!         deps.values().iter().sum::<u64>() + 1
//!     }
//! }
//!
//! let run = run_tiled_threaded(Sum, Grid2::new(8, 8), 3, EngineConfig::flat(2)).unwrap();
//! assert_eq!(run.get(0, 0), 1);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use dpx10_apgas::Codec;
use dpx10_dag::{DagPattern, TiledDag, VertexId};

use crate::app::{DagResult, DepView, DpApp, VertexValue};
use crate::config::EngineConfig;
use crate::engine::ThreadedEngine;
use crate::error::EngineError;

/// The value of one tile: its cells' results, dense and row-major over
/// the tile's clipped bounds (masked cells hold `V::default()`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TileValue<V> {
    /// Cell results in row-major tile-local order.
    pub cells: Vec<V>,
}

impl<V: Codec> Codec for TileValue<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.cells.encode(buf);
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        Some(TileValue {
            cells: Vec::<V>::decode(src)?,
        })
    }

    fn wire_size(&self) -> usize {
        self.cells.wire_size()
    }
}

/// Adapter turning a cell-level [`DpApp`] into a tile-level one.
pub struct TiledApp<A, P> {
    inner: A,
    geometry: Arc<TiledDag<P>>,
}

impl<A: DpApp, P: DagPattern> TiledApp<A, P> {
    /// Wraps `inner` over the tile geometry.
    pub fn new(inner: A, geometry: Arc<TiledDag<P>>) -> Self {
        TiledApp { inner, geometry }
    }

    /// Tile-local dense index of cell `(i, j)` within tile `t`.
    fn cell_index(geo: &TiledDag<P>, t: VertexId, i: u32, j: u32) -> usize {
        let (ri, rj) = geo.cell_bounds(t.i, t.j);
        debug_assert!(ri.contains(&i) && rj.contains(&j));
        ((i - ri.start) * (rj.end - rj.start) + (j - rj.start)) as usize
    }
}

impl<A, P> DpApp for TiledApp<A, P>
where
    A: DpApp,
    P: DagPattern + 'static,
{
    type Value = TileValue<A::Value>;

    fn compute(
        &self,
        tile: VertexId,
        tile_deps: &DepView<'_, TileValue<A::Value>>,
    ) -> TileValue<A::Value> {
        let geo = self.geometry.as_ref();
        let (ri, rj) = geo.cell_bounds(tile.i, tile.j);
        let width = (rj.end - rj.start) as usize;
        let len = (ri.end - ri.start) as usize * width;
        let mut cells: Vec<A::Value> = vec![A::Value::default(); len];
        let mut done = vec![false; len];

        // Intra-tile Kahn: indegree counts only same-tile dependencies.
        let mut indegree: HashMap<u64, u32> = HashMap::new();
        let mut ready: Vec<VertexId> = Vec::new();
        let mut deps_buf = Vec::new();
        for cell in geo.cells_of(tile.i, tile.j) {
            deps_buf.clear();
            geo.inner().dependencies(cell.i, cell.j, &mut deps_buf);
            let local = deps_buf
                .iter()
                .filter(|d| geo.tile_of(d.i, d.j) == tile)
                .count() as u32;
            if local == 0 {
                ready.push(cell);
            } else {
                indegree.insert(cell.pack(), local);
            }
        }

        let mut dep_vals: Vec<A::Value> = Vec::new();
        let mut anti_buf = Vec::new();
        while let Some(cell) = ready.pop() {
            deps_buf.clear();
            geo.inner().dependencies(cell.i, cell.j, &mut deps_buf);
            dep_vals.clear();
            for d in &deps_buf {
                let home = geo.tile_of(d.i, d.j);
                let v = if home == tile {
                    let idx = Self::cell_index(geo, tile, d.i, d.j);
                    debug_assert!(done[idx], "intra-tile order violated at {d}");
                    cells[idx].clone()
                } else {
                    let neighbour = tile_deps
                        .get(home.i, home.j)
                        .unwrap_or_else(|| panic!("tile {home} missing for cell dep {d}"));
                    neighbour.cells[Self::cell_index(geo, home, d.i, d.j)].clone()
                };
                dep_vals.push(v);
            }
            let view = DepView::new(&deps_buf, &dep_vals);
            let value = self.inner.compute(cell, &view);
            let idx = Self::cell_index(geo, tile, cell.i, cell.j);
            cells[idx] = value;
            done[idx] = true;

            anti_buf.clear();
            geo.inner().anti_dependencies(cell.i, cell.j, &mut anti_buf);
            for t in &anti_buf {
                if geo.tile_of(t.i, t.j) != tile {
                    continue;
                }
                if let Some(slot) = indegree.get_mut(&t.pack()) {
                    *slot -= 1;
                    if *slot == 0 {
                        indegree.remove(&t.pack());
                        ready.push(*t);
                    }
                }
            }
        }
        debug_assert!(indegree.is_empty(), "unscheduled intra-tile cells");
        TileValue { cells }
    }
}

/// A finished tiled run, with cell-level access.
pub struct TiledRun<V, P> {
    result: DagResult<TileValue<V>>,
    geometry: Arc<TiledDag<P>>,
}

impl<V: VertexValue, P: DagPattern> TiledRun<V, P> {
    /// The result of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is not a cell of the underlying pattern.
    pub fn get(&self, i: u32, j: u32) -> V {
        self.try_get(i, j)
            .unwrap_or_else(|| panic!("cell ({i}, {j}) was not computed"))
    }

    /// The result of cell `(i, j)`, or `None` outside the pattern.
    pub fn try_get(&self, i: u32, j: u32) -> Option<V> {
        if !self.geometry.inner().contains(i, j) {
            return None;
        }
        let t = self.geometry.tile_of(i, j);
        let tile = self.result.try_get(t.i, t.j)?;
        let (ri, rj) = self.geometry.cell_bounds(t.i, t.j);
        let idx = ((i - ri.start) * (rj.end - rj.start) + (j - rj.start)) as usize;
        Some(tile.cells[idx].clone())
    }

    /// The tile-level result and run report.
    pub fn tiles(&self) -> &DagResult<TileValue<V>> {
        &self.result
    }
}

/// Runs `app` over `pattern` with `tile × tile` blocking on the
/// threaded engine.
pub fn run_tiled_threaded<A, P>(
    app: A,
    pattern: P,
    tile: u32,
    config: EngineConfig,
) -> Result<TiledRun<A::Value, P>, EngineError>
where
    A: DpApp + 'static,
    P: DagPattern + Clone + 'static,
{
    let geometry = Arc::new(TiledDag::try_new(pattern, tile)?);
    let tiled_app = TiledApp::new(app, geometry.clone());
    let engine = ThreadedEngine::new(tiled_app, geometry.clone(), config);
    let result = engine.run()?;
    Ok(TiledRun { result, geometry })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx10_dag::builtin::{Grid3, IntervalUpper};
    use dpx10_dag::KnapsackDag;

    struct MixApp;

    impl DpApp for MixApp {
        type Value = u64;
        fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
            let mut acc = 0x9E37_79B9_u64.wrapping_mul(id.pack() | 1).rotate_left(7);
            for (did, v) in deps.iter() {
                acc = acc
                    .wrapping_add(v.rotate_left((did.i % 31) + 1))
                    .wrapping_mul(0x100_0000_01B3);
            }
            acc
        }
    }

    fn untiled_oracle(pattern: &dyn DagPattern) -> std::collections::HashMap<VertexId, u64> {
        let order = dpx10_dag::topological_order(pattern).unwrap();
        let mut out = std::collections::HashMap::new();
        let mut deps = Vec::new();
        for id in order {
            deps.clear();
            pattern.dependencies(id.i, id.j, &mut deps);
            let vals: Vec<u64> = deps.iter().map(|d| out[d]).collect();
            out.insert(id, MixApp.compute(id, &DepView::new(&deps, &vals)));
        }
        out
    }

    #[test]
    fn tiled_grid3_matches_untiled() {
        let expect = untiled_oracle(&Grid3::new(13, 11));
        for tile in [1u32, 2, 4, 7, 16] {
            let run = run_tiled_threaded(MixApp, Grid3::new(13, 11), tile, EngineConfig::flat(3))
                .unwrap();
            for (id, v) in &expect {
                assert_eq!(run.try_get(id.i, id.j), Some(*v), "tile {tile} at {id}");
            }
        }
    }

    #[test]
    fn tiled_interval_matches_untiled() {
        let expect = untiled_oracle(&IntervalUpper::new(12));
        let run =
            run_tiled_threaded(MixApp, IntervalUpper::new(12), 3, EngineConfig::flat(2)).unwrap();
        for (id, v) in &expect {
            assert_eq!(run.try_get(id.i, id.j), Some(*v), "{id}");
        }
        assert_eq!(run.try_get(11, 0), None, "lower triangle stays masked");
    }

    #[test]
    fn tiled_knapsack_matches_untiled() {
        let weights = vec![3u32, 1, 4, 2];
        let expect = untiled_oracle(&KnapsackDag::new(weights.clone(), 10));
        let run = run_tiled_threaded(
            MixApp,
            KnapsackDag::new(weights, 10),
            4,
            EngineConfig::flat(2),
        )
        .unwrap();
        for (id, v) in &expect {
            assert_eq!(run.try_get(id.i, id.j), Some(*v), "{id}");
        }
    }

    #[test]
    fn tiling_reduces_scheduled_vertices() {
        let untiled = ThreadedEngine::new(MixApp, Grid3::new(16, 16), EngineConfig::flat(2))
            .run()
            .unwrap();
        let tiled =
            run_tiled_threaded(MixApp, Grid3::new(16, 16), 4, EngineConfig::flat(2)).unwrap();
        assert_eq!(untiled.report().vertices_total, 256);
        assert_eq!(tiled.tiles().report().vertices_total, 16);
    }

    #[test]
    fn pyramid_tiling_surfaces_error() {
        use dpx10_dag::builtin::Pyramid;
        let err = match run_tiled_threaded(MixApp, Pyramid::new(8, 8), 2, EngineConfig::flat(2)) {
            Err(e) => e,
            Ok(_) => panic!("pyramid tiling must be rejected"),
        };
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn tile_value_codec_round_trips() {
        let tv = TileValue {
            cells: vec![1u64, 2, 3],
        };
        let mut buf = Vec::new();
        tv.encode(&mut buf);
        assert_eq!(buf.len(), tv.wire_size());
        let mut src = buf.as_slice();
        assert_eq!(TileValue::<u64>::decode(&mut src), Some(tv));
    }
}

//! Per-run metrics reported by the engines.

use std::time::Duration;

use dpx10_apgas::StatsSnapshot;
use dpx10_distarray::RecoveryReport;

use crate::schedule::ScheduleStrategy;

/// A scheduling strategy the engine could not honour and silently
/// replaced — previously this happened without a trace (the socket
/// engine downgrades work stealing to local because stealing pops from
/// another slot's ready list through shared memory, which only exists
/// inside one process). Recording it in the report keeps the swap
/// visible to callers and sweeps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleDowngrade {
    /// The strategy the configuration asked for.
    pub requested: ScheduleStrategy,
    /// The strategy the engine actually ran.
    pub effective: ScheduleStrategy,
    /// Why the engine could not honour the request.
    pub reason: &'static str,
}

/// Everything a finished run reports: wall/simulated time, communication
/// counters and recovery events. The figure harness consumes these.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Real elapsed time of the run (threaded engine) — on a one-core
    /// host this measures overhead, not speedup.
    pub wall_time: Duration,
    /// Simulated makespan (simulator engine; zero for threaded runs).
    pub sim_time: Duration,
    /// Vertices computed, including recomputation after faults.
    pub vertices_computed: u64,
    /// Vertices in the DAG.
    pub vertices_total: u64,
    /// Aggregated substrate counters (messages, bytes, cache hits…).
    pub comm: StatsSnapshot,
    /// One entry per recovery the run performed.
    pub recoveries: Vec<RecoveryReport>,
    /// Total simulated time spent inside recovery passes.
    pub recovery_time: Duration,
    /// Number of epochs (1 + number of faults survived).
    pub epochs: u32,
    /// Per-place busy time (worker-seconds of compute), populated by
    /// every backend — virtual time on the simulator, measured wall
    /// time on the threaded and socket engines; indexed by the final
    /// epoch's slot order.
    pub place_busy: Vec<Duration>,
    /// Set when the engine replaced the configured scheduling strategy
    /// with another one it can actually run (see [`ScheduleDowngrade`]);
    /// `None` means the run used the strategy as configured.
    pub schedule_downgrade: Option<ScheduleDowngrade>,
}

impl RunReport {
    /// Extra vertices computed due to recomputation after faults.
    pub fn recomputed(&self) -> u64 {
        self.vertices_computed.saturating_sub(self.vertices_total)
    }

    /// Mean worker utilisation of a simulated run: total busy time over
    /// `places × workers × makespan`. `None` when the run recorded no
    /// busy time or no makespan (real-time backends have no virtual
    /// makespan, so this stays simulator-only).
    pub fn utilization(&self, workers_per_place: u16) -> Option<f64> {
        if self.place_busy.is_empty() || self.sim_time.is_zero() {
            return None;
        }
        let busy: f64 = self.place_busy.iter().map(Duration::as_secs_f64).sum();
        let capacity =
            self.sim_time.as_secs_f64() * self.place_busy.len() as f64 * workers_per_place as f64;
        Some(busy / capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recomputed_counts_overwork() {
        let r = RunReport {
            vertices_computed: 130,
            vertices_total: 100,
            ..RunReport::default()
        };
        assert_eq!(r.recomputed(), 30);
    }

    #[test]
    fn utilization_bounds() {
        let r = RunReport {
            sim_time: Duration::from_secs(2),
            place_busy: vec![Duration::from_secs(1), Duration::from_secs(2)],
            ..RunReport::default()
        };
        let u = r.utilization(1).unwrap();
        assert!((u - 0.75).abs() < 1e-9);
        assert_eq!(RunReport::default().utilization(1), None);
    }

    #[test]
    fn recomputed_saturates() {
        let r = RunReport {
            vertices_computed: 90,
            vertices_total: 100,
            ..RunReport::default()
        };
        assert_eq!(r.recomputed(), 0);
    }
}

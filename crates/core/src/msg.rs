//! Inter-place protocol of the threaded engine.

use dpx10_apgas::{Coalescible, Codec};
use dpx10_dag::VertexId;

/// Messages exchanged between places while executing a DAG.
///
/// The protocol is push-based with a pull fallback, matching §VI-C: a
/// completing vertex *pushes* its value alongside the indegree decrements
/// of its remote dependents (`Done`), landing it in the consumer's FIFO
/// cache; if the value was evicted before use, the consumer *pulls* it
/// (`Pull`/`PullVal`). `Exec`/`ExecResult` carry remotely scheduled
/// vertices under the random and min-comm strategies.
#[derive(Clone, Debug)]
pub enum Msg<V> {
    /// `from` finished with `value`; decrement the indegree of `targets`
    /// (all owned by the receiver).
    Done {
        /// The finished vertex.
        from: VertexId,
        /// Its result, for the receiver's cache.
        value: V,
        /// Receiver-owned dependents to decrement.
        targets: Vec<VertexId>,
    },
    /// Request the finished value of receiver-owned `id`.
    Pull {
        /// The wanted vertex.
        id: VertexId,
    },
    /// Reply to [`Msg::Pull`].
    PullVal {
        /// The pulled vertex.
        id: VertexId,
        /// Its result.
        value: V,
    },
    /// Execute `id` here on behalf of its owner (random / min-comm
    /// scheduling); dependencies come pre-gathered.
    Exec {
        /// The vertex to compute.
        id: VertexId,
        /// Its dependency ids, in pattern order.
        dep_ids: Vec<VertexId>,
        /// The matching dependency values.
        dep_values: Vec<V>,
    },
    /// Result of an [`Msg::Exec`], returning home to the owner.
    ExecResult {
        /// The computed vertex.
        id: VertexId,
        /// Its result.
        value: V,
    },
    /// Several [`Msg::Done`]s to the same place, coalesced into one
    /// message (and one wire frame on the socket backend).
    DoneBatch {
        /// `(from, value, targets)` of each folded `Done`, in send order.
        entries: Vec<(VertexId, V, Vec<VertexId>)>,
    },
    /// Several [`Msg::Pull`]s to the same owner, coalesced.
    PullBatch {
        /// The wanted vertices, in send order.
        ids: Vec<VertexId>,
    },
    /// Several [`Msg::PullVal`]s to the same consumer, coalesced.
    PullValBatch {
        /// `(id, value)` of each folded reply, in send order.
        entries: Vec<(VertexId, V)>,
    },
    /// Push mode: `from` finished with `value`; decrement the indegree
    /// of `targets` *and* pin the value for every parked target so no
    /// pull round-trip is needed. Like [`Msg::Done`] this carries
    /// non-idempotent decrements; unlike `Done`, the receiver keeps the
    /// value reachable past cache eviction until the targets consume it.
    PushVal {
        /// The finished vertex.
        from: VertexId,
        /// Its result, pinned for the receiver's parked dependents.
        value: V,
        /// Receiver-owned dependents to decrement.
        targets: Vec<VertexId>,
    },
    /// Several [`Msg::PushVal`]s to the same place, coalesced.
    PushValBatch {
        /// `(from, value, targets)` of each folded push, in send order.
        entries: Vec<(VertexId, V, Vec<VertexId>)>,
    },
    /// Elastic mesh: the current owner of a chunk announces a pending
    /// relocation to the receiver, who should prepare to adopt it.
    /// Sent before the data so the receiver can fence the slot.
    ChunkOffer {
        /// The distribution slot being moved.
        slot: u16,
        /// The ownership epoch the offer was made under.
        epoch: u64,
        /// Finished cells the chunk carries (for progress accounting).
        cells: u32,
        /// Serialized size of the upcoming [`Msg::ChunkData`] payload.
        bytes: u64,
    },
    /// Elastic mesh: the serialized chunk itself (an encoded
    /// `ChunkState` — opaque bytes at this layer, so the protocol does
    /// not fix the array's value type).
    ChunkData {
        /// The distribution slot being moved.
        slot: u16,
        /// The ownership epoch the state was packaged under; a receiver
        /// whose fence has moved past it drops the payload (the chunk
        /// falls back to recompute).
        epoch: u64,
        /// The encoded `ChunkState`.
        chunk: Vec<u8>,
    },
    /// Elastic mesh: the new owner confirms adoption; broadcast so every
    /// place re-registers the slot in its chunk map and advances its
    /// epoch fence.
    ChunkAck {
        /// The relocated slot.
        slot: u16,
        /// The *new* ownership epoch — the stamp every fence adopts.
        epoch: u64,
    },
}

impl<V: Codec> Msg<V> {
    /// Bytes this message occupies on the wire (8 per vertex id plus the
    /// value payloads), used to price the transfer.
    pub fn wire_size(&self) -> usize {
        match self {
            Msg::Done { value, targets, .. } => 8 + value.wire_size() + 8 * targets.len(),
            Msg::Pull { .. } => 8,
            Msg::PullVal { value, .. } => 8 + value.wire_size(),
            Msg::Exec {
                dep_ids,
                dep_values,
                ..
            } => 8 + 8 * dep_ids.len() + dep_values.iter().map(Codec::wire_size).sum::<usize>(),
            Msg::ExecResult { value, .. } => 8 + value.wire_size(),
            // Batches are priced as the sum of the messages they carry,
            // so coalescing never changes modelled byte totals.
            Msg::DoneBatch { entries } => entries
                .iter()
                .map(|(_, v, ts)| 8 + v.wire_size() + 8 * ts.len())
                .sum(),
            Msg::PullBatch { ids } => 8 * ids.len(),
            Msg::PullValBatch { entries } => entries.iter().map(|(_, v)| 8 + v.wire_size()).sum(),
            // A push is priced exactly like the `Done` it replaces: the
            // value rides the decrement frame either way.
            Msg::PushVal { value, targets, .. } => 8 + value.wire_size() + 8 * targets.len(),
            Msg::PushValBatch { entries } => entries
                .iter()
                .map(|(_, v, ts)| 8 + v.wire_size() + 8 * ts.len())
                .sum(),
            // Relocation control/data plane: priced as slot + epoch
            // headers plus the chunk payload itself.
            Msg::ChunkOffer { .. } => 2 + 8 + 4 + 8,
            Msg::ChunkData { chunk, .. } => 2 + 8 + chunk.len(),
            Msg::ChunkAck { .. } => 2 + 8,
        }
    }
}

/// Per-destination aggregation buffer of [`Msg`]s, used by
/// [`dpx10_apgas::CoalescingTransport`]. Keeps the three batchable
/// families apart so a drain emits at most one batch message per family.
pub struct MsgBatch<V> {
    done: Vec<(VertexId, V, Vec<VertexId>)>,
    pulls: Vec<VertexId>,
    pull_vals: Vec<(VertexId, V)>,
    pushes: Vec<(VertexId, V, Vec<VertexId>)>,
    /// Priced bytes of everything absorbed (sum of the folded messages'
    /// inherent [`Msg::wire_size`]s).
    bytes: usize,
}

impl<V> Default for MsgBatch<V> {
    fn default() -> Self {
        MsgBatch {
            done: Vec::new(),
            pulls: Vec::new(),
            pull_vals: Vec::new(),
            pushes: Vec::new(),
            bytes: 0,
        }
    }
}

impl<V: Codec + Send> Coalescible for Msg<V> {
    type Batch = MsgBatch<V>;

    fn absorb(self, batch: &mut MsgBatch<V>) -> Result<(), Self> {
        batch.bytes += self.wire_size();
        match self {
            Msg::Done {
                from,
                value,
                targets,
            } => {
                batch.done.push((from, value, targets));
                Ok(())
            }
            Msg::Pull { id } => {
                batch.pulls.push(id);
                Ok(())
            }
            Msg::PullVal { id, value } => {
                batch.pull_vals.push((id, value));
                Ok(())
            }
            Msg::PushVal {
                from,
                value,
                targets,
            } => {
                batch.pushes.push((from, value, targets));
                Ok(())
            }
            // Exec verbs pair requests with replies, the batch variants
            // themselves never re-fold, and the relocation messages
            // order the epoch fence — all travel alone.
            other => {
                batch.bytes -= other.wire_size();
                Err(other)
            }
        }
    }

    fn batch_entries(batch: &MsgBatch<V>) -> usize {
        batch.done.len() + batch.pulls.len() + batch.pull_vals.len() + batch.pushes.len()
    }

    fn batch_bytes(batch: &MsgBatch<V>) -> usize {
        batch.bytes
    }

    fn drain(batch: &mut MsgBatch<V>) -> Vec<(Self, usize)> {
        let mut out = Vec::new();
        if !batch.done.is_empty() {
            let msg = Msg::DoneBatch {
                entries: std::mem::take(&mut batch.done),
            };
            let bytes = msg.wire_size();
            out.push((msg, bytes));
        }
        if !batch.pulls.is_empty() {
            let msg = Msg::PullBatch {
                ids: std::mem::take(&mut batch.pulls),
            };
            let bytes = msg.wire_size();
            out.push((msg, bytes));
        }
        if !batch.pull_vals.is_empty() {
            let msg = Msg::PullValBatch {
                entries: std::mem::take(&mut batch.pull_vals),
            };
            let bytes = msg.wire_size();
            out.push((msg, bytes));
        }
        if !batch.pushes.is_empty() {
            let msg = Msg::PushValBatch {
                entries: std::mem::take(&mut batch.pushes),
            };
            let bytes = msg.wire_size();
            out.push((msg, bytes));
        }
        batch.bytes = 0;
        out
    }
}

/// Encodes a list of vertex ids as packed `u64`s.
fn encode_ids(ids: &[VertexId], buf: &mut Vec<u8>) {
    (ids.len() as u64).encode(buf);
    for id in ids {
        id.pack().encode(buf);
    }
}

/// Decodes a list of packed vertex ids.
fn decode_ids(src: &mut &[u8]) -> Option<Vec<VertexId>> {
    Some(
        Vec::<u64>::decode(src)?
            .into_iter()
            .map(VertexId::unpack)
            .collect(),
    )
}

/// Real wire format of [`Msg`] for the socket backend: one tag byte,
/// vertex ids as packed `u64`s, vectors length-prefixed.
///
/// Note the inherent [`Msg::wire_size`] above is the *priced* size the
/// network model charges (it mirrors the paper's per-vertex byte
/// accounting and skips tags and length prefixes); `Codec::wire_size` is
/// the exact byte count `Codec::encode` produces. Call sites get the
/// inherent method unless they go through the trait, which is the
/// intended split: pricing for the simulator, encoding for sockets.
impl<V: Codec> Codec for Msg<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Msg::Done {
                from,
                value,
                targets,
            } => {
                buf.push(0);
                from.pack().encode(buf);
                value.encode(buf);
                encode_ids(targets, buf);
            }
            Msg::Pull { id } => {
                buf.push(1);
                id.pack().encode(buf);
            }
            Msg::PullVal { id, value } => {
                buf.push(2);
                id.pack().encode(buf);
                value.encode(buf);
            }
            Msg::Exec {
                id,
                dep_ids,
                dep_values,
            } => {
                buf.push(3);
                id.pack().encode(buf);
                encode_ids(dep_ids, buf);
                dep_values.encode(buf);
            }
            Msg::ExecResult { id, value } => {
                buf.push(4);
                id.pack().encode(buf);
                value.encode(buf);
            }
            Msg::DoneBatch { entries } => {
                buf.push(5);
                (entries.len() as u64).encode(buf);
                for (from, value, targets) in entries {
                    from.pack().encode(buf);
                    value.encode(buf);
                    encode_ids(targets, buf);
                }
            }
            Msg::PullBatch { ids } => {
                buf.push(6);
                encode_ids(ids, buf);
            }
            Msg::PullValBatch { entries } => {
                buf.push(7);
                (entries.len() as u64).encode(buf);
                for (id, value) in entries {
                    id.pack().encode(buf);
                    value.encode(buf);
                }
            }
            Msg::PushVal {
                from,
                value,
                targets,
            } => {
                buf.push(11);
                from.pack().encode(buf);
                value.encode(buf);
                encode_ids(targets, buf);
            }
            Msg::PushValBatch { entries } => {
                buf.push(12);
                (entries.len() as u64).encode(buf);
                for (from, value, targets) in entries {
                    from.pack().encode(buf);
                    value.encode(buf);
                    encode_ids(targets, buf);
                }
            }
            Msg::ChunkOffer {
                slot,
                epoch,
                cells,
                bytes,
            } => {
                buf.push(8);
                slot.encode(buf);
                epoch.encode(buf);
                cells.encode(buf);
                bytes.encode(buf);
            }
            Msg::ChunkData { slot, epoch, chunk } => {
                buf.push(9);
                slot.encode(buf);
                epoch.encode(buf);
                chunk.encode(buf);
            }
            Msg::ChunkAck { slot, epoch } => {
                buf.push(10);
                slot.encode(buf);
                epoch.encode(buf);
            }
        }
    }

    fn decode(src: &mut &[u8]) -> Option<Self> {
        match u8::decode(src)? {
            0 => Some(Msg::Done {
                from: VertexId::unpack(u64::decode(src)?),
                value: V::decode(src)?,
                targets: decode_ids(src)?,
            }),
            1 => Some(Msg::Pull {
                id: VertexId::unpack(u64::decode(src)?),
            }),
            2 => Some(Msg::PullVal {
                id: VertexId::unpack(u64::decode(src)?),
                value: V::decode(src)?,
            }),
            3 => Some(Msg::Exec {
                id: VertexId::unpack(u64::decode(src)?),
                dep_ids: decode_ids(src)?,
                dep_values: Vec::<V>::decode(src)?,
            }),
            4 => Some(Msg::ExecResult {
                id: VertexId::unpack(u64::decode(src)?),
                value: V::decode(src)?,
            }),
            5 => {
                let n = u64::decode(src)?;
                // Hostile-length guard: every entry costs at least 16
                // bytes (packed id + target count) beyond this point.
                if n > (src.len() as u64) {
                    return None;
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    entries.push((
                        VertexId::unpack(u64::decode(src)?),
                        V::decode(src)?,
                        decode_ids(src)?,
                    ));
                }
                Some(Msg::DoneBatch { entries })
            }
            6 => Some(Msg::PullBatch {
                ids: decode_ids(src)?,
            }),
            7 => {
                let n = u64::decode(src)?;
                if n > (src.len() as u64) {
                    return None;
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    entries.push((VertexId::unpack(u64::decode(src)?), V::decode(src)?));
                }
                Some(Msg::PullValBatch { entries })
            }
            8 => Some(Msg::ChunkOffer {
                slot: u16::decode(src)?,
                epoch: u64::decode(src)?,
                cells: u32::decode(src)?,
                bytes: u64::decode(src)?,
            }),
            9 => Some(Msg::ChunkData {
                slot: u16::decode(src)?,
                epoch: u64::decode(src)?,
                // The generic `Vec<u8>` decode carries the hostile-length
                // guard: a claimed length past the remaining input is
                // refused before allocation.
                chunk: Vec::<u8>::decode(src)?,
            }),
            10 => Some(Msg::ChunkAck {
                slot: u16::decode(src)?,
                epoch: u64::decode(src)?,
            }),
            11 => Some(Msg::PushVal {
                from: VertexId::unpack(u64::decode(src)?),
                value: V::decode(src)?,
                targets: decode_ids(src)?,
            }),
            12 => {
                let n = u64::decode(src)?;
                // Hostile-length guard, same shape as DoneBatch.
                if n > (src.len() as u64) {
                    return None;
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    entries.push((
                        VertexId::unpack(u64::decode(src)?),
                        V::decode(src)?,
                        decode_ids(src)?,
                    ));
                }
                Some(Msg::PushValBatch { entries })
            }
            _ => None,
        }
    }

    fn wire_size(&self) -> usize {
        1 + match self {
            Msg::Done { value, targets, .. } => 8 + Codec::wire_size(value) + 8 + 8 * targets.len(),
            Msg::Pull { .. } => 8,
            Msg::PullVal { value, .. } => 8 + Codec::wire_size(value),
            Msg::Exec {
                dep_ids,
                dep_values,
                ..
            } => 8 + 8 + 8 * dep_ids.len() + Codec::wire_size(dep_values),
            Msg::ExecResult { value, .. } => 8 + Codec::wire_size(value),
            Msg::DoneBatch { entries } => {
                8 + entries
                    .iter()
                    .map(|(_, v, ts)| 8 + Codec::wire_size(v) + 8 + 8 * ts.len())
                    .sum::<usize>()
            }
            Msg::PullBatch { ids } => 8 + 8 * ids.len(),
            Msg::PullValBatch { entries } => {
                8 + entries
                    .iter()
                    .map(|(_, v)| 8 + Codec::wire_size(v))
                    .sum::<usize>()
            }
            Msg::PushVal { value, targets, .. } => {
                8 + Codec::wire_size(value) + 8 + 8 * targets.len()
            }
            Msg::PushValBatch { entries } => {
                8 + entries
                    .iter()
                    .map(|(_, v, ts)| 8 + Codec::wire_size(v) + 8 + 8 * ts.len())
                    .sum::<usize>()
            }
            Msg::ChunkOffer { .. } => 2 + 8 + 4 + 8,
            // `Vec<u8>` encodes with its u64 length prefix.
            Msg::ChunkData { chunk, .. } => 2 + 8 + 8 + chunk.len(),
            Msg::ChunkAck { .. } => 2 + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx10_apgas::codec::{decode_exact, encode_to_vec};

    #[test]
    fn wire_sizes() {
        let done = Msg::Done {
            from: VertexId::new(0, 0),
            value: 7i64,
            targets: vec![VertexId::new(0, 1), VertexId::new(1, 0)],
        };
        assert_eq!(done.wire_size(), 8 + 8 + 16);
        assert_eq!(
            Msg::<i64>::Pull {
                id: VertexId::new(0, 0)
            }
            .wire_size(),
            8
        );
        let exec = Msg::Exec {
            id: VertexId::new(2, 2),
            dep_ids: vec![VertexId::new(1, 2)],
            dep_values: vec![3i64],
        };
        assert_eq!(exec.wire_size(), 8 + 8 + 8);
    }

    #[test]
    fn codec_round_trips_every_variant() {
        let msgs: Vec<Msg<i64>> = vec![
            Msg::Done {
                from: VertexId::new(3, 4),
                value: -9,
                targets: vec![VertexId::new(3, 5), VertexId::new(4, 4)],
            },
            Msg::Pull {
                id: VertexId::new(0, u32::MAX),
            },
            Msg::PullVal {
                id: VertexId::new(7, 7),
                value: i64::MIN,
            },
            Msg::Exec {
                id: VertexId::new(2, 2),
                dep_ids: vec![VertexId::new(1, 2), VertexId::new(2, 1)],
                dep_values: vec![10, 20],
            },
            Msg::ExecResult {
                id: VertexId::new(9, 1),
                value: 0,
            },
        ];
        for msg in msgs {
            let buf = encode_to_vec(&msg);
            assert_eq!(buf.len(), Codec::wire_size(&msg), "{msg:?}");
            let back: Msg<i64> = decode_exact(&buf).expect("decodes");
            match (&msg, &back) {
                (
                    Msg::Done {
                        from: a,
                        value: va,
                        targets: ta,
                    },
                    Msg::Done {
                        from: b,
                        value: vb,
                        targets: tb,
                    },
                ) => {
                    assert_eq!((a, va, ta), (b, vb, tb));
                }
                (Msg::Pull { id: a }, Msg::Pull { id: b }) => assert_eq!(a, b),
                (Msg::PullVal { id: a, value: va }, Msg::PullVal { id: b, value: vb }) => {
                    assert_eq!((a, va), (b, vb))
                }
                (
                    Msg::Exec {
                        id: a,
                        dep_ids: da,
                        dep_values: va,
                    },
                    Msg::Exec {
                        id: b,
                        dep_ids: db,
                        dep_values: vb,
                    },
                ) => assert_eq!((a, da, va), (b, db, vb)),
                (Msg::ExecResult { id: a, value: va }, Msg::ExecResult { id: b, value: vb }) => {
                    assert_eq!((a, va), (b, vb))
                }
                (a, b) => panic!("variant changed in flight: {a:?} -> {b:?}"),
            }
        }
    }

    #[test]
    fn codec_rejects_unknown_tag_and_truncation() {
        assert!(decode_exact::<Msg<i64>>(&[13, 0, 0, 0, 0, 0, 0, 0, 0]).is_none());
        let buf = encode_to_vec(&Msg::PullVal {
            id: VertexId::new(1, 1),
            value: 5i64,
        });
        assert!(decode_exact::<Msg<i64>>(&buf[..buf.len() - 1]).is_none());
    }

    fn assert_batch_round_trip(msg: &Msg<i64>) {
        let buf = encode_to_vec(msg);
        assert_eq!(buf.len(), Codec::wire_size(msg), "{msg:?}");
        let back: Msg<i64> = decode_exact(&buf).expect("decodes");
        match (msg, &back) {
            (Msg::DoneBatch { entries: a }, Msg::DoneBatch { entries: b }) => assert_eq!(a, b),
            (Msg::PullBatch { ids: a }, Msg::PullBatch { ids: b }) => assert_eq!(a, b),
            (Msg::PullValBatch { entries: a }, Msg::PullValBatch { entries: b }) => {
                assert_eq!(a, b)
            }
            (a, b) => panic!("variant changed in flight: {a:?} -> {b:?}"),
        }
    }

    #[test]
    fn batch_codec_round_trips_including_empty() {
        assert_batch_round_trip(&Msg::DoneBatch {
            entries: vec![
                (VertexId::new(0, 1), -3, vec![VertexId::new(1, 1)]),
                (VertexId::new(2, 2), 9, vec![]),
            ],
        });
        assert_batch_round_trip(&Msg::DoneBatch { entries: vec![] });
        assert_batch_round_trip(&Msg::PullBatch {
            ids: vec![VertexId::new(0, u32::MAX), VertexId::new(5, 0)],
        });
        assert_batch_round_trip(&Msg::PullBatch { ids: vec![] });
        assert_batch_round_trip(&Msg::PullValBatch {
            entries: vec![(VertexId::new(3, 3), i64::MIN)],
        });
        assert_batch_round_trip(&Msg::PullValBatch { entries: vec![] });
    }

    #[test]
    fn batch_codec_rejects_hostile_length_and_truncation() {
        // A DoneBatch claiming u64::MAX entries with no payload.
        let mut buf = vec![5u8];
        u64::MAX.encode(&mut buf);
        assert!(decode_exact::<Msg<i64>>(&buf).is_none());
        let full = encode_to_vec(&Msg::PullValBatch {
            entries: vec![(VertexId::new(1, 2), 7i64), (VertexId::new(3, 4), 8)],
        });
        assert!(decode_exact::<Msg<i64>>(&full[..full.len() - 1]).is_none());
    }

    #[test]
    fn priced_size_is_invariant_under_batching() {
        let singles: Vec<Msg<i64>> = vec![
            Msg::Done {
                from: VertexId::new(0, 0),
                value: 1,
                targets: vec![VertexId::new(0, 1), VertexId::new(1, 0)],
            },
            Msg::Done {
                from: VertexId::new(2, 0),
                value: 2,
                targets: vec![VertexId::new(2, 1)],
            },
            Msg::Pull {
                id: VertexId::new(4, 4),
            },
            Msg::PullVal {
                id: VertexId::new(5, 5),
                value: 3,
            },
        ];
        let priced: usize = singles.iter().map(Msg::wire_size).sum();
        let mut batch = MsgBatch::default();
        for m in singles {
            m.absorb(&mut batch).expect("all batchable");
        }
        assert_eq!(Msg::<i64>::batch_bytes(&batch), priced);
        assert_eq!(Msg::<i64>::batch_entries(&batch), 4);
        let drained = Msg::<i64>::drain(&mut batch);
        assert_eq!(drained.len(), 3, "one message per non-empty family");
        assert_eq!(drained.iter().map(|(_, b)| b).sum::<usize>(), priced);
        assert_eq!(Msg::<i64>::batch_entries(&batch), 0);
        assert_eq!(Msg::<i64>::batch_bytes(&batch), 0);
    }

    #[test]
    fn push_codec_round_trips_with_exact_size() {
        let msgs: Vec<Msg<i64>> = vec![
            Msg::PushVal {
                from: VertexId::new(3, 4),
                value: -9,
                targets: vec![VertexId::new(3, 5), VertexId::new(4, 4)],
            },
            Msg::PushVal {
                from: VertexId::new(0, u32::MAX),
                value: i64::MIN,
                targets: vec![],
            },
            Msg::PushValBatch {
                entries: vec![
                    (VertexId::new(0, 1), -3, vec![VertexId::new(1, 1)]),
                    (VertexId::new(2, 2), 9, vec![]),
                ],
            },
            Msg::PushValBatch { entries: vec![] },
        ];
        for msg in msgs {
            let buf = encode_to_vec(&msg);
            assert_eq!(buf.len(), Codec::wire_size(&msg), "{msg:?}");
            let back: Msg<i64> = decode_exact(&buf).expect("decodes");
            match (&msg, &back) {
                (
                    Msg::PushVal {
                        from: a,
                        value: va,
                        targets: ta,
                    },
                    Msg::PushVal {
                        from: b,
                        value: vb,
                        targets: tb,
                    },
                ) => assert_eq!((a, va, ta), (b, vb, tb)),
                (Msg::PushValBatch { entries: a }, Msg::PushValBatch { entries: b }) => {
                    assert_eq!(a, b)
                }
                (a, b) => panic!("variant changed in flight: {a:?} -> {b:?}"),
            }
        }
    }

    #[test]
    fn push_codec_rejects_hostile_length_and_truncation() {
        // A PushValBatch claiming u64::MAX entries with no payload.
        let mut buf = vec![12u8];
        u64::MAX.encode(&mut buf);
        assert!(decode_exact::<Msg<i64>>(&buf).is_none());
        let full = encode_to_vec(&Msg::PushVal {
            from: VertexId::new(1, 2),
            value: 7i64,
            targets: vec![VertexId::new(1, 3)],
        });
        for cut in 0..full.len() {
            assert!(
                decode_exact::<Msg<i64>>(&full[..cut]).is_none(),
                "truncated at {cut} must not decode"
            );
        }
    }

    #[test]
    fn pushes_fold_into_their_own_batch_family() {
        let singles: Vec<Msg<i64>> = vec![
            Msg::PushVal {
                from: VertexId::new(0, 0),
                value: 1,
                targets: vec![VertexId::new(0, 1)],
            },
            Msg::PushVal {
                from: VertexId::new(1, 0),
                value: 2,
                targets: vec![VertexId::new(1, 1), VertexId::new(2, 0)],
            },
            Msg::Pull {
                id: VertexId::new(4, 4),
            },
        ];
        let priced: usize = singles.iter().map(Msg::wire_size).sum();
        let mut batch = MsgBatch::default();
        for m in singles {
            m.absorb(&mut batch).expect("all batchable");
        }
        assert_eq!(Msg::<i64>::batch_entries(&batch), 3);
        assert_eq!(Msg::<i64>::batch_bytes(&batch), priced);
        let drained = Msg::<i64>::drain(&mut batch);
        assert_eq!(drained.len(), 2, "one pushes batch, one pulls batch");
        assert!(drained
            .iter()
            .any(|(m, _)| matches!(m, Msg::PushValBatch { entries } if entries.len() == 2)));
        assert_eq!(drained.iter().map(|(_, b)| b).sum::<usize>(), priced);
    }

    #[test]
    fn chunk_codec_round_trips_with_exact_size() {
        let msgs: Vec<Msg<i64>> = vec![
            Msg::ChunkOffer {
                slot: 4,
                epoch: 17,
                cells: 1000,
                bytes: 65_536,
            },
            Msg::ChunkData {
                slot: 4,
                epoch: 17,
                chunk: vec![1, 2, 3, 255, 0],
            },
            Msg::ChunkData {
                slot: 0,
                epoch: 0,
                chunk: vec![],
            },
            Msg::ChunkAck { slot: 4, epoch: 18 },
        ];
        for msg in msgs {
            let buf = encode_to_vec(&msg);
            assert_eq!(buf.len(), Codec::wire_size(&msg), "{msg:?}");
            let back: Msg<i64> = decode_exact(&buf).expect("decodes");
            match (&msg, &back) {
                (
                    Msg::ChunkOffer {
                        slot: sa,
                        epoch: ea,
                        cells: ca,
                        bytes: ba,
                    },
                    Msg::ChunkOffer {
                        slot: sb,
                        epoch: eb,
                        cells: cb,
                        bytes: bb,
                    },
                ) => assert_eq!((sa, ea, ca, ba), (sb, eb, cb, bb)),
                (
                    Msg::ChunkData {
                        slot: sa,
                        epoch: ea,
                        chunk: ca,
                    },
                    Msg::ChunkData {
                        slot: sb,
                        epoch: eb,
                        chunk: cb,
                    },
                ) => assert_eq!((sa, ea, ca), (sb, eb, cb)),
                (
                    Msg::ChunkAck {
                        slot: sa,
                        epoch: ea,
                    },
                    Msg::ChunkAck {
                        slot: sb,
                        epoch: eb,
                    },
                ) => assert_eq!((sa, ea), (sb, eb)),
                (a, b) => panic!("variant changed in flight: {a:?} -> {b:?}"),
            }
        }
    }

    #[test]
    fn chunk_codec_rejects_hostile_length_and_truncation() {
        // A ChunkData claiming 2^59 payload bytes with a 1-byte body.
        let mut buf = vec![9u8];
        4u16.encode(&mut buf);
        17u64.encode(&mut buf);
        (1u64 << 59).encode(&mut buf);
        buf.push(0);
        assert!(decode_exact::<Msg<i64>>(&buf).is_none());
        // Truncation anywhere mid-message is a clean None.
        let full = encode_to_vec(&Msg::<i64>::ChunkData {
            slot: 4,
            epoch: 17,
            chunk: vec![9, 8, 7],
        });
        for cut in 0..full.len() {
            assert!(
                decode_exact::<Msg<i64>>(&full[..cut]).is_none(),
                "truncated at {cut} must not decode"
            );
        }
    }

    #[test]
    fn relocation_messages_refuse_to_fold() {
        let mut batch = MsgBatch::<i64>::default();
        for msg in [
            Msg::ChunkOffer {
                slot: 1,
                epoch: 2,
                cells: 3,
                bytes: 4,
            },
            Msg::ChunkData {
                slot: 1,
                epoch: 2,
                chunk: vec![0],
            },
            Msg::ChunkAck { slot: 1, epoch: 3 },
        ] {
            let refused = msg.absorb(&mut batch);
            assert!(refused.is_err(), "{refused:?} must travel alone");
        }
        assert_eq!(Msg::<i64>::batch_bytes(&batch), 0);
    }

    #[test]
    fn exec_and_batch_variants_refuse_to_fold() {
        let mut batch = MsgBatch::<i64>::default();
        let exec = Msg::Exec {
            id: VertexId::new(1, 1),
            dep_ids: vec![],
            dep_values: vec![],
        };
        assert!(exec.absorb(&mut batch).is_err());
        let nested = Msg::PullBatch {
            ids: vec![VertexId::new(0, 0)],
        };
        assert!(nested.absorb(&mut batch).is_err());
        assert_eq!(
            Msg::<i64>::batch_bytes(&batch),
            0,
            "rejects leave no residue"
        );
    }
}

//! Inter-place protocol of the threaded engine.

use dpx10_apgas::Codec;
use dpx10_dag::VertexId;

/// Messages exchanged between places while executing a DAG.
///
/// The protocol is push-based with a pull fallback, matching §VI-C: a
/// completing vertex *pushes* its value alongside the indegree decrements
/// of its remote dependents (`Done`), landing it in the consumer's FIFO
/// cache; if the value was evicted before use, the consumer *pulls* it
/// (`Pull`/`PullVal`). `Exec`/`ExecResult` carry remotely scheduled
/// vertices under the random and min-comm strategies.
#[derive(Clone, Debug)]
pub enum Msg<V> {
    /// `from` finished with `value`; decrement the indegree of `targets`
    /// (all owned by the receiver).
    Done {
        /// The finished vertex.
        from: VertexId,
        /// Its result, for the receiver's cache.
        value: V,
        /// Receiver-owned dependents to decrement.
        targets: Vec<VertexId>,
    },
    /// Request the finished value of receiver-owned `id`.
    Pull {
        /// The wanted vertex.
        id: VertexId,
    },
    /// Reply to [`Msg::Pull`].
    PullVal {
        /// The pulled vertex.
        id: VertexId,
        /// Its result.
        value: V,
    },
    /// Execute `id` here on behalf of its owner (random / min-comm
    /// scheduling); dependencies come pre-gathered.
    Exec {
        /// The vertex to compute.
        id: VertexId,
        /// Its dependency ids, in pattern order.
        dep_ids: Vec<VertexId>,
        /// The matching dependency values.
        dep_values: Vec<V>,
    },
    /// Result of an [`Msg::Exec`], returning home to the owner.
    ExecResult {
        /// The computed vertex.
        id: VertexId,
        /// Its result.
        value: V,
    },
}

impl<V: Codec> Msg<V> {
    /// Bytes this message occupies on the wire (8 per vertex id plus the
    /// value payloads), used to price the transfer.
    pub fn wire_size(&self) -> usize {
        match self {
            Msg::Done { value, targets, .. } => 8 + value.wire_size() + 8 * targets.len(),
            Msg::Pull { .. } => 8,
            Msg::PullVal { value, .. } => 8 + value.wire_size(),
            Msg::Exec {
                dep_ids,
                dep_values,
                ..
            } => {
                8 + 8 * dep_ids.len()
                    + dep_values.iter().map(Codec::wire_size).sum::<usize>()
            }
            Msg::ExecResult { value, .. } => 8 + value.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let done = Msg::Done {
            from: VertexId::new(0, 0),
            value: 7i64,
            targets: vec![VertexId::new(0, 1), VertexId::new(1, 0)],
        };
        assert_eq!(done.wire_size(), 8 + 8 + 16);
        assert_eq!(Msg::<i64>::Pull { id: VertexId::new(0, 0) }.wire_size(), 8);
        let exec = Msg::Exec {
            id: VertexId::new(2, 2),
            dep_ids: vec![VertexId::new(1, 2)],
            dep_values: vec![3i64],
        };
        assert_eq!(exec.wire_size(), 8 + 8 + 8);
    }
}

//! Spill-to-disk store for finished vertex values.
//!
//! The paper's future work: "Currently the entire computation state
//! resides in RAM. We are working on spilling some data to local disk to
//! enable computations on large scale of DP problems" (§X). This module
//! implements that extension: a per-place append-only spill file holding
//! encoded `(id, value)` records, with an in-memory index. The engines
//! can evict cold finished values here and fault recovery can replay the
//! file as a free local snapshot.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dpx10_apgas::Codec;
use dpx10_dag::VertexId;

/// An append-only on-disk store of finished vertex values for one place.
pub struct SpillStore<V> {
    path: PathBuf,
    writer: BufWriter<File>,
    /// packed id -> (offset, len) of the encoded value.
    index: HashMap<u64, (u64, u32)>,
    bytes_written: u64,
    _marker: std::marker::PhantomData<V>,
}

impl<V: Codec> SpillStore<V> {
    /// Creates (truncating) a spill file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(SpillStore {
            path,
            writer: BufWriter::new(file),
            index: HashMap::new(),
            bytes_written: 0,
            _marker: std::marker::PhantomData,
        })
    }

    /// Opens an existing spill file for replay and further appends,
    /// rebuilding the in-memory index from the records on disk.
    pub fn open_readonly(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut raw = Vec::new();
        File::open(&path)?.read_to_end(&mut raw)?;
        let mut index = HashMap::new();
        let mut pos = 0usize;
        while pos + 12 <= raw.len() {
            let id = u64::from_le_bytes(raw[pos..pos + 8].try_into().unwrap());
            let len = u32::from_le_bytes(raw[pos + 8..pos + 12].try_into().unwrap()) as usize;
            let val_at = pos + 12;
            if val_at + len > raw.len() {
                break; // truncated tail record
            }
            index.insert(id, (val_at as u64, len as u32));
            pos = val_at + len;
        }
        // Drop any truncated tail record so future appends start at a
        // record boundary.
        let mut file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(pos as u64)?;
        file.seek(SeekFrom::End(0))?;
        Ok(SpillStore {
            path,
            writer: BufWriter::new(file),
            index,
            bytes_written: pos as u64,
            _marker: std::marker::PhantomData,
        })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of spilled values.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no values.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total bytes appended so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Appends `(id, value)`. Re-spilling an id supersedes the old record
    /// (last write wins via the index).
    pub fn spill(&mut self, id: VertexId, value: &V) -> std::io::Result<()> {
        let mut buf = Vec::with_capacity(value.wire_size());
        value.encode(&mut buf);
        let offset = self.bytes_written;
        self.writer.write_all(&id.pack().to_le_bytes())?;
        self.writer.write_all(&(buf.len() as u32).to_le_bytes())?;
        self.writer.write_all(&buf)?;
        self.bytes_written += 12 + buf.len() as u64;
        self.index
            .insert(id.pack(), (offset + 12, buf.len() as u32));
        Ok(())
    }

    /// Reads back a spilled value.
    pub fn fetch(&mut self, id: VertexId) -> std::io::Result<Option<V>> {
        let Some(&(offset, len)) = self.index.get(&id.pack()) else {
            return Ok(None);
        };
        self.writer.flush()?;
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)?;
        let mut src = buf.as_slice();
        Ok(V::decode(&mut src))
    }

    /// Replays the whole file in write order, yielding `(id, value)` —
    /// the recovery path's "free local snapshot". Superseded records are
    /// skipped.
    pub fn replay(&mut self) -> std::io::Result<Vec<(VertexId, V)>> {
        self.writer.flush()?;
        let mut file = File::open(&self.path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut out = Vec::with_capacity(self.index.len());
        let mut pos = 0usize;
        let mut offset_of = HashMap::new();
        while pos + 12 <= raw.len() {
            let id = u64::from_le_bytes(raw[pos..pos + 8].try_into().unwrap());
            let len = u32::from_le_bytes(raw[pos + 8..pos + 12].try_into().unwrap()) as usize;
            let val_at = pos + 12;
            if val_at + len > raw.len() {
                break; // truncated tail record
            }
            offset_of.insert(id, (val_at, len));
            pos = val_at + len;
        }
        for (&id, &(val_at, len)) in &offset_of {
            // Only the live (indexed) version counts.
            if let Some(&(idx_off, _)) = self.index.get(&id) {
                if idx_off != val_at as u64 {
                    continue;
                }
            }
            let mut src = &raw[val_at..val_at + len];
            if let Some(v) = V::decode(&mut src) {
                out.push((VertexId::unpack(id), v));
            }
        }
        out.sort_by_key(|(id, _)| id.pack());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dpx10-spill-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn spill_and_fetch() {
        let path = temp_path("basic");
        let mut store: SpillStore<i64> = SpillStore::create(&path).unwrap();
        store.spill(VertexId::new(1, 2), &42).unwrap();
        store.spill(VertexId::new(3, 4), &-7).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.fetch(VertexId::new(1, 2)).unwrap(), Some(42));
        assert_eq!(store.fetch(VertexId::new(3, 4)).unwrap(), Some(-7));
        assert_eq!(store.fetch(VertexId::new(9, 9)).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn last_write_wins() {
        let path = temp_path("supersede");
        let mut store: SpillStore<u32> = SpillStore::create(&path).unwrap();
        store.spill(VertexId::new(0, 0), &1).unwrap();
        store.spill(VertexId::new(0, 0), &2).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.fetch(VertexId::new(0, 0)).unwrap(), Some(2));
        let replayed = store.replay().unwrap();
        assert_eq!(replayed, vec![(VertexId::new(0, 0), 2)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_recovers_everything() {
        let path = temp_path("replay");
        let mut store: SpillStore<u64> = SpillStore::create(&path).unwrap();
        for k in 0..50u32 {
            store
                .spill(VertexId::new(k / 10, k % 10), &(k as u64 * 3))
                .unwrap();
        }
        let replayed = store.replay().unwrap();
        assert_eq!(replayed.len(), 50);
        for (id, v) in replayed {
            assert_eq!(v, (id.i * 10 + id.j) as u64 * 3);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bytes_written_accounts_records() {
        let path = temp_path("bytes");
        let mut store: SpillStore<u32> = SpillStore::create(&path).unwrap();
        store.spill(VertexId::new(0, 0), &5).unwrap();
        assert_eq!(store.bytes_written(), 12 + 4);
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod reopen_tests {
    use super::*;

    #[test]
    fn reopen_restores_index_and_appends() {
        let mut path = std::env::temp_dir();
        path.push(format!("dpx10-spill-{}-reopen", std::process::id()));
        {
            let mut store: SpillStore<u64> = SpillStore::create(&path).unwrap();
            store.spill(VertexId::new(0, 1), &10).unwrap();
            store.spill(VertexId::new(0, 2), &20).unwrap();
        }
        let mut store: SpillStore<u64> = SpillStore::open_readonly(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.fetch(VertexId::new(0, 1)).unwrap(), Some(10));
        store.spill(VertexId::new(0, 3), &30).unwrap();
        let replayed = store.replay().unwrap();
        assert_eq!(replayed.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_drops_truncated_tail() {
        let mut path = std::env::temp_dir();
        path.push(format!("dpx10-spill-{}-tail", std::process::id()));
        {
            let mut store: SpillStore<u64> = SpillStore::create(&path).unwrap();
            store.spill(VertexId::new(0, 1), &10).unwrap();
        }
        // Simulate a crash mid-record: append half a header.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[1, 2, 3, 4, 5]).unwrap();
        }
        let mut store: SpillStore<u64> = SpillStore::open_readonly(&path).unwrap();
        assert_eq!(store.len(), 1);
        store.spill(VertexId::new(0, 2), &20).unwrap();
        let replayed = store.replay().unwrap();
        assert_eq!(
            replayed,
            vec![(VertexId::new(0, 1), 10), (VertexId::new(0, 2), 20)]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_drops_record_truncated_inside_its_value() {
        // A crash can cut a record anywhere, not just in the header:
        // here the last record's header landed on disk but its value
        // bytes did not all make it. The reopen scan must index only
        // the intact prefix, shed the torn record without panicking,
        // and leave the store appendable.
        let mut path = std::env::temp_dir();
        path.push(format!("dpx10-spill-{}-torn-value", std::process::id()));
        {
            let mut store: SpillStore<u64> = SpillStore::create(&path).unwrap();
            store.spill(VertexId::new(0, 1), &10).unwrap();
            store.spill(VertexId::new(0, 2), &20).unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(full - 3).unwrap(); // cut into record 2's value
        }
        let mut store: SpillStore<u64> = SpillStore::open_readonly(&path).unwrap();
        assert_eq!(store.len(), 1, "only the intact prefix is indexed");
        assert_eq!(store.fetch(VertexId::new(0, 1)).unwrap(), Some(10));
        assert_eq!(store.fetch(VertexId::new(0, 2)).unwrap(), None);
        // The torn tail was trimmed, so appends land on a clean offset.
        store.spill(VertexId::new(0, 3), &30).unwrap();
        let replayed = store.replay().unwrap();
        assert_eq!(
            replayed,
            vec![(VertexId::new(0, 1), 10), (VertexId::new(0, 3), 30)]
        );
        std::fs::remove_file(&path).ok();
    }
}

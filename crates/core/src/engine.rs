//! The threaded DPX10 engine.
//!
//! Reproduces the execution overview of paper §VI-A on the APGAS
//! substrate: distribute + initialise the DAG over places, seed the ready
//! lists with zero-indegree vertices, run one worker (of
//! `threads_per_place` threads) per place until every vertex is finished,
//! then invoke `appFinished`. Fault tolerance follows §VI-D: a
//! `DeadPlaceError` ends the epoch, the paper's recovery rebuilds the
//! distributed array over the survivors, and a fresh epoch resumes from
//! the restored state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpx10_apgas::{
    mailbox::Envelope, ChaosRng, ChaosTransport, CoalesceConfig, CoalescingTransport, Codec,
    FinishScope, KillTrigger, LocalTransport, NetworkModel, PlaceId, Runtime, RuntimeConfig,
    Topology, Transport,
};
use dpx10_dag::{validate_pattern, AggSpec, DagPattern, DepInterval, VertexId};
use dpx10_distarray::{recover, Dist, DistArray, RecoveryCostModel, Region2D};
use dpx10_obs::{EventKind, Recorder, RUNTIME_WORKER};

use crate::app::{AggView, DagResult, DepView, DpApp};
use crate::checkpoint::CheckpointWriters;
use crate::config::{CommsMode, EngineConfig, InitOverride};
use crate::error::EngineError;
use crate::msg::Msg;
use crate::schedule::{min_comm_choice, random_choice, ScheduleStrategy};
use crate::state::{build_shards, collect_array, local_index, Fill, Shard};
use crate::stats::RunReport;

/// The threaded engine: one instance runs one application to completion.
pub struct ThreadedEngine<A: DpApp> {
    app: Arc<A>,
    pattern: Arc<dyn DagPattern>,
    config: EngineConfig,
    init: Option<InitOverride<A::Value>>,
    recorder: Recorder,
}

impl<A: DpApp + 'static> ThreadedEngine<A> {
    /// Creates an engine for `app` over `pattern` with `config`.
    pub fn new(app: A, pattern: impl DagPattern + 'static, config: EngineConfig) -> Self {
        ThreadedEngine {
            app: Arc::new(app),
            pattern: Arc::new(pattern),
            config,
            init: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Installs a §VI-E initialisation override (pre-finish cells).
    pub fn with_init(mut self, init: InitOverride<A::Value>) -> Self {
        self.init = Some(init);
        self
    }

    /// Attaches a flight recorder; compute spans, cache traffic, pull
    /// round-trips and epoch/recovery events are recorded into it.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs the computation to completion (surviving any planned fault)
    /// and returns the full result set.
    pub fn run(&self) -> Result<DagResult<A::Value>, EngineError> {
        let pattern = &self.pattern;
        let total = pattern.vertex_count();
        if self.config.validate_pattern && total <= self.config.validate_limit {
            validate_pattern(pattern.as_ref())?;
        }
        let chaos_kills: Vec<dpx10_apgas::KillSpec> = self
            .config
            .chaos
            .as_ref()
            .map(|p| p.kills.clone())
            .unwrap_or_default();
        for victim in self
            .config
            .fault
            .iter()
            .map(|p| p.place)
            .chain(chaos_kills.iter().map(|k| k.place))
        {
            if victim == PlaceId::ZERO
                || victim.index() >= self.config.topology.num_places() as usize
            {
                return Err(EngineError::BadFaultPlan(format!(
                    "{victim} is not a killable place"
                )));
            }
        }

        let topo = self.config.topology;
        let rt = Runtime::new(RuntimeConfig {
            topology: topo,
            network: self.config.network,
        });
        let region = Region2D::new(pattern.height(), pattern.width());

        let checkpoint = match &self.config.checkpoint {
            Some(cfg) => Some(Arc::new(
                CheckpointWriters::create(cfg, topo.num_places())
                    .map_err(|e| EngineError::BadFaultPlan(format!("checkpoint: {e}")))?,
            )),
            None => None,
        };
        let started = Instant::now();
        let mut report = RunReport {
            vertices_total: total,
            ..RunReport::default()
        };
        let mut prior: Option<DistArray<A::Value>> = None;
        let mut alive: Vec<PlaceId> = rt.places().collect();
        let mut busy_by_place = vec![0u64; topo.num_places() as usize];

        let final_array = loop {
            report.epochs += 1;
            self.recorder.instant_now(
                0,
                RUNTIME_WORKER,
                EventKind::EpochStart,
                u64::from(report.epochs),
            );
            let dist = Arc::new(Dist::new(
                region,
                self.config.dist_kind.clone(),
                alive.clone(),
            ));
            let agg = agg_mode(&self.config, self.app.as_ref(), pattern.as_ref());
            let (shards, prefinished) = build_shards(
                pattern.as_ref(),
                &dist,
                prior.as_ref(),
                None,
                self.init.as_ref(),
                self.config.cache_capacity,
                agg,
            );
            if agg.is_some() {
                // Recovery/init epochs: prefinished cells never publish
                // again, so their keys must be reseeded into every
                // place's lanes (the in-process engine holds the full
                // prior array, so no place is left with gaps).
                seed_aggs(self.app.as_ref(), &shards);
            }

            if prefinished == total {
                break collect_array(&shards, &dist);
            }

            let mut transport: Arc<dyn Transport<Msg<A::Value>>> = Arc::new(LocalTransport::new(
                topo,
                self.config.network,
                rt.liveness().clone(),
                rt.stats().clone(),
            ));
            if let Some(plan) = &self.config.chaos {
                if !plan.net.is_off() {
                    // `Done` and `PushVal` carry indegree decrements,
                    // which are not idempotent — everything else on this
                    // plane is.
                    let dup_safe: dpx10_apgas::chaos::DupSafe<Msg<A::Value>> = Arc::new(|m| {
                        !matches!(
                            m,
                            Msg::Done { .. }
                                | Msg::DoneBatch { .. }
                                | Msg::PushVal { .. }
                                | Msg::PushValBatch { .. }
                        )
                    });
                    transport = Arc::new(ChaosTransport::new(
                        transport, plan.net, plan.seed, dup_safe,
                    ));
                }
            }
            if let Some(max_bytes) = self.config.coalesce {
                // Built fresh each epoch (outside the chaos layer so
                // flushed batches still face injected delay/dup):
                // buffered traffic of an abandoned epoch dies here.
                transport = Arc::new(CoalescingTransport::new(
                    transport,
                    CoalesceConfig::bytes(max_bytes),
                    rt.stats().clone(),
                    self.recorder.clone(),
                ));
            }

            // Progress-triggered kills, one-shot across epochs: don't
            // re-kill after recovery. The legacy single-fault plan and
            // the chaos plan's kills arm side by side.
            let to_threshold = |frac: f64| ((frac * total as f64).ceil() as u64).clamp(1, total);
            let mut fault_plan: Vec<FaultTrigger> = Vec::new();
            let mut time_kills: Vec<(PlaceId, Duration)> = Vec::new();
            for (victim, frac) in self
                .config
                .fault
                .iter()
                .map(|p| (p.place, p.after_fraction))
                .chain(chaos_kills.iter().filter_map(|k| match k.trigger {
                    KillTrigger::Progress(f) => Some((k.place, f)),
                    KillTrigger::After(_) => None,
                }))
            {
                if rt.liveness().is_alive(victim) {
                    fault_plan.push(FaultTrigger {
                        victim,
                        threshold: to_threshold(frac),
                        fired: AtomicBool::new(false),
                    });
                }
            }
            for k in &chaos_kills {
                if let KillTrigger::After(t) = k.trigger {
                    if rt.liveness().is_alive(k.place) {
                        time_kills.push((k.place, t));
                    }
                }
            }

            let shared = Arc::new(Shared {
                app: self.app.clone(),
                stall_limit: self.config.stall_limit,
                pattern: pattern.clone(),
                dist: dist.clone(),
                shards,
                transport,
                topo,
                net: self.config.network,
                schedule: self.config.schedule,
                liveness: rt.liveness().clone(),
                stats: rt.stats().clone(),
                total,
                finished_global: AtomicU64::new(prefinished),
                computed: AtomicU64::new(0),
                done: AtomicBool::new(false),
                fault: AtomicBool::new(false),
                stalled: AtomicBool::new(false),
                fault_plan,
                time_kills,
                run_started: started,
                shake: self
                    .config
                    .chaos
                    .as_ref()
                    .filter(|p| p.shake)
                    .map(|p| p.seed),
                worker_seq: AtomicU64::new(0),
                checkpoint: checkpoint.clone(),
                recorder: self.recorder.clone(),
                comms: self.config.comms,
                agg,
            });

            run_epoch(&rt, &shared);

            report.vertices_computed += shared.computed.load(Ordering::Relaxed);
            for (slot, shard) in shared.shards.iter().enumerate() {
                busy_by_place[shared.dist.places()[slot].index()] +=
                    shard.busy_ns.load(Ordering::Relaxed);
            }

            if shared.stalled.load(Ordering::Acquire) {
                return Err(EngineError::Stalled {
                    finished: shared.finished_global.load(Ordering::Relaxed),
                    total,
                });
            }

            if shared.done.load(Ordering::Acquire) {
                break collect_array(&shared.shards, &dist);
            }

            // Fault: run the paper's recovery and start a new epoch.
            debug_assert!(shared.fault.load(Ordering::Acquire));
            let dead: Vec<PlaceId> = alive
                .iter()
                .copied()
                .filter(|&p| !rt.liveness().is_alive(p))
                .collect();
            let snapshot = collect_array(&shared.shards, &dist);
            let rec_start = self.recorder.now_ns();
            let (restored, rec) = recover(
                &snapshot,
                &dead,
                self.config.restore_manner,
                &topo,
                &self.config.network,
                &RecoveryCostModel::default(),
            );
            self.recorder.span(
                0,
                RUNTIME_WORKER,
                EventKind::Recovery,
                rec_start,
                self.recorder.now_ns(),
                u64::from(report.epochs),
            );
            report.recovery_time += rec.sim_time;
            report.recoveries.push(rec);
            prior = Some(restored);
            alive.retain(|p| rt.liveness().is_alive(*p));
        };

        report.wall_time = started.elapsed();
        // Per-place busy time from the measured compute intervals, in
        // the final epoch's slot order (matching the simulator).
        report.place_busy = alive
            .iter()
            .map(|p| Duration::from_nanos(busy_by_place[p.index()]))
            .collect();
        report.comm = rt.stats_snapshot();
        let result = DagResult::new(final_array, report);
        self.app.app_finished(&result);
        Ok(result)
    }
}

/// Everything an epoch's workers share. `pub(crate)` because the socket
/// engine drives the same worker loop over its own transport.
pub(crate) struct Shared<A: DpApp> {
    pub(crate) app: Arc<A>,
    pub(crate) stall_limit: Duration,
    pub(crate) pattern: Arc<dyn DagPattern>,
    pub(crate) dist: Arc<Dist>,
    pub(crate) shards: Vec<Shard<A::Value>>,
    pub(crate) transport: Arc<dyn Transport<Msg<A::Value>>>,
    pub(crate) topo: Topology,
    pub(crate) net: NetworkModel,
    pub(crate) schedule: ScheduleStrategy,
    pub(crate) liveness: dpx10_apgas::LivenessBoard,
    pub(crate) stats: dpx10_apgas::StatsBoard,
    pub(crate) total: u64,
    pub(crate) finished_global: AtomicU64,
    pub(crate) computed: AtomicU64,
    pub(crate) done: AtomicBool,
    pub(crate) fault: AtomicBool,
    pub(crate) stalled: AtomicBool,
    pub(crate) fault_plan: Vec<FaultTrigger>,
    /// Wall-clock-triggered kills, fired by the epoch watchdog.
    pub(crate) time_kills: Vec<(PlaceId, Duration)>,
    /// When the whole run started (time kills are relative to it).
    pub(crate) run_started: Instant,
    /// Schedule-shaker seed; `Some` randomizes the worker loops.
    pub(crate) shake: Option<u64>,
    /// Hands each worker a distinct id (trace track + shaker substream).
    pub(crate) worker_seq: AtomicU64,
    pub(crate) checkpoint: Option<Arc<CheckpointWriters<A::Value>>>,
    pub(crate) recorder: Recorder,
    /// How remote values travel: pull round-trips or eager pushes.
    pub(crate) comms: CommsMode,
    /// `Some(spec)` iff this run executes interval dependencies through
    /// the prefix-aggregation lanes (app declares a spec, pattern has an
    /// interval view, and the config knob is on).
    pub(crate) agg: Option<AggSpec>,
}

/// Whether a run executes through the prefix-aggregation lanes: the
/// config knob is on, the app declares a spec, and the pattern exposes
/// an interval view. All three must hold — any classic app or pattern
/// silently takes the enumerated path.
pub(crate) fn agg_mode<A: DpApp>(
    config: &EngineConfig,
    app: &A,
    pattern: &dyn DagPattern,
) -> Option<AggSpec> {
    if !config.aggregation || pattern.as_range().is_none() {
        return None;
    }
    app.agg_spec()
}

/// Reseeds every shard's aggregation lanes from the values already
/// published in (any) shard — the prefinished cells of a recovery or
/// init epoch, which will never flow through a delivery path again.
/// Cells finished without a value (the socket engine's meta-only
/// restores) stay out; the consumer-side pull fallback covers them.
pub(crate) fn seed_aggs<A: DpApp>(app: &A, shards: &[Shard<A::Value>]) {
    for src in shards {
        for (li, &(i, j)) in src.points.iter().enumerate() {
            if !src.in_pattern[li] {
                continue;
            }
            let Some(v) = src.values[li].get() else {
                continue;
            };
            let id = VertexId::new(i, j);
            for dst in shards {
                if let Some(table) = &dst.aggs {
                    table.record(id, |axis| app.agg_key(axis, id, v));
                }
            }
        }
    }
}

/// Folds a finished cell's aggregation keys into the receiving place's
/// lanes. Called from every value-delivery path (local publish, `Done`,
/// `PushVal`, `PullVal`); the lanes are idempotent per cell, so
/// overlapping deliveries are harmless.
#[inline]
pub(crate) fn agg_record<A: DpApp>(
    shared: &Shared<A>,
    slot: usize,
    id: VertexId,
    value: &A::Value,
) {
    if shared.agg.is_some() {
        if let Some(table) = &shared.shards[slot].aggs {
            table.record(id, |axis| shared.app.agg_key(axis, id, value));
        }
    }
}

/// One armed progress-triggered kill.
pub(crate) struct FaultTrigger {
    pub(crate) victim: PlaceId,
    pub(crate) threshold: u64,
    pub(crate) fired: AtomicBool,
}

impl<A: DpApp> Shared<A> {
    #[inline]
    pub(crate) fn should_stop(&self) -> bool {
        self.done.load(Ordering::Acquire) || self.fault.load(Ordering::Acquire)
    }

    pub(crate) fn send(&self, src: PlaceId, dst: PlaceId, msg: Msg<A::Value>) {
        let bytes = msg.wire_size();
        self.recorder
            .instant_now(src.0, RUNTIME_WORKER, EventKind::MsgSend, bytes as u64);
        if self.transport.send(src, dst, msg, bytes).is_err() {
            self.fault.store(true, Ordering::Release);
        }
    }
}

/// Runs one epoch: spawns the workers, babysits progress, joins them.
fn run_epoch<A: DpApp + 'static>(rt: &Runtime, shared: &Arc<Shared<A>>) {
    let scope = FinishScope::new();
    let threads = shared.topo.threads_per_place;
    for (slot, place) in shared.dist.places().iter().enumerate() {
        for _ in 0..threads {
            let shared = shared.clone();
            // A dead place fails the spawn; the epoch then ends through
            // the fault flag set by the first blocked sender.
            let _ = rt.spawn_at(*place, &scope, move || worker_loop(shared, slot));
        }
    }

    // Watchdog: workers park briefly when idle, so they notice the flags
    // quickly; if global progress freezes without done/fault, flag a
    // stall so `run` can fail instead of hanging.
    let mut last = shared.finished_global.load(Ordering::Relaxed);
    let mut last_change = Instant::now();
    while !shared.should_stop() {
        std::thread::sleep(Duration::from_millis(2));
        // Wall-clock chaos kills fire from here, not from publish:
        // "kill after T" must work even while no vertex is finishing.
        for &(victim, after) in &shared.time_kills {
            if shared.run_started.elapsed() >= after && shared.liveness.is_alive(victim) {
                shared.liveness.kill(victim);
                shared.fault.store(true, Ordering::Release);
            }
        }
        let now = shared.finished_global.load(Ordering::Relaxed);
        if now != last {
            last = now;
            last_change = Instant::now();
        } else if last_change.elapsed() > shared.stall_limit {
            shared.stalled.store(true, Ordering::Release);
            shared.done.store(true, Ordering::Release); // unblock workers
            break;
        }
    }
    scope.wait();
}

/// The per-thread worker: drain messages, execute ready vertices, steal
/// if configured, park briefly when idle (paper §VI-C's worker loop).
///
/// The inbox is `shared.transport`'s — the same loop serves the threaded
/// engine (mailboxes) and each place process of the socket engine.
pub(crate) fn worker_loop<A: DpApp>(shared: Arc<Shared<A>>, slot: usize) {
    let me = shared.dist.places()[slot];
    let mut bufs = WorkerBufs::default();
    let mut idle_rounds = 0u32;
    // Process-wide worker id: the trace track this thread records onto,
    // and the shaker substream selector.
    let wid = shared.worker_seq.fetch_add(1, Ordering::Relaxed);
    // The schedule shaker: a per-worker substream of the chaos seed that
    // randomizes drain budgets, ready-pop order and yield points. Any
    // interleaving it produces is one the engine must tolerate anyway —
    // the shaker just reaches them on purpose.
    let mut shaker = shared
        .shake
        .map(|seed| ChaosRng::new(seed).fork(0x5748_4B52).fork(wid)); // "WHKR"
    let wid = wid as u16;
    loop {
        if shared.should_stop() || !shared.liveness.is_alive(me) {
            break;
        }
        let progress = worker_rounds(&shared, slot, wid, &mut bufs, &mut shaker);
        if progress {
            idle_rounds = 0;
            continue;
        }
        idle_rounds += 1;
        if idle_rounds == 1 {
            // Idle drain of the coalescing layer (no-op otherwise):
            // buffered decrements must flow once we run out of local
            // work, or the cluster deadlocks waiting on a batch that
            // never fills its byte budget.
            shared.transport.flush(me);
        }
        if idle_rounds < 8 {
            std::thread::yield_now();
        } else {
            shared.transport.flush(me);
            if let Some(env) = shared
                .transport
                .recv_timeout(me, Duration::from_micros(500))
            {
                handle_msg(&shared, slot, wid, env, &mut bufs);
                idle_rounds = 0;
            }
        }
    }
}

/// One budgeted round of a worker's duty cycle: drain up to a budget of
/// inbound messages, execute up to a budget of ready vertices, and (when
/// configured) steal once from the most loaded shard. Returns whether
/// anything at all got done, so the caller can decide how to idle.
///
/// Extracted from [`worker_loop`] so it can also drive the multi-job
/// pool in [`crate::jobs`], where one thread services many jobs and must
/// never block on any single one of them.
pub(crate) fn worker_rounds<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    wid: u16,
    bufs: &mut WorkerBufs,
    shaker: &mut Option<ChaosRng>,
) -> bool {
    let me = shared.dist.places()[slot];
    let (drain_budget, ready_budget) = match shaker.as_mut() {
        Some(rng) => {
            if rng.chance(0.05) {
                std::thread::yield_now();
            }
            (1 + rng.below(128), 1 + rng.below(32))
        }
        None => (128, 32),
    };
    let mut progress = false;
    for _ in 0..drain_budget {
        match shared.transport.try_recv(me) {
            Some(env) => {
                handle_msg(shared, slot, wid, env, bufs);
                progress = true;
            }
            None => break,
        }
    }
    match shaker.as_mut() {
        Some(rng) => {
            // Shaken pop: grab a small batch, start it at a random
            // offset — adjacent ready vertices execute in an order a
            // plain FIFO/LIFO queue would never produce.
            let mut popped = 0;
            while popped < ready_budget {
                let mut batch: Vec<u32> = Vec::with_capacity(4);
                for _ in 0..1 + rng.below(3) {
                    match shared.shards[slot].ready.pop() {
                        Some(li) => {
                            shared.recorder.instant_now(
                                me.0,
                                wid,
                                EventKind::ReadyPop,
                                u64::from(li),
                            );
                            batch.push(li);
                        }
                        None => break,
                    }
                }
                if batch.is_empty() {
                    break;
                }
                let r = rng.below(batch.len() as u64) as usize;
                batch.rotate_left(r);
                for li in batch {
                    execute(shared, slot, wid, li, bufs);
                    popped += 1;
                    progress = true;
                }
            }
        }
        None => {
            for _ in 0..ready_budget {
                match shared.shards[slot].ready.pop() {
                    Some(li) => {
                        shared
                            .recorder
                            .instant_now(me.0, wid, EventKind::ReadyPop, u64::from(li));
                        execute(shared, slot, wid, li, bufs);
                        progress = true;
                    }
                    None => break,
                }
            }
        }
    }
    if !progress && shared.schedule == ScheduleStrategy::WorkStealing {
        progress = try_steal(shared, slot, wid, bufs);
    }
    progress
}

/// Reusable per-worker scratch buffers (hot path: no fresh allocations
/// per vertex).
pub(crate) struct WorkerBufs {
    deps: Vec<VertexId>,
    anti: Vec<VertexId>,
    groups: HashMap<u16, Vec<VertexId>>,
}

impl Default for WorkerBufs {
    fn default() -> Self {
        WorkerBufs {
            deps: Vec::with_capacity(8),
            anti: Vec::with_capacity(8),
            groups: HashMap::new(),
        }
    }
}

/// Work stealing (extension strategy): pop a ready vertex from the most
/// loaded other shard and run its full owner-side path here, charging a
/// task-ship round-trip to the network stats.
fn try_steal<A: DpApp>(
    shared: &Arc<Shared<A>>,
    thief_slot: usize,
    wid: u16,
    bufs: &mut WorkerBufs,
) -> bool {
    let victim = (0..shared.shards.len())
        .filter(|&s| s != thief_slot)
        .max_by_key(|&s| shared.shards[s].ready.len());
    let Some(victim) = victim else { return false };
    if shared.shards[victim].ready.is_empty() {
        return false;
    }
    let Some(li) = shared.shards[victim].ready.pop() else {
        return false;
    };
    let thief = shared.dist.places()[thief_slot];
    let owner = shared.dist.places()[victim];
    // Task descriptor over, result back: two small control messages.
    let over = shared.net.transfer_time(&shared.topo, owner, thief, 16);
    shared.stats.place(owner).on_send(16, over);
    let back = shared.net.transfer_time(&shared.topo, thief, owner, 16);
    shared.stats.place(thief).on_send(16, back);
    execute(shared, victim, wid, li, bufs);
    true
}

/// Handles one inbound message.
fn handle_msg<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    wid: u16,
    env: Envelope<Msg<A::Value>>,
    bufs: &mut WorkerBufs,
) {
    let me = shared.dist.places()[slot];
    match env.msg {
        Msg::Done {
            from,
            value,
            targets,
        } => handle_done(shared, slot, from, value, targets),
        Msg::Pull { id } => handle_pull(shared, slot, me, env.src, id),
        Msg::PullVal { id, value } => handle_pull_val(shared, slot, wid, me, id, value),
        Msg::Exec {
            id,
            dep_ids,
            dep_values,
        } => {
            let view = DepView::new(&dep_ids, &dep_values);
            let value = compute_timed(shared, slot, wid, id, &view);
            shared.send(me, env.src, Msg::ExecResult { id, value });
        }
        Msg::ExecResult { id, value } => {
            let li = local_index(&shared.dist, id);
            publish(shared, slot, li, id, value, bufs);
        }
        // The batch variants replay the per-message handlers in send
        // order, so a coalesced run takes exactly the uncoalesced code
        // paths (the equivalence the differential oracle checks).
        Msg::DoneBatch { entries } => {
            for (from, value, targets) in entries {
                handle_done(shared, slot, from, value, targets);
            }
        }
        Msg::PullBatch { ids } => {
            for id in ids {
                handle_pull(shared, slot, me, env.src, id);
            }
        }
        Msg::PullValBatch { entries } => {
            for (id, value) in entries {
                handle_pull_val(shared, slot, wid, me, id, value);
            }
        }
        Msg::PushVal {
            from,
            value,
            targets,
        } => handle_push(shared, slot, from, value, targets),
        Msg::PushValBatch { entries } => {
            for (from, value, targets) in entries {
                handle_push(shared, slot, from, value, targets);
            }
        }
        // Relocation traffic belongs to the elastic engine; the static
        // in-process engine never changes chunk ownership mid-run.
        Msg::ChunkOffer { .. } | Msg::ChunkData { .. } | Msg::ChunkAck { .. } => {}
    }
}

/// [`Msg::Done`]: land the value in the consumer cache, decrement the
/// receiver-owned dependents.
fn handle_done<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    from: VertexId,
    value: A::Value,
    targets: Vec<VertexId>,
) {
    let shard = &shared.shards[slot];
    // Fold before decrementing: when a target's indegree hits zero its
    // interval lanes must already cover this cell.
    agg_record(shared, slot, from, &value);
    shard.cache.lock().insert(from.pack(), value);
    for t in targets {
        decrement(shared, slot, t);
    }
}

/// [`Msg::PushVal`]: a `Done` whose value is additionally *pinned* for
/// every unfinished target, so the target's later gather finds it even
/// after cache eviction — the pull round-trip never happens. A target
/// whose parked slot already has a pull in flight (the consumer raced
/// ahead) is filled right here; the eventual `PullVal` reply then finds
/// the slot occupied and is a no-op for it.
fn handle_push<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    from: VertexId,
    value: A::Value,
    targets: Vec<VertexId>,
) {
    let shard = &shared.shards[slot];
    agg_record(shared, slot, from, &value);
    shard.cache.lock().insert(from.pack(), value.clone());
    {
        let mut pending = shard.pending.lock();
        for t in &targets {
            let tli = local_index(&shared.dist, *t);
            if shard.finished[tli as usize].load(Ordering::Acquire) {
                continue;
            }
            let entry = pending
                .parked
                .entry(tli)
                .or_insert_with(|| crate::state::Parked {
                    fills: HashMap::new(),
                    remaining: 0,
                });
            match entry.fills.get_mut(&from.pack()) {
                // Already parked with a pull outstanding: fill the slot
                // now; re-ready when it was the last missing dep (the
                // decrement below is a no-op then — the vertex parked
                // *after* its indegree hit zero).
                Some(fill @ Fill::Missing) => {
                    *fill = Fill::Pushed(value.clone());
                    entry.remaining -= 1;
                    if entry.remaining == 0 {
                        shard.ready.push(tli);
                    }
                }
                // A pull or an earlier push beat us; keep the first.
                Some(_) => {}
                // Not yet gathered: pin for the upcoming gather.
                None => {
                    entry.fills.insert(from.pack(), Fill::Pushed(value.clone()));
                }
            }
        }
    }
    for t in targets {
        decrement(shared, slot, t);
    }
}

/// [`Msg::Pull`]: reply with the finished value of `id`.
fn handle_pull<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    me: PlaceId,
    src: PlaceId,
    id: VertexId,
) {
    let shard = &shared.shards[slot];
    let li = local_index(&shared.dist, id);
    debug_assert!(
        shard.finished[li as usize].load(Ordering::Acquire),
        "pull of unfinished vertex {id}"
    );
    let value = shard.value(li).clone();
    shared.send(me, src, Msg::PullVal { id, value });
}

/// [`Msg::PullVal`]: cache the value and fill every parked waiter.
fn handle_pull_val<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    wid: u16,
    me: PlaceId,
    id: VertexId,
    value: A::Value,
) {
    let shard = &shared.shards[slot];
    shared
        .recorder
        .instant_now(me.0, wid, EventKind::PullFill, id.pack());
    agg_record(shared, slot, id, &value);
    shard.cache.lock().insert(id.pack(), value.clone());
    let mut pending = shard.pending.lock();
    if let Some(waiters) = pending.waiters.remove(&id.pack()) {
        for wli in waiters {
            if let Some(p) = pending.parked.get_mut(&wli) {
                // A slot already filled (e.g. by a racing push) keeps
                // its value; the reply only lands on Missing slots.
                if let Some(fill @ Fill::Missing) = p.fills.get_mut(&id.pack()) {
                    *fill = Fill::Pulled(value.clone());
                    p.remaining -= 1;
                    if p.remaining == 0 {
                        shard.ready.push(wli);
                    }
                }
            }
        }
    }
}

/// Decrements the indegree of locally-owned `t`; readies it at zero.
///
/// Targets already finished are skipped: after a recovery, a recomputed
/// vertex publishes again and would otherwise decrement dependents that
/// were restored as finished (whose epoch-start indegree is zero).
#[inline]
fn decrement<A: DpApp>(shared: &Shared<A>, slot: usize, t: VertexId) {
    let shard = &shared.shards[slot];
    let li = local_index(&shared.dist, t);
    if shard.finished[li as usize].load(Ordering::Acquire) {
        return;
    }
    let old = shard.indegree[li as usize].fetch_sub(1, Ordering::AcqRel);
    debug_assert!(old >= 1, "indegree underflow at {t}");
    if old == 1 {
        shard.ready.push(li);
    }
}

/// Runs the app's `compute`, charging the elapsed wall time to the
/// slot's busy counter and (when recording) emitting the vertex-compute
/// span.
fn compute_timed<A: DpApp>(
    shared: &Shared<A>,
    slot: usize,
    wid: u16,
    id: VertexId,
    view: &DepView<'_, A::Value>,
) -> A::Value {
    let started = Instant::now();
    let rec_start = self_rec_start(shared);
    let value = shared.app.compute(id, view);
    let elapsed = started.elapsed().as_nanos() as u64;
    shared.shards[slot]
        .busy_ns
        .fetch_add(elapsed, Ordering::Relaxed);
    if let Some(start_ns) = rec_start {
        // End on the recorder clock, not `start_ns + elapsed`: the two
        // clocks are read at slightly different moments, and an
        // extrapolated end can overshoot past the next span's start on
        // the same worker, breaking the nesting oracle.
        shared.recorder.span(
            shared.dist.places()[slot].0,
            wid,
            EventKind::VertexCompute,
            start_ns,
            shared.recorder.now_ns(),
            id.pack(),
        );
    }
    value
}

/// Recorder start timestamp, taken only when recording is on (keeps the
/// disabled path at one branch).
#[inline]
fn self_rec_start<A: DpApp>(shared: &Shared<A>) -> Option<u64> {
    shared.recorder.enabled().then(|| shared.recorder.now_ns())
}

/// Executes one owned ready vertex: gather → (maybe ship) → compute →
/// publish.
fn execute<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    wid: u16,
    li: u32,
    bufs: &mut WorkerBufs,
) {
    let shard = &shared.shards[slot];
    let (i, j) = shard.points[li as usize];
    let id = VertexId::new(i, j);
    debug_assert!(shard.in_pattern[li as usize]);
    if shard.finished[li as usize].load(Ordering::Acquire) {
        return;
    }

    if shared.agg.is_some() {
        execute_ranged(shared, slot, wid, li, id, bufs);
        return;
    }

    bufs.deps.clear();
    shared.pattern.dependencies(i, j, &mut bufs.deps);

    let Some(values) = gather(shared, slot, wid, li, &bufs.deps) else {
        return; // parked awaiting pulls
    };

    let me = shared.dist.places()[slot];
    let target = match shared.schedule {
        ScheduleStrategy::Local | ScheduleStrategy::WorkStealing => me,
        ScheduleStrategy::Random => random_choice(id, shared.dist.places()),
        ScheduleStrategy::MinComm => {
            let homes: Vec<PlaceId> = bufs
                .deps
                .iter()
                .map(|d| shared.dist.place_of(d.i, d.j))
                .collect();
            let bytes: Vec<usize> = values.iter().map(Codec::wire_size).collect();
            let result_bytes = values.first().map_or(8, |v| v.wire_size());
            min_comm_choice(
                me,
                shared.dist.places(),
                &homes,
                &bytes,
                result_bytes,
                &shared.topo,
                &shared.net,
            )
        }
    };

    if target != me && shared.liveness.is_alive(target) {
        let msg = Msg::Exec {
            id,
            dep_ids: bufs.deps.clone(),
            dep_values: values,
        };
        shared.send(me, target, msg);
        return;
    }

    let view = DepView::new(&bufs.deps, &values);
    let value = compute_timed(shared, slot, wid, id, &view);
    publish(shared, slot, li, id, value, bufs);
}

/// The nested-dataflow execute path: point dependencies gather like any
/// classic edge, while interval dependencies are answered by the place's
/// prefix lanes in O(1).
///
/// By the indegree-zero guarantee, every interval cell's value has
/// already been delivered to this place (local publish, `Done` or
/// `PushVal`) and folded into the lanes — *except* cells prefinished in
/// an earlier epoch whose values live on another place (the socket
/// engine's meta-only restores). Those show up in `interval_missing`,
/// ride the classic park-and-pull machinery alongside the point deps,
/// and are folded when the `PullVal` replies land, after which the
/// re-readied vertex finds its lanes complete.
///
/// Always computes locally: the lanes are place-resident state, so the
/// remote-execution schedules (`Random`/`MinComm`) and their `Msg::Exec`
/// shipping don't apply here.
fn execute_ranged<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    wid: u16,
    li: u32,
    id: VertexId,
    bufs: &mut WorkerBufs,
) {
    let shard = &shared.shards[slot];
    let range = shared
        .pattern
        .as_range()
        .expect("agg mode implies an interval view");
    let table = shard.aggs.as_ref().expect("agg mode implies lanes");

    bufs.deps.clear();
    range.point_deps(id.i, id.j, &mut bufs.deps);
    let n_points = bufs.deps.len();
    let mut ivs: Vec<DepInterval> = Vec::with_capacity(2);
    range.dep_intervals(id.i, id.j, &mut ivs);
    for &iv in &ivs {
        table.interval_missing(iv, &mut bufs.deps);
    }

    let Some(values) = gather(shared, slot, wid, li, &bufs.deps) else {
        return; // parked awaiting pulls (points and/or lane gaps)
    };
    // Fold everything gathered: the lane-gap cells need it, the point
    // cells are harmless thanks to per-cell idempotence.
    for (k, d) in bufs.deps.iter().enumerate() {
        agg_record(shared, slot, *d, &values[k]);
    }

    let view = DepView::new(&bufs.deps[..n_points], &values[..n_points]);
    debug_assert!(
        ivs.iter().all(|iv| table.interval_prefix(*iv).is_some()),
        "lanes incomplete at zero indegree for {id}"
    );
    let started = Instant::now();
    let rec_start = self_rec_start(shared.as_ref());
    let value = {
        let aggs = AggView::new(table);
        shared.app.compute_ranged(id, &view, &aggs)
    };
    let elapsed = started.elapsed().as_nanos() as u64;
    shard.busy_ns.fetch_add(elapsed, Ordering::Relaxed);
    if let Some(start_ns) = rec_start {
        shared.recorder.span(
            shared.dist.places()[slot].0,
            wid,
            EventKind::VertexCompute,
            start_ns,
            shared.recorder.now_ns(),
            id.pack(),
        );
    }
    publish(shared, slot, li, id, value, bufs);
}

/// Gathers dependency values: local reads, then cache, then previously
/// pulled fills; parks the vertex and issues pulls for anything missing.
fn gather<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    wid: u16,
    li: u32,
    deps: &[VertexId],
) -> Option<Vec<A::Value>> {
    let shard = &shared.shards[slot];
    if deps.is_empty() {
        return Some(Vec::new());
    }
    let me = shared.dist.places()[slot];

    let mut vals: Vec<Option<A::Value>> = Vec::with_capacity(deps.len());
    {
        let cache = shard.cache.lock();
        for d in deps {
            if shared.dist.slot_of(d.i, d.j) == slot {
                let dli = local_index(&shared.dist, *d);
                vals.push(Some(shard.value(dli).clone()));
            } else if let Some(v) = cache.get(d.pack()) {
                shared.stats.place(me).on_cache_hit();
                shared
                    .recorder
                    .instant_now(me.0, wid, EventKind::CacheHit, d.pack());
                vals.push(Some(v.clone()));
            } else {
                vals.push(None);
            }
        }
    }

    if vals.iter().all(Option::is_some) {
        shard.pending.lock().parked.remove(&li);
        return Some(vals.into_iter().map(Option::unwrap).collect());
    }

    // Try previously pulled (or eagerly pushed) fills, then park for the
    // rest. Consuming a pushed fill is the round-trip the push saved; it
    // demotes to Pulled so a later re-gather of a still-parked vertex
    // doesn't count it twice.
    let mut pending = shard.pending.lock();
    if let Some(p) = pending.parked.get_mut(&li) {
        for (k, d) in deps.iter().enumerate() {
            if vals[k].is_none() {
                if let Some(fill) = p.fills.get_mut(&d.pack()) {
                    if let Fill::Pushed(v) = fill {
                        let v = v.clone();
                        shared.stats.place(me).on_pull_roundtrip_avoided();
                        vals[k] = Some(v.clone());
                        *fill = Fill::Pulled(v);
                    } else if let Some(v) = fill.value() {
                        vals[k] = Some(v.clone());
                    }
                }
            }
        }
    }
    if vals.iter().all(Option::is_some) {
        pending.parked.remove(&li);
        return Some(vals.into_iter().map(Option::unwrap).collect());
    }

    let mut newly_missing: Vec<VertexId> = Vec::new();
    {
        let entry = pending
            .parked
            .entry(li)
            .or_insert_with(|| crate::state::Parked {
                fills: HashMap::new(),
                remaining: 0,
            });
        for (k, d) in deps.iter().enumerate() {
            if vals[k].is_none() && !entry.fills.contains_key(&d.pack()) {
                entry.fills.insert(d.pack(), Fill::Missing);
                entry.remaining += 1;
                newly_missing.push(*d);
            }
        }
    }
    let mut to_pull: Vec<VertexId> = Vec::new();
    for d in newly_missing {
        let waiters = pending.waiters.entry(d.pack()).or_default();
        if waiters.is_empty() {
            to_pull.push(d);
        } else {
            // The dedup hub: an identical pull is already in flight, so
            // this waiter rides it instead of re-asking the owner.
            shared.stats.place(me).on_pull_deduped();
        }
        waiters.push(li);
    }
    drop(pending);

    for d in &to_pull {
        shared.stats.place(me).on_cache_miss();
        shared.stats.place(me).on_pull_sent();
        shared
            .recorder
            .instant_now(me.0, wid, EventKind::CacheMiss, d.pack());
        shared
            .recorder
            .instant_now(me.0, wid, EventKind::PullIssue, d.pack());
        let owner = shared.dist.place_of(d.i, d.j);
        shared.send(me, owner, Msg::Pull { id: *d });
    }
    None
}

/// Publishes a computed value: store, flag, decrement anti-dependencies
/// (locally or by message), advance the finished counter, trigger
/// termination and any planned fault.
fn publish<A: DpApp>(
    shared: &Arc<Shared<A>>,
    slot: usize,
    li: u32,
    id: VertexId,
    value: A::Value,
    bufs: &mut WorkerBufs,
) {
    let shard = &shared.shards[slot];
    shard.values[li as usize].set(value.clone()).ok();
    if shard.finished[li as usize].swap(true, Ordering::AcqRel) {
        return; // double publication guard
    }
    // Fold the local cell before any dependent can become ready.
    agg_record(shared, slot, id, &value);
    shard.finished_local.fetch_add(1, Ordering::Relaxed);
    shared.computed.fetch_add(1, Ordering::Relaxed);
    if let Some(ckpt) = &shared.checkpoint {
        ckpt.on_publish(shared.dist.places()[slot], id, &value);
    }

    bufs.anti.clear();
    shared.pattern.anti_dependencies(id.i, id.j, &mut bufs.anti);

    let me = shared.dist.places()[slot];
    for t in &bufs.anti {
        let tslot = shared.dist.slot_of(t.i, t.j);
        if tslot == slot {
            decrement(shared.as_ref(), slot, *t);
        } else {
            bufs.groups
                .entry(shared.dist.places()[tslot].0)
                .or_default()
                .push(*t);
        }
    }
    for (q, targets) in bufs.groups.drain() {
        let msg = match shared.comms {
            CommsMode::Pull => Msg::Done {
                from: id,
                value: value.clone(),
                targets,
            },
            // Push mode: same decrements, but the receiver pins the
            // value for its parked dependents instead of hoping the
            // cache keeps it.
            CommsMode::Push => {
                shared.stats.place(me).on_push_sent();
                Msg::PushVal {
                    from: id,
                    value: value.clone(),
                    targets,
                }
            }
        };
        shared.send(me, PlaceId(q), msg);
    }

    let g = shared.finished_global.fetch_add(1, Ordering::AcqRel) + 1;
    if g >= shared.total {
        shared.done.store(true, Ordering::Release);
    }
    for trig in &shared.fault_plan {
        if g >= trig.threshold && !trig.fired.swap(true, Ordering::AcqRel) {
            shared.liveness.kill(trig.victim);
            shared.fault.store(true, Ordering::Release);
        }
    }
}

//! The elastic mesh engine: dynamic place membership, live chunk
//! relocation, and an autoscaling job server.
//!
//! The paper's deployment model (§II) fixes the place set at launch;
//! its recovery method (§VI-D) *recomputes* a dead place's cells. This
//! module adds the third option real clusters want: places that join a
//! running computation, drain out of it gracefully, and hand their
//! chunks over *live* — relocation, not recompute.
//!
//! The engine here is a deterministic single-threaded machine: every
//! place is a [`Member`] with a byte-encoded inbox, and the main loop
//! gives each member one round-robin turn (process one message, or
//! compute one ready cell). All inter-place traffic travels as real
//! [`Msg`] codec bytes, so the protocol exercised is exactly what the
//! socket backend would put on a wire. Determinism is what makes the
//! differential oracle possible: the same workload with and without a
//! churn plan must produce identical fingerprints.
//!
//! # The relocation protocol
//!
//! One relocation is in flight at a time (they serialize the epoch
//! fence):
//!
//! ```text
//!  holder ──ChunkOffer{slot,e}──▶ target          (announce)
//!  holder ◀──ChunkAck{slot,e}──── target          (accept)
//!  holder ──ChunkData{slot,e}──▶ target           (ship; holder's map → e+1)
//!  target ──ChunkAck{slot,e+1}─▶ every member     (commit broadcast)
//! ```
//!
//! The shipped [`ChunkState`] carries finished values, ready-counters,
//! the ready queue and the relevant cache residents, so the new owner
//! resumes exactly where the old one stopped. Between ship and commit,
//! messages fence on the [`ChunkMap`] epoch: future-stamped traffic
//! parks and replays, past-stamped `Done`s forward to the new owner,
//! past-stamped `Pull`s drop and are re-issued by the requester when
//! its own fence advances (the commit broadcast guarantees it does).
//!
//! # Membership verbs
//!
//! * **Join** — a fresh place id activates, adopts the highest-epoch
//!   chunk map in the mesh, and receives its fair share of chunks via
//!   ordinary relocations.
//! * **Drain** — the place stops computing, relocates every chunk it
//!   holds, and leaves once the mesh has acknowledged all of them.
//!   Nothing is recomputed.
//! * **Kill** — abrupt death: the victim's chunks are rebuilt from the
//!   DAG pattern at new owners (the paper's recompute path), crediting
//!   dependencies whose values survive elsewhere.
//!
//! An optional [`ElasticPolicy`] watches the ready backlog and fires
//! joins/drains automatically — the autoscaler of the job server.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use dpx10_apgas::codec::{decode_exact, encode_to_vec};
use dpx10_apgas::{Codec, ElasticPlan, ElasticVerb, PlaceId, RosterBoard};
use dpx10_dag::{validate_pattern, DagPattern, VertexId};
use dpx10_distarray::{ChunkMap, ChunkState, EpochVerdict};
use dpx10_obs::{Counter, EventKind, Gauge, Recorder, Registry, RUNTIME_WORKER};

use crate::app::{DepView, DpApp};
use crate::error::EngineError;
use crate::msg::Msg;

/// Patterns above this vertex count skip the O(V·E) contract check.
const VALIDATE_LIMIT: u64 = 65_536;

/// Consecutive all-idle rounds before the engine declares a stall.
const IDLE_LIMIT: u32 = 64;

/// Configuration of an elastic run.
#[derive(Clone, Debug)]
pub struct ElasticConfig {
    /// Founding members (places `0..founding`). Ignored when
    /// `initial_members` is set.
    pub founding: u16,
    /// Maximum places the mesh may ever grow to (roster capacity).
    pub capacity: u16,
    /// Distribution slots (chunks). `0` = auto: `2 * capacity`.
    pub slots: u16,
    /// Autoscaling policy; `None` = membership changes only by plan.
    pub policy: Option<ElasticPolicy>,
    /// Explicit member set (possibly non-contiguous, after earlier
    /// drains) — how [`ElasticServer`] resumes a mesh between jobs.
    pub initial_members: Option<Vec<u16>>,
}

impl ElasticConfig {
    /// A mesh of `founding` places with room to grow to `capacity`.
    pub fn new(founding: u16, capacity: u16) -> Self {
        ElasticConfig {
            founding,
            capacity,
            slots: 0,
            policy: None,
            initial_members: None,
        }
    }
}

/// The autoscaler: watches the per-member ready backlog and grows or
/// shrinks the mesh between relocations.
#[derive(Clone, Debug)]
pub struct ElasticPolicy {
    /// Grow when the average ready backlog per member exceeds this.
    pub grow_backlog: usize,
    /// Shrink when the average ready backlog per member falls below
    /// this.
    pub shrink_backlog: usize,
    /// Never shrink below this many members.
    pub min_places: u16,
    /// Never grow above this many members.
    pub max_places: u16,
    /// Re-evaluate every this many finished vertices.
    pub check_every: u64,
}

/// Metrics of one elastic run.
#[derive(Clone, Debug, Default)]
pub struct ElasticReport {
    /// Vertices in the DAG.
    pub total: u64,
    /// `compute()` invocations (≥ `total`; the excess is recompute).
    pub computed: u64,
    /// Invocations for cells that had already finished once — the
    /// price of kills. Zero on any run without a kill.
    pub recomputed: u64,
    /// Chunks shipped whole via the relocation protocol.
    pub chunks_relocated: u64,
    /// Finished cells carried inside relocated chunks — work relocation
    /// saved from recomputation.
    pub cells_moved: u64,
    /// Total encoded `ChunkData` payload bytes.
    pub chunk_bytes: u64,
    /// Pulls re-issued after an epoch advance (the requester's replay
    /// half of the fence).
    pub replayed_pulls: u64,
    /// Future-stamped messages parked at the fence and later replayed.
    pub parked_replayed: u64,
    /// Past-stamped pulls dropped at the fence.
    pub stale_dropped: u64,
    /// Past-stamped `Done`s forwarded to the re-registered owner.
    pub forwarded: u64,
    /// Places that joined mid-run.
    pub joins: u64,
    /// Drains initiated (graceful departures).
    pub drains: u64,
    /// Abrupt deaths processed.
    pub kills: u64,
    /// `(finished vertices at the time, member count)` after every
    /// membership change — the mesh-size timeline.
    pub mesh_sizes: Vec<(u64, u16)>,
    /// Members still in the mesh at the end, ascending.
    pub final_members: Vec<u16>,
    /// The next fresh place id a joiner would receive.
    pub next_place: u16,
    /// The chunk-map epoch at the end (relocations that completed).
    pub final_epoch: u64,
}

/// A finished elastic run: every vertex value plus the run's metrics.
pub struct ElasticRun<V> {
    values: BTreeMap<u64, V>,
    report: ElasticReport,
}

impl<V: Clone> ElasticRun<V> {
    /// The result of vertex `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` was not part of the DAG.
    pub fn get(&self, i: u32, j: u32) -> V {
        self.try_get(i, j)
            .unwrap_or_else(|| panic!("vertex ({i}, {j}) was not computed"))
    }

    /// The result of `(i, j)`, or `None` for cells outside the DAG.
    pub fn try_get(&self, i: u32, j: u32) -> Option<V> {
        self.values.get(&VertexId::new(i, j).pack()).cloned()
    }

    /// Metrics of the run.
    pub fn report(&self) -> &ElasticReport {
        &self.report
    }
}

impl<V: dpx10_apgas::Codec> ElasticRun<V> {
    /// The same FNV-1a digest as `DagResult::fingerprint`: every cell's
    /// packed id and encoded value in canonical order — so an elastic
    /// run compares directly against any other engine's result.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let mut buf = Vec::new();
        for (id, v) in &self.values {
            buf.clear();
            v.encode(&mut buf);
            for b in id.to_le_bytes() {
                eat(b);
            }
            for &b in &buf {
                eat(b);
            }
        }
        h
    }
}

/// A serialized message in flight, stamped with the sender's fence
/// epoch at send time.
struct Packet {
    src: u16,
    epoch: u64,
    bytes: Vec<u8>,
}

/// One distribution slot's live state at its current holder.
struct Chunk<V> {
    holder: u16,
    finished: HashMap<u64, V>,
    /// Remaining indegree of unfinished, not-yet-ready cells.
    indegree: HashMap<u64, u32>,
    /// Cells whose counted dependencies are met, in arrival order.
    ready: VecDeque<u64>,
    /// Pulls for cells not finished yet: packed id → requesters.
    deferred: HashMap<u64, Vec<u16>>,
}

/// One place of the deterministic mesh.
struct Member<V> {
    map: ChunkMap,
    inbox: VecDeque<Packet>,
    parked: Vec<Packet>,
    cache: HashMap<u64, V>,
    /// Pulls issued and not yet answered — re-issued on every epoch
    /// advance, which is what survives relocation races.
    pending_pulls: BTreeSet<u64>,
    draining: bool,
    drain_started_ns: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RelocStage {
    /// `ChunkOffer` sent, waiting for the target's accept.
    Offered,
    /// `ChunkData` sent; the holder's map already points at the target.
    Shipped,
    /// Installed; waiting for every member to process the commit
    /// broadcast.
    Committing,
}

/// The single relocation in flight (they serialize the fence).
struct Relocation {
    slot: u16,
    from: u16,
    to: u16,
    stage: RelocStage,
    /// Members that have not yet processed the commit broadcast.
    acks_outstanding: BTreeSet<u16>,
    /// The epoch the commit broadcast carries.
    commit_epoch: u64,
    /// Finished cells inside the shipped payload (for progress repair
    /// if the payload is lost to a kill).
    shipped_cells: u64,
    started_ns: u64,
}

/// The elastic mesh engine. Construct with [`ElasticEngine::new`],
/// optionally attach a churn plan / recorder / metrics registry, then
/// [`run`](ElasticEngine::run).
pub struct ElasticEngine<A, P> {
    app: A,
    pattern: P,
    config: ElasticConfig,
    plan: ElasticPlan,
    recorder: Recorder,
    mesh_gauge: Option<Gauge>,
    reloc_counter: Option<Counter>,
}

impl<A: DpApp, P: DagPattern> ElasticEngine<A, P> {
    /// A quiet engine (no churn plan) over `app` and `pattern`.
    pub fn new(app: A, pattern: P, config: ElasticConfig) -> Self {
        ElasticEngine {
            app,
            pattern,
            config,
            plan: ElasticPlan::quiet(0),
            recorder: Recorder::disabled(),
            mesh_gauge: None,
            reloc_counter: None,
        }
    }

    /// Attaches a membership-churn plan.
    pub fn with_plan(mut self, plan: ElasticPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Attaches a flight recorder: joins, drains and relocations become
    /// spans on the timeline.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a metrics registry: exports the `dpx10_mesh_size` gauge
    /// and `dpx10_chunks_relocated` counter.
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.mesh_gauge = Some(registry.gauge(
            "dpx10_mesh_size",
            "Current member count of the elastic mesh",
            &[],
        ));
        self.reloc_counter = Some(registry.counter(
            "dpx10_chunks_relocated",
            "Chunks shipped whole via live relocation",
            &[],
        ));
        self
    }

    /// Runs the DAG to completion under the configured churn plan.
    pub fn run(&self) -> Result<ElasticRun<A::Value>, EngineError> {
        let total = self.pattern.vertex_count();
        if total <= VALIDATE_LIMIT {
            validate_pattern(&self.pattern).map_err(EngineError::InvalidPattern)?;
        }
        let members = match &self.config.initial_members {
            Some(m) => {
                let mut m = m.clone();
                m.sort_unstable();
                m.dedup();
                if !m.contains(&0) {
                    return Err(EngineError::Job(
                        "elastic mesh: place 0 must be a member".into(),
                    ));
                }
                m
            }
            None => {
                if self.config.founding == 0 {
                    return Err(EngineError::Job(
                        "elastic mesh: at least one founding member".into(),
                    ));
                }
                (0..self.config.founding).collect()
            }
        };
        let mut machine = Machine::new(self, total, members);
        machine.run()
    }
}

/// The deterministic mesh machine — all state of one run.
struct Machine<'a, A: DpApp, P: DagPattern> {
    app: &'a A,
    pattern: &'a P,
    recorder: &'a Recorder,
    policy: Option<ElasticPolicy>,
    mesh_gauge: Option<Gauge>,
    reloc_counter: Option<Counter>,
    total: u64,
    slots: u16,
    /// Slot → packed cell ids, in local-index order.
    slot_cells: Vec<Vec<u64>>,
    /// Packed id → (slot, local index).
    slot_index: HashMap<u64, (u16, u32)>,
    chunks: Vec<Option<Chunk<A::Value>>>,
    members: BTreeMap<u16, Member<A::Value>>,
    roster: RosterBoard,
    next_place: u16,
    in_flight: Option<Relocation>,
    /// `(slot, preferred target)` — targets are re-validated (and
    /// retargeted) when the relocation starts.
    reloc_queue: VecDeque<(u16, u16)>,
    events: Vec<dpx10_apgas::ElasticEvent>,
    next_event: usize,
    ever_finished: HashSet<u64>,
    current_finished: u64,
    last_policy_check: u64,
    report: ElasticReport,
}

impl<'a, A: DpApp, P: DagPattern> Machine<'a, A, P> {
    fn new(engine: &'a ElasticEngine<A, P>, total: u64, members: Vec<u16>) -> Self {
        let capacity = engine
            .config
            .capacity
            .max(members.iter().copied().max().unwrap_or(0) + 1)
            .max(1);
        let slots = if engine.config.slots == 0 {
            (2 * capacity).max(1)
        } else {
            engine.config.slots
        };
        let (width, height) = (engine.pattern.width(), engine.pattern.height());
        // Column → slot by even ranges; enumerate each slot's cells
        // row-major so local indices are stable across holders.
        let mut cols_of_slot: Vec<Vec<u32>> = vec![Vec::new(); slots as usize];
        for j in 0..width {
            let s = (j as u64 * slots as u64 / width.max(1) as u64) as u16;
            cols_of_slot[s as usize].push(j);
        }
        let mut slot_cells: Vec<Vec<u64>> = vec![Vec::new(); slots as usize];
        let mut slot_index = HashMap::new();
        for s in 0..slots {
            for i in 0..height {
                for &j in &cols_of_slot[s as usize] {
                    if engine.pattern.contains(i, j) {
                        let packed = VertexId::new(i, j).pack();
                        slot_index.insert(packed, (s, slot_cells[s as usize].len() as u32));
                        slot_cells[s as usize].push(packed);
                    }
                }
            }
        }
        let next_place = members.iter().copied().max().unwrap_or(0) + 1;
        let roster = RosterBoard::new(next_place, capacity);
        for p in 0..next_place {
            if !members.contains(&p) {
                // Resumed meshes may have holes (earlier drains); the
                // roster records them as Left so ids are not reused.
                let _ = roster.start_drain(PlaceId(p));
                let _ = roster.leave(PlaceId(p));
            }
        }
        let owners: Vec<PlaceId> = (0..slots)
            .map(|s| PlaceId(members[s as usize % members.len()]))
            .collect();
        let map = ChunkMap::new(owners.clone());
        let mut chunks: Vec<Option<Chunk<A::Value>>> = Vec::with_capacity(slots as usize);
        for s in 0..slots {
            let mut chunk = Chunk {
                holder: owners[s as usize].0,
                finished: HashMap::new(),
                indegree: HashMap::new(),
                ready: VecDeque::new(),
                deferred: HashMap::new(),
            };
            for &packed in &slot_cells[s as usize] {
                let v = VertexId::unpack(packed);
                let deg = engine.pattern.indegree(v.i, v.j);
                if deg == 0 {
                    chunk.ready.push_back(packed);
                } else {
                    chunk.indegree.insert(packed, deg);
                }
            }
            chunks.push(Some(chunk));
        }
        let member_map: BTreeMap<u16, Member<A::Value>> = members
            .iter()
            .map(|&p| {
                (
                    p,
                    Member {
                        map: map.clone(),
                        inbox: VecDeque::new(),
                        parked: Vec::new(),
                        cache: HashMap::new(),
                        pending_pulls: BTreeSet::new(),
                        draining: false,
                        drain_started_ns: 0,
                    },
                )
            })
            .collect();
        let mut events = engine.plan.events.clone();
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap_or(std::cmp::Ordering::Equal));
        let report = ElasticReport {
            total,
            mesh_sizes: vec![(0, members.len() as u16)],
            ..ElasticReport::default()
        };
        if let Some(g) = &engine.mesh_gauge {
            g.set(members.len() as f64);
        }
        Machine {
            app: &engine.app,
            pattern: &engine.pattern,
            recorder: &engine.recorder,
            policy: engine.config.policy.clone(),
            mesh_gauge: engine.mesh_gauge.clone(),
            reloc_counter: engine.reloc_counter.clone(),
            total,
            slots,
            slot_cells,
            slot_index,
            chunks,
            members: member_map,
            roster,
            next_place,
            in_flight: None,
            reloc_queue: VecDeque::new(),
            events,
            next_event: 0,
            ever_finished: HashSet::new(),
            current_finished: 0,
            last_policy_check: 0,
            report,
        }
    }

    // ---- main loop ------------------------------------------------

    fn run(&mut self) -> Result<ElasticRun<A::Value>, EngineError> {
        let step_limit = 200 * self.total.max(1) + 20_000;
        let mut steps = 0u64;
        let mut idle_rounds = 0u32;
        while self.current_finished < self.total {
            self.fire_due_events();
            self.policy_tick();
            self.start_next_relocation();
            let mut any = false;
            let order: Vec<u16> = self.members.keys().copied().collect();
            for p in order {
                if self.members.contains_key(&p) {
                    any |= self.member_turn(p);
                }
            }
            any |= self.complete_drains();
            steps += 1;
            if any {
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
            }
            if idle_rounds > IDLE_LIMIT || steps > step_limit {
                if std::env::var_os("DPX10_ELASTIC_DEBUG").is_some() {
                    self.debug_dump();
                }
                return Err(EngineError::Stalled {
                    finished: self.current_finished,
                    total: self.total,
                });
            }
        }
        // Settle: finish in-flight relocations and complete pending
        // drains so the final membership is clean for the next job.
        let mut settle = 0u32;
        while self.in_flight.is_some()
            || !self.reloc_queue.is_empty()
            || self.members.values().any(|m| m.draining)
            || self.members.values().any(|m| !m.inbox.is_empty())
        {
            self.start_next_relocation();
            let order: Vec<u16> = self.members.keys().copied().collect();
            for p in order {
                if self.members.contains_key(&p) {
                    self.member_turn(p);
                }
            }
            self.complete_drains();
            settle += 1;
            if settle > 100_000 {
                break; // report the mesh as-is rather than spin
            }
        }
        self.report.final_members = self.members.keys().copied().collect();
        self.report.next_place = self.next_place;
        self.report.final_epoch = self
            .members
            .values()
            .map(|m| m.map.epoch())
            .max()
            .unwrap_or(0);
        let mut values = BTreeMap::new();
        for chunk in self.chunks.iter().flatten() {
            for (&id, v) in &chunk.finished {
                values.insert(id, v.clone());
            }
        }
        Ok(ElasticRun {
            values,
            report: std::mem::take(&mut self.report),
        })
    }

    fn member_turn(&mut self, p: u16) -> bool {
        if let Some(pkt) = self.members.get_mut(&p).and_then(|m| m.inbox.pop_front()) {
            self.process_packet(p, pkt);
            return true;
        }
        if self.members.get(&p).map_or(true, |m| m.draining) {
            return false;
        }
        self.try_execute(p)
    }

    // ---- events & policy ------------------------------------------

    fn fire_due_events(&mut self) {
        while self.next_event < self.events.len() {
            let ev = self.events[self.next_event];
            let due = (ev.at * self.total as f64).ceil() as u64;
            if self.current_finished < due {
                break;
            }
            self.next_event += 1;
            match ev.verb {
                ElasticVerb::Join => {
                    self.do_join();
                }
                ElasticVerb::Drain { place } => {
                    self.do_drain(place.0);
                }
                ElasticVerb::Relocate { slot } => {
                    let slot = slot % self.slots;
                    if let Some(to) = self.least_loaded_excluding(self.holder_of(slot)) {
                        self.reloc_queue.push_back((slot, to));
                    }
                }
                ElasticVerb::Kill { place } => {
                    self.do_kill(place.0);
                }
            }
        }
    }

    fn policy_tick(&mut self) {
        let Some(policy) = self.policy.clone() else {
            return;
        };
        if self.in_flight.is_some()
            || !self.reloc_queue.is_empty()
            || self.members.values().any(|m| m.draining)
            || self.current_finished < self.last_policy_check + policy.check_every
        {
            return;
        }
        self.last_policy_check = self.current_finished;
        let backlog: usize = self.chunks.iter().flatten().map(|c| c.ready.len()).sum();
        let count = self.members.len();
        let avg = backlog / count.max(1);
        if avg > policy.grow_backlog && (count as u16) < policy.max_places {
            self.do_join();
        } else if avg < policy.shrink_backlog && (count as u16) > policy.min_places {
            // Shed the highest-id member; place 0 never drains.
            if let Some(&victim) = self.members.keys().max() {
                if victim != 0 {
                    self.do_drain(victim);
                }
            }
        }
    }

    // ---- membership verbs -----------------------------------------

    fn do_join(&mut self) -> bool {
        let Some(p) = self
            .roster
            .admit(format!("elastic:v{}", self.roster.version()))
        else {
            return false; // at capacity
        };
        self.roster.activate(p).expect("admitted slot activates");
        self.next_place = self.next_place.max(p.0 + 1);
        // The joiner adopts the highest-epoch map in the mesh: it is
        // never behind a commit broadcast it will not receive.
        let map = self
            .members
            .values()
            .max_by_key(|m| m.map.epoch())
            .map(|m| m.map.clone())
            .expect("a mesh has members");
        let now = self.recorder.now_ns();
        self.recorder.span(
            p.0,
            RUNTIME_WORKER,
            EventKind::Join,
            now,
            now,
            u64::from(p.0),
        );
        self.members.insert(
            p.0,
            Member {
                map,
                inbox: VecDeque::new(),
                parked: Vec::new(),
                cache: HashMap::new(),
                pending_pulls: BTreeSet::new(),
                draining: false,
                drain_started_ns: 0,
            },
        );
        self.report.joins += 1;
        self.note_mesh_size();
        // Rebalance: queue the joiner's fair share, peeled off the
        // most-loaded members.
        let share = (self.slots as usize / self.members.len()).max(1);
        let mut queued_slots: BTreeSet<u16> = self.reloc_queue.iter().map(|&(s, _)| s).collect();
        if let Some(rel) = &self.in_flight {
            queued_slots.insert(rel.slot);
        }
        let mut taken_from: BTreeMap<u16, usize> = BTreeMap::new();
        for _ in 0..share {
            let mut donor: Option<(u16, usize)> = None;
            for &q in self.members.keys() {
                if q == p.0 || self.members[&q].draining {
                    continue;
                }
                let load = self
                    .held_slots(q)
                    .into_iter()
                    .filter(|s| !queued_slots.contains(s))
                    .count()
                    .saturating_sub(*taken_from.get(&q).unwrap_or(&0));
                if load >= 2 && donor.map_or(true, |(_, best)| load > best) {
                    donor = Some((q, load));
                }
            }
            let Some((q, _)) = donor else { break };
            let Some(slot) = self
                .held_slots(q)
                .into_iter()
                .rfind(|s| !queued_slots.contains(s))
            else {
                break;
            };
            queued_slots.insert(slot);
            *taken_from.entry(q).or_insert(0) += 1;
            self.reloc_queue.push_back((slot, p.0));
        }
        true
    }

    fn do_drain(&mut self, place: u16) -> bool {
        if place == 0 {
            return false;
        }
        let non_draining = self.members.values().filter(|m| !m.draining).count();
        let eligible = self
            .members
            .get(&place)
            .is_some_and(|m| !m.draining && non_draining >= 2);
        if !eligible || self.roster.start_drain(PlaceId(place)).is_err() {
            return false;
        }
        let now = self.recorder.now_ns();
        let m = self.members.get_mut(&place).expect("checked above");
        m.draining = true;
        m.drain_started_ns = now;
        self.report.drains += 1;
        // Queue everything it holds; round-robin over the least-loaded
        // survivors. Targets are re-validated at relocation start.
        let mut targets: Vec<u16> = self
            .members
            .iter()
            .filter(|(&q, m)| q != place && !m.draining)
            .map(|(&q, _)| q)
            .collect();
        targets.sort_by_key(|&q| (self.held_slots(q).len(), q));
        for (k, slot) in self.held_slots(place).into_iter().enumerate() {
            self.reloc_queue
                .push_back((slot, targets[k % targets.len()]));
        }
        true
    }

    fn do_kill(&mut self, victim: u16) -> bool {
        if victim == 0 || !self.members.contains_key(&victim) || self.members.len() <= 1 {
            return false;
        }
        self.report.kills += 1;
        let mut extra_lost: Vec<u16> = Vec::new();
        self.resolve_in_flight_for_kill(victim, &mut extra_lost);
        // Lost chunks: everything the victim held, plus a payload that
        // died in its inbox mid-relocation.
        let mut lost: Vec<u16> = self.held_slots(victim);
        lost.extend(extra_lost);
        lost.sort_unstable();
        lost.dedup();
        for &s in &lost {
            if let Some(chunk) = self.chunks[s as usize].take() {
                self.current_finished -= chunk.finished.len() as u64;
            }
        }
        self.members.remove(&victim);
        self.roster.mark_dead(PlaceId(victim));
        self.note_mesh_size();
        // Epoch repair: a kill mid-relocation can leave the shipper one
        // epoch ahead. Everyone adopts the highest-epoch map before the
        // uniform relocations below, so fences stay identical.
        let truth = self
            .members
            .values()
            .max_by_key(|m| m.map.epoch())
            .map(|m| m.map.clone())
            .expect("place 0 survives");
        let laggards: Vec<u16> = self
            .members
            .iter()
            .filter(|(_, m)| m.map.epoch() < truth.epoch())
            .map(|(&q, _)| q)
            .collect();
        for q in laggards {
            self.members.get_mut(&q).expect("listed").map = truth.clone();
        }
        // Rebuild each lost slot at a survivor — the paper's recompute
        // path. Dependencies whose values survive in other chunks are
        // credited; everything else recomputes in DAG order.
        for &slot in &lost {
            let to = self.least_loaded_excluding(None).expect("place 0 survives");
            for m in self.members.values_mut() {
                m.map.relocate(slot, PlaceId(to));
            }
            let mut chunk = Chunk {
                holder: to,
                finished: HashMap::new(),
                indegree: HashMap::new(),
                ready: VecDeque::new(),
                deferred: HashMap::new(),
            };
            let mut deps = Vec::new();
            for &packed in &self.slot_cells[slot as usize] {
                let v = VertexId::unpack(packed);
                deps.clear();
                self.pattern.dependencies(v.i, v.j, &mut deps);
                let mut deg = 0u32;
                for d in &deps {
                    let dp = d.pack();
                    let ds = self.slot_index[&dp].0;
                    let satisfied = self.chunks[ds as usize]
                        .as_ref()
                        .is_some_and(|c| c.finished.contains_key(&dp));
                    if !satisfied {
                        deg += 1;
                    }
                }
                if deg == 0 {
                    chunk.ready.push_back(packed);
                } else {
                    chunk.indegree.insert(packed, deg);
                }
            }
            self.chunks[slot as usize] = Some(chunk);
        }
        // The victim's inbox died with it, and it may have carried
        // `Done` decrements for chunks that survive elsewhere (a chunk
        // force-delivered mid-relocation, or traffic the victim would
        // have forwarded). Recount every surviving chunk's counters
        // from ground truth: overcounts are exactly the lost
        // decrements; undercounts (a decrement still legitimately in
        // flight to a survivor) only make a cell ready early, where the
        // gather's pull fallback fetches the missing values.
        self.recount_indegrees();
        // Everyone's fence advanced: replay parked traffic and re-issue
        // unanswered pulls (some were addressed to the dead place).
        let all: Vec<u16> = self.members.keys().copied().collect();
        for q in all {
            self.replay_parked(q);
            self.reissue_pulls(q);
        }
        true
    }

    /// Recomputes `indegree` for every unfinished cell in every
    /// surviving chunk from the global finished state, promoting cells
    /// whose outstanding count drops to zero. Iterates in slot/cell
    /// order so the repair is deterministic.
    fn recount_indegrees(&mut self) {
        let mut deps = Vec::new();
        for slot in 0..self.slots {
            if self.chunks[slot as usize].is_none() {
                continue;
            }
            let counted: Vec<u64> = self.slot_cells[slot as usize]
                .iter()
                .copied()
                .filter(|p| {
                    self.chunks[slot as usize]
                        .as_ref()
                        .is_some_and(|c| c.indegree.contains_key(p))
                })
                .collect();
            for packed in counted {
                let v = VertexId::unpack(packed);
                deps.clear();
                self.pattern.dependencies(v.i, v.j, &mut deps);
                let mut deg = 0u32;
                for d in &deps {
                    let dp = d.pack();
                    let ds = self.slot_index[&dp].0;
                    let satisfied = self.chunks[ds as usize]
                        .as_ref()
                        .is_some_and(|c| c.finished.contains_key(&dp));
                    if !satisfied {
                        deg += 1;
                    }
                }
                let chunk = self.chunks[slot as usize].as_mut().expect("checked above");
                if deg == 0 {
                    chunk.indegree.remove(&packed);
                    chunk.ready.push_back(packed);
                } else {
                    chunk.indegree.insert(packed, deg);
                }
            }
        }
    }

    fn resolve_in_flight_for_kill(&mut self, victim: u16, extra_lost: &mut Vec<u16>) {
        let Some(rel) = self.in_flight.take() else {
            return;
        };
        match rel.stage {
            RelocStage::Offered => {
                // Nothing shipped; the chunk is safe wherever it is. If
                // the holder died it is in the lost scan; a dead target
                // just aborts (drain leftovers re-queue themselves).
                if rel.from != victim && rel.to != victim {
                    self.in_flight = Some(rel);
                }
            }
            RelocStage::Shipped => {
                if rel.to == victim {
                    // The payload died in the victim's inbox: the slot
                    // is lost and recomputes. The progress its finished
                    // cells contributed comes off the clock here (the
                    // chunk itself is already gone from the shipper).
                    self.current_finished -= rel.shipped_cells;
                    extra_lost.push(rel.slot);
                } else {
                    // The payload survives in a live inbox — deliver it
                    // now so the kill barrier sees a committed world.
                    let (to, slot) = (rel.to, rel.slot);
                    self.in_flight = Some(rel);
                    self.force_deliver_chunk_data(to, slot);
                    self.force_commit(victim);
                }
            }
            RelocStage::Committing => {
                self.in_flight = Some(rel);
                self.force_commit(victim);
            }
        }
    }

    /// Applies the commit broadcast at every member that has not
    /// processed it yet (the kill barrier cannot wait for inboxes).
    /// The broadcast packets still queued become harmless no-ops.
    fn force_commit(&mut self, victim: u16) {
        let Some(rel) = self.in_flight.take() else {
            return;
        };
        for q in rel.acks_outstanding {
            if q == victim || !self.members.contains_key(&q) {
                continue;
            }
            let m = self.members.get_mut(&q).expect("checked");
            m.map
                .observe_relocation(rel.slot, PlaceId(rel.to), rel.commit_epoch);
            self.replay_parked(q);
            self.reissue_pulls(q);
        }
    }

    /// Pulls a specific in-flight `ChunkData` out of `target`'s inbox
    /// and processes it immediately (preserving the order of the rest).
    fn force_deliver_chunk_data(&mut self, target: u16, slot: u16) {
        let Some(m) = self.members.get_mut(&target) else {
            return;
        };
        let mut found = None;
        for (k, pkt) in m.inbox.iter().enumerate() {
            if let Some(Msg::ChunkData { slot: s, .. }) = decode_exact::<Msg<A::Value>>(&pkt.bytes)
            {
                if s == slot {
                    found = Some(k);
                    break;
                }
            }
        }
        if let Some(k) = found {
            let pkt = m.inbox.remove(k).expect("index just found");
            self.process_packet(target, pkt);
        }
    }

    fn complete_drains(&mut self) -> bool {
        let mut changed = false;
        let draining: Vec<u16> = self
            .members
            .iter()
            .filter(|(_, m)| m.draining)
            .map(|(&p, _)| p)
            .collect();
        for d in draining {
            let held = self.held_slots(d);
            // Re-queue leftovers (aborted relocations, late arrivals).
            let queued: BTreeSet<u16> = self.reloc_queue.iter().map(|&(s, _)| s).collect();
            for s in &held {
                let in_flight = self.in_flight.as_ref().is_some_and(|r| r.slot == *s);
                if !queued.contains(s) && !in_flight {
                    if let Some(to) = self.least_loaded_excluding(Some(d)) {
                        self.reloc_queue.push_back((*s, to));
                    }
                }
            }
            let involved = self
                .in_flight
                .as_ref()
                .is_some_and(|r| r.from == d || r.to == d);
            let m = &self.members[&d];
            if held.is_empty() && !involved && m.inbox.is_empty() && m.parked.is_empty() {
                let start = m.drain_started_ns;
                let now = self.recorder.now_ns();
                self.recorder.span(
                    d,
                    RUNTIME_WORKER,
                    EventKind::Drain,
                    start,
                    now,
                    u64::from(d),
                );
                let _ = self.roster.leave(PlaceId(d));
                self.members.remove(&d);
                self.note_mesh_size();
                changed = true;
            }
        }
        changed
    }

    // ---- relocation -----------------------------------------------

    fn start_next_relocation(&mut self) {
        if self.in_flight.is_some() {
            return;
        }
        while let Some((slot, want_to)) = self.reloc_queue.pop_front() {
            let Some(from) = self.holder_of(slot) else {
                continue; // slot lost to a kill while queued
            };
            if !self.members.contains_key(&from) {
                continue;
            }
            let valid = |p: u16, mach: &Self| {
                p != from && mach.members.get(&p).is_some_and(|m| !m.draining)
            };
            let to = if valid(want_to, self) {
                Some(want_to)
            } else {
                self.least_loaded_excluding(Some(from))
            };
            let Some(to) = to else { continue };
            let chunk = self.chunks[slot as usize]
                .as_ref()
                .expect("holder_of checked");
            let epoch = self.members[&from].map.epoch();
            let cells = chunk.finished.len() as u32;
            let bytes = self.package(from, slot).wire_size() as u64;
            let started_ns = self.recorder.now_ns();
            self.post(
                from,
                to,
                Msg::ChunkOffer {
                    slot,
                    epoch,
                    cells,
                    bytes,
                },
                epoch,
            );
            self.in_flight = Some(Relocation {
                slot,
                from,
                to,
                stage: RelocStage::Offered,
                acks_outstanding: BTreeSet::new(),
                commit_epoch: 0,
                shipped_cells: 0,
                started_ns,
            });
            return;
        }
    }

    /// Serializes `slot`'s live state at `holder` into a [`ChunkState`]
    /// — finished cells, ready-counters, the ready queue in order, and
    /// the cache residents the unfinished cells still depend on.
    fn package(&self, holder: u16, slot: u16) -> ChunkState<A::Value> {
        let chunk = self.chunks[slot as usize]
            .as_ref()
            .expect("holder ships what it holds");
        let local = |packed: u64| self.slot_index[&packed].1;
        let mut finished: Vec<(u32, A::Value)> = chunk
            .finished
            .iter()
            .map(|(&id, v)| (local(id), v.clone()))
            .collect();
        finished.sort_unstable_by_key(|&(l, _)| l);
        let mut indegree: Vec<(u32, u32)> = chunk
            .indegree
            .iter()
            .map(|(&id, &d)| (local(id), d))
            .collect();
        indegree.sort_unstable_by_key(|&(l, _)| l);
        let ready: Vec<u32> = chunk.ready.iter().map(|&id| local(id)).collect();
        // Cache residents that unfinished cells still need, in cell
        // order (deterministic across the mesh).
        let member = &self.members[&holder];
        let mut cache: Vec<(u64, A::Value)> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut deps = Vec::new();
        for &packed in &self.slot_cells[slot as usize] {
            if chunk.finished.contains_key(&packed) {
                continue;
            }
            let v = VertexId::unpack(packed);
            deps.clear();
            self.pattern.dependencies(v.i, v.j, &mut deps);
            for d in &deps {
                let dp = d.pack();
                if let Some(val) = member.cache.get(&dp) {
                    if seen.insert(dp) {
                        cache.push((dp, val.clone()));
                    }
                }
            }
        }
        ChunkState {
            slot,
            finished,
            indegree,
            ready,
            cache,
            spill: Vec::new(),
        }
    }

    /// The holder received the target's accept: ship the chunk and
    /// advance the local fence. From here until the commit broadcast
    /// lands everywhere, the mesh runs split-epoch — exactly what the
    /// fence exists for.
    fn ship_chunk(&mut self, holder: u16, ack_epoch: u64) {
        let (slot, to) = {
            let rel = self.in_flight.as_ref().expect("accept implies in-flight");
            (rel.slot, rel.to)
        };
        let my_epoch = self.members[&holder].map.epoch();
        if ack_epoch != my_epoch || self.holder_of(slot) != Some(holder) {
            // A kill moved the world since the offer: abort; drain
            // leftovers re-queue themselves.
            self.in_flight = None;
            return;
        }
        let state = self.package(holder, slot);
        let shipped_cells = state.finished.len() as u64;
        let bytes = encode_to_vec(&state);
        self.chunks[slot as usize] = None;
        self.post(
            holder,
            to,
            Msg::ChunkData {
                slot,
                epoch: my_epoch,
                chunk: bytes,
            },
            my_epoch,
        );
        let m = self.members.get_mut(&holder).expect("holder is a member");
        m.map.relocate(slot, PlaceId(to)).expect("owner changes");
        let rel = self.in_flight.as_mut().expect("still in flight");
        rel.stage = RelocStage::Shipped;
        rel.shipped_cells = shipped_cells;
        self.replay_parked(holder);
        self.reissue_pulls(holder);
    }

    /// The target installs a shipped chunk, re-registers ownership and
    /// broadcasts the commit `ChunkAck` that advances every fence.
    fn install_chunk(&mut self, target: u16, slot: u16, epoch: u64, payload: &[u8]) {
        let matches = self
            .in_flight
            .as_ref()
            .is_some_and(|r| r.slot == slot && r.to == target && r.stage == RelocStage::Shipped);
        if !matches {
            return; // stale payload from an aborted relocation
        }
        let Some(state) = decode_exact::<ChunkState<A::Value>>(payload) else {
            debug_assert!(false, "a shipped chunk always decodes");
            self.in_flight = None;
            return;
        };
        let cells = &self.slot_cells[slot as usize];
        let mut chunk = Chunk {
            holder: target,
            finished: HashMap::new(),
            indegree: HashMap::new(),
            ready: VecDeque::new(),
            deferred: HashMap::new(),
        };
        for (l, v) in state.finished {
            chunk.finished.insert(cells[l as usize], v);
        }
        for (l, d) in state.indegree {
            chunk.indegree.insert(cells[l as usize], d);
        }
        for l in state.ready {
            chunk.ready.push_back(cells[l as usize]);
        }
        self.report.cells_moved += chunk.finished.len() as u64;
        self.report.chunk_bytes += payload.len() as u64;
        self.report.chunks_relocated += 1;
        if let Some(c) = &self.reloc_counter {
            c.inc();
        }
        self.chunks[slot as usize] = Some(chunk);
        let m = self.members.get_mut(&target).expect("target is a member");
        for (k, v) in state.cache {
            m.cache.entry(k).or_insert(v);
        }
        let commit_epoch = m
            .map
            .relocate(slot, PlaceId(target))
            .expect("adoption changes the owner");
        debug_assert_eq!(commit_epoch, epoch + 1, "single relocation in flight");
        let rel = self.in_flight.as_mut().expect("matched above");
        rel.stage = RelocStage::Committing;
        rel.commit_epoch = commit_epoch;
        rel.acks_outstanding = self
            .members
            .keys()
            .copied()
            .filter(|&q| q != target)
            .collect();
        let acks: Vec<u16> = self
            .in_flight
            .as_ref()
            .expect("just set")
            .acks_outstanding
            .iter()
            .copied()
            .collect();
        for q in acks {
            self.post(
                target,
                q,
                Msg::ChunkAck {
                    slot,
                    epoch: commit_epoch,
                },
                commit_epoch,
            );
        }
        self.replay_parked(target);
        self.reissue_pulls(target);
    }

    // ---- message processing ---------------------------------------

    fn process_packet(&mut self, p: u16, pkt: Packet) {
        let Some(msg) = decode_exact::<Msg<A::Value>>(&pkt.bytes) else {
            debug_assert!(false, "in-mesh packets always decode");
            return;
        };
        match msg {
            Msg::Done {
                from,
                value,
                targets,
            } => self.on_done(p, pkt, from, value, targets),
            Msg::Pull { id } => self.on_pull(p, pkt, id),
            Msg::PullVal { id, value } => {
                let m = self.members.get_mut(&p).expect("processing own inbox");
                m.cache.insert(id.pack(), value);
                m.pending_pulls.remove(&id.pack());
            }
            Msg::ChunkOffer { slot, epoch, .. } => {
                // Accept when this is the relocation in flight; a stale
                // offer (aborted by a kill) is ignored.
                let accept = self.in_flight.as_ref().is_some_and(|r| {
                    r.slot == slot
                        && r.from == pkt.src
                        && r.to == p
                        && r.stage == RelocStage::Offered
                });
                if accept {
                    let my_epoch = self.members[&p].map.epoch();
                    self.post(
                        p,
                        pkt.src,
                        Msg::ChunkAck {
                            slot,
                            epoch: my_epoch,
                        },
                        epoch,
                    );
                }
            }
            Msg::ChunkData { slot, epoch, chunk } => self.install_chunk(p, slot, epoch, &chunk),
            Msg::ChunkAck { slot, epoch } => self.on_chunk_ack(p, pkt.src, slot, epoch),
            // A push is a `Done` with value pinning; the elastic mesh
            // keeps its own unbounded member caches, so plain `on_done`
            // already preserves the value until consumption.
            Msg::PushVal {
                from,
                value,
                targets,
            } => self.on_done(p, pkt, from, value, targets),
            // Exec traffic belongs to the threaded engine's schedulers;
            // the elastic mesh never emits it.
            Msg::Exec { .. }
            | Msg::ExecResult { .. }
            | Msg::DoneBatch { .. }
            | Msg::PullBatch { .. }
            | Msg::PullValBatch { .. }
            | Msg::PushValBatch { .. } => {}
        }
    }

    fn on_done(
        &mut self,
        p: u16,
        pkt: Packet,
        from: VertexId,
        value: A::Value,
        targets: Vec<VertexId>,
    ) {
        let Some(&first) = targets.first() else {
            return;
        };
        let slot = self.slot_index[&first.pack()].0;
        // Holding the chunk makes the decrements valid whatever the
        // stamp says — cell identity does not change across epochs.
        if self.holder_of(slot) == Some(p) {
            let m = self.members.get_mut(&p).expect("processing own inbox");
            m.cache.insert(from.pack(), value);
            self.decrement(slot, &targets);
            return;
        }
        let m = self.members.get_mut(&p).expect("processing own inbox");
        match m.map.admit(pkt.epoch) {
            EpochVerdict::Park => m.parked.push(pkt),
            EpochVerdict::Deliver | EpochVerdict::Stale => {
                let owner = m.map.owner(slot);
                if owner == Some(PlaceId(p)) {
                    // Registered to us but the payload has not landed
                    // yet: hold the decrements until it does.
                    m.parked.push(pkt);
                } else if let Some(o) = owner {
                    let epoch = m.map.epoch();
                    self.report.forwarded += 1;
                    self.post(
                        p,
                        o.0,
                        Msg::Done {
                            from,
                            value,
                            targets,
                        },
                        epoch,
                    );
                }
            }
        }
    }

    fn on_pull(&mut self, p: u16, pkt: Packet, id: VertexId) {
        let packed = id.pack();
        let slot = self.slot_index[&packed].0;
        if self.holder_of(slot) == Some(p) {
            let chunk = self.chunks[slot as usize]
                .as_mut()
                .expect("holder_of checked");
            if let Some(v) = chunk.finished.get(&packed).cloned() {
                let epoch = self.members[&p].map.epoch();
                self.post(p, pkt.src, Msg::PullVal { id, value: v }, epoch);
            } else {
                chunk.deferred.entry(packed).or_default().push(pkt.src);
            }
            return;
        }
        let m = self.members.get_mut(&p).expect("processing own inbox");
        match m.map.admit(pkt.epoch) {
            EpochVerdict::Park => m.parked.push(pkt),
            EpochVerdict::Deliver | EpochVerdict::Stale => {
                if m.map.owner(slot) == Some(PlaceId(p)) {
                    m.parked.push(pkt); // data en route
                } else {
                    // Drop; the requester re-issues when its fence
                    // advances (the commit broadcast guarantees it).
                    self.report.stale_dropped += 1;
                }
            }
        }
    }

    fn on_chunk_ack(&mut self, p: u16, src: u16, slot: u16, epoch: u64) {
        // The holder's accept?
        let is_accept = self.in_flight.as_ref().is_some_and(|r| {
            r.slot == slot && r.from == p && r.to == src && r.stage == RelocStage::Offered
        });
        if is_accept {
            self.ship_chunk(p, epoch);
            return;
        }
        // A commit broadcast: adopt the new registration (the sender is
        // the new owner) and retire the ack.
        let m = self.members.get_mut(&p).expect("processing own inbox");
        if m.map.observe_relocation(slot, PlaceId(src), epoch) {
            self.replay_parked(p);
            self.reissue_pulls(p);
        }
        let done = self.in_flight.as_mut().is_some_and(|rel| {
            if rel.slot == slot && rel.stage == RelocStage::Committing && rel.commit_epoch == epoch
            {
                rel.acks_outstanding.remove(&p);
                rel.acks_outstanding.is_empty()
            } else {
                false
            }
        });
        if done {
            let rel = self.in_flight.take().expect("just matched");
            let now = self.recorder.now_ns();
            self.recorder.span(
                rel.to,
                RUNTIME_WORKER,
                EventKind::Relocate,
                rel.started_ns,
                now,
                u64::from(rel.slot),
            );
        }
    }

    // ---- execution ------------------------------------------------

    fn try_execute(&mut self, p: u16) -> bool {
        let mut issued = false;
        for slot in self.held_slots(p) {
            let Some(&packed) = self.chunks[slot as usize]
                .as_ref()
                .and_then(|c| c.ready.front())
            else {
                continue;
            };
            let v = VertexId::unpack(packed);
            let mut dep_ids = Vec::new();
            self.pattern.dependencies(v.i, v.j, &mut dep_ids);
            let mut vals: Vec<A::Value> = Vec::with_capacity(dep_ids.len());
            let mut missing: Vec<u64> = Vec::new();
            for d in &dep_ids {
                let dp = d.pack();
                let ds = self.slot_index[&dp].0;
                let local = self.chunks[ds as usize]
                    .as_ref()
                    .filter(|c| c.holder == p)
                    .and_then(|c| c.finished.get(&dp));
                if let Some(val) = local {
                    vals.push(val.clone());
                } else if let Some(val) = self.members[&p].cache.get(&dp) {
                    vals.push(val.clone());
                } else {
                    missing.push(dp);
                }
            }
            if missing.is_empty() {
                let chunk = self.chunks[slot as usize].as_mut().expect("held");
                chunk.ready.pop_front();
                let view = DepView::new(&dep_ids, &vals);
                let value = self.app.compute(v, &view);
                self.publish(p, slot, packed, value);
                return true;
            }
            // A counted-ready cell can still miss values (relocation,
            // rebuild after a kill): pull the holes and rotate the cell
            // so the rest of the chunk is not blocked behind it.
            for dp in missing {
                let ds = self.slot_index[&dp].0;
                let m = self.members.get_mut(&p).expect("executing member");
                if m.pending_pulls.insert(dp) {
                    let owner = m.map.owner(ds);
                    if owner != Some(PlaceId(p)) {
                        if let Some(o) = owner {
                            let epoch = m.map.epoch();
                            self.post(
                                p,
                                o.0,
                                Msg::Pull {
                                    id: VertexId::unpack(dp),
                                },
                                epoch,
                            );
                            issued = true;
                        }
                    }
                    // Registered to us but not held: the value arrives
                    // with the chunk; the pending entry replays later.
                }
            }
            let chunk = self.chunks[slot as usize].as_mut().expect("held");
            let head = chunk.ready.pop_front().expect("front seen above");
            chunk.ready.push_back(head);
        }
        issued
    }

    fn publish(&mut self, p: u16, slot: u16, packed: u64, value: A::Value) {
        let first_time = self.ever_finished.insert(packed);
        self.report.computed += 1;
        if !first_time {
            self.report.recomputed += 1;
        }
        self.current_finished += 1;
        let id = VertexId::unpack(packed);
        let chunk = self.chunks[slot as usize]
            .as_mut()
            .expect("publisher holds");
        chunk.indegree.remove(&packed);
        chunk.finished.insert(packed, value.clone());
        let waiters = chunk.deferred.remove(&packed).unwrap_or_default();
        let epoch = self.members[&p].map.epoch();
        for r in waiters {
            self.post(
                p,
                r,
                Msg::PullVal {
                    id,
                    value: value.clone(),
                },
                epoch,
            );
        }
        // Fan out to dependents: locally-held slots decrement in place;
        // remote ones get a `Done` per (owner, slot) — targets share a
        // slot so the receiver's fence has one slot to rule on.
        let mut anti = Vec::new();
        self.pattern.anti_dependencies(id.i, id.j, &mut anti);
        let mut remote: BTreeMap<u16, Vec<VertexId>> = BTreeMap::new();
        for t in anti {
            let ts = self.slot_index[&t.pack()].0;
            if self.holder_of(ts) == Some(p) {
                self.decrement(ts, &[t]);
            } else {
                remote.entry(ts).or_default().push(t);
            }
        }
        for (ts, targets) in remote {
            let m = &self.members[&p];
            let Some(owner) = m.map.owner(ts) else {
                continue;
            };
            let epoch = m.map.epoch();
            self.post(
                p,
                owner.0,
                Msg::Done {
                    from: id,
                    value: value.clone(),
                    targets,
                },
                epoch,
            );
        }
    }

    /// Decrements ready-counters in a held chunk. Absent entries are
    /// skipped (already ready or finished), which makes a forwarded
    /// duplicate after a rebuild harmless: a cell that turns ready
    /// early just rotates in the queue pulling its missing values.
    fn decrement(&mut self, slot: u16, targets: &[VertexId]) {
        let chunk = self.chunks[slot as usize]
            .as_mut()
            .expect("decrement at holder");
        for t in targets {
            let tp = t.pack();
            if let Some(d) = chunk.indegree.get_mut(&tp) {
                *d = d.saturating_sub(1);
                if *d == 0 {
                    chunk.indegree.remove(&tp);
                    chunk.ready.push_back(tp);
                }
            }
        }
    }

    // ---- fence replay ---------------------------------------------

    fn replay_parked(&mut self, p: u16) {
        let Some(m) = self.members.get_mut(&p) else {
            return;
        };
        if m.parked.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut m.parked);
        self.report.parked_replayed += parked.len() as u64;
        for pkt in parked {
            m.inbox.push_back(pkt);
        }
    }

    fn reissue_pulls(&mut self, p: u16) {
        let Some(m) = self.members.get(&p) else {
            return;
        };
        let pending: Vec<u64> = m.pending_pulls.iter().copied().collect();
        for dp in pending {
            let ds = self.slot_index[&dp].0;
            if self.holder_of(ds) == Some(p) {
                // The chunk came to us; take the value directly if it
                // is finished, otherwise local execution produces it.
                let have = self.chunks[ds as usize]
                    .as_ref()
                    .and_then(|c| c.finished.get(&dp).cloned());
                if let Some(v) = have {
                    let m = self.members.get_mut(&p).expect("still a member");
                    m.cache.insert(dp, v);
                    m.pending_pulls.remove(&dp);
                }
                continue;
            }
            let m = self.members.get_mut(&p).expect("still a member");
            let Some(owner) = m.map.owner(ds) else {
                continue;
            };
            if owner == PlaceId(p) {
                continue; // payload en route
            }
            let epoch = m.map.epoch();
            self.report.replayed_pulls += 1;
            self.post(
                p,
                owner.0,
                Msg::Pull {
                    id: VertexId::unpack(dp),
                },
                epoch,
            );
        }
    }

    // ---- small helpers --------------------------------------------

    fn debug_dump(&self) {
        eprintln!("== elastic stall dump ==");
        eprintln!(
            "finished {}/{} in_flight {:?} queue {:?}",
            self.current_finished,
            self.total,
            self.in_flight
                .as_ref()
                .map(|r| (r.slot, r.from, r.to, format!("{:?}", r.stage))),
            self.reloc_queue
        );
        for (s, c) in self.chunks.iter().enumerate() {
            match c {
                Some(c) => {
                    if c.finished.len() < self.slot_cells[s].len() {
                        let ready: Vec<String> = c
                            .ready
                            .iter()
                            .map(|&p| format!("{}", VertexId::unpack(p)))
                            .collect();
                        let mut indeg: Vec<String> = c
                            .indegree
                            .iter()
                            .map(|(&p, &d)| format!("{}:{d}", VertexId::unpack(p)))
                            .collect();
                        indeg.sort();
                        eprintln!(
                            "slot {s} holder {} fin {}/{} ready {ready:?} indeg {indeg:?} deferred {}",
                            c.holder,
                            c.finished.len(),
                            self.slot_cells[s].len(),
                            c.deferred.len()
                        );
                    }
                }
                None => eprintln!("slot {s} MISSING"),
            }
        }
        for (&p, m) in &self.members {
            let pend: Vec<String> = m
                .pending_pulls
                .iter()
                .map(|&d| format!("{}", VertexId::unpack(d)))
                .collect();
            eprintln!(
                "member {p} epoch {} inbox {} parked {} pending {pend:?} draining {}",
                m.map.epoch(),
                m.inbox.len(),
                m.parked.len(),
                m.draining
            );
        }
    }

    fn post(&mut self, src: u16, to: u16, msg: Msg<A::Value>, epoch: u64) {
        let Some(m) = self.members.get_mut(&to) else {
            return; // a departed member: the mesh shrugs
        };
        m.inbox.push_back(Packet {
            src,
            epoch,
            bytes: encode_to_vec(&msg),
        });
    }

    fn holder_of(&self, slot: u16) -> Option<u16> {
        self.chunks.get(slot as usize)?.as_ref().map(|c| c.holder)
    }

    fn held_slots(&self, p: u16) -> Vec<u16> {
        (0..self.slots)
            .filter(|&s| self.holder_of(s) == Some(p))
            .collect()
    }

    /// The non-draining member holding the fewest chunks (lowest id on
    /// ties), excluding `not`.
    fn least_loaded_excluding(&self, not: Option<u16>) -> Option<u16> {
        self.members
            .iter()
            .filter(|(&q, m)| Some(q) != not && !m.draining)
            .map(|(&q, _)| (self.held_slots(q).len(), q))
            .min()
            .map(|(_, q)| q)
    }

    fn note_mesh_size(&mut self) {
        self.report
            .mesh_sizes
            .push((self.current_finished, self.members.len() as u16));
        if let Some(g) = &self.mesh_gauge {
            g.set(self.members.len() as f64);
        }
    }
}

/// A mesh that outlives a single job: runs DAGs back to back on the
/// same membership, carrying joins and drains across job boundaries —
/// the autoscaling job server of the elastic mesh.
pub struct ElasticServer {
    capacity: u16,
    slots: u16,
    policy: Option<ElasticPolicy>,
    recorder: Recorder,
    members: Vec<u16>,
    next_place: u16,
    jobs_run: u64,
}

impl ElasticServer {
    /// A server starting with `founding` members and room for
    /// `capacity`.
    pub fn new(founding: u16, capacity: u16) -> Self {
        let founding = founding.max(1);
        ElasticServer {
            capacity: capacity.max(founding),
            slots: 0,
            policy: None,
            recorder: Recorder::disabled(),
            members: (0..founding).collect(),
            next_place: founding,
            jobs_run: 0,
        }
    }

    /// Installs an autoscaling policy applied to every job.
    pub fn with_policy(mut self, policy: ElasticPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attaches a flight recorder shared by every job's engine.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Current members, ascending.
    pub fn members(&self) -> &[u16] {
        &self.members
    }

    /// Jobs completed so far.
    pub fn jobs_run(&self) -> u64 {
        self.jobs_run
    }

    /// Runs one job on the current mesh under `plan`, then adopts the
    /// membership the run ended with.
    pub fn run_job<A: DpApp, P: DagPattern>(
        &mut self,
        app: A,
        pattern: P,
        plan: ElasticPlan,
    ) -> Result<ElasticRun<A::Value>, EngineError> {
        let config = ElasticConfig {
            founding: self.members.len() as u16,
            capacity: self.capacity.max(self.next_place),
            slots: self.slots,
            policy: self.policy.clone(),
            initial_members: Some(self.members.clone()),
        };
        let run = ElasticEngine::new(app, pattern, config)
            .with_plan(plan)
            .with_recorder(self.recorder.clone())
            .run()?;
        self.members = run.report.final_members.clone();
        self.next_place = run.report.next_place.max(self.next_place);
        self.jobs_run += 1;
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx10_apgas::ElasticEvent;
    use dpx10_dag::builtin::Grid3;

    /// A non-commutative mixing kernel: any dropped, duplicated or
    /// reordered dependency value changes the fingerprint.
    struct Mix;

    impl DpApp for Mix {
        type Value = u64;
        fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
            let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ id.pack();
            for (d, v) in deps.iter() {
                h = h.rotate_left(13).wrapping_mul(0x0000_0100_0000_01b3)
                    ^ v.wrapping_add(d.pack());
            }
            h.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn run_plan(founding: u16, capacity: u16, plan: ElasticPlan) -> ElasticRun<u64> {
        ElasticEngine::new(
            Mix,
            Grid3::new(12, 12),
            ElasticConfig::new(founding, capacity),
        )
        .with_plan(plan)
        .run()
        .expect("elastic run completes")
    }

    fn solo_fingerprint() -> u64 {
        run_plan(1, 1, ElasticPlan::quiet(0)).fingerprint()
    }

    fn ev(at: f64, verb: ElasticVerb) -> ElasticEvent {
        ElasticEvent { at, verb }
    }

    #[test]
    fn quiet_elastic_mesh_matches_solo() {
        let solo = solo_fingerprint();
        let run = run_plan(3, 6, ElasticPlan::quiet(1));
        assert_eq!(
            run.fingerprint(),
            solo,
            "distribution must not change values"
        );
        let r = run.report();
        assert_eq!(r.computed, r.total);
        assert_eq!(r.recomputed, 0);
        assert_eq!(r.chunks_relocated, 0);
        assert_eq!(r.final_members, vec![0, 1, 2]);
        assert_eq!(run.get(11, 11), run.try_get(11, 11).unwrap());
    }

    #[test]
    fn relocate_event_moves_a_chunk_without_recompute() {
        let solo = solo_fingerprint();
        let plan = ElasticPlan {
            seed: 2,
            events: vec![
                ev(0.2, ElasticVerb::Relocate { slot: 1 }),
                ev(0.5, ElasticVerb::Relocate { slot: 4 }),
            ],
        };
        let run = run_plan(3, 6, plan);
        assert_eq!(run.fingerprint(), solo);
        let r = run.report();
        assert!(r.chunks_relocated >= 1, "a chunk must actually move");
        assert_eq!(r.recomputed, 0, "relocation is not recompute");
        assert_eq!(r.computed, r.total);
        assert!(r.final_epoch >= 1, "relocation bumps the fence");
    }

    #[test]
    fn grow_to_five_then_drain_to_three_relocates_not_recomputes() {
        let solo = solo_fingerprint();
        let plan = ElasticPlan {
            seed: 3,
            events: vec![
                ev(0.10, ElasticVerb::Join),
                ev(0.15, ElasticVerb::Join),
                ev(0.50, ElasticVerb::Drain { place: PlaceId(3) }),
                ev(0.65, ElasticVerb::Drain { place: PlaceId(4) }),
            ],
        };
        let run = run_plan(3, 6, plan);
        assert_eq!(run.fingerprint(), solo, "churn must not change values");
        let r = run.report();
        assert_eq!(r.joins, 2);
        assert_eq!(r.drains, 2);
        assert!(
            r.chunks_relocated >= 1 && r.cells_moved >= 1,
            "grow/drain moves live state: {r:?}"
        );
        assert_eq!(r.recomputed, 0, "graceful churn never recomputes");
        assert_eq!(r.computed, r.total);
        assert_eq!(r.final_members, vec![0, 1, 2], "mesh returns to founders");
        assert!(
            r.mesh_sizes.iter().any(|&(_, n)| n == 5),
            "the mesh must actually reach 5 members: {:?}",
            r.mesh_sizes
        );
    }

    #[test]
    fn kill_recovers_by_recompute() {
        let solo = solo_fingerprint();
        let plan = ElasticPlan {
            seed: 4,
            events: vec![ev(0.5, ElasticVerb::Kill { place: PlaceId(2) })],
        };
        let run = run_plan(3, 6, plan);
        assert_eq!(run.fingerprint(), solo, "recovery must restore all values");
        let r = run.report();
        assert_eq!(r.kills, 1);
        assert!(r.recomputed > 0, "a mid-run kill loses finished cells");
        assert_eq!(r.computed, r.total + r.recomputed);
        assert_eq!(r.final_members, vec![0, 1]);
    }

    #[test]
    fn kill_during_relocation_keeps_values_correct() {
        let solo = solo_fingerprint();
        // Relocations queue right before the kill fires, so the kill
        // barrier has to resolve whatever stage is in flight.
        let plan = ElasticPlan {
            seed: 5,
            events: vec![
                ev(0.30, ElasticVerb::Relocate { slot: 2 }),
                ev(0.31, ElasticVerb::Relocate { slot: 5 }),
                ev(0.32, ElasticVerb::Kill { place: PlaceId(1) }),
            ],
        };
        let run = run_plan(3, 6, plan);
        assert_eq!(run.fingerprint(), solo);
        assert_eq!(run.report().kills, 1);
        assert_eq!(
            run.report().computed - run.report().recomputed,
            run.report().total
        );
    }

    #[test]
    fn autoscaling_policy_grows_and_sheds() {
        let solo = solo_fingerprint();
        let mut cfg = ElasticConfig::new(2, 6);
        cfg.policy = Some(ElasticPolicy {
            grow_backlog: 0,
            shrink_backlog: 0, // never sheds: avg < 0 is impossible
            min_places: 2,
            max_places: 4,
            check_every: 8,
        });
        let grown = ElasticEngine::new(Mix, Grid3::new(12, 12), cfg)
            .with_plan(ElasticPlan::quiet(6))
            .run()
            .expect("policy run completes");
        assert_eq!(grown.fingerprint(), solo);
        assert!(grown.report().joins >= 1, "backlog must trigger a join");
        assert!(grown.report().final_members.len() <= 4);

        let mut cfg = ElasticConfig::new(4, 6);
        cfg.policy = Some(ElasticPolicy {
            grow_backlog: usize::MAX,
            shrink_backlog: usize::MAX, // always sheds down to min
            min_places: 2,
            max_places: 6,
            check_every: 8,
        });
        let shed = ElasticEngine::new(Mix, Grid3::new(12, 12), cfg)
            .with_plan(ElasticPlan::quiet(7))
            .run()
            .expect("policy run completes");
        assert_eq!(shed.fingerprint(), solo);
        let r = shed.report();
        assert!(r.drains >= 1, "idle mesh must shed members");
        assert_eq!(r.recomputed, 0, "autoscaling never recomputes");
        assert_eq!(r.final_members, vec![0, 1], "sheds to min_places");
    }

    #[test]
    fn server_carries_membership_across_jobs() {
        let solo = solo_fingerprint();
        let mut server = ElasticServer::new(3, 6);
        let grow = ElasticPlan {
            seed: 8,
            events: vec![ev(0.2, ElasticVerb::Join)],
        };
        let first = server.run_job(Mix, Grid3::new(12, 12), grow).unwrap();
        assert_eq!(first.fingerprint(), solo);
        assert_eq!(server.members(), &[0, 1, 2, 3]);
        let drain = ElasticPlan {
            seed: 9,
            events: vec![ev(0.3, ElasticVerb::Drain { place: PlaceId(1) })],
        };
        let second = server.run_job(Mix, Grid3::new(12, 12), drain).unwrap();
        assert_eq!(second.fingerprint(), solo);
        assert_eq!(server.members(), &[0, 2, 3], "ids are not reused");
        assert_eq!(server.jobs_run(), 2);
        // The resumed mesh has a hole at place 1 and still runs clean.
        let third = server
            .run_job(Mix, Grid3::new(12, 12), ElasticPlan::quiet(10))
            .unwrap();
        assert_eq!(third.fingerprint(), solo);
        assert_eq!(third.report().recomputed, 0);
    }

    #[test]
    fn generated_plans_replay_against_the_serial_fingerprint() {
        // A mini differential sweep (the harness runs the full one):
        // generator-produced churn over several seeds, fingerprints
        // pinned to the solo run.
        let solo = solo_fingerprint();
        for seed in 0..12u64 {
            let plan = ElasticPlan::generate(seed, 3, 5);
            let run = run_plan(3, 5, plan.clone());
            assert_eq!(
                run.fingerprint(),
                solo,
                "seed {seed:#x} plan {plan} diverged"
            );
            let r = run.report();
            if r.kills == 0 {
                assert_eq!(
                    r.recomputed, 0,
                    "seed {seed:#x}: churn without kills never recomputes"
                );
            }
        }
    }
}

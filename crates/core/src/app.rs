//! The user-facing application API — the reproduction of the paper's
//! `DPX10App[T]` interface and `Vertex[T]` class (Fig. 2).

use dpx10_apgas::Codec;
use dpx10_dag::{AggSpec, Axis, VertexId};
use dpx10_distarray::{AggTable, DistArray};

use crate::stats::RunReport;

/// Bounds on the per-vertex value type (the paper's template argument
/// `T`: "each vertex has an associated computing result of the specified
/// type", §V).
///
/// `Codec` prices the value on the wire; `Default` provides the
/// uncomputed placeholder the distributed array is initialised with.
pub trait VertexValue: Clone + Default + Send + Sync + Codec + 'static {}

impl<T> VertexValue for T where T: Clone + Default + Send + Sync + Codec + 'static {}

/// The dependency vertices passed to `compute()` — the paper's
/// `vertices: Rail[Vertex[T]]` parameter, with `Vertex.getResult()`
/// folded into [`DepView::get`].
///
/// Dependencies appear in the order the DAG pattern returned them from
/// `dependencies(i, j)`, so position-based access is also possible via
/// [`DepView::values`].
pub struct DepView<'a, V> {
    ids: &'a [VertexId],
    values: &'a [V],
}

impl<'a, V> DepView<'a, V> {
    /// Builds a view; lengths must match.
    pub fn new(ids: &'a [VertexId], values: &'a [V]) -> Self {
        debug_assert_eq!(ids.len(), values.len());
        DepView { ids, values }
    }

    /// The result of dependency `(i, j)`, if `(i, j)` is a dependency of
    /// the current vertex (the paper's loop over `vertices` comparing
    /// `vertex.i`/`vertex.j` then calling `getResult()`).
    pub fn get(&self, i: u32, j: u32) -> Option<&V> {
        let want = VertexId::new(i, j);
        self.ids
            .iter()
            .position(|&id| id == want)
            .map(|k| &self.values[k])
    }

    /// Dependency ids, in pattern order.
    pub fn ids(&self) -> &[VertexId] {
        self.ids
    }

    /// Dependency values, in pattern order.
    pub fn values(&self) -> &[V] {
        self.values
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the vertex has no dependencies (a DAG source).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &V)> + '_ {
        self.ids.iter().copied().zip(self.values.iter())
    }
}

/// A DPX10 application: the `compute()` kernel plus the completion hook
/// (paper Fig. 2).
///
/// Implementations must be deterministic functions of `(id, deps)` — the
/// engine may recompute a vertex after a failure (paper §VI-D), and the
/// scheduler may execute it on any place.
pub trait DpApp: Send + Sync {
    /// The per-vertex result type.
    type Value: VertexValue;

    /// Computes the result of vertex `id` from its dependencies' results.
    fn compute(&self, id: VertexId, deps: &DepView<'_, Self::Value>) -> Self::Value;

    /// Invoked once when every vertex has completed; `result` gives access
    /// to the whole distributed array (paper: `appFinished(dag)`).
    fn app_finished(&self, result: &DagResult<Self::Value>) {
        let _ = result;
    }

    /// The prefix reductions this app wants the runtime to maintain, or
    /// `None` (the default) for classic enumerated execution.
    ///
    /// Returning `Some` opts the app into the nested-dataflow path: when
    /// the pattern also exposes an interval view
    /// ([`dpx10_dag::DagPattern::as_range`]) and the engine's
    /// `aggregation` knob is on, vertices execute via
    /// [`compute_ranged`](DpApp::compute_ranged) with interval reads
    /// served from O(1) prefix lookups instead of O(n) gathered values.
    fn agg_spec(&self) -> Option<AggSpec> {
        None
    }

    /// The aggregation key of a finished cell along `axis` — the
    /// quantity the runtime folds into the row/column prefix lanes (e.g.
    /// LWS folds `D[i] + f(i)` so `min` over a row prefix answers the
    /// recurrence directly). Must be a pure function of `(axis, id,
    /// value)`.
    ///
    /// Only called when [`agg_spec`](DpApp::agg_spec) returns `Some`.
    fn agg_key(&self, axis: Axis, id: VertexId, value: &Self::Value) -> i64 {
        let _ = (axis, id, value);
        unimplemented!("agg_key must be implemented when agg_spec is Some")
    }

    /// Computes vertex `id` from its point dependencies plus the prefix
    /// aggregates — the nested-dataflow counterpart of
    /// [`compute`](DpApp::compute). Both methods must produce identical
    /// values: the differential harness compares the two paths
    /// fingerprint-for-fingerprint.
    ///
    /// Only called when [`agg_spec`](DpApp::agg_spec) returns `Some`.
    fn compute_ranged(
        &self,
        id: VertexId,
        points: &DepView<'_, Self::Value>,
        aggs: &AggView<'_>,
    ) -> Self::Value {
        let _ = (id, points, aggs);
        unimplemented!("compute_ranged must be implemented when agg_spec is Some")
    }
}

/// Read access to the per-place prefix-aggregation lanes, handed to
/// [`DpApp::compute_ranged`]. By the time a vertex executes, the engine
/// has ensured every interval the pattern declared for it is answerable.
pub struct AggView<'a> {
    table: &'a AggTable,
}

impl<'a> AggView<'a> {
    /// Wraps a place's aggregation table.
    pub fn new(table: &'a AggTable) -> Self {
        AggView { table }
    }

    /// The fold of row `i`'s keys over columns `0..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the prefix is not yet complete — for intervals the
    /// pattern declared, the engine guarantees completeness, so a panic
    /// here means the app queried an interval outside its pattern.
    pub fn row_prefix(&self, i: u32, hi: u32) -> i64 {
        self.table
            .row_prefix(i, hi)
            .unwrap_or_else(|| panic!("row aggregate ({i}, 0..{hi}) incomplete at compute time"))
    }

    /// The fold of column `j`'s keys over rows `0..hi`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`row_prefix`](AggView::row_prefix).
    pub fn col_prefix(&self, j: u32, hi: u32) -> i64 {
        self.table
            .col_prefix(j, hi)
            .unwrap_or_else(|| panic!("col aggregate (0..{hi}, {j}) incomplete at compute time"))
    }

    /// Non-panicking row lookup (e.g. for mid-wavefront diagnostics).
    pub fn try_row_prefix(&self, i: u32, hi: u32) -> Option<i64> {
        self.table.row_prefix(i, hi)
    }

    /// Non-panicking column lookup.
    pub fn try_col_prefix(&self, j: u32, hi: u32) -> Option<i64> {
        self.table.col_prefix(j, hi)
    }
}

/// The completed computation handed to [`DpApp::app_finished`] and
/// returned by the engines: every vertex's result plus the run's metrics.
pub struct DagResult<V> {
    array: DistArray<V>,
    report: RunReport,
}

impl<V: Clone + Default> DagResult<V> {
    /// Wraps a finished array.
    pub fn new(array: DistArray<V>, report: RunReport) -> Self {
        DagResult { array, report }
    }

    /// The result of vertex `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` was not part of the DAG (e.g. the lower triangle
    /// of an interval pattern).
    pub fn get(&self, i: u32, j: u32) -> V {
        self.array
            .get_finished(i, j)
            .cloned()
            .unwrap_or_else(|| panic!("vertex ({i}, {j}) was not computed"))
    }

    /// The result of `(i, j)`, or `None` for cells outside the DAG.
    pub fn try_get(&self, i: u32, j: u32) -> Option<V> {
        self.array.get_finished(i, j).cloned()
    }

    /// The underlying distributed array.
    pub fn array(&self) -> &DistArray<V> {
        &self.array
    }

    /// Metrics of the run that produced this result.
    pub fn report(&self) -> &RunReport {
        &self.report
    }
}

impl<V: VertexValue> DagResult<V> {
    /// A 64-bit digest of every finished cell — position and encoded
    /// value — in canonical (packed-id) order, so two results fingerprint
    /// identically exactly when they hold the same values at the same
    /// coordinates, regardless of distribution, backend, or message
    /// coalescing. The differential harness compares these across
    /// engines and comms-plane modes.
    pub fn fingerprint(&self) -> u64 {
        let mut cells: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut buf = Vec::new();
        for s in 0..self.array.dist().num_slots() {
            for (i, j, v, finished) in self.array.iter_slot(s) {
                if finished {
                    buf.clear();
                    v.encode(&mut buf);
                    cells.push((VertexId::new(i, j).pack(), buf.clone()));
                }
            }
        }
        cells.sort_unstable_by_key(|(id, _)| *id);
        // FNV-1a over the sorted (id, value-bytes) stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (id, bytes) in &cells {
            for b in id.to_le_bytes() {
                eat(b);
            }
            for &b in bytes {
                eat(b);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depview_lookup_by_coordinates() {
        let ids = [
            VertexId::new(1, 1),
            VertexId::new(2, 1),
            VertexId::new(1, 2),
        ];
        let values = [10, 21, 12];
        let view = DepView::new(&ids, &values);
        assert_eq!(view.get(1, 1), Some(&10));
        assert_eq!(view.get(2, 1), Some(&21));
        assert_eq!(view.get(0, 0), None);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
    }

    #[test]
    fn depview_iterates_in_pattern_order() {
        let ids = [VertexId::new(0, 1), VertexId::new(1, 0)];
        let values = [5, 7];
        let view = DepView::new(&ids, &values);
        let collected: Vec<_> = view.iter().map(|(id, &v)| (id.i, id.j, v)).collect();
        assert_eq!(collected, vec![(0, 1, 5), (1, 0, 7)]);
    }

    #[test]
    fn empty_depview_for_sources() {
        let view: DepView<'_, i32> = DepView::new(&[], &[]);
        assert!(view.is_empty());
        assert_eq!(view.values(), &[] as &[i32]);
    }
}

//! Offline stand-in for the subset of the
//! [criterion](https://crates.io/crates/criterion) API this workspace's
//! benches use.
//!
//! The repository must build without network access, so the real crate
//! cannot be fetched. This replacement keeps the bench files unchanged
//! and produces simple wall-clock statistics (min / mean / max over the
//! configured sample count) on stdout — enough to regenerate the
//! paper-figure tables, without criterion's statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to each target function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter` ids.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Conversion into a printable benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// Units processed per iteration, for derived rates.
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name and sample settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark that closes over its input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.into_id(), &b.samples);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.into_id(), &b.samples);
        self
    }

    /// Ends the group (report lines are emitted per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples){rate}",
            self.name,
            samples.len(),
        );
    }
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input("named", &5u32, |b, &v| b.iter(|| v * 2));
        group.finish();
        assert_eq!(runs, 4, "one warm-up + three samples");
    }
}

//! Recovery edge cases at the engine level: several places dying in the
//! same epoch, and faults triggered at the very start (0 % progress) or
//! the very end (100 % — during result collection) of a run.

use std::net::TcpListener;
use std::time::Duration;

use dpx10_apgas::{ChaosPlan, KillSpec, KillTrigger, PlaceId, SocketConfig};
use dpx10_core::{DagResult, EngineConfig, FaultPlan, SocketEngine, ThreadedEngine};
use dpx10_dag::builtin::Grid3;
use dpx10_harness::{oracle, MixApp};

fn assert_matches_oracle(result: &DagResult<u64>, h: u32, w: u32) {
    let expect = oracle(&Grid3::new(h, w));
    for (id, want) in expect {
        assert_eq!(
            result.try_get(id.i, id.j),
            Some(want),
            "value mismatch at {id}"
        );
    }
}

#[test]
fn two_places_killed_at_the_same_progress_threshold() {
    let mut plan = ChaosPlan::quiet(0x2ED6E);
    plan.kills.push(KillSpec {
        place: PlaceId(1),
        trigger: KillTrigger::Progress(0.3),
    });
    plan.kills.push(KillSpec {
        place: PlaceId(2),
        trigger: KillTrigger::Progress(0.3),
    });
    let config = EngineConfig::flat(4).with_chaos(plan);
    let result = ThreadedEngine::new(MixApp, Grid3::new(10, 10), config)
        .run()
        .expect("run survives a double kill");
    assert_matches_oracle(&result, 10, 10);
    let report = result.report();
    assert!(
        report.epochs >= 2,
        "double kill must abort at least one epoch"
    );
    assert!(!report.recoveries.is_empty());
}

#[test]
fn fault_at_zero_progress_fires_on_the_first_publish() {
    // after_fraction = 0.0 clamps to a threshold of one vertex: the
    // victim dies as early as a progress-triggered kill can fire.
    let config = EngineConfig::flat(3).with_fault(FaultPlan {
        place: PlaceId(1),
        after_fraction: 0.0,
    });
    let result = ThreadedEngine::new(MixApp, Grid3::new(8, 8), config)
        .run()
        .expect("run survives an immediate kill");
    assert_matches_oracle(&result, 8, 8);
    let report = result.report();
    assert!(report.epochs >= 2, "the kill must have fired");
    assert_eq!(report.vertices_total, 64);
}

#[test]
fn fault_at_full_progress_still_completes() {
    // after_fraction = 1.0 clamps to the full vertex count: the kill
    // fires only once every cell has been computed, so the result must
    // be complete and correct whether or not an extra epoch runs.
    let config = EngineConfig::flat(3).with_fault(FaultPlan {
        place: PlaceId(1),
        after_fraction: 1.0,
    });
    let result = ThreadedEngine::new(MixApp, Grid3::new(8, 8), config)
        .run()
        .expect("run survives a kill at completion");
    assert_matches_oracle(&result, 8, 8);
    assert!(result.report().vertices_computed >= 64);
}

#[test]
fn socket_place_dying_during_result_collection() {
    // On the socket mesh a fraction-1.0 fault arms the kill at the full
    // vertex count, so `Die` is queued right as the epoch's collection
    // starts — the victim crashes while the coordinator is gathering
    // results, and the run must still finish with every value intact.
    let (places, h, w) = (3u16, 6u32, 6u32);
    let config = EngineConfig::flat(places).with_fault(FaultPlan {
        place: PlaceId(2),
        after_fraction: 1.0,
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let tighten = |mut cfg: SocketConfig| {
        cfg.heartbeat = Duration::from_millis(25);
        cfg.peer_timeout = Duration::from_millis(600);
        cfg
    };
    let mut workers = Vec::new();
    for p in 1..places {
        let addr = addr.clone();
        let config = config.clone();
        workers.push(std::thread::spawn(move || {
            SocketEngine::new(MixApp, Grid3::new(h, w), config)
                .with_soft_die()
                .run(tighten(SocketConfig::worker(PlaceId(p), places, addr)))
        }));
    }
    let outcome = SocketEngine::new(MixApp, Grid3::new(h, w), config)
        .with_soft_die()
        .run(tighten(SocketConfig::coordinator(listener, places)));
    for w in workers {
        assert!(
            matches!(w.join().expect("worker thread"), Ok(None)),
            "workers must shut down cleanly"
        );
    }
    let result = outcome
        .expect("coordinator survives")
        .expect("coordinator holds the result");
    assert_matches_oracle(&result, h, w);
}

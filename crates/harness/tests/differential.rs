//! Pinned-seed differential suite — the tier-1 slice of the chaos
//! harness. The wide random sweep lives in `dpx10 chaos`; these seeds
//! are pinned so a regression fails the same way on every machine.

use dpx10_harness::{run_seed, ChaosOptions};

/// Fast options: serial + sim + threads. Socket runs pay real
/// wall-clock for death detection, so they get their own smaller set.
fn fast() -> ChaosOptions {
    ChaosOptions {
        sockets: false,
        shrink: false,
        trace_capacity: 2048,
        coalesce: None,
        ..ChaosOptions::default()
    }
}

#[test]
fn pinned_seeds_pass_on_sim_and_threads() {
    let failures: Vec<String> = (0..24u64)
        .map(|seed| run_seed(seed, &fast()))
        .filter(|r| !r.passed())
        .map(|r| r.render())
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn pinned_seeds_pass_on_the_socket_mesh() {
    let opts = ChaosOptions {
        sockets: true,
        shrink: false,
        trace_capacity: 2048,
        coalesce: None,
        ..ChaosOptions::default()
    };
    let failures: Vec<String> = (0..6u64)
        .map(|seed| run_seed(seed, &opts))
        .filter(|r| !r.passed())
        .map(|r| r.render())
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn seed_reports_render_bit_for_bit_identically() {
    for seed in [3u64, 7, 11] {
        let a = run_seed(seed, &fast()).render();
        let b = run_seed(seed, &fast()).render();
        assert_eq!(a, b, "seed {seed} must reproduce exactly");
    }
}

#[test]
fn failure_trace_is_written_and_parses() {
    // Any seed works: the writer records whatever the scenario does,
    // pass or fail, and must always produce a valid Chrome trace.
    let path = dpx10_harness::write_failure_trace(5).expect("trace written");
    let json = std::fs::read_to_string(&path).expect("trace readable");
    let events = dpx10_obs::chrome::parse(&json).expect("trace parses");
    assert!(!events.is_empty());
    dpx10_obs::chrome::check_nesting(&events).expect("spans nest");
    let _ = std::fs::remove_file(&path);
}

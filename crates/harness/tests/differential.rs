//! Pinned-seed differential suite — the tier-1 slice of the chaos
//! harness. The wide random sweep lives in `dpx10 chaos`; these seeds
//! are pinned so a regression fails the same way on every machine.

use dpx10_apps::{serial, GapApp, LwsApp};
use dpx10_core::{EngineConfig, ThreadedEngine};
use dpx10_harness::{run_seed, ChaosOptions};
use dpx10_sim::{SimConfig, SimEngine};
use proptest::prelude::*;

/// Fast options: serial + sim + threads. Socket runs pay real
/// wall-clock for death detection, so they get their own smaller set.
fn fast() -> ChaosOptions {
    ChaosOptions {
        sockets: false,
        shrink: false,
        trace_capacity: 2048,
        coalesce: None,
        ..ChaosOptions::default()
    }
}

#[test]
fn pinned_seeds_pass_on_sim_and_threads() {
    let failures: Vec<String> = (0..24u64)
        .map(|seed| run_seed(seed, &fast()))
        .filter(|r| !r.passed())
        .map(|r| r.render())
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn pinned_seeds_pass_on_the_socket_mesh() {
    let opts = ChaosOptions {
        sockets: true,
        shrink: false,
        trace_capacity: 2048,
        coalesce: None,
        ..ChaosOptions::default()
    };
    let failures: Vec<String> = (0..6u64)
        .map(|seed| run_seed(seed, &opts))
        .filter(|r| !r.passed())
        .map(|r| r.render())
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn seed_reports_render_bit_for_bit_identically() {
    for seed in [3u64, 7, 11] {
        let a = run_seed(seed, &fast()).render();
        let b = run_seed(seed, &fast()).render();
        assert_eq!(a, b, "seed {seed} must reproduce exactly");
    }
}

// The nested-dataflow strategies: randomized sizes and weight-table
// seeds, each drawn case checked oracle-vs-sim (enumerated adapter)
// and oracle-vs-threads with prefix aggregation both on and off. The
// socket-mesh half of this contract lives in `tests/nested.rs` with
// pinned seeds (kills pay real wall-clock, so they stay bounded).
proptest! {
    #[test]
    fn lws_differential(n in 2u32..72, seed in 0u64..1_000_000) {
        let want = serial::lws(n, seed);
        let app = LwsApp::new(n, seed);
        let sim = SimEngine::new(app, app.pattern(), SimConfig::flat(2))
            .run()
            .expect("sim run");
        let agg_on = ThreadedEngine::new(app, app.pattern(), EngineConfig::flat(3))
            .run()
            .expect("threads agg-on");
        let agg_off = ThreadedEngine::new(
            app,
            app.pattern(),
            EngineConfig::flat(3).with_aggregation(false),
        )
        .run()
        .expect("threads agg-off");
        for j in 0..n {
            prop_assert_eq!(sim.get(0, j), want[j as usize], "sim at j={}", j);
            prop_assert_eq!(agg_on.get(0, j), want[j as usize], "agg-on at j={}", j);
            prop_assert_eq!(agg_off.get(0, j), want[j as usize], "agg-off at j={}", j);
        }
        prop_assert_eq!(sim.fingerprint(), agg_on.fingerprint());
        prop_assert_eq!(sim.fingerprint(), agg_off.fingerprint());
    }

    #[test]
    fn gap_differential(h in 2u32..13, w in 2u32..13, seed in 0u64..1_000_000) {
        let want = serial::gap(h, w, seed);
        let app = GapApp::new(h, w, seed);
        let sim = SimEngine::new(app, app.pattern(), SimConfig::flat(2))
            .run()
            .expect("sim run");
        let agg_on = ThreadedEngine::new(app, app.pattern(), EngineConfig::flat(3))
            .run()
            .expect("threads agg-on");
        let agg_off = ThreadedEngine::new(
            app,
            app.pattern(),
            EngineConfig::flat(3).with_aggregation(false),
        )
        .run()
        .expect("threads agg-off");
        for i in 0..h {
            for j in 0..w {
                let cell = want[i as usize][j as usize];
                prop_assert_eq!(sim.get(i, j), cell, "sim at ({}, {})", i, j);
                prop_assert_eq!(agg_on.get(i, j), cell, "agg-on at ({}, {})", i, j);
                prop_assert_eq!(agg_off.get(i, j), cell, "agg-off at ({}, {})", i, j);
            }
        }
        prop_assert_eq!(sim.fingerprint(), agg_on.fingerprint());
        prop_assert_eq!(sim.fingerprint(), agg_off.fingerprint());
    }

    /// A starved cache must not break aggregated reads: raw remote
    /// values get evicted, lanes are residents.
    #[test]
    fn lws_aggregates_survive_starved_caches(n in 8u32..64, seed in 0u64..100_000) {
        let want = serial::lws(n, seed);
        let app = LwsApp::new(n, seed);
        let result = ThreadedEngine::new(
            app,
            app.pattern(),
            EngineConfig::flat(4).with_cache(2),
        )
        .run()
        .expect("starved run");
        for j in 0..n {
            prop_assert_eq!(result.get(0, j), want[j as usize], "j={}", j);
        }
        prop_assert_eq!(result.report().comm.pulls_sent, 0);
    }
}

#[test]
fn failure_trace_is_written_and_parses() {
    // Any seed works: the writer records whatever the scenario does,
    // pass or fail, and must always produce a valid Chrome trace.
    let path = dpx10_harness::write_failure_trace(5).expect("trace written");
    let json = std::fs::read_to_string(&path).expect("trace readable");
    let events = dpx10_obs::chrome::parse(&json).expect("trace parses");
    assert!(!events.is_empty());
    dpx10_obs::chrome::check_nesting(&events).expect("spans nest");
    let _ = std::fs::remove_file(&path);
}

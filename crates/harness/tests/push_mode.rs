//! Pull-vs-push differential oracles. Push mode may deliver
//! anti-dependency values eagerly, but the computation must be
//! indistinguishable from the pull plane: same values at every cell as
//! the serial oracle, same `DagResult` fingerprint as a pull run, and
//! the recovery invariants intact when a place dies after pushing.

use std::net::TcpListener;
use std::time::Duration;

use dpx10_apgas::{ChaosPlan, KillSpec, KillTrigger, PlaceId, SocketConfig};
use dpx10_core::{CommsMode, DagResult, EngineConfig, SocketEngine, ThreadedEngine};
use dpx10_dag::builtin::{FullPrevRowCol, Grid3};
use dpx10_harness::{oracle, run_seed, ChaosOptions, MixApp};

/// Fast sweep options with anti-dependency values pushed eagerly.
fn pushed() -> ChaosOptions {
    ChaosOptions {
        sockets: false,
        shrink: false,
        trace_capacity: 2048,
        comms: CommsMode::Push,
        ..ChaosOptions::default()
    }
}

fn assert_matches_oracle(result: &DagResult<u64>, pattern: &dyn dpx10_dag::DagPattern) {
    for (id, want) in oracle(pattern) {
        assert_eq!(
            result.try_get(id.i, id.j),
            Some(want),
            "value mismatch at {id}"
        );
    }
}

#[test]
fn pinned_seeds_pass_pushed_on_sim_and_threads() {
    // The 25 seeds tier-1 pins for the pull plane, re-run in push mode
    // on the simulator and the threaded engine. The serial oracle has
    // no comms plane, so every comparison is pushed-vs-reference.
    let failures: Vec<String> = (0..25u64)
        .map(|seed| run_seed(seed, &pushed()))
        .filter(|r| !r.passed())
        .map(|r| r.render())
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn pinned_seeds_pass_pushed_on_the_socket_mesh() {
    let opts = ChaosOptions {
        sockets: true,
        shrink: false,
        trace_capacity: 2048,
        comms: CommsMode::Push,
        ..ChaosOptions::default()
    };
    let failures: Vec<String> = (0..4u64)
        .map(|seed| run_seed(seed, &opts))
        .filter(|r| !r.passed())
        .map(|r| r.render())
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn fingerprints_match_pull_vs_push_and_push_actually_pushed() {
    // The same DAG on the threaded engine with no cache, so the pull
    // plane pays a round-trip for every remote dependency: identical
    // result digests, and the push run's stats prove values really
    // travelled the eager path instead of the pull fallback.
    let run = |comms: CommsMode| {
        let config = EngineConfig::flat(3).with_cache(0).with_comms(comms);
        ThreadedEngine::new(MixApp, FullPrevRowCol::new(10, 10), config)
            .run()
            .expect("run completes")
    };
    let pull = run(CommsMode::Pull);
    let push = run(CommsMode::Push);
    assert_eq!(pull.fingerprint(), push.fingerprint());
    assert_eq!(pull.report().comm.pushes_sent, 0);
    assert!(
        push.report().comm.pushes_sent > 0,
        "a push run must forward at least one value eagerly"
    );
    assert!(
        push.report().comm.pull_roundtrips_avoided > 0,
        "pushed values must satisfy parked consumers without a round-trip"
    );
    assert!(
        push.report().comm.pulls_sent < pull.report().comm.pulls_sent,
        "push mode must reduce pull round-trips ({} -> {})",
        pull.report().comm.pulls_sent,
        push.report().comm.pulls_sent
    );
}

#[test]
fn socket_place_killed_after_pushing_recovers() {
    // A place that pushed values to its consumers and then dies is the
    // recovery worst case for the eager plane: the mesh holds pinned
    // values whose producer is gone, and the restored epoch must not
    // admit stale pushes from the previous epoch. A kill at 40 %
    // progress lands after the victim has both pushed and received
    // pushes; the final values still match the oracle and recomputation
    // stays inside the loss budget.
    let (places, h, w) = (3u16, 9u32, 9u32);
    let mut plan = ChaosPlan::quiet(0xB00);
    plan.kills.push(KillSpec {
        place: PlaceId(1),
        trigger: KillTrigger::Progress(0.4),
    });
    let config = EngineConfig::flat(places)
        .with_cache(0)
        .with_chaos(plan)
        .with_comms(CommsMode::Push);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let tighten = |mut cfg: SocketConfig| {
        cfg.heartbeat = Duration::from_millis(25);
        cfg.peer_timeout = Duration::from_millis(600);
        cfg
    };
    let mut workers = Vec::new();
    for p in 1..places {
        let addr = addr.clone();
        let config = config.clone();
        workers.push(std::thread::spawn(move || {
            SocketEngine::new(MixApp, Grid3::new(h, w), config)
                .with_soft_die()
                .run(tighten(SocketConfig::worker(PlaceId(p), places, addr)))
        }));
    }
    let outcome = SocketEngine::new(MixApp, Grid3::new(h, w), config)
        .with_soft_die()
        .run(tighten(SocketConfig::coordinator(listener, places)));
    for w in workers {
        assert!(
            matches!(w.join().expect("worker thread"), Ok(None)),
            "workers must shut down cleanly"
        );
    }
    let result = outcome
        .expect("coordinator survives")
        .expect("coordinator holds the result");
    assert_matches_oracle(&result, &Grid3::new(h, w));
    let report = result.report();
    assert!(report.epochs >= 2, "the kill must have aborted an epoch");
    assert!(!report.recoveries.is_empty());
    let budget: u64 = report
        .recoveries
        .iter()
        .map(|r| r.lost + r.dropped)
        .sum::<u64>()
        + report.recoveries.len() as u64 * u64::from(h) * u64::from(w);
    assert!(
        report.recomputed() <= budget,
        "recomputed {} exceeds loss budget {budget}",
        report.recomputed()
    );
}

#[test]
fn consumer_that_pulls_anyway_still_gets_a_correct_reply() {
    // Push delivery is best-effort: a consumer whose pushed value was
    // evicted (zero-capacity pin race) or that parked after the push
    // falls back to the pull protocol. Starving the cache while pushing
    // exercises both paths at once on a many-waiter pattern — every
    // cell must still match the oracle.
    let config = EngineConfig::flat(4)
        .with_cache(0)
        .with_comms(CommsMode::Push);
    let pattern = FullPrevRowCol::new(8, 8);
    let result = ThreadedEngine::new(MixApp, pattern, config)
        .run()
        .expect("push mode with pull fallback completes");
    assert_matches_oracle(&result, &FullPrevRowCol::new(8, 8));
}

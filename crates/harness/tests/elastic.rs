//! Elastic-mesh differential tests: membership churn (joins, drains,
//! live relocations, kills) must never change a single cell value.
//!
//! Three layers of evidence:
//!
//! * a pinned-seed sweep of generator-produced churn plans, each run
//!   compared cell-by-cell against the serial oracle and by fingerprint
//!   against a solo run;
//! * a crafted kill-during-relocation schedule proving the epoch fence
//!   resolves an in-flight chunk transfer under fire;
//! * the 3 → 5 → 3 demo: the mesh grows mid-sweep and drains back down
//!   with chunks provably relocated, not recomputed.

use dpx10_apgas::{ElasticEvent, ElasticPlan, ElasticVerb, PlaceId};
use dpx10_core::{ElasticConfig, ElasticEngine, ElasticRun};
use dpx10_dag::builtin::Grid3;
use dpx10_harness::{oracle, MixApp};

fn run_elastic(h: u32, w: u32, founding: u16, capacity: u16, plan: ElasticPlan) -> ElasticRun<u64> {
    ElasticEngine::new(
        MixApp,
        Grid3::new(h, w),
        ElasticConfig::new(founding, capacity),
    )
    .with_plan(plan)
    .run()
    .expect("elastic run completes")
}

fn assert_matches_oracle(run: &ElasticRun<u64>, h: u32, w: u32, label: &str) {
    for (id, want) in oracle(&Grid3::new(h, w)) {
        assert_eq!(
            run.try_get(id.i, id.j),
            Some(want),
            "{label}: value mismatch at {id}"
        );
    }
}

fn ev(at: f64, verb: ElasticVerb) -> ElasticEvent {
    ElasticEvent { at, verb }
}

/// Pinned seeds for the generated-churn sweep. Frozen so a regression
/// in the fence or the relocation protocol reproduces byte-for-byte.
const SEEDS: [u64; 25] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_0002,
    0x0000_0000_0000_0003,
    0x0000_0000_0000_0007,
    0x0000_0000_0000_0011,
    0x0000_0000_0000_002A,
    0x0000_0000_0000_0539,
    0x0000_0000_0001_E240,
    0x0000_0000_DEAD_BEEF,
    0x0000_0001_0000_0001,
    0x0123_4567_89AB_CDEF,
    0x1111_1111_1111_1111,
    0x2222_2222_2222_2222,
    0x3C0F_FEE5_CA1E_D007,
    0x4242_4242_4242_4242,
    0x5555_5555_5555_5555,
    0x6B8B_4567_327B_23C6,
    0x7FFF_FFFF_FFFF_FFFF,
    0x8000_0000_0000_0000,
    0x9E37_79B9_7F4A_7C15,
    0xA5A5_A5A5_A5A5_A5A5,
    0xBADC_0FFE_E0DD_F00D,
    0xCAFE_BABE_CAFE_BABE,
    0xDEAD_10CC_DEAD_10CC,
    0xFEDC_BA98_7654_3210,
];

#[test]
fn pinned_seed_churn_sweep_matches_oracle() {
    let solo = run_elastic(12, 12, 1, 1, ElasticPlan::quiet(0)).fingerprint();
    let (mut relocations, mut kills, mut joins, mut drains, mut fence) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for &seed in &SEEDS {
        let plan = ElasticPlan::generate(seed, 3, 5);
        let label = format!("seed {seed:#018x} plan {plan}");
        let run = run_elastic(12, 12, 3, 5, plan);
        assert_eq!(run.fingerprint(), solo, "{label}: fingerprint diverged");
        assert_matches_oracle(&run, 12, 12, &label);
        let r = run.report();
        assert_eq!(
            r.computed - r.recomputed,
            r.total,
            "{label}: every cell computed exactly once net of recovery"
        );
        if r.kills == 0 {
            assert_eq!(
                r.recomputed, 0,
                "{label}: churn without kills never recomputes"
            );
        }
        relocations += r.chunks_relocated;
        kills += r.kills;
        joins += r.joins;
        drains += r.drains;
        fence += r.parked_replayed + r.replayed_pulls + r.stale_dropped + r.forwarded;
    }
    // The pinned sweep must actually exercise every verb and the fence.
    assert!(relocations > 0, "sweep never relocated a chunk");
    assert!(kills > 0, "sweep never killed a place");
    assert!(joins > 0, "sweep never grew the mesh");
    assert!(drains > 0, "sweep never drained a place");
    assert!(fence > 0, "sweep never tripped the epoch fence");
}

#[test]
fn kill_lands_mid_relocation_and_the_fence_resolves_it() {
    // The relocation starts at 43/144 finished; the kill threshold is
    // two cells later, so it fires while the transfer is in flight —
    // the kill barrier must deliver or discard the chunk and repair
    // every member's epoch before reassigning the victim's slots.
    let solo = run_elastic(12, 12, 1, 1, ElasticPlan::quiet(0)).fingerprint();
    let plan = ElasticPlan {
        seed: 0x0E1A_571C,
        events: vec![
            ev(0.30, ElasticVerb::Relocate { slot: 2 }),
            ev(0.32, ElasticVerb::Kill { place: PlaceId(1) }),
        ],
    };
    let run = run_elastic(12, 12, 3, 5, plan);
    assert_eq!(run.fingerprint(), solo);
    assert_matches_oracle(&run, 12, 12, "kill-mid-relocation");
    let r = run.report();
    assert_eq!(r.kills, 1);
    assert!(
        r.recomputed > 0,
        "the victim held finished cells, so recovery recomputes: {r:?}"
    );
    assert_eq!(r.computed - r.recomputed, r.total);
}

#[test]
fn drain_under_load_relocates_every_chunk() {
    // Draining a busy member ships every chunk it holds — finished
    // cells travel with the chunk, so nothing recomputes and the
    // drained places leave only once their inboxes are empty.
    let solo = run_elastic(12, 12, 1, 1, ElasticPlan::quiet(0)).fingerprint();
    let plan = ElasticPlan {
        seed: 0x000D_1A17,
        events: vec![
            ev(0.20, ElasticVerb::Drain { place: PlaceId(1) }),
            ev(0.40, ElasticVerb::Drain { place: PlaceId(2) }),
        ],
    };
    let run = run_elastic(12, 12, 3, 5, plan);
    assert_eq!(run.fingerprint(), solo);
    assert_matches_oracle(&run, 12, 12, "drain-under-load");
    let r = run.report();
    assert_eq!(r.drains, 2);
    assert_eq!(r.recomputed, 0, "graceful drains never recompute");
    assert!(
        r.chunks_relocated >= 2,
        "both drains must ship chunks: {r:?}"
    );
    assert_eq!(r.final_members, vec![0], "both drained places left");
}

#[test]
fn kill_barrier_replays_unanswered_pulls() {
    // A join rebalances chunks to the newcomer, the kill lands one
    // cell later and the survivor drains out: pulls that were in
    // flight to the dead place must re-issue when the barrier
    // advances every fence (`replayed_pulls`).
    let solo = run_elastic(12, 12, 1, 1, ElasticPlan::quiet(0)).fingerprint();
    let plan = ElasticPlan {
        seed: 0xF3A2,
        events: vec![
            ev(0.50, ElasticVerb::Join),
            ev(0.51, ElasticVerb::Kill { place: PlaceId(1) }),
            ev(0.57, ElasticVerb::Drain { place: PlaceId(2) }),
        ],
    };
    let run = run_elastic(12, 12, 3, 5, plan);
    assert_eq!(run.fingerprint(), solo);
    assert_matches_oracle(&run, 12, 12, "kill-barrier-replay");
    let r = run.report();
    assert_eq!((r.joins, r.kills, r.drains), (1, 1, 1));
    assert!(
        r.replayed_pulls > 0,
        "the barrier must re-issue the pulls the dead place swallowed: {r:?}"
    );
    assert_eq!(r.computed - r.recomputed, r.total);
}

#[test]
fn kill_discards_done_backlog_and_the_barrier_recounts() {
    // Regression: the victim dies holding unprocessed `Done`
    // decrements for a chunk that was force-delivered to a survivor
    // mid-relocation. Without the barrier's indegree recount the
    // installed chunk waits forever for decrements nobody will send.
    let solo = run_elastic(12, 12, 1, 1, ElasticPlan::quiet(0)).fingerprint();
    let plan = ElasticPlan {
        seed: 0x57A11,
        events: vec![
            ev(0.50, ElasticVerb::Relocate { slot: 7 }),
            ev(0.52, ElasticVerb::Kill { place: PlaceId(1) }),
        ],
    };
    let run = run_elastic(12, 12, 3, 5, plan);
    assert_eq!(run.fingerprint(), solo);
    assert_matches_oracle(&run, 12, 12, "done-backlog-recount");
    let r = run.report();
    assert_eq!(r.kills, 1);
    assert_eq!(r.chunks_relocated, 1, "the in-flight chunk force-delivers");
    assert_eq!(r.computed - r.recomputed, r.total);
}

#[test]
fn mesh_grows_to_five_mid_sweep_and_drains_back_to_three() {
    // The acceptance demo: 3 founding places, two joins mid-run, two
    // drains later; every fingerprint equals the solo run and at least
    // one chunk moves with its finished cells intact.
    let solo = run_elastic(14, 14, 1, 1, ElasticPlan::quiet(0)).fingerprint();
    let plan = ElasticPlan {
        seed: 0x353,
        events: vec![
            ev(0.10, ElasticVerb::Join),
            ev(0.18, ElasticVerb::Join),
            ev(0.55, ElasticVerb::Drain { place: PlaceId(3) }),
            ev(0.70, ElasticVerb::Drain { place: PlaceId(4) }),
        ],
    };
    let run = run_elastic(14, 14, 3, 6, plan);
    assert_eq!(run.fingerprint(), solo);
    assert_matches_oracle(&run, 14, 14, "grow-drain demo");
    let r = run.report();
    assert_eq!((r.joins, r.drains, r.kills), (2, 2, 0));
    assert!(
        r.mesh_sizes.iter().any(|&(_, n)| n == 5),
        "mesh must reach 5 members: {:?}",
        r.mesh_sizes
    );
    assert_eq!(
        r.final_members,
        vec![0, 1, 2],
        "mesh returns to the founders"
    );
    assert!(
        r.chunks_relocated >= 1 && r.cells_moved >= 1,
        "chunks must relocate carrying finished cells: {r:?}"
    );
    assert!(r.chunk_bytes > 0, "relocation ships real payload bytes");
    assert_eq!(r.recomputed, 0, "relocated, never recomputed");
}

#[test]
fn shrunk_plans_still_replay_deterministically() {
    // The chaos shrinker drops one event at a time; every shrunk plan
    // must still be a valid, correct run (this is what makes failures
    // minimizable).
    let solo = run_elastic(12, 12, 1, 1, ElasticPlan::quiet(0)).fingerprint();
    let plan = ElasticPlan::generate(SEEDS[10], 3, 5);
    for shrunk in plan.shrink() {
        let run = run_elastic(12, 12, 3, 5, shrunk.clone());
        assert_eq!(
            run.fingerprint(),
            solo,
            "shrunk plan {shrunk} diverged from solo"
        );
    }
}

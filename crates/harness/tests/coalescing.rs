//! Coalescing-on vs coalescing-off differential oracles. The comms
//! plane may batch messages however it likes, but the computation must
//! be indistinguishable: same values at every cell as the serial
//! oracle, same `DagResult` fingerprint as an uncoalesced run, and the
//! recovery invariants intact when a place dies with batches in flight.

use std::net::TcpListener;
use std::time::Duration;

use dpx10_apgas::{ChaosPlan, KillSpec, KillTrigger, PlaceId, SocketConfig};
use dpx10_core::{DagResult, EngineConfig, SocketEngine, ThreadedEngine};
use dpx10_dag::builtin::{FullPrevRowCol, Grid3};
use dpx10_harness::{oracle, run_seed, ChaosOptions, MixApp};

/// Fast sweep options with the comms plane coalesced at `bytes`.
fn coalesced(bytes: usize) -> ChaosOptions {
    ChaosOptions {
        sockets: false,
        shrink: false,
        trace_capacity: 2048,
        coalesce: Some(bytes),
        ..ChaosOptions::default()
    }
}

fn assert_matches_oracle(result: &DagResult<u64>, pattern: &dyn dpx10_dag::DagPattern) {
    for (id, want) in oracle(pattern) {
        assert_eq!(
            result.try_get(id.i, id.j),
            Some(want),
            "value mismatch at {id}"
        );
    }
}

#[test]
fn pinned_seeds_pass_coalesced_on_sim_and_threads() {
    // The same seeds tier-1 pins uncoalesced, re-run with a 4 KiB
    // coalescing budget on the threaded engine. The serial oracle and
    // the simulator never coalesce, so every comparison is
    // batched-vs-unbatched.
    let failures: Vec<String> = (0..12u64)
        .map(|seed| run_seed(seed, &coalesced(4096)))
        .filter(|r| !r.passed())
        .map(|r| r.render())
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn tiny_budget_forces_constant_flushing() {
    // A 96-byte budget overflows after one or two Done messages, so
    // every code path alternates between buffering and flushing — the
    // regime most likely to expose ordering or loss bugs.
    let failures: Vec<String> = (0..8u64)
        .map(|seed| run_seed(seed, &coalesced(96)))
        .filter(|r| !r.passed())
        .map(|r| r.render())
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn pinned_seeds_pass_coalesced_on_the_socket_mesh() {
    let opts = ChaosOptions {
        sockets: true,
        shrink: false,
        trace_capacity: 2048,
        coalesce: Some(4096),
        ..ChaosOptions::default()
    };
    let failures: Vec<String> = (0..4u64)
        .map(|seed| run_seed(seed, &opts))
        .filter(|r| !r.passed())
        .map(|r| r.render())
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn fingerprints_match_with_and_without_coalescing() {
    // The same DAG on the threaded engine, coalescing off vs on at two
    // budgets: identical result digests, and the coalesced runs really
    // did batch (the stats prove the plane took the new path).
    let run = |coalesce: Option<usize>| {
        let config = EngineConfig::flat(3).with_coalesce(coalesce);
        ThreadedEngine::new(MixApp, Grid3::new(14, 14), config)
            .run()
            .expect("run completes")
    };
    let off = run(None);
    let on = run(Some(4096));
    let tight = run(Some(128));
    assert_eq!(off.fingerprint(), on.fingerprint());
    assert_eq!(off.fingerprint(), tight.fingerprint());
    assert_eq!(off.report().comm.batches_sent, 0);
    assert!(
        on.report().comm.batches_sent > 0,
        "a coalesced run must flush at least one batch"
    );
    assert!(
        on.report().comm.batched_msgs >= on.report().comm.batches_sent,
        "every batch carries at least one message"
    );
}

#[test]
fn socket_place_killed_mid_flush_recovers_batched_vertices() {
    // A 128-byte budget keeps a batch in flight almost constantly, so a
    // kill at 40 % progress lands while the victim holds buffered
    // traffic. Recovery must recompute whatever the dropped batches
    // carried — the final values still match the oracle — and the
    // surviving mesh must not deadlock on messages the victim buffered
    // but never flushed.
    let (places, h, w) = (3u16, 9u32, 9u32);
    let mut plan = ChaosPlan::quiet(0xC0A1);
    plan.kills.push(KillSpec {
        place: PlaceId(1),
        trigger: KillTrigger::Progress(0.4),
    });
    let config = EngineConfig::flat(places)
        .with_chaos(plan)
        .with_coalesce(Some(128));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let tighten = |mut cfg: SocketConfig| {
        cfg.heartbeat = Duration::from_millis(25);
        cfg.peer_timeout = Duration::from_millis(600);
        cfg
    };
    let mut workers = Vec::new();
    for p in 1..places {
        let addr = addr.clone();
        let config = config.clone();
        workers.push(std::thread::spawn(move || {
            SocketEngine::new(MixApp, Grid3::new(h, w), config)
                .with_soft_die()
                .run(tighten(SocketConfig::worker(PlaceId(p), places, addr)))
        }));
    }
    let outcome = SocketEngine::new(MixApp, Grid3::new(h, w), config)
        .with_soft_die()
        .run(tighten(SocketConfig::coordinator(listener, places)));
    for w in workers {
        assert!(
            matches!(w.join().expect("worker thread"), Ok(None)),
            "workers must shut down cleanly"
        );
    }
    let result = outcome
        .expect("coordinator survives")
        .expect("coordinator holds the result");
    assert_matches_oracle(&result, &Grid3::new(h, w));
    let report = result.report();
    assert!(report.epochs >= 2, "the kill must have aborted an epoch");
    assert!(!report.recoveries.is_empty());
    // Recomputation is bounded by what the failure could have taken
    // down: the victim's lost cells plus in-flight work, never a full
    // restart per recovery beyond the replay budget.
    let budget: u64 = report
        .recoveries
        .iter()
        .map(|r| r.lost + r.dropped)
        .sum::<u64>()
        + report.recoveries.len() as u64 * u64::from(h) * u64::from(w);
    assert!(
        report.recomputed() <= budget,
        "recomputed {} exceeds loss budget {budget}",
        report.recomputed()
    );
}

#[test]
fn parked_pull_waiter_survives_owner_death_under_coalescing() {
    // Worst case for the pull path: no cache (every remote dependency
    // pulls), a pattern whose vertices each depend on a full previous
    // row and column (many waiters parked on the same remote cells),
    // a tiny coalescing budget (PullVal replies ride in batches), and
    // the owner of those cells dying mid-run. If a parked waiter's
    // pull was buffered towards a dead place and never resent, the
    // epoch would hang — the engine's stall watchdog turns that into a
    // failure instead of a silent deadlock.
    let mut plan = ChaosPlan::quiet(0xDEAD);
    plan.kills.push(KillSpec {
        place: PlaceId(1),
        trigger: KillTrigger::Progress(0.5),
    });
    let mut config = EngineConfig::flat(3)
        .with_cache(0)
        .with_chaos(plan)
        .with_coalesce(Some(64));
    config.stall_limit = Duration::from_secs(20);
    let pattern = FullPrevRowCol::new(8, 8);
    let result = ThreadedEngine::new(MixApp, pattern, config)
        .run()
        .expect("run survives the owner dying under parked pulls");
    assert_matches_oracle(&result, &FullPrevRowCol::new(8, 8));
    assert!(result.report().epochs >= 2, "the kill must have fired");
}

//! Nested-dataflow differential suite: LWS and GAP against their serial
//! oracles on every backend, with prefix aggregation on and off, and
//! under kill/recovery chaos on the in-process socket mesh.
//!
//! The simulator always executes the enumerated interval adapter, so a
//! sim-vs-threads agreement here is itself a differential check of the
//! prefix-aggregated path against the brute one.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use dpx10_apgas::{ChaosPlan, KillSpec, KillTrigger, NetChaos, PlaceId, SocketConfig};
use dpx10_apps::{serial, GapApp, LwsApp};
use dpx10_core::{
    DagResult, DpApp, EngineConfig, RunReport, SocketEngine, ThreadedEngine, VertexValue,
};
use dpx10_dag::DagPattern;
use dpx10_distarray::{Dist, DistArray, Region2D};
use dpx10_sim::{SimConfig, SimEngine};

/// Fingerprints a dense serial table through the same digest the
/// engines use, so oracle-vs-backend comparison is a single u64.
fn table_fingerprint(height: u32, width: u32, cell: impl Fn(u32, u32) -> u32) -> u64 {
    let dist = Dist::default_block_col(Region2D::new(height, width), vec![PlaceId(0)]);
    let mut arr = DistArray::new(Arc::new(dist));
    for i in 0..height {
        for j in 0..width {
            arr.set(i, j, cell(i, j));
        }
    }
    DagResult::new(arr, RunReport::default()).fingerprint()
}

fn lws_oracle_fp(n: u32, seed: u64) -> u64 {
    let d = serial::lws(n, seed);
    table_fingerprint(1, n, |_, j| d[j as usize])
}

fn gap_oracle_fp(h: u32, w: u32, seed: u64) -> u64 {
    let g = serial::gap(h, w, seed);
    table_fingerprint(h, w, |i, j| g[i as usize][j as usize])
}

fn threads_fp<A, P>(app: A, pattern: P, cfg: EngineConfig) -> u64
where
    A: DpApp + 'static,
    A::Value: VertexValue,
    P: DagPattern + 'static,
{
    ThreadedEngine::new(app, pattern, cfg)
        .run()
        .expect("threaded run")
        .fingerprint()
}

fn sim_fp<A, P>(app: A, pattern: P, places: u16) -> u64
where
    A: DpApp + 'static,
    A::Value: VertexValue,
    P: DagPattern + 'static,
{
    SimEngine::new(app, pattern, SimConfig::flat(places))
        .run()
        .expect("sim run")
        .fingerprint()
}

/// The in-process TCP mesh (every place a thread, same idiom as the
/// chaos runner), with soft-crash kills and tight death detection.
fn sockets_run<A, P, F>(
    app: A,
    pattern_of: F,
    places: u16,
    cfg: EngineConfig,
) -> DagResult<A::Value>
where
    A: DpApp + Clone + 'static,
    A::Value: VertexValue,
    P: DagPattern + 'static,
    F: Fn() -> P + Clone + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let tighten = |mut sc: SocketConfig| {
        sc.heartbeat = Duration::from_millis(25);
        sc.peer_timeout = Duration::from_millis(600);
        sc
    };
    let mut workers = Vec::new();
    for p in 1..places {
        let app = app.clone();
        let pattern_of = pattern_of.clone();
        let cfg = cfg.clone();
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            SocketEngine::new(app, pattern_of(), cfg)
                .with_soft_die()
                .run(tighten(SocketConfig::worker(PlaceId(p), places, addr)))
        }));
    }
    let outcome = SocketEngine::new(app, pattern_of(), cfg)
        .with_soft_die()
        .run(tighten(SocketConfig::coordinator(listener, places)));
    for (idx, w) in workers.into_iter().enumerate() {
        let joined = w
            .join()
            .unwrap_or_else(|_| panic!("worker {} panicked", idx + 1));
        assert!(
            matches!(joined, Ok(None)),
            "worker place {} did not shut down cleanly",
            idx + 1
        );
    }
    outcome
        .expect("coordinator run")
        .expect("coordinator result")
}

fn mesh_config(places: u16, agg: bool, plan: Option<ChaosPlan>) -> EngineConfig {
    let mut cfg = EngineConfig::flat(places).with_aggregation(agg);
    if let Some(plan) = plan {
        cfg = cfg.with_chaos(plan);
    }
    cfg.stall_limit = Duration::from_secs(20);
    cfg
}

fn one_kill(seed: u64, victim: u16, frac: f64) -> ChaosPlan {
    ChaosPlan {
        seed,
        kills: vec![KillSpec {
            place: PlaceId(victim),
            trigger: KillTrigger::Progress(frac),
        }],
        net: NetChaos::off(),
        flap: None,
        shake: false,
    }
}

#[test]
fn lws_matches_serial_on_every_backend() {
    for seed in [1u64, 7, 42] {
        let n = 48;
        let want = lws_oracle_fp(n, seed);
        let app = LwsApp::new(n, seed);
        assert_eq!(sim_fp(app, app.pattern(), 3), want, "sim seed {seed}");
        assert_eq!(
            threads_fp(app, app.pattern(), EngineConfig::flat(3)),
            want,
            "threads agg-on seed {seed}"
        );
        assert_eq!(
            threads_fp(
                app,
                app.pattern(),
                EngineConfig::flat(3).with_aggregation(false)
            ),
            want,
            "threads agg-off seed {seed}"
        );
    }
}

#[test]
fn gap_matches_serial_on_every_backend() {
    for seed in [2u64, 31, 99] {
        let (h, w) = (10, 12);
        let want = gap_oracle_fp(h, w, seed);
        let app = GapApp::new(h, w, seed);
        assert_eq!(sim_fp(app, app.pattern(), 3), want, "sim seed {seed}");
        assert_eq!(
            threads_fp(app, app.pattern(), EngineConfig::flat(3)),
            want,
            "threads agg-on seed {seed}"
        );
        assert_eq!(
            threads_fp(
                app,
                app.pattern(),
                EngineConfig::flat(3).with_aggregation(false)
            ),
            want,
            "threads agg-off seed {seed}"
        );
    }
}

#[test]
fn lws_and_gap_match_serial_on_the_quiet_socket_mesh() {
    let lws = LwsApp::new(40, 11);
    let result = sockets_run(lws, move || lws.pattern(), 3, mesh_config(3, true, None));
    assert_eq!(result.fingerprint(), lws_oracle_fp(40, 11));
    // LWS has no point dependencies: with lanes resident at every place
    // the aggregated mesh never issues a pull round-trip.
    assert_eq!(
        result.report().comm.pulls_sent,
        0,
        "interval reads must come from lanes, not pulls"
    );

    let gap = GapApp::new(9, 11, 5);
    let result = sockets_run(gap, move || gap.pattern(), 3, mesh_config(3, true, None));
    assert_eq!(result.fingerprint(), gap_oracle_fp(9, 11, 5));
}

/// Satellite: 25 pinned seeds of LWS/GAP under kill/recovery on the
/// socket mesh, prefix aggregation on. Each seed kills one worker place
/// at a seed-derived progress fraction; the coordinator fires the kill
/// before it can declare the epoch done, so every run recovers at least
/// once and must still fingerprint-match its serial oracle.
#[test]
fn nested_apps_survive_kill_recovery_on_sockets_25_seeds() {
    let mut recovered = 0u32;
    for seed in 0..25u64 {
        let victim = 1 + (seed % 2) as u16;
        let frac = 0.15 + (seed % 7) as f64 * 0.1;
        let cfg = mesh_config(3, true, Some(one_kill(seed, victim, frac)));
        let (fp, want, recoveries) = if seed % 2 == 0 {
            let app = LwsApp::new(40, seed + 1);
            let r = sockets_run(app, move || app.pattern(), 3, cfg);
            (
                r.fingerprint(),
                lws_oracle_fp(40, seed + 1),
                r.report().recoveries.len(),
            )
        } else {
            let app = GapApp::new(8, 9, seed + 1);
            let r = sockets_run(app, move || app.pattern(), 3, cfg);
            (
                r.fingerprint(),
                gap_oracle_fp(8, 9, seed + 1),
                r.report().recoveries.len(),
            )
        };
        assert_eq!(fp, want, "seed {seed} diverged from the serial oracle");
        recovered += (recoveries > 0) as u32;
    }
    assert_eq!(
        recovered, 25,
        "every pinned seed kills a live place before the epoch can finish"
    );
}

/// Regression pin: a kill in the middle of the GAP wavefront, where the
/// victim owns both finished lane contributions and unfinished cells.
/// Recovery re-seeds aggregates from surviving values only; the
/// meta-only prefinished cells left by the Resume scatter must ride the
/// interval-gap pull path, and the result must still match the oracle.
#[test]
fn kill_during_gap_wavefront_recovers_with_aggregation() {
    let app = GapApp::new(12, 12, 77);
    let cfg = mesh_config(3, true, Some(one_kill(0x77, 1, 0.35)));
    let result = sockets_run(app, move || app.pattern(), 3, cfg);
    assert_eq!(result.fingerprint(), gap_oracle_fp(12, 12, 77));
    assert!(
        !result.report().recoveries.is_empty(),
        "the pinned kill must actually interrupt the wavefront"
    );
}

//! Chaos differential oracle for the multi-job scheduler: several
//! concurrent jobs share one 3-place socket mesh while a pinned,
//! deterministic kill takes a place down mid-serve. The oracle for
//! every job — faulted or not — is its solo single-place threaded run;
//! fault isolation is asserted structurally: only jobs with vertices on
//! the dead place recover (epochs ≥ 2), jobs pinned away from it never
//! see a second epoch.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use dpx10_apgas::SocketConfig;
use dpx10_core::{
    EngineConfig, JobServer, JobSpec, PlaceId, ServeKill, ServeReport, ThreadedEngine,
};
use dpx10_dag::{builtin, DagPattern};
use dpx10_harness::MixApp;

fn solo_fingerprint(pattern: impl DagPattern + Clone + 'static) -> u64 {
    ThreadedEngine::new(MixApp, pattern, EngineConfig::flat(1))
        .run()
        .expect("solo run")
        .fingerprint()
}

/// Tight failure-detector settings so the pinned kill is noticed fast.
fn tighten(mut cfg: SocketConfig) -> SocketConfig {
    cfg.heartbeat = Duration::from_millis(25);
    cfg.peer_timeout = Duration::from_millis(600);
    cfg
}

fn serve_mesh(
    places: u16,
    build: impl Fn() -> JobServer<MixApp> + Send + Sync + 'static,
) -> ServeReport<u64> {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let build = Arc::new(build);
    let mut workers = Vec::new();
    for p in 1..places {
        let addr = addr.clone();
        let build = build.clone();
        workers.push(std::thread::spawn(move || {
            build().serve(tighten(SocketConfig::worker(PlaceId(p), places, addr)))
        }));
    }
    let report = build()
        .serve(tighten(SocketConfig::coordinator(listener, places)))
        .expect("coordinator serves")
        .expect("coordinator returns the report");
    for w in workers {
        assert!(
            matches!(w.join().expect("worker thread exits"), Ok(None)),
            "workers (including the victim) shut down cleanly"
        );
    }
    report
}

#[test]
fn place_death_mid_serve_recovers_only_the_affected_jobs() {
    // Four jobs: two big full-mesh jobs that are certain to have
    // unfinished vertices on place 2 when it dies, two pinned to
    // {0, 1} and therefore out of the blast radius. Place 2 kills
    // itself after publishing 30 vertices — far before any full-mesh
    // job (≥ 360 vertices, ~a third of them on place 2) can finish.
    let report = serve_mesh(3, || {
        let mut server = JobServer::new()
            .with_max_in_flight(4)
            .with_soft_die()
            .with_kill(ServeKill {
                place: PlaceId(2),
                after_vertices: 30,
            });
        server
            .submit(JobSpec::new(
                "wide-grid3",
                MixApp,
                builtin::Grid3::new(20, 20),
                EngineConfig::flat(3),
            ))
            .unwrap();
        server
            .submit(JobSpec::new(
                "wide-grid2",
                MixApp,
                builtin::Grid2::new(18, 20),
                EngineConfig::flat(3),
            ))
            .unwrap();
        server
            .submit(
                JobSpec::new(
                    "pinned-rowwave",
                    MixApp,
                    builtin::RowWave::new(10, 12),
                    EngineConfig::flat(2),
                )
                .pinned_to(vec![PlaceId(0), PlaceId(1)]),
            )
            .unwrap();
        server
            .submit(
                JobSpec::new(
                    "pinned-diagonal",
                    MixApp,
                    builtin::Diagonal::new(11, 11),
                    EngineConfig::flat(2),
                )
                .pinned_to(vec![PlaceId(0), PlaceId(1)]),
            )
            .unwrap();
        server
    });

    assert_eq!(report.jobs.len(), 4);
    assert_eq!(
        report.succeeded(),
        4,
        "every job completes despite the mid-serve place death"
    );

    let solos = [
        solo_fingerprint(builtin::Grid3::new(20, 20)),
        solo_fingerprint(builtin::Grid2::new(18, 20)),
        solo_fingerprint(builtin::RowWave::new(10, 12)),
        solo_fingerprint(builtin::Diagonal::new(11, 11)),
    ];
    for (job, solo) in report.jobs.iter().zip(solos) {
        let result = job.result.as_ref().expect("job succeeded");
        assert_eq!(
            result.fingerprint(),
            solo,
            "job {} diverged from its solo oracle after the fault",
            job.name
        );
        let rep = result.report();
        if job.name.starts_with("wide") {
            // Blast radius: the full-mesh jobs lost a place and must
            // have recovered into a second (or later) epoch.
            assert!(
                rep.epochs >= 2,
                "job {} had vertices on the dead place but ran {} epoch(s)",
                job.name,
                rep.epochs
            );
            assert!(
                !rep.recoveries.is_empty(),
                "job {} recorded no recovery pass",
                job.name
            );
        } else {
            // Isolation: jobs pinned away from the victim never even
            // notice the death.
            assert_eq!(
                rep.epochs, 1,
                "pinned job {} was dragged into a recovery it did not need",
                job.name
            );
            assert!(
                rep.recoveries.is_empty(),
                "pinned job {} recorded a recovery",
                job.name
            );
        }
    }
}

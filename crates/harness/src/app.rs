//! The differential workload: a value-mixing kernel and its serial
//! oracle.

use std::collections::HashMap;

use dpx10_core::{DepView, DpApp};
use dpx10_dag::{topological_order, DagPattern, VertexId};

/// A kernel whose output is sensitive to any mis-delivered, stale or
/// misordered dependency value: each vertex folds its own id and every
/// dependency value through a non-commutative mix, so a single wrong
/// cell anywhere corrupts everything downstream of it.
#[derive(Clone, Copy, Debug, Default)]
pub struct MixApp;

impl DpApp for MixApp {
    type Value = u64;

    fn compute(&self, id: VertexId, deps: &DepView<'_, u64>) -> u64 {
        let mut acc = 0xD1B5_4A32_u64.wrapping_mul(id.pack() | 1).rotate_left(11);
        for (did, v) in deps.iter() {
            acc = acc
                .wrapping_add(v.rotate_left((did.i % 23) + (did.j % 7) + 1))
                .wrapping_mul(0x100_0000_01B3);
        }
        acc
    }
}

/// Serial oracle: evaluates [`MixApp`] over `pattern` in one thread, in
/// topological order — no places, no messages, no recovery. Every
/// backend's result is compared against this map.
pub fn oracle(pattern: &dyn DagPattern) -> HashMap<VertexId, u64> {
    let order = topological_order(pattern).expect("scenario patterns are acyclic");
    let mut out = HashMap::with_capacity(order.len());
    let mut deps = Vec::new();
    for id in order {
        deps.clear();
        pattern.dependencies(id.i, id.j, &mut deps);
        let vals: Vec<u64> = deps.iter().map(|d| out[d]).collect();
        out.insert(id, MixApp.compute(id, &DepView::new(&deps, &vals)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx10_dag::builtin::Grid3;

    #[test]
    fn oracle_covers_every_vertex_and_is_deterministic() {
        let pattern = Grid3::new(7, 9);
        let a = oracle(&pattern);
        let b = oracle(&pattern);
        assert_eq!(a.len(), 63);
        assert_eq!(a, b);
    }

    #[test]
    fn kernel_is_order_sensitive() {
        // Swapping two dependency values must change the result —
        // otherwise the differential oracle would miss misrouted values.
        let deps = [VertexId::new(0, 0), VertexId::new(0, 1)];
        let a = MixApp.compute(VertexId::new(1, 1), &DepView::new(&deps, &[3, 4]));
        let b = MixApp.compute(VertexId::new(1, 1), &DepView::new(&deps, &[4, 3]));
        assert_ne!(a, b);
    }
}

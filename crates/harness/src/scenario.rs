//! Seed → scenario expansion: the random pattern, cluster shape and
//! chaos plan a differential run executes.

use std::fmt;
use std::sync::Arc;

use dpx10_apgas::{ChaosPlan, ChaosRng};
use dpx10_core::{DistKind, ScheduleStrategy};
use dpx10_dag::{BuiltinKind, DagPattern, GapDag, KnapsackDag, LwsDag, RangedDag, VertexId};

/// A seeded random DAG pattern: each vertex draws edges from a fixed
/// window of row-major-preceding neighbours, each edge included by an
/// independent coin keyed on `(seed, src, dst)`.
///
/// Because every candidate source precedes its target in row-major
/// order, the pattern is acyclic by construction; because
/// [`dependencies`](DagPattern::dependencies) and
/// [`anti_dependencies`](DagPattern::anti_dependencies) consult the
/// *same* coin, they are mutual inverses by construction. This is the
/// harness's stand-in for "a user-written custom pattern we have never
/// seen before".
#[derive(Clone, Debug)]
pub struct RandomWindowDag {
    height: u32,
    width: u32,
    seed: u64,
    density: f64,
}

/// Candidate edge sources of `(i, j)`, as `(di, dj)` offsets. Every
/// offset points at a strictly row-major-earlier cell.
const OFFSETS: [(i64, i64); 6] = [(0, -1), (-1, 0), (-1, -1), (-1, 1), (0, -2), (-2, 0)];

impl RandomWindowDag {
    /// A `height × width` pattern whose edges are drawn from `seed`
    /// with the given per-edge probability.
    pub fn new(height: u32, width: u32, seed: u64, density: f64) -> Self {
        assert!(height > 0 && width > 0, "pattern must be non-empty");
        RandomWindowDag {
            height,
            width,
            seed,
            density,
        }
    }

    /// The edge coin: pure in `(seed, src, dst)`, so both directions of
    /// the adjacency query agree without storing the edge set.
    fn edge(&self, src: VertexId, dst: VertexId) -> bool {
        ChaosRng::new(self.seed)
            .fork(src.pack())
            .fork(dst.pack())
            .chance(self.density)
    }
}

impl DagPattern for RandomWindowDag {
    fn height(&self) -> u32 {
        self.height
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        for (di, dj) in OFFSETS {
            let si = i as i64 + di;
            let sj = j as i64 + dj;
            if si >= 0 && sj >= 0 && si < i64::from(self.height) && sj < i64::from(self.width) {
                let src = VertexId::new(si as u32, sj as u32);
                if self.edge(src, VertexId::new(i, j)) {
                    out.push(src);
                }
            }
        }
    }

    fn anti_dependencies(&self, i: u32, j: u32, out: &mut Vec<VertexId>) {
        for (di, dj) in OFFSETS {
            let ti = i as i64 - di;
            let tj = j as i64 - dj;
            if ti >= 0 && tj >= 0 && ti < i64::from(self.height) && tj < i64::from(self.width) {
                let dst = VertexId::new(ti as u32, tj as u32);
                if self.edge(VertexId::new(i, j), dst) {
                    out.push(dst);
                }
            }
        }
    }

    fn name(&self) -> &str {
        "random-window"
    }
}

/// Everything one differential run needs, expanded deterministically
/// from one seed.
#[derive(Clone)]
pub struct Scenario {
    /// The seed this scenario was expanded from.
    pub seed: u64,
    /// The DAG pattern under test.
    pub pattern: Arc<dyn DagPattern>,
    /// Number of places on every backend.
    pub places: u16,
    /// Vertex distribution.
    pub dist: DistKind,
    /// Scheduling strategy.
    pub schedule: ScheduleStrategy,
    /// Remote-value cache capacity.
    pub cache: usize,
    /// The chaos plan applied on top of the run.
    pub plan: ChaosPlan,
}

impl Scenario {
    /// Expands `seed` into a scenario. Pure: the same seed always
    /// yields the same pattern, shape and plan.
    pub fn generate(seed: u64) -> Self {
        let mut rng = ChaosRng::new(seed).fork(0x5343_4E52); // "SCNR"
        let places = 2 + rng.below(3) as u16;
        let h = 6 + rng.below(9) as u32;
        let w = 6 + rng.below(9) as u32;
        let pattern: Arc<dyn DagPattern> = match rng.below(10) {
            0 => BuiltinKind::Grid2.instantiate(h, w).into(),
            1 => BuiltinKind::Grid3.instantiate(h, w).into(),
            2 => BuiltinKind::Diagonal.instantiate(h, w).into(),
            3 => BuiltinKind::RowWave.instantiate(h, w).into(),
            4 => BuiltinKind::Pyramid.instantiate(h, w).into(),
            5 => BuiltinKind::FullPrevRowCol.instantiate(h, w).into(),
            6 => {
                let items = 5 + rng.below(6) as usize;
                let weights = (0..items).map(|_| 1 + rng.below(6) as u32).collect();
                Arc::new(KnapsackDag::new(weights, 8 + rng.below(16) as u32))
            }
            // Interval-dependency (ranged) patterns: the chaos app has
            // no aggregation spec, so the sweep drives the enumeration
            // adapter — every interval edge delivered, decremented and
            // recovered like a point edge.
            7 => Arc::new(RangedDag::new(LwsDag::new(h * w))),
            8 => Arc::new(RangedDag::new(GapDag::new(h, w))),
            _ => {
                let density = 0.25 + rng.unit() * 0.5;
                Arc::new(RandomWindowDag::new(h, w, rng.next_u64(), density))
            }
        };
        let dist = match rng.below(4) {
            0 => DistKind::BlockCol,
            1 => DistKind::BlockRow,
            2 => DistKind::CyclicCol,
            _ => DistKind::CyclicRow,
        };
        let schedule = match rng.below(4) {
            0 => ScheduleStrategy::Local,
            1 => ScheduleStrategy::Random,
            2 => ScheduleStrategy::MinComm,
            _ => ScheduleStrategy::WorkStealing,
        };
        let cache = [0usize, 8, 4096][rng.below(3) as usize];
        let plan = ChaosPlan::generate(rng.next_u64(), places);
        Scenario {
            seed,
            pattern,
            places,
            dist,
            schedule,
            cache,
            plan,
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}x{} places={} dist={:?} sched={:?} cache={} | {}",
            self.pattern.name(),
            self.pattern.height(),
            self.pattern.width(),
            self.places,
            self.dist,
            self.schedule,
            self.cache,
            self.plan,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpx10_dag::validate_pattern;

    #[test]
    fn random_window_patterns_validate() {
        // Inversion, containment and acyclicity for a spread of seeds
        // and densities — the full pattern contract.
        for seed in 0..32u64 {
            let density = 0.1 + (seed as f64) * 0.025;
            let dag = RandomWindowDag::new(9, 11, seed, density);
            validate_pattern(&dag).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn scenarios_are_reproducible_and_valid() {
        for seed in 0..64u64 {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(a.to_string(), b.to_string(), "seed {seed}");
            assert!((2..=4).contains(&a.places));
            validate_pattern(a.pattern.as_ref()).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for k in &a.plan.kills {
                assert!(k.place.0 > 0 && k.place.0 < a.places, "seed {seed}");
            }
        }
    }

    #[test]
    fn seed_space_actually_varies() {
        let names: std::collections::HashSet<String> = (0..64u64)
            .map(|s| Scenario::generate(s).pattern.name().to_string())
            .collect();
        assert!(names.len() >= 4, "pattern mix too narrow: {names:?}");
    }
}

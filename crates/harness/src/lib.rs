//! Seeded chaos harness with cross-backend differential oracles.
//!
//! Every engine in this workspace claims to compute the same thing: the
//! fixpoint of a [`DpApp`](dpx10_core::DpApp) kernel over a
//! [`DagPattern`](dpx10_dag::DagPattern). This crate turns that claim
//! into a machine-checkable property. One `u64` seed deterministically
//! expands into a full **scenario** — a random pattern, cluster shape,
//! distribution, scheduler, cache size and a
//! [`ChaosPlan`](dpx10_apgas::ChaosPlan) of place kills, transport
//! perturbation and schedule shaking — and the [`diff`] runner executes
//! it on every backend:
//!
//! * the **serial oracle** (a topological-order interpreter),
//! * the **simulator** (`dpx10-sim`, deterministic virtual clock),
//! * the **threaded engine** (`dpx10-core`, kills + chaos transport +
//!   schedule shaker),
//! * the **socket engine** (in-process TCP mesh with soft-crashed
//!   places and frame-delay chaos).
//!
//! All four must agree bit-for-bit on every vertex value, and each run
//! must satisfy the recovery invariants (no recomputation without a
//! preceding failure; surviving cells never recomputed; clean worker
//! shutdown). A failing seed reproduces exactly — same seed, same fault
//! schedule, same verdict — and the runner shrinks its chaos plan to a
//! locally minimal counterexample before reporting.
//!
//! The `dpx10 chaos` CLI subcommand drives this crate over seed ranges;
//! the crate's own tests pin a small set of seeds into tier-1.

#![warn(missing_docs)]

pub mod app;
pub mod diff;
pub mod scenario;

pub use app::{oracle, MixApp};
pub use diff::{run_seed, shrink_failure, write_failure_trace, ChaosOptions, Failure, SeedReport};
pub use scenario::{RandomWindowDag, Scenario};

//! The differential runner: one seed, four backends, one verdict.

use std::net::TcpListener;
use std::time::Duration;

use dpx10_apgas::{ChaosPlan, KillTrigger, PlaceId, SocketChaos, SocketConfig};
use dpx10_core::{
    CommsMode, DagResult, EngineConfig, FaultPlan, RunReport, SocketEngine, ThreadedEngine,
};
use dpx10_dag::topological_order;
use dpx10_obs::{oracle as trace_oracle, Recorder, Trace};
use dpx10_sim::{SimConfig, SimEngine, SimFaultPlan};

use crate::app::{oracle, MixApp};
use crate::scenario::Scenario;

/// What the runner executes per seed.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOptions {
    /// Run the in-process socket mesh (the slowest backend: planned
    /// kills are detected by heartbeat timeout, so each kill costs real
    /// wall-clock time).
    pub sockets: bool,
    /// On failure, shrink the chaos plan to a locally minimal
    /// counterexample before reporting.
    pub shrink: bool,
    /// Simulator trace capacity for the fingerprint check.
    pub trace_capacity: usize,
    /// Message-coalescing byte budget for the threaded and socket
    /// backends (`None` = the classic one-message-per-event plane). The
    /// serial oracle and the simulator never coalesce, so a coalesced
    /// sweep still compares against uncoalesced references cell by cell.
    pub coalesce: Option<usize>,
    /// Anti-dependency delivery mode for the simulator, threaded and
    /// socket backends. The serial oracle has no comms plane, so a push
    /// sweep still checks every cell against a pull-free reference.
    pub comms: CommsMode,
    /// Prefix aggregation for interval-dependency (ranged) patterns on
    /// the threaded and socket backends. The sweep's mixing kernel has
    /// no aggregation spec, so this only matters for apps that do; it
    /// is threaded through so targeted suites can flip it.
    pub agg: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            sockets: true,
            shrink: true,
            trace_capacity: 4096,
            coalesce: None,
            comms: CommsMode::Pull,
            agg: true,
        }
    }
}

/// A verified divergence: which backend broke the contract and how.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The backend that diverged (`"sim"`, `"threads"`, `"sockets"`).
    pub backend: &'static str,
    /// What went wrong, deterministically rendered (no wall times).
    pub reason: String,
    /// The shrunk plan that still reproduces the failure, when
    /// shrinking was requested and found a simpler one. Boxed to keep
    /// `Failure` (and the `Result`s carrying it) small.
    pub minimal: Option<Box<ChaosPlan>>,
}

/// The outcome of one seed.
#[derive(Clone, Debug)]
pub struct SeedReport {
    /// The seed.
    pub seed: u64,
    /// Human-readable scenario description (pattern, shape, plan).
    pub scenario: String,
    /// The chaos plan the scenario expanded to.
    pub plan: ChaosPlan,
    /// `None` when every backend agreed and every invariant held.
    pub failure: Option<Failure>,
}

impl SeedReport {
    /// Whether the seed passed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// One deterministic report line: identical across re-runs of the
    /// same seed (no timestamps, no wall-clock content).
    pub fn render(&self) -> String {
        match &self.failure {
            None => format!("seed={:#018x} PASS {}", self.seed, self.scenario),
            Some(f) => {
                let mut line = format!(
                    "seed={:#018x} FAIL [{}] {} | scenario: {}",
                    self.seed, f.backend, f.reason, self.scenario
                );
                if let Some(min) = &f.minimal {
                    line.push_str(&format!(" | minimal: {min}"));
                }
                line
            }
        }
    }
}

fn fail(backend: &'static str, reason: impl Into<String>) -> Failure {
    Failure {
        backend,
        reason: reason.into(),
        minimal: None,
    }
}

/// Compares a finished run against the oracle, cell by cell in
/// topological order (deterministic first-mismatch reporting).
fn check_values(
    backend: &'static str,
    sc: &Scenario,
    expect: &std::collections::HashMap<dpx10_dag::VertexId, u64>,
    result: &DagResult<u64>,
) -> Result<(), Failure> {
    let order = topological_order(sc.pattern.as_ref()).expect("validated");
    for id in order {
        let got = result.try_get(id.i, id.j);
        let want = expect.get(&id).copied();
        if got != want {
            return Err(fail(
                backend,
                format!("value mismatch at {id}: got {got:?}, want {want:?}"),
            ));
        }
    }
    Ok(())
}

/// The recovery invariants every backend must uphold:
/// * a run with no armed failure finishes in one epoch with zero
///   recomputation, and
/// * recomputation never exceeds the cells actually lost to failures —
///   surviving cells are never recomputed. The simulator counts
///   computation at publish time, so its recomputation is exactly the
///   dropped + lost sum; the threaded and socket backends can strand up
///   to one mid-execute vertex per worker slot when an epoch aborts, so
///   each recovery earns `slots` cells of slack on top of that sum.
fn check_recovery(
    backend: &'static str,
    plan: &ChaosPlan,
    report: &RunReport,
    slots: u64,
) -> Result<(), Failure> {
    if plan.kills.is_empty() {
        if report.epochs != 1 {
            return Err(fail(
                backend,
                format!("{} epochs without any planned failure", report.epochs),
            ));
        }
        if report.recomputed() != 0 {
            return Err(fail(
                backend,
                format!(
                    "{} cells recomputed without any planned failure",
                    report.recomputed()
                ),
            ));
        }
    }
    let lost: u64 = report.recoveries.iter().map(|r| r.dropped + r.lost).sum();
    let budget = lost + report.recoveries.len() as u64 * slots;
    if report.recomputed() > budget {
        return Err(fail(
            backend,
            format!(
                "surviving cells recomputed: {} recomputations but only {} cells lost \
                 (+{} in-flight slack)",
                report.recomputed(),
                lost,
                budget - lost
            ),
        ));
    }
    Ok(())
}

/// The flight-recorder oracle: spans must nest per worker track and the
/// recovery-span count must match the report. Only judged on complete
/// traces — a ring that dropped events can legitimately miss a span.
fn check_trace(backend: &'static str, trace: &Trace, report: &RunReport) -> Result<(), Failure> {
    if trace.dropped > 0 {
        return Ok(());
    }
    trace_oracle::check_span_nesting(&trace.events)
        .map_err(|e| fail(backend, format!("trace oracle: {e}")))?;
    trace_oracle::check_recovery_count(&trace.events, report.recoveries.len())
        .map_err(|e| fail(backend, format!("trace oracle: {e}")))
}

/// The first progress-triggered kill, as the legacy single-fault plans
/// the simulator understands.
fn first_progress_kill(plan: &ChaosPlan) -> Option<(PlaceId, f64)> {
    plan.kills.iter().find_map(|k| match k.trigger {
        KillTrigger::Progress(f) => Some((k.place, f)),
        KillTrigger::After(_) => None,
    })
}

fn check_sim(
    sc: &Scenario,
    plan: &ChaosPlan,
    expect: &std::collections::HashMap<dpx10_dag::VertexId, u64>,
    trace_capacity: usize,
    comms: CommsMode,
) -> Result<(), Failure> {
    let mut config = SimConfig::flat(sc.places)
        .with_dist(sc.dist.clone())
        .with_schedule(sc.schedule)
        .with_cache(sc.cache)
        .with_comms(comms);
    if let Some((place, frac)) = first_progress_kill(plan) {
        config = config.with_fault(SimFaultPlan {
            place,
            after_fraction: frac,
        });
    }
    let recorder = Recorder::new(sc.places as usize);
    let engine = SimEngine::new(MixApp, sc.pattern.clone(), config).with_recorder(recorder.clone());
    let (result, trace) = engine
        .run_traced(trace_capacity.max(1))
        .map_err(|e| fail("sim", format!("run failed: {e}")))?;
    // Drain before the fingerprint rerun so its duplicate events don't
    // pollute the recorded timeline.
    let recorded = recorder.drain();
    check_values("sim", sc, expect, &result)?;
    check_recovery("sim", plan, result.report(), u64::from(sc.places))?;
    check_trace("sim", &recorded, result.report())?;
    // The virtual clock makes the whole schedule deterministic: a
    // second run must replay the exact same event trace.
    let (_, trace2) = engine
        .run_traced(trace_capacity.max(1))
        .map_err(|e| fail("sim", format!("rerun failed: {e}")))?;
    if trace.fingerprint() != trace2.fingerprint() {
        return Err(fail(
            "sim",
            format!(
                "trace fingerprint not reproducible: {:#018x} vs {:#018x}",
                trace.fingerprint(),
                trace2.fingerprint()
            ),
        ));
    }
    Ok(())
}

fn engine_config(sc: &Scenario, plan: &ChaosPlan, opts: &ChaosOptions) -> EngineConfig {
    let mut config = EngineConfig::flat(sc.places)
        .with_dist(sc.dist.clone())
        .with_schedule(sc.schedule)
        .with_cache(sc.cache)
        .with_chaos(plan.clone())
        .with_coalesce(opts.coalesce)
        .with_comms(opts.comms)
        .with_aggregation(opts.agg);
    config.stall_limit = Duration::from_secs(20);
    config
}

fn check_threads(
    sc: &Scenario,
    plan: &ChaosPlan,
    expect: &std::collections::HashMap<dpx10_dag::VertexId, u64>,
    opts: &ChaosOptions,
) -> Result<(), Failure> {
    let config = engine_config(sc, plan, opts);
    let recorder = Recorder::new(sc.places as usize);
    let result = ThreadedEngine::new(MixApp, sc.pattern.clone(), config)
        .with_recorder(recorder.clone())
        .run()
        .map_err(|e| fail("threads", format!("run failed: {e}")))?;
    let recorded = recorder.drain();
    check_values("threads", sc, expect, &result)?;
    check_recovery("threads", plan, result.report(), u64::from(sc.places))?;
    check_trace("threads", &recorded, result.report())
}

fn check_sockets(
    sc: &Scenario,
    plan: &ChaosPlan,
    expect: &std::collections::HashMap<dpx10_dag::VertexId, u64>,
    opts: &ChaosOptions,
) -> Result<(), Failure> {
    // The socket mesh gets the plan's kills (delivered as `Wire::Die`,
    // absorbed as soft crashes so every place stays a thread of this
    // process) and its delay chaos. Frame duplication/drop stays off —
    // the control plane counts frames — and heartbeat flapping is
    // covered by its own targeted transport test, not the differential
    // suite, because a long flap legitimately diverges the epoch count.
    let net = if plan.net.is_off() {
        None
    } else {
        Some(SocketChaos::delay_only(
            plan.seed,
            plan.net.delay_prob,
            Duration::from_millis(plan.net.max_delay_ticks.clamp(1, 8)),
        ))
    };
    // Keep kills+shake, strip transport/flap chaos handled above.
    let mut engine_plan = plan.clone();
    engine_plan.net = dpx10_apgas::NetChaos::off();
    engine_plan.flap = None;
    let config = engine_config(sc, &engine_plan, opts);

    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| fail("sockets", format!("bind failed: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| fail("sockets", format!("no local addr: {e}")))?
        .to_string();
    let tighten = |mut cfg: SocketConfig, chaos: Option<SocketChaos>| {
        cfg.heartbeat = Duration::from_millis(25);
        cfg.peer_timeout = Duration::from_millis(600);
        cfg.chaos = chaos;
        cfg
    };

    let mut workers = Vec::new();
    for p in 1..sc.places {
        let addr = addr.clone();
        let pattern = sc.pattern.clone();
        let config = config.clone();
        let places = sc.places;
        workers.push(std::thread::spawn(move || {
            SocketEngine::new(MixApp, pattern, config)
                .with_soft_die()
                .run(tighten(SocketConfig::worker(PlaceId(p), places, addr), net))
        }));
    }
    let outcome = SocketEngine::new(MixApp, sc.pattern.clone(), config.clone())
        .with_soft_die()
        .run(tighten(SocketConfig::coordinator(listener, sc.places), net));

    let mut worker_failure = None;
    for (idx, w) in workers.into_iter().enumerate() {
        match w.join() {
            Ok(Ok(None)) => {}
            Ok(other) => {
                worker_failure.get_or_insert(fail(
                    "sockets",
                    format!(
                        "worker place {} did not shut down cleanly: {:?}",
                        idx + 1,
                        other.map(|r| r.map(|_| "unexpected result"))
                    ),
                ));
            }
            Err(_) => {
                worker_failure.get_or_insert(fail(
                    "sockets",
                    format!("worker place {} panicked", idx + 1),
                ));
            }
        }
    }
    let result = outcome
        .map_err(|e| fail("sockets", format!("coordinator failed: {e}")))?
        .ok_or_else(|| fail("sockets", "coordinator returned no result"))?;
    if let Some(f) = worker_failure {
        return Err(f);
    }
    check_values("sockets", sc, expect, &result)?;
    check_recovery("sockets", plan, result.report(), u64::from(sc.places))
}

/// Runs `plan` over the scenario's pattern on every requested backend
/// and returns the first broken invariant, if any.
pub fn check_plan(sc: &Scenario, plan: &ChaosPlan, opts: &ChaosOptions) -> Result<(), Failure> {
    let expect = oracle(sc.pattern.as_ref());
    check_sim(sc, plan, &expect, opts.trace_capacity, opts.comms)?;
    check_threads(sc, plan, &expect, opts)?;
    if opts.sockets {
        check_sockets(sc, plan, &expect, opts)?;
    }
    Ok(())
}

/// Shrinks a failing plan: repeatedly tries one-step-simpler candidate
/// plans (most aggressive simplification first) and recurses into the
/// first that still fails, stopping at a locally minimal plan.
pub fn shrink_failure(sc: &Scenario, plan: &ChaosPlan, opts: &ChaosOptions) -> ChaosPlan {
    let mut current = plan.clone();
    'outer: loop {
        for cand in current.shrink() {
            if check_plan(sc, &cand, opts).is_err() {
                current = cand;
                continue 'outer;
            }
        }
        return current;
    }
}

/// Expands `seed` into a scenario, runs it differentially on every
/// backend, and reports — shrinking the chaos plan on failure when
/// requested.
pub fn run_seed(seed: u64, opts: &ChaosOptions) -> SeedReport {
    let sc = Scenario::generate(seed);
    let mut failure = check_plan(&sc, &sc.plan, opts).err();
    if let Some(f) = &mut failure {
        if opts.shrink {
            let minimal = shrink_failure(&sc, &sc.plan, opts);
            if minimal != sc.plan {
                f.minimal = Some(Box::new(minimal));
            }
        }
    }
    SeedReport {
        seed,
        scenario: sc.to_string(),
        plan: sc.plan,
        failure,
    }
}

/// Re-runs a failing seed's scenario on the simulator with a flight
/// recorder attached and writes the resulting Chrome trace next to the
/// temp dir, returning the path. The run's outcome is irrelevant here —
/// whatever events were recorded before a failure are exactly what a
/// human debugging the seed wants to look at.
pub fn write_failure_trace(seed: u64) -> Option<std::path::PathBuf> {
    let sc = Scenario::generate(seed);
    let mut config = SimConfig::flat(sc.places)
        .with_dist(sc.dist.clone())
        .with_schedule(sc.schedule)
        .with_cache(sc.cache);
    if let Some((place, frac)) = first_progress_kill(&sc.plan) {
        config = config.with_fault(SimFaultPlan {
            place,
            after_fraction: frac,
        });
    }
    let recorder = Recorder::new(sc.places as usize);
    let _ = SimEngine::new(MixApp, sc.pattern.clone(), config)
        .with_recorder(recorder.clone())
        .run();
    let trace = recorder.drain();
    let path = std::env::temp_dir().join(format!("dpx10-chaos-{seed:016x}.trace.json"));
    dpx10_obs::chrome::write(&path, &trace).ok()?;
    Some(path)
}

/// The legacy single-fault plan equivalent of a chaos kill — used by
/// targeted tests that want the paper's §VIII-C mid-run failure shape
/// on a specific scenario.
pub fn fault_plan_of(plan: &ChaosPlan) -> Option<FaultPlan> {
    first_progress_kill(plan).map(|(place, after_fraction)| FaultPlan {
        place,
        after_fraction,
    })
}

//! The paper's DP applications, implemented against the DPX10 API.
//!
//! §VII walks through Smith-Waterman and 0/1-Knapsack as tutorials; §VIII
//! evaluates four applications — Smith-Waterman with linear and affine
//! gap penalty (SWLAG), the Manhattan Tourists Problem (MTP), Longest
//! Palindromic Subsequence (LPS) and the 0/1 Knapsack Problem (0/1KP).
//! All of them (plus the §IV LCS walk-through) live here, each with a
//! serial reference implementation ([`serial`]) the engines are
//! differentially tested against, and deterministic workload generators
//! ([`workload`]) for the benchmark harness.

#![warn(missing_docs)]

pub mod extra;
pub mod gap;
pub mod knapsack;
pub mod lcs;
pub mod lps;
pub mod lws;
pub mod mtp;
pub mod rng;
pub mod serial;
pub mod swlag;
pub mod workload;

pub use extra::{
    BandedEditDistanceApp, EditDistanceApp, MatrixChainApp, NeedlemanWunschApp, NussinovApp,
};
pub use gap::GapApp;
pub use knapsack::KnapsackApp;
pub use lcs::LcsApp;
pub use lps::LpsApp;
pub use lws::LwsApp;
pub use mtp::MtpApp;
pub use swlag::{SwCell, SwLinearApp, SwlagApp};

//! Deterministic workload generators for the examples and the figure
//! harness ("the time for ... generating test graphs ... was not included
//! in the measurements", §VIII — generation is separated out here too).

use crate::knapsack::Item;
use crate::rng::SplitMix64;

/// A random DNA sequence of length `len`.
pub fn dna(len: usize, seed: u64) -> Vec<u8> {
    const ALPHABET: [u8; 4] = *b"ACGT";
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| ALPHABET[rng.below(4) as usize]).collect()
}

/// A random uppercase-letter string (for LPS/LCS demos).
pub fn letters(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| b'A' + rng.below(26) as u8).collect()
}

/// A random knapsack instance: `n` items with weights in
/// `1..=max_weight` and values in `1..=100`.
pub fn knapsack_items(n: usize, max_weight: u32, seed: u64) -> Vec<Item> {
    assert!(max_weight >= 1);
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| Item {
            weight: 1 + rng.below(max_weight as u64) as u32,
            value: 1 + rng.below(100),
        })
        .collect()
}

/// Side length `n` such that an `(n+1)²` alignment matrix has
/// approximately `vertices` cells — how the harness converts the paper's
/// "300 million vertices" into sequence lengths.
pub fn side_for_vertices(vertices: u64) -> u32 {
    ((vertices as f64).sqrt() as u32).max(2) - 1
}

/// Knapsack shape for a target vertex count: `items ≈ vertices / (cap+1)`
/// with a fixed capacity, mirroring the tall-thin matrices 0/1KP produces.
pub fn knapsack_shape_for_vertices(vertices: u64, capacity: u32) -> usize {
    ((vertices / (capacity as u64 + 1)).max(1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_is_deterministic_and_valid() {
        let a = dna(100, 7);
        let b = dna(100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|c| b"ACGT".contains(c)));
        assert_ne!(dna(100, 8), a);
    }

    #[test]
    fn knapsack_items_bounded() {
        let items = knapsack_items(50, 10, 3);
        assert_eq!(items.len(), 50);
        assert!(items.iter().all(|it| (1..=10).contains(&it.weight)));
        assert!(items.iter().all(|it| (1..=100).contains(&it.value)));
    }

    #[test]
    fn side_for_vertices_round_trips_order_of_magnitude() {
        let n = side_for_vertices(1_000_000);
        let cells = (n as u64 + 1).pow(2);
        assert!((900_000..=1_100_000).contains(&cells), "{cells}");
    }

    #[test]
    fn knapsack_shape_positive() {
        assert!(knapsack_shape_for_vertices(1_000_000, 999) >= 1);
        assert_eq!(knapsack_shape_for_vertices(10, 999), 1);
    }
}
